// Tests for cooperative (P2P) Gear-file distribution.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gear/chunking.hpp"
#include "gear/converter.hpp"
#include "p2p/cluster.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear::p2p {
namespace {

struct ClusterFixture : ::testing::Test {
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image;
  workload::AccessSet access;

  void SetUp() override {
    vfs::FileTree root = gear::testing::random_tree(7000, 30, 8192);
    docker::ImageBuilder b;
    b.add_snapshot(root);
    image = b.build("svc", "v1", {});
    push_gear_image(GearConverter().convert(image).image, index_registry,
                    file_registry);
    access = workload::derive_access_set(
        image.flatten(), workload::AccessProfile{0.4, 0.8, 9, 1});
    ASSERT_FALSE(access.files.empty());
  }

  Cluster make_cluster(std::size_t nodes) {
    Cluster::Params params;
    params.nodes = nodes;
    return Cluster(index_registry, file_registry, params);
  }
};

TEST(PeerTracker, AnnounceLocateRetract) {
  PeerTracker tracker;
  Fingerprint fp = default_hasher().fingerprint(to_bytes("x"));
  EXPECT_FALSE(tracker.locate(fp, "a").ok());

  tracker.announce("a", fp);
  EXPECT_FALSE(tracker.locate(fp, "a").ok());  // only the requester holds it
  EXPECT_EQ(tracker.locate(fp, "b").value(), "a");

  tracker.announce("b", fp);
  EXPECT_EQ(tracker.locate(fp, "a").value(), "b");

  tracker.retract_node("a");
  tracker.retract_node("b");
  EXPECT_FALSE(tracker.locate(fp, "c").ok());
  EXPECT_EQ(tracker.announced_objects(), 0u);
}

TEST_F(ClusterFixture, SecondNodeFetchesFromPeer) {
  Cluster cluster = make_cluster(3);
  docker::DeployStats first = cluster.deploy(0, "svc:v1", access);
  EXPECT_GT(first.run_bytes_downloaded, 0u);  // cold: WAN
  std::uint64_t wan_after_first = cluster.wan_bytes();

  docker::DeployStats second = cluster.deploy(1, "svc:v1", access);
  EXPECT_EQ(second.run_bytes_downloaded, 0u);  // all files came from node0
  EXPECT_GT(cluster.peer_hits(), 0u);
  EXPECT_GT(cluster.lan_bytes(), 0u);
  // WAN grew only by the manifest + index image for node1.
  EXPECT_LT(cluster.wan_bytes() - wan_after_first, wan_after_first / 2);
}

TEST_F(ClusterFixture, PeerContentByteExact) {
  Cluster cluster = make_cluster(2);
  cluster.deploy(0, "svc:v1", access);
  cluster.deploy(1, "svc:v1", access);
  vfs::FileTree flat = image.flatten();
  std::string c = cluster.node(1).store().create_container("svc:v1");
  GearFileViewer viewer = cluster.node(1).open_viewer(c);
  for (const auto& fa : access.files) {
    EXPECT_EQ(viewer.read_file(fa.path).value(),
              flat.lookup(fa.path)->content())
        << fa.path;
  }
}

TEST_F(ClusterFixture, RetiredNodeFallsBackToRegistry) {
  Cluster cluster = make_cluster(2);
  cluster.deploy(0, "svc:v1", access);
  cluster.retire_node(0);

  std::uint64_t lan_before = cluster.lan_bytes();
  docker::DeployStats second = cluster.deploy(1, "svc:v1", access);
  EXPECT_EQ(cluster.lan_bytes(), lan_before);   // no peer traffic
  EXPECT_GT(second.run_bytes_downloaded, 0u);   // WAN fallback
}

TEST_F(ClusterFixture, ColdStartScalesRegistryEgressSublinearly) {
  const std::size_t kNodes = 6;
  // Without cooperation: every node pulls everything over the WAN.
  std::uint64_t solo_wan = 0;
  {
    for (std::size_t i = 0; i < kNodes; ++i) {
      sim::SimClock c;
      sim::NetworkLink l(c, 100.0, 0.0005, 0.0003);
      sim::DiskModel d = sim::DiskModel::ssd(c);
      GearClient client(index_registry, file_registry, l, d);
      client.deploy("svc:v1", access);
      solo_wan += l.stats().bytes_transferred;
    }
  }
  // With cooperation: one WAN copy + N-1 LAN copies.
  Cluster cluster = make_cluster(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster.deploy(i, "svc:v1", access);
  }
  EXPECT_LT(cluster.wan_bytes() * (kNodes / 2), solo_wan);
  EXPECT_GT(cluster.peer_hits(), 0u);
}

// ------------------------------------------------ batched chunk fan-out

struct ChunkedClusterFixture : ::testing::Test {
  static constexpr std::uint64_t kChunk = 4096;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  Bytes model;
  workload::AccessSet no_access;  // deploy only pulls; reads come via ranges

  void SetUp() override {
    Rng rng(123);
    model = rng.next_bytes(24 * kChunk, 0.3);
    vfs::FileTree root;
    root.add_file("models/weights.bin", model);
    root.add_file("etc/config.json", to_bytes("{\"layers\":128}"));
    docker::ImageBuilder b;
    b.add_snapshot(root);
    push_gear_image(GearConverter().convert(b.build("ai", "v1", {})).image,
                    index_registry, file_registry,
                    ChunkPolicy{/*threshold_bytes=*/16 * 1024, kChunk});
  }

  Cluster make_cluster(std::size_t nodes, bool batch) {
    Cluster::Params params;
    params.nodes = nodes;
    params.batch_peer_fetch = batch;
    return Cluster(index_registry, file_registry, params);
  }
};

TEST_F(ChunkedClusterFixture, RangeChunksFanOutFromPeerInOneBurst) {
  Cluster cluster = make_cluster(2, /*batch=*/true);
  std::string c0;
  cluster.deploy(0, "ai:v1", no_access, &c0);
  ASSERT_EQ(
      cluster.read_range(0, c0, "models/weights.bin", 0, model.size()).value(),
      model);

  // Node0's chunk objects are announced; node1's identical read pulls every
  // chunk from node0's cache as ONE pipelined LAN burst, and the WAN moves
  // only the manifest.
  std::string c1;
  cluster.deploy(1, "ai:v1", no_access, &c1);
  std::uint64_t hits_before = cluster.peer_hits();
  std::uint64_t bursts_before = cluster.lan_bursts();
  std::uint64_t wan_before = cluster.wan_bytes();
  EXPECT_EQ(
      cluster.read_range(1, c1, "models/weights.bin", 0, model.size()).value(),
      model);
  EXPECT_EQ(cluster.peer_hits() - hits_before, 24u);
  EXPECT_EQ(cluster.lan_bursts() - bursts_before, 1u);
  EXPECT_LT(cluster.wan_bytes() - wan_before, kChunk);  // manifest only
}

TEST_F(ChunkedClusterFixture, LegacyModeReadsFromRegistryWithoutBursts) {
  Cluster cluster = make_cluster(2, /*batch=*/false);
  std::string c0;
  cluster.deploy(0, "ai:v1", no_access, &c0);
  ASSERT_EQ(
      cluster.read_range(0, c0, "models/weights.bin", 0, model.size()).value(),
      model);

  std::string c1;
  cluster.deploy(1, "ai:v1", no_access, &c1);
  std::uint64_t wan_before = cluster.wan_bytes();
  EXPECT_EQ(
      cluster.read_range(1, c1, "models/weights.bin", 0, model.size()).value(),
      model);
  EXPECT_EQ(cluster.lan_bursts(), 0u);
  EXPECT_GT(cluster.wan_bytes() - wan_before, kChunk);  // chunks over the WAN
}

TEST_F(ChunkedClusterFixture, StaleChunkAdvertsFallThroughToRegistry) {
  Cluster cluster = make_cluster(2, /*batch=*/true);
  std::string c0;
  cluster.deploy(0, "ai:v1", no_access, &c0);
  ASSERT_EQ(
      cluster.read_range(0, c0, "models/weights.bin", 0, model.size()).value(),
      model);
  std::string c1;
  cluster.deploy(1, "ai:v1", no_access, &c1);
  cluster.retire_node(0);

  // The holder left: the batched probe finds nothing and every chunk falls
  // through to the registry. The read is still byte-exact.
  std::uint64_t bursts_before = cluster.lan_bursts();
  std::uint64_t wan_before = cluster.wan_bytes();
  EXPECT_EQ(
      cluster.read_range(1, c1, "models/weights.bin", 0, model.size()).value(),
      model);
  EXPECT_EQ(cluster.lan_bursts(), bursts_before);
  EXPECT_GT(cluster.wan_bytes() - wan_before, kChunk);
}

// -------------------------------------------------- concurrent tracker

TEST(ConcurrentPeerBatch, TrackerSurvivesParallelAnnounceLocateRetract) {
  PeerTracker tracker;
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 64; ++i) {
    fps.push_back(default_hasher().fingerprint(to_bytes("obj" +
                                                        std::to_string(i))));
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::string id = "node" + std::to_string(t);
      for (int round = 0; round < 50; ++round) {
        tracker.announce_all(id, fps);
        // Between our announce and this locate, other threads only retract
        // their own ids — every slot must still name some holder.
        std::vector<std::optional<std::string>> found =
            tracker.locate_many(fps, "reader");
        if (found.size() != fps.size()) ++errors;
        for (const auto& holder : found) {
          if (!holder.has_value()) ++errors;
        }
        tracker.retract_node(id);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(tracker.announced_objects(), 0u);
}

TEST_F(ClusterFixture, ClusterValidation) {
  Cluster::Params bad;
  bad.nodes = 0;
  EXPECT_THROW(Cluster(index_registry, file_registry, bad), Error);
  Cluster cluster = make_cluster(1);
  EXPECT_THROW(cluster.deploy(5, "svc:v1", access), Error);
  EXPECT_THROW(cluster.retire_node(5), Error);
  EXPECT_THROW(cluster.node(5), Error);
}

}  // namespace
}  // namespace gear::p2p
