// Tests for the worker-pool subsystem and the determinism contract of the
// parallel hot paths: ordering, backpressure, exception propagation, and
// byte-identical results between serial and parallel conversion, push, and
// pipelined prefetch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "docker/image.hpp"
#include "docker/registry.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/registry.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace gear {
namespace {

using util::Concurrency;
using util::ThreadPool;

TEST(ThreadPool, SubmitReturnsFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, WidthOneRunsInlineWithoutThreads) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for_each(3, [&](std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForEachCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_each(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelMapMergesInSubmissionOrder) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  // Early tasks sleep longest, so completion order is roughly reversed —
  // the merge order must still be the submission order.
  std::vector<int> out = pool.parallel_map<int>(kN, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((kN - i) * 50));
    return static_cast<int>(i) * 3;
  });
  ASSERT_EQ(out.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPool, BackpressureBoundsInflightBytes) {
  ThreadPool pool(4);
  // Each task reports 40 bytes against a 100-byte bound: at most two may be
  // admitted at once (a third would make 120).
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  pool.parallel_for_each(
      64,
      [&](std::size_t) {
        int now = ++current;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        --current;
      },
      /*max_inflight_bytes=*/100,
      [](std::size_t) -> std::uint64_t { return 40; });
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPool, OversizedTaskIsAdmittedAlone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  // Tasks larger than the whole bound must still run (alone), not deadlock.
  pool.parallel_for_each(
      4, [&](std::size_t) { ++done; },
      /*max_inflight_bytes=*/10,
      [](std::size_t) -> std::uint64_t { return 1000; });
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPool, ExceptionPropagatesAndRemainingTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for_each(32, [&](std::size_t i) {
      ++ran;
      if (i == 5) throw_error(ErrorCode::kInternal, "task 5 exploded");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
  EXPECT_EQ(ran.load(), 32);  // no task is dropped on failure
}

TEST(Concurrency, ResolvesWorkers) {
  EXPECT_EQ(Concurrency::serial().resolved_workers(), 1u);
  EXPECT_EQ((Concurrency{3, 0}).resolved_workers(), 3u);
  EXPECT_GE((Concurrency{0, 0}).resolved_workers(), 1u);
}

TEST(FingerprintHash, MixesAllSixteenBytes) {
  // Fingerprints that agree on the first 8 bytes (as truncated/salted test
  // hashers often do) must still spread across buckets.
  FingerprintHash hash;
  std::set<std::size_t> hashes;
  for (std::uint8_t tail = 0; tail < 64; ++tail) {
    std::array<std::uint8_t, Fingerprint::kSize> raw{};
    raw[15] = tail;  // entropy only in the last byte
    hashes.insert(hash(Fingerprint(raw)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

// ---------------------------------------------------------------------------
// Determinism of the parallel hot paths.

docker::Image collision_heavy_image() {
  // Multi-layer image hashed with an 8-bit fingerprint space: collisions are
  // certain, exercising the salted-ID reduce step under parallel hashing.
  vfs::FileTree s0 = gear::testing::random_tree(7100, 90);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, 7101, 25);
  docker::ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1);
  return b.build("par", "v1", {});
}

TEST(ParallelConvert, ByteIdenticalToSerialWithCollisions) {
  TruncatedFingerprintHasher weak(8);
  docker::Image image = collision_heavy_image();

  GearConverter serial(weak);
  serial.set_concurrency(Concurrency::serial());
  ConversionResult a = serial.convert(image);
  EXPECT_GT(a.stats.collisions, 0u);  // the reduce step is actually exercised

  GearConverter parallel(weak);
  parallel.set_concurrency(Concurrency{4, 1 << 20});
  ConversionResult b = parallel.convert(image);

  // Stats, file set (order and bytes), index tree, and wire digest all match.
  EXPECT_EQ(a.stats.files_seen, b.stats.files_seen);
  EXPECT_EQ(a.stats.files_unique, b.stats.files_unique);
  EXPECT_EQ(a.stats.collisions, b.stats.collisions);
  EXPECT_EQ(a.stats.bytes_seen, b.stats.bytes_seen);
  EXPECT_EQ(a.stats.index_wire_bytes, b.stats.index_wire_bytes);
  ASSERT_EQ(a.image.files.size(), b.image.files.size());
  for (std::size_t i = 0; i < a.image.files.size(); ++i) {
    EXPECT_EQ(a.image.files[i].first, b.image.files[i].first) << i;
    EXPECT_EQ(a.image.files[i].second, b.image.files[i].second) << i;
  }
  EXPECT_TRUE(a.image.index.tree().equals(b.image.index.tree()));
  EXPECT_EQ(a.image.index_image.layers[0].digest(),
            b.image.index_image.layers[0].digest());
}

TEST(ParallelPush, RegistryStateIdenticalToSerial) {
  docker::Image image = collision_heavy_image();
  ConversionResult conv = GearConverter().convert(image);

  docker::DockerRegistry dreg_a, dreg_b;
  GearRegistry greg_a, greg_b;
  std::size_t up_a = push_gear_image(conv.image, dreg_a, greg_a);
  ThreadPool pool(4);
  std::size_t up_b = push_gear_image(conv.image, dreg_b, greg_b, {}, &pool,
                                     /*max_inflight_bytes=*/1 << 20);

  EXPECT_EQ(up_a, up_b);
  EXPECT_EQ(greg_a.storage_bytes(), greg_b.storage_bytes());
  EXPECT_EQ(greg_a.object_count(), greg_b.object_count());
  EXPECT_EQ(greg_a.stats().uploads_accepted, greg_b.stats().uploads_accepted);
  for (const auto& [fp, content] : conv.image.files) {
    (void)content;
    EXPECT_EQ(greg_a.download(fp).value(), greg_b.download(fp).value());
  }
}

TEST(GearRegistryBatch, DownloadBatchMatchesIndividualDownloads) {
  GearRegistry reg;
  std::vector<Fingerprint> fps;
  Rng rng(7200);
  std::uint64_t expected_wire = 0;
  for (int i = 0; i < 20; ++i) {
    Bytes content = rng.next_bytes(200 + i * 37);
    Fingerprint fp = default_hasher().fingerprint(content);
    reg.upload(fp, content);
    fps.push_back(fp);
    expected_wire += reg.stored_size(fp).value();
  }

  ThreadPool pool(4);
  std::uint64_t wire = 0;
  std::vector<Bytes> batch = reg.download_batch(fps, &pool, &wire).value();
  ASSERT_EQ(batch.size(), fps.size());
  EXPECT_EQ(wire, expected_wire);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    EXPECT_EQ(batch[i], reg.download(fps[i]).value()) << i;
  }

  std::vector<Fingerprint> with_missing = fps;
  with_missing.push_back(default_hasher().fingerprint(to_bytes("absent")));
  EXPECT_FALSE(reg.download_batch(with_missing, &pool, nullptr).ok());
}

TEST(PipelinedPrefetch, TimingAndResultIndependentOfWorkerCount) {
  docker::Image image = collision_heavy_image();
  ConversionResult conv = GearConverter().convert(image);

  auto run = [&](const Concurrency& c) {
    docker::DockerRegistry dreg;
    GearRegistry greg;
    push_gear_image(conv.image, dreg, greg);
    sim::SimClock clock;
    sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
    sim::DiskModel disk = sim::DiskModel::hdd(clock);
    GearClient client(dreg, greg, link, disk);
    client.set_concurrency(c);
    client.pull("par:v1");
    auto fetched = client.prefetch_remaining("par:v1");
    return std::tuple(fetched.first, fetched.second, clock.now(),
                      link.stats().requests, link.stats().bytes_transferred);
  };

  auto serial = run(Concurrency::serial());
  auto parallel = run(Concurrency{4, 1 << 20});
  EXPECT_EQ(serial, parallel);  // identical sim outcome at any width
  EXPECT_GT(std::get<0>(serial), 0u);
}

}  // namespace
}  // namespace gear
