// Unit tests for the simulation models: clock, network link, disk.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "util/error.hpp"

namespace gear::sim {
namespace {

TEST(SimClock, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.75);
}

TEST(SimClock, RejectsNegative) {
  SimClock clock;
  EXPECT_THROW(clock.advance(-0.1), Error);
}

TEST(SimClock, Reset) {
  SimClock clock;
  clock.advance(5);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimTimer, MeasuresInterval) {
  SimClock clock;
  clock.advance(2.0);
  SimTimer timer(clock);
  clock.advance(3.5);
  EXPECT_DOUBLE_EQ(timer.elapsed(), 3.5);
}

TEST(NetworkLink, TransferTimeMatchesBandwidth) {
  SimClock clock;
  NetworkLink link(clock, 100.0, 0.0, 0.0);  // 100 Mbps, no latency
  // 12.5 MB at 100 Mbps = 1 second.
  double t = link.request(12'500'000);
  EXPECT_NEAR(t, 1.0, 1e-9);
  EXPECT_NEAR(clock.now(), 1.0, 1e-9);
}

TEST(NetworkLink, LatencyAndOverheadCharged) {
  SimClock clock;
  NetworkLink link(clock, 1000.0, 0.010, 0.002);
  double t = link.request(0);
  EXPECT_NEAR(t, 0.012, 1e-12);
}

TEST(NetworkLink, StatsAccumulate) {
  SimClock clock;
  NetworkLink link(clock, 100.0, 0.001, 0.0);
  link.request(1000);
  link.request(2000);
  EXPECT_EQ(link.stats().bytes_transferred, 3000u);
  EXPECT_EQ(link.stats().requests, 2u);
}

TEST(NetworkLink, PipelinedPaysLatencyOnce) {
  SimClock c1, c2;
  NetworkLink serial(c1, 100.0, 0.05, 0.001);
  NetworkLink batched(c2, 100.0, 0.05, 0.001);
  for (int i = 0; i < 10; ++i) serial.request(1000);
  batched.pipelined(10000, 10);
  EXPECT_LT(c2.now(), c1.now());
  // Exactly 9 RTTs cheaper.
  EXPECT_NEAR(c1.now() - c2.now(), 9 * 0.05, 1e-9);
  EXPECT_EQ(serial.stats().bytes_transferred,
            batched.stats().bytes_transferred);
}

TEST(NetworkLink, StatsDiffOperator) {
  SimClock clock;
  NetworkLink link(clock, 10.0, 0.0, 0.0);
  link.request(500);
  NetworkStats before = link.stats();
  link.request(700);
  NetworkStats delta = link.stats() - before;
  EXPECT_EQ(delta.bytes_transferred, 700u);
  EXPECT_EQ(delta.requests, 1u);
}

TEST(NetworkLink, BadParametersThrow) {
  SimClock clock;
  EXPECT_THROW(NetworkLink(clock, 0.0, 0.0, 0.0), Error);
  EXPECT_THROW(NetworkLink(clock, 100.0, -1.0, 0.0), Error);
  NetworkLink link(clock, 100.0, 0.0, 0.0);
  EXPECT_THROW(link.pipelined(100, 0), Error);
}

TEST(NetworkLink, SlowerLinkTakesProportionallyLonger) {
  SimClock c1, c2;
  NetworkLink fast(c1, 904.0, 0.0, 0.0);
  NetworkLink slow(c2, 5.0, 0.0, 0.0);
  fast.request(1'000'000);
  slow.request(1'000'000);
  EXPECT_NEAR(c2.now() / c1.now(), 904.0 / 5.0, 1e-6);
}

TEST(DiskModel, ReadChargesSeekPlusTransfer) {
  SimClock clock;
  DiskModel disk(clock, 0.008, 150.0, 140.0);
  double t = disk.read(150'000'000);  // 1 second of transfer
  EXPECT_NEAR(t, 1.008, 1e-9);
  EXPECT_EQ(disk.stats().bytes_read, 150'000'000u);
  EXPECT_EQ(disk.stats().read_ops, 1u);
}

TEST(DiskModel, WriteAndTouch) {
  SimClock clock;
  DiskModel disk(clock, 0.001, 100.0, 100.0);
  disk.write(1'000'000);
  disk.touch();
  EXPECT_EQ(disk.stats().bytes_written, 1'000'000u);
  EXPECT_EQ(disk.stats().write_ops, 1u);
  EXPECT_NEAR(clock.now(), 0.001 + 0.01 + 0.001, 1e-9);
}

TEST(DiskModel, SsdMuchFasterThanHddForSmallFiles) {
  SimClock c1, c2;
  DiskModel hdd = DiskModel::hdd(c1);
  DiskModel ssd = DiskModel::ssd(c2);
  for (int i = 0; i < 1000; ++i) {
    hdd.read(4096);
    ssd.read(4096);
  }
  // Seek-dominated workload: HDD should be >10x slower (Fig. 6's SSD gap).
  EXPECT_GT(c1.now() / c2.now(), 10.0);
}

TEST(DiskModel, BadParametersThrow) {
  SimClock clock;
  EXPECT_THROW(DiskModel(clock, -1.0, 100.0, 100.0), Error);
  EXPECT_THROW(DiskModel(clock, 0.001, 0.0, 100.0), Error);
}

}  // namespace
}  // namespace gear::sim
