// Decoder robustness: every parser in the system must reject arbitrary and
// mutated input with a clean error — never crash, hang, or silently accept.
//
// Two generators per decoder: (a) pure random bytes, (b) valid frames with
// random mutations (the harder case: mostly-plausible input).
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "docker/layer.hpp"
#include "gear/chunking.hpp"
#include "gear/index.hpp"
#include "net/wire.hpp"
#include "tar/tar.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "vfs/tree_serialize.hpp"

namespace gear {
namespace {

/// Runs `decode` over random buffers; success or Error are both fine,
/// anything else (crash/UB) fails the test by construction.
template <typename Fn>
void fuzz_random(std::uint64_t seed, int iterations, Fn&& decode) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    Bytes garbage = rng.next_bytes(rng.next_range(0, 2048), rng.next_double());
    try {
      decode(garbage);
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

/// Mutates a valid encoding `valid` and decodes each mutant.
template <typename Fn>
void fuzz_mutations(std::uint64_t seed, const Bytes& valid, int iterations,
                    Fn&& decode) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    Bytes mutant = valid;
    int edits = static_cast<int>(rng.next_range(1, 8));
    for (int k = 0; k < edits && !mutant.empty(); ++k) {
      switch (rng.next_below(3)) {
        case 0:  // flip
          mutant[rng.next_below(mutant.size())] ^=
              static_cast<std::uint8_t>(rng.next_range(1, 255));
          break;
        case 1:  // truncate
          mutant.resize(rng.next_below(mutant.size() + 1));
          break;
        case 2:  // append garbage
          append(mutant, rng.next_bytes(rng.next_range(1, 32)));
          break;
      }
    }
    try {
      decode(mutant);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzRobustness, JsonParser) {
  auto decode = [](const Bytes& b) { (void)Json::parse(to_string(b)); };
  fuzz_random(1001, 400, decode);
  Json valid = Json::parse(R"({"a":[1,2,{"b":"c","d":null}],"e":1.5})");
  fuzz_mutations(1002, to_bytes(valid.dump()), 400, decode);
}

TEST(FuzzRobustness, CompressedFrame) {
  auto decode = [](const Bytes& b) { (void)decompress(b); };
  fuzz_random(1101, 400, decode);
  Rng rng(1102);
  fuzz_mutations(1103, compress(rng.next_bytes(1500, 0.5)), 400, decode);
}

TEST(FuzzRobustness, TarExtract) {
  auto decode = [](const Bytes& b) { (void)tar::extract_tree(b); };
  fuzz_random(1201, 200, decode);
  fuzz_mutations(1202, tar::archive_tree(gear::testing::sample_tree()), 400,
                 decode);
}

TEST(FuzzRobustness, TreeDeserialize) {
  auto decode = [](const Bytes& b) { (void)vfs::deserialize_tree(b); };
  fuzz_random(1301, 400, decode);
  fuzz_mutations(1302,
                 vfs::serialize_tree(gear::testing::random_tree(13, 20)), 400,
                 decode);
}

TEST(FuzzRobustness, WireMessage) {
  auto decode = [](const Bytes& b) {
    StatusOr<net::WireMessage> m = net::decode_message(b);
    (void)m;  // StatusOr: failure is a value, not an exception
  };
  fuzz_random(1401, 400, decode);
  net::WireMessage valid;
  valid.type = net::MessageType::kDownloadResponse;
  valid.fp = default_hasher().fingerprint(to_bytes("x"));
  valid.payload = to_bytes("payload");
  fuzz_mutations(1402, net::encode_message(valid), 400, decode);
}

TEST(FuzzRobustness, ChunkManifest) {
  auto decode = [](const Bytes& b) { (void)ChunkManifest::parse(b); };
  fuzz_random(1501, 400, decode);
  Rng rng(1502);
  Bytes content = rng.next_bytes(40000, 0.3);
  ChunkPolicy policy{1, 4096};
  fuzz_mutations(1503,
                 build_chunk_manifest(content, policy, default_hasher())
                     .serialize(),
                 400, decode);
}

TEST(FuzzRobustness, StubDecode) {
  Rng rng(1601);
  for (int i = 0; i < 400; ++i) {
    Bytes garbage = rng.next_bytes(rng.next_range(0, 100), 0.2);
    Fingerprint fp;
    std::uint64_t size;
    (void)GearIndex::decode_stub(garbage, &fp, &size);  // bool API: no throw
  }
}

TEST(FuzzRobustness, LayerFromBlob) {
  auto decode = [](const Bytes& b) {
    docker::Layer layer = docker::Layer::from_blob(b);
    (void)layer.to_tree();
  };
  fuzz_random(1701, 200, decode);
  docker::Layer valid = docker::Layer::from_tree(gear::testing::sample_tree());
  fuzz_mutations(1702, valid.blob(), 300, decode);
}

TEST(FuzzRobustness, ManifestJson) {
  auto decode = [](const Bytes& b) {
    (void)docker::Manifest::from_json_string(to_string(b));
  };
  docker::ImageBuilder b;
  b.add_snapshot(gear::testing::sample_tree());
  docker::Image image = b.build("fz", "v1", {});
  fuzz_random(1801, 300, decode);
  fuzz_mutations(1802, to_bytes(image.manifest.to_json_string()), 400, decode);
}

}  // namespace
}  // namespace gear
