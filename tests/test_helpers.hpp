// Shared helpers for the test suite: quick tree builders and a seeded
// random-tree generator for property tests.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "vfs/file_tree.hpp"

namespace gear::testing {

/// Builds a small, fixed tree used by many structural tests.
inline vfs::FileTree sample_tree() {
  vfs::FileTree t;
  t.add_directory("etc");
  t.add_file("etc/hostname", to_bytes("gear-test\n"));
  t.add_file("etc/os-release", to_bytes("NAME=gearos\nVERSION=1\n"));
  t.add_directory("usr/bin");
  t.add_file("usr/bin/app", to_bytes(std::string(2000, 'x')));
  t.add_symlink("usr/bin/app-link", "app");
  t.add_file("var/log/boot.log", to_bytes("booted\n"));
  return t;
}

/// Generates a random merged tree (no whiteouts/opaque) with `n_files`
/// regular files, some directories, symlinks, and contents of mixed
/// compressibility. Deterministic per seed.
inline vfs::FileTree random_tree(std::uint64_t seed, int n_files,
                                 std::uint64_t max_file_size = 4096) {
  Rng rng(seed);
  vfs::FileTree t;
  std::vector<std::string> dirs = {"bin", "etc", "lib", "opt/app",
                                   "usr/share", "var/data"};
  for (const auto& d : dirs) t.add_directory(d);
  for (int i = 0; i < n_files; ++i) {
    const std::string& dir = dirs[rng.next_below(dirs.size())];
    std::string path = dir + "/file" + std::to_string(i);
    auto size = rng.next_range(0, max_file_size);
    t.add_file(path, rng.next_bytes(size, rng.next_double()));
  }
  // A few symlinks.
  int n_links = n_files / 8;
  for (int i = 0; i < n_links; ++i) {
    const std::string& dir = dirs[rng.next_below(dirs.size())];
    t.add_symlink(dir + "/link" + std::to_string(i),
                  "file" + std::to_string(rng.next_below(
                      static_cast<std::uint64_t>(n_files))));
  }
  return t;
}

/// Applies `n_edits` random mutations (add/modify/delete) to a copy of
/// `base`, returning the mutated tree. Deterministic per seed.
inline vfs::FileTree mutate_tree(const vfs::FileTree& base, std::uint64_t seed,
                                 int n_edits) {
  Rng rng(seed);
  vfs::FileTree t = base;

  std::vector<std::string> files;
  t.walk([&files](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular()) files.push_back(path);
  });

  for (int i = 0; i < n_edits; ++i) {
    double roll = rng.next_double();
    if (roll < 0.4 || files.empty()) {
      // Add a new file.
      std::string path = "opt/app/new" + std::to_string(seed) + "_" +
                         std::to_string(i);
      t.add_file(path, rng.next_bytes(rng.next_range(1, 512), 0.5));
      files.push_back(path);
    } else if (roll < 0.75) {
      // Modify an existing file.
      const std::string& path = files[rng.next_below(files.size())];
      if (t.lookup(path) != nullptr) {
        t.lookup(path)->set_content(
            rng.next_bytes(rng.next_range(1, 512), 0.3));
      }
    } else {
      // Delete one.
      std::size_t idx = rng.next_below(files.size());
      t.remove(files[idx]);
      files.erase(files.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  return t;
}

}  // namespace gear::testing
