// Tests for the histogram utility and the trace generator/replayer.
#include <gtest/gtest.h>

#include <set>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace gear {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
}

TEST(Histogram, NearestRankPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 1.0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.record(7.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(99), 7.5);
}

TEST(Histogram, ErrorsOnEmptyOrBadP) {
  Histogram h;
  EXPECT_THROW(h.mean(), Error);
  EXPECT_THROW(h.percentile(50), Error);
  h.record(1);
  EXPECT_THROW(h.percentile(-1), Error);
  EXPECT_THROW(h.percentile(101), Error);
}

TEST(Histogram, SummaryMentionsPercentiles) {
  Histogram h;
  h.record(0.5);
  std::string s = h.summary_seconds();
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

// -------------------------------------------------------------------- trace

struct TraceFixture : ::testing::Test {
  std::vector<workload::SeriesSpec> specs = workload::small_corpus(1, 10);
  workload::TraceSpec tspec;

  void SetUp() override {
    tspec.duration_seconds = 2000;
    tspec.mean_interarrival_seconds = 10;
    tspec.release_cadence_seconds = 300;
    tspec.max_live_containers = 8;
    tspec.seed = 99;
  }
};

TEST_F(TraceFixture, GenerationDeterministicAndOrdered) {
  auto a = workload::generate_trace(specs, tspec);
  auto b = workload::generate_trace(specs, tspec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 50u);  // ~200 expected
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].series_index, b[i].series_index);
    EXPECT_EQ(a[i].version, b[i].version);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
    EXPECT_LT(a[i].arrival_seconds, tspec.duration_seconds);
    EXPECT_LT(a[i].series_index, specs.size());
    EXPECT_LT(a[i].version, specs[a[i].series_index].versions);
  }
}

TEST_F(TraceFixture, PopularitySkewed) {
  auto events = workload::generate_trace(specs, tspec);
  std::vector<int> counts(specs.size(), 0);
  for (const auto& e : events) counts[e.series_index]++;
  // Rank 0 must dominate the tail rank.
  EXPECT_GT(counts[0], counts[specs.size() - 1] * 2);
}

TEST_F(TraceFixture, VersionsAdvanceOverTime) {
  auto events = workload::generate_trace(specs, tspec);
  // Find the most popular series and confirm later deployments target
  // higher versions.
  int early = -1, late = -1;
  for (const auto& e : events) {
    if (e.series_index != 0) continue;
    if (early < 0) early = e.version;
    late = e.version;
  }
  ASSERT_GE(early, 0);
  EXPECT_GT(late, early);
}

TEST_F(TraceFixture, BadParametersThrow) {
  workload::TraceSpec bad = tspec;
  bad.mean_interarrival_seconds = 0;
  EXPECT_THROW(workload::generate_trace(specs, bad), Error);
  EXPECT_THROW(workload::generate_trace({}, tspec), Error);
}

TEST_F(TraceFixture, ReplayEnforcesLiveCapAndDrains) {
  auto events = workload::generate_trace(specs, tspec);
  sim::SimClock clock;
  int live = 0, max_live = 0, next_id = 0;
  workload::TraceResult result = workload::replay_trace(
      clock, events, tspec,
      [&](std::size_t, int) {
        clock.advance(0.5);  // fixed deploy cost
        ++live;
        max_live = std::max(max_live, live);
        return "c" + std::to_string(next_id++);
      },
      [&](const std::string&) { --live; });

  EXPECT_EQ(result.deployments, events.size());
  EXPECT_EQ(result.destroys, result.deployments);  // fully drained
  EXPECT_EQ(live, 0);
  EXPECT_LE(max_live, tspec.max_live_containers);
  EXPECT_GE(result.makespan_seconds,
            events.back().arrival_seconds);
  EXPECT_DOUBLE_EQ(result.deploy_latency.mean(), 0.5);
}

TEST_F(TraceFixture, ReplayAgainstRealGearClient) {
  // End-to-end: a short trace against actual registries and a Gear client.
  workload::CorpusGenerator gen(5, 0.0005);
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  std::set<std::pair<std::size_t, int>> pushed;
  workload::TraceSpec small = tspec;
  small.duration_seconds = 400;
  auto events = workload::generate_trace(specs, small);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    if (!pushed.insert({e.series_index, e.version}).second) continue;
    push_gear_image(
        converter.convert(gen.generate_image(specs[e.series_index], e.version))
            .image,
        index_registry, file_registry);
  }

  sim::SimClock clock;
  sim::NetworkLink link = sim::scaled_link(clock, 100.0, 0.0005);
  sim::DiskModel disk = sim::DiskModel::scaled_ssd(clock, 0.0005);
  GearClient client(index_registry, file_registry, link, disk);

  workload::TraceResult result = workload::replay_trace(
      clock, events, small,
      [&](std::size_t series, int version) {
        std::string ref =
            specs[series].name + ":v" + std::to_string(version);
        std::string container;
        client.deploy(ref, gen.access_set(specs[series], version),
                      &container);
        return container;
      },
      [&](const std::string& container) { client.destroy(container); });

  EXPECT_EQ(result.deployments, events.size());
  EXPECT_GT(result.deploy_latency.percentile(99), 0.0);
  EXPECT_GT(client.store().cache().stats().hits, 0u);  // repeats hit cache
}

}  // namespace
}  // namespace gear
