// Unit and property tests for the LZSS codec and frame format.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "compress/lzss.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear {
namespace {

TEST(Lzss, EmptyInput) {
  Bytes out = lzss_compress({});
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(lzss_decompress(out, 0).empty());
}

TEST(Lzss, ShortLiteralOnly) {
  Bytes data = to_bytes("abc");
  Bytes packed = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(packed, data.size()), data);
}

TEST(Lzss, RepetitiveDataShrinks) {
  Bytes data(100000, 'a');
  Bytes packed = lzss_compress(data);
  EXPECT_LT(packed.size(), data.size() / 20);
  EXPECT_EQ(lzss_decompress(packed, data.size()), data);
}

TEST(Lzss, OverlappingMatchRuns) {
  // "abcabcabc..." triggers matches with distance < length.
  Bytes data;
  for (int i = 0; i < 5000; ++i) data.push_back("abc"[i % 3]);
  Bytes packed = lzss_compress(data);
  EXPECT_LT(packed.size(), data.size() / 4);
  EXPECT_EQ(lzss_decompress(packed, data.size()), data);
}

TEST(Lzss, TextLikeContent) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "the quick brown fox jumps over the lazy dog #" +
            std::to_string(i % 37) + "\n";
  }
  Bytes data = to_bytes(text);
  Bytes packed = lzss_compress(data);
  EXPECT_LT(packed.size(), data.size() / 2);
  EXPECT_EQ(lzss_decompress(packed, data.size()), data);
}

TEST(Lzss, MatchesAcrossFullWindow) {
  // Two identical 4 KiB regions separated by ~60 KiB of random data: still
  // within the 64 KiB window, so the second copy must be found. (The random
  // filler itself expands by the 1/8 flag overhead, so compare against a
  // control where the trailing region is NOT a duplicate.)
  Rng rng(3);
  Bytes unique = rng.next_bytes(4096, 0.0);
  Bytes filler = rng.next_bytes(60000, 0.0);
  Bytes other = rng.next_bytes(4096, 0.0);

  Bytes dup, nodup;
  append(dup, unique);
  append(dup, filler);
  append(dup, unique);
  append(nodup, unique);
  append(nodup, filler);
  append(nodup, other);

  Bytes packed_dup = lzss_compress(dup);
  Bytes packed_nodup = lzss_compress(nodup);
  // The duplicated tail compresses to match tokens: >3.5 KB smaller.
  EXPECT_LT(packed_dup.size() + 3500, packed_nodup.size());
  EXPECT_EQ(lzss_decompress(packed_dup, dup.size()), dup);
}

TEST(Lzss, TruncatedStreamThrows) {
  Bytes data(1000, 'z');
  Bytes packed = lzss_compress(data);
  packed.resize(packed.size() / 2);
  EXPECT_THROW(lzss_decompress(packed, data.size()), Error);
}

TEST(Lzss, BadDistanceThrows) {
  // Flag byte declaring a match, distance pointing before stream start.
  Bytes bogus = {0x01, 0xff, 0xff, 0x10};
  EXPECT_THROW(lzss_decompress(bogus, 100), Error);
}

// Property sweep: round-trip across sizes and compressibilities.
class LzssRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(LzssRoundTrip, Lossless) {
  auto [size, compressibility] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 1000 +
          static_cast<std::uint64_t>(compressibility * 100));
  Bytes data = rng.next_bytes(size, compressibility);
  Bytes packed = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(packed, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzssRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 255, 256, 257, 1000,
                                         65535, 65536, 70000, 200000),
                       ::testing::Values(0.0, 0.3, 0.7, 0.95)));

// ---------------------------------------------------------------- codec

TEST(Codec, FrameRoundTrip) {
  Bytes data = to_bytes("hello hello hello hello hello");
  Bytes frame = compress(data);
  EXPECT_EQ(decompress(frame), data);
  EXPECT_EQ(compressed_frame_original_size(frame), data.size());
}

TEST(Codec, EmptyFrame) {
  Bytes frame = compress({});
  EXPECT_TRUE(decompress(frame).empty());
  EXPECT_EQ(compressed_frame_original_size(frame), 0u);
}

TEST(Codec, IncompressibleFallsBackToStored) {
  Rng rng(21);
  Bytes data = rng.next_bytes(5000, 0.0);
  Bytes frame = compress(data);
  EXPECT_EQ(compressed_frame_method(frame), CompressionMethod::kStored);
  // Overhead bounded by the small header.
  EXPECT_LE(frame.size(), data.size() + 16);
  EXPECT_EQ(decompress(frame), data);
}

TEST(Codec, CompressibleUsesLzss) {
  Bytes data(10000, 'x');
  Bytes frame = compress(data);
  EXPECT_EQ(compressed_frame_method(frame), CompressionMethod::kLzss);
  EXPECT_LT(frame.size(), 600u);
}

TEST(Codec, BadMagicThrows) {
  Bytes frame = compress(to_bytes("data"));
  frame[0] = 'X';
  EXPECT_THROW(decompress(frame), Error);
}

TEST(Codec, UnknownMethodThrows) {
  Bytes frame = compress(to_bytes("data"));
  frame[4] = 9;
  EXPECT_THROW(decompress(frame), Error);
}

TEST(Codec, TruncatedFrameThrows) {
  Bytes frame = compress(Bytes(1000, 'y'));
  frame.resize(6);
  EXPECT_THROW(decompress(frame), Error);
}

TEST(Codec, StoredSizeMismatchThrows) {
  Bytes frame = compress(to_bytes("zzz"));  // tiny input -> stored
  ASSERT_EQ(compressed_frame_method(frame), CompressionMethod::kStored);
  frame.push_back('!');
  EXPECT_THROW(decompress(frame), Error);
}

// --------------------------------------------------------------- varint

TEST(Varint, RoundTripBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xffffffffull, 0xffffffffffffffffull}) {
    Bytes buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedThrows) {
  Bytes buf;
  put_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), Error);
}

TEST(Varint, OversizedThrows) {
  Bytes buf(11, 0xff);  // continuation forever
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), Error);
}

}  // namespace
}  // namespace gear
