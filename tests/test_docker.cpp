// Unit tests for the Docker substrate: layers, manifests, images, registry,
// client.
#include <gtest/gtest.h>

#include "docker/client.hpp"
#include "docker/image.hpp"
#include "docker/layer.hpp"
#include "docker/manifest.hpp"
#include "docker/registry.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "vfs/tree_diff.hpp"

namespace gear::docker {
namespace {

ImageConfig test_config() {
  ImageConfig cfg;
  cfg.env = {"PATH=/bin", "LANG=C"};
  cfg.entrypoint = {"/bin/app"};
  cfg.cmd = {"--serve"};
  cfg.working_dir = "/srv";
  cfg.labels["maintainer"] = "tests";
  return cfg;
}

Image build_test_image(const std::string& name, const std::string& tag,
                       std::uint64_t seed) {
  vfs::FileTree s0 = gear::testing::random_tree(seed, 20);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, seed + 1, 8);
  ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1);
  return b.build(name, tag, test_config());
}

// ---------------------------------------------------------------- digest

TEST(Digest, OfIsSha256) {
  Bytes blob = to_bytes("layer");
  EXPECT_EQ(Digest::of(blob).hex(), Sha256::hex(blob));
}

TEST(Digest, ToStringFromString) {
  Digest d = Digest::of(to_bytes("x"));
  EXPECT_EQ(Digest::from_string(d.to_string()), d);
  EXPECT_EQ(Digest::from_string(d.hex()), d);
  EXPECT_THROW(Digest::from_string("sha256:abcd"), Error);
}

// ----------------------------------------------------------------- layer

TEST(Layer, TreeRoundTrip) {
  vfs::FileTree t = gear::testing::sample_tree();
  Layer layer = Layer::from_tree(t);
  EXPECT_TRUE(layer.to_tree().equals(t));
  EXPECT_GT(layer.uncompressed_size(), layer.compressed_size());
}

TEST(Layer, DigestIsOverCompressedBlob) {
  Layer layer = Layer::from_tree(gear::testing::sample_tree());
  EXPECT_EQ(layer.digest(), Digest::of(layer.blob()));
}

TEST(Layer, IdenticalTreesSameDigest) {
  Layer a = Layer::from_tree(gear::testing::random_tree(5, 15));
  Layer b = Layer::from_tree(gear::testing::random_tree(5, 15));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Layer, DifferentTreesDifferentDigest) {
  Layer a = Layer::from_tree(gear::testing::random_tree(5, 15));
  Layer b = Layer::from_tree(gear::testing::random_tree(6, 15));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Layer, FromBlobVerifiesDigest) {
  Layer layer = Layer::from_tree(gear::testing::sample_tree());
  Bytes blob = layer.blob();
  EXPECT_NO_THROW(Layer::from_blob(blob, layer.digest()));
  Digest wrong = Digest::of(to_bytes("not-it"));
  EXPECT_THROW(Layer::from_blob(blob, wrong), Error);
}

// -------------------------------------------------------------- manifest

TEST(Manifest, JsonRoundTrip) {
  Image img = build_test_image("web", "1.0", 42);
  std::string json = img.manifest.to_json_string();
  Manifest back = Manifest::from_json_string(json);
  EXPECT_EQ(back, img.manifest);
}

TEST(Manifest, ConfigSurvivesRoundTrip) {
  Image img = build_test_image("web", "1.0", 42);
  Manifest back = Manifest::from_json_string(img.manifest.to_json_string());
  EXPECT_EQ(back.config.env, img.manifest.config.env);
  EXPECT_EQ(back.config.entrypoint, img.manifest.config.entrypoint);
  EXPECT_EQ(back.config.labels.at("maintainer"), "tests");
}

TEST(Manifest, ReferenceAndSizes) {
  Image img = build_test_image("db", "2.3", 7);
  EXPECT_EQ(img.manifest.reference(), "db:2.3");
  EXPECT_EQ(img.manifest.total_layer_bytes(), img.compressed_size());
  EXPECT_GT(img.manifest.wire_size(), 100u);
}

TEST(Manifest, RejectsUnknownSchema) {
  Image img = build_test_image("x", "1", 1);
  std::string json = img.manifest.to_json_string();
  auto pos = json.find("\"schemaVersion\":2");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 17, "\"schemaVersion\":3");
  EXPECT_THROW(Manifest::from_json_string(json), Error);
}

// ----------------------------------------------------------------- image

TEST(ImageBuilder, FlattenReproducesLastSnapshot) {
  vfs::FileTree s0 = gear::testing::random_tree(9, 25);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, 10, 12);
  vfs::FileTree s2 = gear::testing::mutate_tree(s1, 11, 12);
  ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1).add_snapshot(s2);
  Image img = b.build("app", "v3", {});
  ASSERT_EQ(img.layers.size(), 3u);
  EXPECT_TRUE(img.flatten().equals(s2));
}

TEST(ImageBuilder, RejectsEmptyCommit) {
  vfs::FileTree s0 = gear::testing::random_tree(9, 10);
  ImageBuilder b;
  b.add_snapshot(s0);
  EXPECT_THROW(b.add_snapshot(s0), Error);
}

TEST(ImageBuilder, RejectsZeroLayerBuild) {
  ImageBuilder b;
  EXPECT_THROW(b.build("x", "y", {}), Error);
}

TEST(ImageBuilder, ChildImageSharesBaseLayers) {
  Image base = build_test_image("base", "1", 20);
  ImageBuilder b(base);
  vfs::FileTree next = gear::testing::mutate_tree(base.flatten(), 21, 6);
  b.add_snapshot(next);
  Image child = b.build("child", "1", {});
  ASSERT_EQ(child.layers.size(), 3u);
  EXPECT_EQ(child.layers[0].digest(), base.layers[0].digest());
  EXPECT_EQ(child.layers[1].digest(), base.layers[1].digest());
}

// -------------------------------------------------------------- registry

TEST(Registry, PushStoresLayersAndManifest) {
  DockerRegistry reg;
  Image img = build_test_image("svc", "1.0", 30);
  PushResult r = reg.push_image(img);
  EXPECT_EQ(r.layers_uploaded, 2u);
  EXPECT_EQ(r.layers_deduplicated, 0u);
  EXPECT_TRUE(reg.has_manifest("svc:1.0"));
  EXPECT_EQ(reg.blob_count(), 2u);
  EXPECT_EQ(reg.blob_bytes(), img.compressed_size());
}

TEST(Registry, LayerLevelDeduplication) {
  DockerRegistry reg;
  Image v1 = build_test_image("svc", "1.0", 30);
  reg.push_image(v1);

  // v2 shares the base layer (same first snapshot).
  vfs::FileTree s0 = gear::testing::random_tree(30, 20);
  vfs::FileTree s1b = gear::testing::mutate_tree(s0, 99, 8);
  ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1b);
  Image v2 = b.build("svc", "2.0", test_config());

  PushResult r = reg.push_image(v2);
  EXPECT_EQ(r.layers_deduplicated, 1u);
  EXPECT_EQ(r.layers_uploaded, 1u);
  EXPECT_EQ(reg.blob_count(), 3u);
}

TEST(Registry, GetManifestAndBlob) {
  DockerRegistry reg;
  Image img = build_test_image("svc", "1.0", 31);
  reg.push_image(img);
  Manifest m = reg.get_manifest("svc:1.0").value();
  EXPECT_EQ(m, img.manifest);
  Bytes blob = reg.get_blob(m.layers[0].digest).value();
  EXPECT_EQ(Digest::of(blob), m.layers[0].digest);
  EXPECT_FALSE(reg.get_manifest("missing:1").ok());
  EXPECT_FALSE(reg.get_blob(Digest::of(to_bytes("nope"))).ok());
}

TEST(Registry, PutBlobValidatesDigest) {
  DockerRegistry reg;
  EXPECT_THROW(reg.put_blob(Digest::of(to_bytes("a")), to_bytes("b")), Error);
}

TEST(Registry, ListManifestsSorted) {
  DockerRegistry reg;
  reg.push_image(build_test_image("zeta", "1", 1));
  reg.push_image(build_test_image("alpha", "1", 2));
  auto refs = reg.list_manifests();
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], "alpha:1");
  EXPECT_EQ(refs[1], "zeta:1");
}

// ---------------------------------------------------------------- client

struct ClientFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  DockerRegistry registry;
};

TEST_F(ClientFixture, PullDownloadsAllLayersOnce) {
  Image img = build_test_image("svc", "1.0", 40);
  registry.push_image(img);
  DockerClient client(registry, link, disk);

  PullStats p1 = client.pull("svc:1.0");
  EXPECT_EQ(p1.layers_fetched, 2u);
  EXPECT_GE(p1.bytes_downloaded,
            img.compressed_size() + img.manifest.wire_size());
  EXPECT_GT(p1.seconds, 0.0);

  // Second pull: layers are local; only the manifest moves.
  PullStats p2 = client.pull("svc:1.0");
  EXPECT_EQ(p2.layers_fetched, 0u);
  EXPECT_EQ(p2.layers_local, 2u);
  EXPECT_EQ(p2.bytes_downloaded, img.manifest.wire_size());
}

TEST_F(ClientFixture, SharedLayersNotRedownloadedAcrossImages) {
  vfs::FileTree s0 = gear::testing::random_tree(50, 20);
  vfs::FileTree s1a = gear::testing::mutate_tree(s0, 51, 5);
  vfs::FileTree s1b = gear::testing::mutate_tree(s0, 52, 5);
  ImageBuilder ba, bb;
  ba.add_snapshot(s0).add_snapshot(s1a);
  bb.add_snapshot(s0).add_snapshot(s1b);
  Image a = ba.build("a", "1", {});
  Image b = bb.build("b", "1", {});
  registry.push_image(a);
  registry.push_image(b);

  DockerClient client(registry, link, disk);
  client.pull("a:1");
  PullStats p = client.pull("b:1");
  EXPECT_EQ(p.layers_local, 1u);  // shared base layer reused
  EXPECT_EQ(p.layers_fetched, 1u);
}

TEST_F(ClientFixture, MountReproducesImage) {
  Image img = build_test_image("svc", "1.0", 60);
  registry.push_image(img);
  DockerClient client(registry, link, disk);
  client.pull("svc:1.0");
  OverlayMount mount = client.mount("svc:1.0");
  EXPECT_TRUE(mount.merged().equals(img.flatten()));
}

TEST_F(ClientFixture, MountWithoutPullThrows) {
  DockerClient client(registry, link, disk);
  EXPECT_THROW(client.mount("nope:1"), Error);
}

TEST_F(ClientFixture, DeployReadsAccessSetAndCharges) {
  Image img = build_test_image("svc", "1.0", 70);
  registry.push_image(img);
  DockerClient client(registry, link, disk);

  workload::AccessProfile profile{0.3, 0.8, 1234, 1};
  workload::AccessSet access =
      workload::derive_access_set(img.flatten(), profile);
  ASSERT_FALSE(access.files.empty());

  DeployStats stats = client.deploy("svc:1.0", access);
  EXPECT_GT(stats.pull.seconds, 0.0);
  EXPECT_GT(stats.run_seconds, 0.0);
  EXPECT_EQ(stats.run_bytes_downloaded, 0u);  // Docker never lazy-fetches
  EXPECT_EQ(stats.total_bytes(), stats.pull.bytes_downloaded);
}

TEST_F(ClientFixture, DeployFasterOnHigherBandwidth) {
  Image img = build_test_image("svc", "1.0", 80);
  registry.push_image(img);

  workload::AccessSet access = workload::derive_access_set(
      img.flatten(), workload::AccessProfile{0.2, 0.8, 1, 1});

  sim::SimClock slow_clock;
  sim::NetworkLink slow_link(slow_clock, 5.0, 0.0005, 0.0003);
  sim::DiskModel slow_disk(slow_clock, 0.0001, 500.0, 480.0);
  DockerClient slow_client(registry, slow_link, slow_disk);
  double slow_total = slow_client.deploy("svc:1.0", access).total_seconds();

  DockerClient fast_client(registry, link, disk);
  DeployStats fast = fast_client.deploy("svc:1.0", access);
  // The run phase (container startup) is bandwidth-independent, so compare
  // totals loosely but pull phases strictly.
  EXPECT_GT(slow_total, fast.total_seconds());
  DockerClient slow_again(registry, slow_link, slow_disk);
  slow_again.clear_local_state();
  DeployStats slow = slow_again.deploy("svc:1.0", access);
  EXPECT_GT(slow.pull.seconds, fast.pull.seconds * 5);
}

TEST_F(ClientFixture, DestroyScalesWithImageInodes) {
  Image small = build_test_image("small", "1", 90);
  registry.push_image(small);
  DockerClient client(registry, link, disk);
  workload::AccessSet none;
  client.deploy("small:1", none);
  double t = client.destroy("small:1");
  EXPECT_GT(t, 0.0);
  EXPECT_THROW(client.destroy("missing:1"), Error);
}

TEST_F(ClientFixture, ClearLocalStateForcesRedownload) {
  Image img = build_test_image("svc", "1.0", 95);
  registry.push_image(img);
  DockerClient client(registry, link, disk);
  client.pull("svc:1.0");
  client.clear_local_state();
  PullStats p = client.pull("svc:1.0");
  EXPECT_EQ(p.layers_fetched, 2u);
}

}  // namespace
}  // namespace gear::docker
