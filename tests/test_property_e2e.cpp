// Randomized end-to-end property tests and failure injection.
//
// These sweep seeds through whole-pipeline invariants:
//  * conversion is lossless (index + files reproduce the exact root fs);
//  * the Gear viewer and an Overlay2 mount agree on every path after
//    arbitrary interleaved reads/writes/deletes;
//  * commit composes (deploy(commit(c)) sees exactly c's view);
//  * corrupted registry content is detected, never silently served.
#include <gtest/gtest.h>

#include <map>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/committer.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

docker::Image random_image(std::uint64_t seed, int files, int layers) {
  vfs::FileTree snapshot = gear::testing::random_tree(seed, files);
  docker::ImageBuilder b;
  b.add_snapshot(snapshot);
  for (int i = 1; i < layers; ++i) {
    snapshot = gear::testing::mutate_tree(snapshot, seed + static_cast<std::uint64_t>(i), 10);
    b.add_snapshot(snapshot);
  }
  return b.build("rnd" + std::to_string(seed), "v1", {});
}

// ---------------------------------------------------------- conversion

class ConversionLossless : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConversionLossless, EveryFileRecoverable) {
  docker::Image image = random_image(GetParam(), 40, 3);
  ConversionResult conv = GearConverter().convert(image);

  std::map<Fingerprint, Bytes> pool;
  for (auto& [fp, content] : conv.image.files) pool[fp] = content;

  vfs::FileTree flat = image.flatten();
  std::size_t files_checked = 0;
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_regular()) return;
    const vfs::FileNode* stub = conv.image.index.tree().lookup(path);
    ASSERT_NE(stub, nullptr) << path;
    ASSERT_TRUE(stub->is_fingerprint()) << path;
    EXPECT_EQ(pool.at(stub->fingerprint()), node.content()) << path;
    ++files_checked;
  });
  EXPECT_EQ(files_checked, conv.stats.files_seen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConversionLossless,
                         ::testing::Range<std::uint64_t>(2000, 2012));

// ------------------------------------------------- viewer/overlay fuzz

/// Applies the same random operation sequence to a Gear viewer (index +
/// diff) and to an Overlay2 mount over the equivalent plain tree, then
/// checks that both expose identical views.
class ViewerOverlayEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewerOverlayEquivalence, FuzzedOpsAgree) {
  std::uint64_t seed = GetParam();
  vfs::FileTree root = gear::testing::random_tree(seed, 30);

  // Gear side: index with stubs + pool.
  std::map<Fingerprint, Bytes> pool;
  GearIndex index = GearIndex::from_root_fs(
      root, [&pool](const std::string&, const Bytes& content) {
        Fingerprint fp = default_hasher().fingerprint(content);
        pool[fp] = content;
        return fp;
      });
  vfs::FileTree index_tree = std::move(index.tree());
  vfs::FileTree diff_tree;
  GearFileViewer viewer(index_tree, diff_tree,
                        [&pool](const std::string&, const Fingerprint& fp,
                                std::uint64_t) {
                          return pool.at(fp);
                        });

  // Reference side: overlay over the plain root.
  docker::OverlayMount overlay({&root});

  // Collect candidate paths.
  std::vector<std::string> paths;
  root.walk([&paths](const std::string& p, const vfs::FileNode&) {
    paths.push_back(p);
  });

  Rng rng(seed * 31 + 5);
  for (int op = 0; op < 120; ++op) {
    double roll = rng.next_double();
    const std::string& target = paths[rng.next_below(paths.size())];
    if (roll < 0.45) {
      // Read through both; must agree in kind and content.
      StatusOr<Bytes> a = viewer.read_file(target);
      StatusOr<Bytes> b = overlay.read_file(target);
      ASSERT_EQ(a.ok(), b.ok()) << target;
      if (a.ok()) {
        EXPECT_EQ(*a, *b) << target;
      }
    } else if (roll < 0.7) {
      Bytes content = rng.next_bytes(rng.next_range(1, 256), 0.4);
      bool viewer_ok = true, overlay_ok = true;
      try {
        viewer.write_file(target, content);
      } catch (const Error&) {
        viewer_ok = false;
      }
      try {
        overlay.write_file(target, content);
      } catch (const Error&) {
        overlay_ok = false;
      }
      EXPECT_EQ(viewer_ok, overlay_ok) << target;
    } else if (roll < 0.9) {
      EXPECT_EQ(viewer.remove(target), overlay.remove(target)) << target;
    } else {
      // Listing comparison on a random directory.
      bool viewer_threw = false, overlay_threw = false;
      std::vector<std::string> lv, lo;
      try {
        lv = viewer.list_dir(target);
      } catch (const Error&) {
        viewer_threw = true;
      }
      try {
        lo = overlay.list_dir(target);
      } catch (const Error&) {
        overlay_threw = true;
      }
      ASSERT_EQ(viewer_threw, overlay_threw) << target;
      if (!viewer_threw) {
        EXPECT_EQ(lv, lo) << target;
      }
    }
  }

  // Final sweep: every original path agrees on existence and content.
  for (const std::string& p : paths) {
    ASSERT_EQ(viewer.exists(p), overlay.exists(p)) << p;
    StatusOr<Bytes> a = viewer.read_file(p);
    StatusOr<Bytes> b = overlay.read_file(p);
    ASSERT_EQ(a.ok(), b.ok()) << p;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewerOverlayEquivalence,
                         ::testing::Range<std::uint64_t>(3000, 3016));

// ------------------------------------------------------- commit compose

class CommitCompose : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommitCompose, DeployOfCommitSeesContainerView) {
  std::uint64_t seed = GetParam();
  docker::Image image = random_image(seed, 30, 2);

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  ConversionResult conv = GearConverter().convert(image);
  push_gear_image(conv.image, index_registry, file_registry);

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, file_registry, link, disk);
  std::string ref = image.manifest.reference();
  client.pull(ref);
  std::string container = client.store().create_container(ref);
  GearFileViewer viewer = client.open_viewer(container);

  // Random mutations in the container.
  Rng rng(seed + 77);
  vfs::FileTree expected = image.flatten();
  std::vector<std::string> files;
  expected.walk([&files](const std::string& p, const vfs::FileNode& n) {
    if (n.is_regular()) files.push_back(p);
  });
  for (int i = 0; i < 10; ++i) {
    double roll = rng.next_double();
    if (roll < 0.5) {
      std::string path = "newdir/file" + std::to_string(i);
      Bytes content = rng.next_bytes(rng.next_range(1, 300), 0.4);
      viewer.write_file(path, content);
      expected.add_file(path, content);
    } else if (!files.empty()) {
      std::size_t idx = rng.next_below(files.size());
      viewer.remove(files[idx]);
      expected.remove(files[idx]);
      files.erase(files.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }

  CommitResult commit = GearCommitter().commit(
      client.store().index_tree(ref), viewer.diff(), {}, "committed", "v2");
  push_gear_image(commit.image, index_registry, file_registry);

  client.pull("committed:v2");
  std::string c2 = client.store().create_container("committed:v2");
  GearFileViewer v2 = client.open_viewer(c2);

  expected.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular()) {
      EXPECT_EQ(v2.read_file(path).value(), node.content()) << path;
    } else if (node.is_symlink()) {
      EXPECT_EQ(v2.read_symlink(path).value(), node.link_target()) << path;
    }
  });
  // Nothing extra: removed files stay gone.
  for (const auto& stub : commit.image.index.stubs()) {
    EXPECT_NE(expected.lookup(stub.path), nullptr) << stub.path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommitCompose,
                         ::testing::Range<std::uint64_t>(4000, 4010));

// ---------------------------------------------------- failure injection

TEST(FailureInjection, CorruptLayerBlobDetectedOnPull) {
  docker::Image image = random_image(5000, 20, 2);
  docker::DockerRegistry registry;
  registry.push_image(image);

  // Corrupt one blob in place (simulate bit rot) by re-inserting garbage
  // under the original digest via a hostile registry replica.
  class HostileRegistry : public docker::DockerRegistry {};
  // put_blob validates digests, so emulate transport corruption instead:
  // a client that receives flipped bytes must reject them.
  Bytes blob = registry.get_blob(image.manifest.layers[0].digest).value();
  blob[blob.size() / 2] ^= 0xff;
  EXPECT_THROW(docker::Layer::from_blob(std::move(blob),
                                        image.manifest.layers[0].digest),
               Error);
}

TEST(FailureInjection, GearFileSizeMismatchDetected) {
  docker::Image image = random_image(5001, 10, 1);
  ConversionResult conv = GearConverter().convert(image);

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  push_gear_image(conv.image, index_registry, file_registry);

  // Tamper: upload different content under a fingerprint the index uses by
  // building a hostile registry where one object is swapped.
  GearRegistry hostile;
  bool first = true;
  for (const auto& [fp, content] : conv.image.files) {
    if (first && content.size() > 1) {
      Bytes other = content;
      other.pop_back();  // wrong size: must be caught at materialization
      hostile.upload(fp, other);
      first = false;
    } else {
      hostile.upload(fp, content);
    }
  }

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, hostile, link, disk);
  std::string ref = image.manifest.reference();

  workload::AccessSet everything;
  image.flatten().walk([&](const std::string& p, const vfs::FileNode& n) {
    if (n.is_regular()) {
      everything.files.push_back(
          {p, n.content().size(), default_hasher().fingerprint(n.content())});
    }
  });
  EXPECT_THROW(client.deploy(ref, everything), Error);
}

TEST(FailureInjection, MissingGearFileSurfacesNotFound) {
  docker::Image image = random_image(5002, 8, 1);
  ConversionResult conv = GearConverter().convert(image);
  docker::DockerRegistry index_registry;
  GearRegistry empty_files;  // index pushed, files "lost"
  index_registry.push_image(conv.image.index_image);

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, empty_files, link, disk);
  client.pull(image.manifest.reference());
  std::string container =
      client.store().create_container(image.manifest.reference());
  GearFileViewer viewer = client.open_viewer(container);

  bool threw = false;
  image.flatten().walk([&](const std::string& p, const vfs::FileNode& n) {
    if (!n.is_regular() || threw) return;
    try {
      viewer.read_file(p).value();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kNotFound);
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(FailureInjection, TruncatedIndexLayerRejected) {
  docker::Image image = random_image(5003, 10, 1);
  ConversionResult conv = GearConverter().convert(image);
  Bytes blob = conv.image.index_image.layers[0].blob();
  blob.resize(blob.size() / 2);
  EXPECT_THROW(
      {
        docker::Layer layer = docker::Layer::from_blob(std::move(blob));
        GearIndex::from_wire_tree(layer.to_tree());
      },
      Error);
}

}  // namespace
}  // namespace gear
