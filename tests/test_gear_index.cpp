// Unit tests for the Gear index: stub encoding, wire form, Docker transport.
#include <gtest/gtest.h>

#include "docker/layer.hpp"
#include "gear/index.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace gear {
namespace {

GearIndex index_of(const vfs::FileTree& root) {
  return GearIndex::from_root_fs(
      root, [](const std::string&, const Bytes& content) {
        return default_hasher().fingerprint(content);
      });
}

TEST(GearIndex, ReplacesRegularFilesWithStubs) {
  vfs::FileTree root = gear::testing::sample_tree();
  GearIndex index = index_of(root);

  vfs::TreeStats s = index.tree().stats();
  EXPECT_EQ(s.regular_files, 0u);
  EXPECT_EQ(s.fingerprint_stubs, 4u);
  EXPECT_EQ(s.symlinks, 1u);
  // Logical size preserved.
  EXPECT_EQ(index.referenced_bytes(), root.stats().total_file_bytes);
}

TEST(GearIndex, StubsCarryCorrectFingerprints) {
  vfs::FileTree root = gear::testing::sample_tree();
  GearIndex index = index_of(root);
  for (const auto& stub : index.stubs()) {
    const vfs::FileNode* orig = root.lookup(stub.path);
    ASSERT_NE(orig, nullptr) << stub.path;
    EXPECT_EQ(stub.fingerprint,
              default_hasher().fingerprint(orig->content()));
    EXPECT_EQ(stub.size, orig->content().size());
  }
}

TEST(GearIndex, PreservesMetadataAndStructure) {
  vfs::FileTree root;
  vfs::Metadata m{0750, 5, 6, 777};
  root.add_file("srv/app.bin", to_bytes("binary"), m);
  root.add_directory("srv/data", vfs::Metadata{0700, 5, 6, 778});
  GearIndex index = index_of(root);
  const vfs::FileNode* stub = index.tree().lookup("srv/app.bin");
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->metadata().mode, 0750u);
  EXPECT_EQ(stub->metadata().mtime, 777u);
  EXPECT_EQ(index.tree().lookup("srv/data")->metadata().mode, 0700u);
}

TEST(GearIndex, DistinctFingerprintsDeduplicated) {
  vfs::FileTree root;
  root.add_file("a", to_bytes("same"));
  root.add_file("b", to_bytes("same"));
  root.add_file("c", to_bytes("different"));
  GearIndex index = index_of(root);
  EXPECT_EQ(index.stubs().size(), 3u);
  EXPECT_EQ(index.distinct_fingerprints().size(), 2u);
}

TEST(GearIndex, RejectsTreesWithWhiteouts) {
  vfs::FileTree bad;
  bad.add_whiteout("w");
  EXPECT_THROW(index_of(bad), Error);
}

TEST(GearIndex, ConstructorRejectsRegularFiles) {
  vfs::FileTree t;
  t.add_file("f", to_bytes("x"));
  EXPECT_THROW(GearIndex{std::move(t)}, Error);
}

// ------------------------------------------------------------- stub codec

TEST(GearStub, EncodeDecodeRoundTrip) {
  Fingerprint fp = default_hasher().fingerprint(to_bytes("content"));
  std::string encoded = GearIndex::encode_stub(fp, 123456);
  Fingerprint out_fp;
  std::uint64_t out_size = 0;
  ASSERT_TRUE(GearIndex::decode_stub(to_bytes(encoded), &out_fp, &out_size));
  EXPECT_EQ(out_fp, fp);
  EXPECT_EQ(out_size, 123456u);
}

TEST(GearStub, DecodeRejectsNonStubs) {
  Fingerprint fp;
  std::uint64_t size = 0;
  EXPECT_FALSE(GearIndex::decode_stub(to_bytes("just a file"), &fp, &size));
  EXPECT_FALSE(GearIndex::decode_stub(to_bytes(""), &fp, &size));
  EXPECT_FALSE(GearIndex::decode_stub(to_bytes("GEARFP1:tooshort"), &fp, &size));
  EXPECT_FALSE(GearIndex::decode_stub(
      to_bytes("GEARFP1:zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz:10\n"), &fp, &size));
  EXPECT_FALSE(GearIndex::decode_stub(
      to_bytes(std::string("GEARFP1:") + std::string(32, 'a') + ":abc\n"),
      &fp, &size));
}

TEST(GearStub, StubIsTiny) {
  Fingerprint fp = default_hasher().fingerprint(to_bytes("x"));
  // The whole point: a multi-megabyte file becomes a <64-byte index entry.
  EXPECT_LT(GearIndex::encode_stub(fp, 50'000'000).size(), 64u);
}

// --------------------------------------------------------------- wire form

TEST(GearIndexWire, RoundTrip) {
  GearIndex index = index_of(gear::testing::random_tree(77, 30));
  vfs::FileTree wire = index.to_wire_tree();
  // Wire form has only regular stub files, dirs, symlinks.
  wire.walk([](const std::string&, const vfs::FileNode& node) {
    EXPECT_TRUE(node.is_regular() || node.is_directory() || node.is_symlink());
  });
  GearIndex back = GearIndex::from_wire_tree(wire);
  EXPECT_TRUE(back.tree().equals(index.tree()));
}

TEST(GearIndexWire, SurvivesDockerLayerTransport) {
  // Index -> wire tree -> tar -> compress -> digest -> back: the full
  // Docker-compatible journey of §III-C.
  GearIndex index = index_of(gear::testing::sample_tree());
  docker::Layer layer = docker::Layer::from_tree(index.to_wire_tree());
  GearIndex back = GearIndex::from_wire_tree(layer.to_tree());
  EXPECT_TRUE(back.tree().equals(index.tree()));
}

TEST(GearIndexWire, WireIsSmallComparedToImage) {
  vfs::FileTree root = gear::testing::random_tree(88, 60, 64 * 1024);
  GearIndex index = index_of(root);
  docker::Layer layer = docker::Layer::from_tree(index.to_wire_tree());
  // Paper: indexes average ~0.53 MB for multi-hundred-MB images (~1%).
  EXPECT_LT(layer.compressed_size() * 10, root.stats().total_file_bytes);
}

TEST(GearIndexWire, NonStubRegularFileRejected) {
  vfs::FileTree wire;
  wire.add_file("normal.txt", to_bytes("not a stub"));
  EXPECT_THROW(GearIndex::from_wire_tree(wire), Error);
}

TEST(GearIndexWire, ReindexingIndexIsIdentity) {
  GearIndex index = index_of(gear::testing::sample_tree());
  GearIndex again = GearIndex::from_root_fs(
      index.tree(), [](const std::string&, const Bytes& content) {
        return default_hasher().fingerprint(content);
      });
  EXPECT_TRUE(again.tree().equals(index.tree()));
}

}  // namespace
}  // namespace gear
