// Tests for the pluggable registry storage engine: ObjectStore backends
// (in-memory and durable on-disk), crash recovery on reopen, wire-served
// restart without re-push, and the sharded concurrent registry. The
// ConcurrentRegistry* suites also run under TSAN in CI.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "compress/codec.hpp"
#include "gear/object_store.hpp"
#include "gear/registry.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gear {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(std::string tag) {
  for (char& c : tag) {
    if (c == '/') c = '_';
  }
  fs::path p = fs::path(::testing::TempDir()) /
               ("gear_objstore_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

std::string current_test_tag() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(info->test_suite_name()) + "_" + info->name();
}

Fingerprint fp_of(BytesView content) {
  return default_hasher().fingerprint(content);
}

/// Mixed-compressibility corpus, deterministic per seed.
std::vector<Bytes> make_corpus(std::uint64_t seed, int n,
                               std::uint64_t max_size = 4096) {
  Rng rng(seed);
  std::vector<Bytes> corpus;
  corpus.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    corpus.push_back(
        rng.next_bytes(rng.next_range(1, max_size), rng.next_double()));
  }
  return corpus;
}

// ------------------------------------------------- backend-parametrized

enum class Backend { kMemory, kDisk };

class RegistryBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<ObjectStore> make_backend() {
    if (GetParam() == Backend::kMemory) {
      return std::make_unique<MemoryObjectStore>();
    }
    if (dir_.empty()) dir_ = fresh_dir(current_test_tag());
    return std::make_unique<DiskObjectStore>(dir_);
  }

  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  fs::path dir_;
};

INSTANTIATE_TEST_SUITE_P(Backends, RegistryBackendTest,
                         ::testing::Values(Backend::kMemory, Backend::kDisk),
                         [](const auto& info) {
                           return info.param == Backend::kMemory ? "memory"
                                                                 : "disk";
                         });

TEST_P(RegistryBackendTest, UploadQueryDownloadAndStats) {
  GearRegistry reg(make_backend());
  Bytes a = to_bytes("alpha content"), b = to_bytes(std::string(3000, 'b'));
  Fingerprint fa = fp_of(a), fb = fp_of(b);

  EXPECT_FALSE(reg.query(fa));
  EXPECT_TRUE(reg.upload(fa, a));
  EXPECT_TRUE(reg.upload(fb, b));
  EXPECT_FALSE(reg.upload(fa, a));  // dedup
  EXPECT_TRUE(reg.query(fa));
  EXPECT_TRUE(reg.query(fb));

  EXPECT_EQ(reg.download(fa).value(), a);
  EXPECT_EQ(reg.download(fb).value(), b);
  EXPECT_EQ(reg.download_compressed(fa).value(), compress(a));

  EXPECT_EQ(reg.stats().uploads_accepted, 2u);
  EXPECT_EQ(reg.stats().uploads_deduplicated, 1u);
  EXPECT_EQ(reg.stats().downloads, 3u);  // two downloads + one compressed
  EXPECT_EQ(reg.stats().queries, 3u);
  EXPECT_EQ(reg.object_count(), 2u);
  EXPECT_EQ(reg.storage_bytes(), compress(a).size() + compress(b).size());
  EXPECT_EQ(reg.stored_size(fa).value(), compress(a).size());
}

TEST_P(RegistryBackendTest, NotFoundErrorsNameTheFingerprintHex) {
  GearRegistry reg(make_backend());
  Fingerprint missing = fp_of(to_bytes("never uploaded"));

  StatusOr<Bytes> dl = reg.download(missing);
  ASSERT_FALSE(dl.ok());
  EXPECT_EQ(dl.code(), ErrorCode::kNotFound);
  EXPECT_NE(dl.message().find(missing.hex()), std::string::npos)
      << dl.message();

  StatusOr<ChunkManifest> cm = reg.chunk_manifest(missing);
  ASSERT_FALSE(cm.ok());
  EXPECT_EQ(cm.code(), ErrorCode::kNotFound);
  EXPECT_NE(cm.message().find(missing.hex()), std::string::npos)
      << cm.message();

  StatusOr<std::vector<Bytes>> batch = reg.download_batch({missing});
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.message().find(missing.hex()), std::string::npos)
      << batch.message();
}

TEST_P(RegistryBackendTest, ChunkedRoundTrip) {
  GearRegistry reg(make_backend());
  ChunkPolicy policy;
  policy.threshold_bytes = 1024;
  policy.chunk_bytes = 1024;

  Rng rng(7);
  Bytes big = rng.next_bytes(10 * 1024 + 37, 0.5);
  Fingerprint fp = fp_of(big);

  EXPECT_TRUE(reg.upload_chunked(fp, big, policy));
  EXPECT_TRUE(reg.is_chunked(fp));
  EXPECT_FALSE(reg.upload_chunked(fp, big, policy));  // dedup
  EXPECT_EQ(reg.download(fp).value(), big);

  // Ranged read crosses chunk boundaries.
  Bytes range = reg.download_range(fp, 1000, 2000).value();
  EXPECT_EQ(range, Bytes(big.begin() + 1000, big.begin() + 3000));

  // stored_size = manifest + all chunk frames; matches storage accounting.
  ChunkManifest manifest = reg.chunk_manifest(fp).value();
  EXPECT_EQ(manifest.file_size, big.size());
  EXPECT_GT(manifest.chunks.size(), 1u);
  EXPECT_EQ(reg.stored_size(fp).value(), reg.storage_bytes());
}

TEST_P(RegistryBackendTest, RemoveFreesStorage) {
  GearRegistry reg(make_backend());
  Bytes content = to_bytes(std::string(500, 'r'));
  Fingerprint fp = fp_of(content);
  reg.upload(fp, content);
  std::uint64_t held = reg.storage_bytes();
  EXPECT_GT(held, 0u);
  EXPECT_EQ(reg.remove(fp), held);
  EXPECT_EQ(reg.storage_bytes(), 0u);
  EXPECT_EQ(reg.object_count(), 0u);
  EXPECT_EQ(reg.remove(fp), 0u);
}

// Identical workload on both backends must produce identical accounting:
// same stored_bytes, same object counts, same stats, same wire frames.
TEST(ObjectStoreParity, BackendsAreAccountingIdentical) {
  fs::path dir = fresh_dir("parity");
  GearRegistry mem;  // default MemoryObjectStore
  GearRegistry disk(std::make_unique<DiskObjectStore>(dir));

  ChunkPolicy policy;
  policy.threshold_bytes = 2048;
  policy.chunk_bytes = 1024;
  std::vector<Bytes> corpus = make_corpus(11, 40, 6000);

  for (GearRegistry* reg : {&mem, &disk}) {
    for (const Bytes& content : corpus) {
      reg->upload_chunked(fp_of(content), content, policy);
    }
  }

  EXPECT_EQ(mem.storage_bytes(), disk.storage_bytes());
  EXPECT_EQ(mem.object_count(), disk.object_count());
  EXPECT_EQ(mem.stats().uploads_accepted, disk.stats().uploads_accepted);
  EXPECT_EQ(mem.stats().uploads_deduplicated,
            disk.stats().uploads_deduplicated);
  for (const Bytes& content : corpus) {
    Fingerprint fp = fp_of(content);
    EXPECT_EQ(mem.download(fp).value(), disk.download(fp).value());
    EXPECT_EQ(mem.download_compressed(fp).value(),
              disk.download_compressed(fp).value());
    EXPECT_EQ(mem.stored_size(fp).value(), disk.stored_size(fp).value());
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------ durability

TEST(DiskObjectStore, ReopenServesEverythingWithNoReupload) {
  fs::path dir = fresh_dir("reopen");
  ChunkPolicy policy;
  policy.threshold_bytes = 2048;
  policy.chunk_bytes = 1024;
  std::vector<Bytes> corpus = make_corpus(23, 25, 5000);

  std::uint64_t stored_before = 0;
  {
    GearRegistry reg(std::make_unique<DiskObjectStore>(dir));
    for (const Bytes& content : corpus) {
      reg.upload_chunked(fp_of(content), content, policy);
    }
    stored_before = reg.storage_bytes();
  }  // "crash-free shutdown": registry destroyed, files remain

  GearRegistry reopened(std::make_unique<DiskObjectStore>(dir));
  EXPECT_EQ(reopened.storage_bytes(), stored_before);
  for (const Bytes& content : corpus) {
    Fingerprint fp = fp_of(content);
    EXPECT_TRUE(reopened.query(fp));
    EXPECT_EQ(reopened.download(fp).value(), content);
    // Re-pushing after restart uploads nothing.
    EXPECT_FALSE(reopened.upload_chunked(fp, content, policy));
  }
  EXPECT_EQ(reopened.stats().uploads_accepted, 0u);
  EXPECT_EQ(reopened.stats().uploads_deduplicated, corpus.size());
  fs::remove_all(dir);
}

TEST(DiskObjectStore, CrashMidUploadTornTempsAreIgnoredAndReaped) {
  fs::path dir = fresh_dir("torn");
  Bytes ok1 = to_bytes("survived the crash");
  Bytes ok2 = to_bytes(std::string(4000, 'z'));
  {
    GearRegistry reg(std::make_unique<DiskObjectStore>(dir));
    reg.upload(fp_of(ok1), ok1);
    reg.upload(fp_of(ok2), ok2);
  }
  // Simulate a crash mid-write: torn temps next to the valid objects, in
  // both namespaces.
  const std::string torn_hex = "deadbeefdeadbeefdeadbeefdeadbeef";
  std::ofstream(dir / "objects" / (torn_hex + ".tmp")) << "torn prefix";
  std::ofstream(dir / "chunked" / (torn_hex + ".gcm.tmp")) << "torn";

  auto store = std::make_unique<DiskObjectStore>(dir);
  EXPECT_EQ(store->reaped_temps(), 2u);
  EXPECT_FALSE(fs::exists(dir / "objects" / (torn_hex + ".tmp")));
  EXPECT_FALSE(fs::exists(dir / "chunked" / (torn_hex + ".gcm.tmp")));

  GearRegistry reg(std::move(store));
  EXPECT_FALSE(reg.query(Fingerprint::from_hex(torn_hex)));
  EXPECT_EQ(reg.download(fp_of(ok1)).value(), ok1);
  EXPECT_EQ(reg.download(fp_of(ok2)).value(), ok2);
  EXPECT_EQ(reg.object_count(), 2u);
  fs::remove_all(dir);
}

// Push to a wire-served registry over a DiskObjectStore, tear the whole
// server down, bring up a new server over the same directory, and deploy:
// every object is already there (zero re-uploads) and downloads are
// byte-identical. The acceptance scenario for the storage engine.
TEST(DiskObjectStore, WireServedRegistrySurvivesRestart) {
  fs::path dir = fresh_dir("wire_restart");
  std::vector<Bytes> corpus = make_corpus(31, 20, 4000);
  std::vector<Fingerprint> fps;
  for (const Bytes& content : corpus) fps.push_back(fp_of(content));

  {
    net::LoopbackTransport server(std::make_unique<DiskObjectStore>(dir));
    net::RemoteGearRegistry client(server);
    std::vector<std::pair<Fingerprint, Bytes>> batch;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      batch.emplace_back(fps[i], compress(corpus[i]));
    }
    EXPECT_EQ(client.upload_precompressed_batch(std::move(batch)),
              corpus.size());
  }  // server process "dies"

  net::LoopbackTransport server2(std::make_unique<DiskObjectStore>(dir));
  net::RemoteGearRegistry client2(server2);

  std::vector<std::uint8_t> present = client2.query_many(fps);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    EXPECT_TRUE(present[i]) << fps[i].hex();
  }
  // A re-push finds everything already stored: zero re-uploads.
  std::vector<std::pair<Fingerprint, Bytes>> repush;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    repush.emplace_back(fps[i], compress(corpus[i]));
  }
  EXPECT_EQ(client2.upload_precompressed_batch(std::move(repush)), 0u);
  EXPECT_EQ(server2.registry().stats().uploads_accepted, 0u);

  std::vector<Bytes> downloaded = client2.download_batch(fps).value();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(downloaded[i], corpus[i]) << fps[i].hex();
  }
  fs::remove_all(dir);
}

// ----------------------------------------------------------- concurrency
//
// These suites run under TSAN in CI (test filter *ConcurrentRegistry*).

class ConcurrentRegistryTest : public RegistryBackendTest {};

INSTANTIATE_TEST_SUITE_P(Backends, ConcurrentRegistryTest,
                         ::testing::Values(Backend::kMemory, Backend::kDisk),
                         [](const auto& info) {
                           return info.param == Backend::kMemory ? "memory"
                                                                 : "disk";
                         });

TEST_P(ConcurrentRegistryTest, ConcurrentBatchDownloadsMatchSerial) {
  GearRegistry reg(make_backend());
  ChunkPolicy policy;
  policy.threshold_bytes = 2048;
  policy.chunk_bytes = 1024;
  std::vector<Bytes> corpus = make_corpus(47, 48, 4000);
  std::vector<Fingerprint> fps;
  for (const Bytes& content : corpus) {
    fps.push_back(fp_of(content));
    reg.upload_chunked(fps.back(), content, policy);
  }

  std::uint64_t serial_wire = 0;
  std::vector<Bytes> serial =
      reg.download_batch(fps, nullptr, &serial_wire).value();
  const std::uint64_t downloads_after_serial = reg.stats().downloads;

  constexpr int kClients = 4;
  std::vector<std::vector<Bytes>> results(kClients);
  std::vector<std::uint64_t> wires(kClients, 0);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        results[static_cast<std::size_t>(c)] =
            reg.download_batch(fps, nullptr,
                               &wires[static_cast<std::size_t>(c)])
                .value();
      });
    }
    for (std::thread& t : clients) t.join();
  }

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(results[static_cast<std::size_t>(c)], serial) << "client " << c;
    EXPECT_EQ(wires[static_cast<std::size_t>(c)], serial_wire);
  }
  // Stats totals are deterministic: each batch counts one download per item.
  EXPECT_EQ(reg.stats().downloads,
            downloads_after_serial + kClients * fps.size());
}

TEST_P(ConcurrentRegistryTest, ConcurrentUploadsAreLinearizablePerFp) {
  GearRegistry reg(make_backend());
  std::vector<Bytes> corpus = make_corpus(59, 32, 3000);

  // Every thread pushes the full overlapping corpus: exactly one accept per
  // fingerprint, everything else dedups, never a torn or doubled object.
  constexpr int kThreads = 4;
  {
    std::vector<std::thread> uploaders;
    uploaders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      uploaders.emplace_back([&, t] {
        // Different arrival order per thread stresses shard-lock ordering.
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          std::size_t at = (i * 7 + static_cast<std::size_t>(t) * 13) %
                           corpus.size();
          reg.upload(fp_of(corpus[at]), corpus[at]);
        }
      });
    }
    for (std::thread& t : uploaders) t.join();
  }

  EXPECT_EQ(reg.stats().uploads_accepted, corpus.size());
  EXPECT_EQ(reg.stats().uploads_deduplicated,
            (kThreads - 1) * corpus.size());
  EXPECT_EQ(reg.object_count(), corpus.size());
  std::uint64_t expected_bytes = 0;
  for (const Bytes& content : corpus) {
    EXPECT_EQ(reg.download(fp_of(content)).value(), content);
    expected_bytes += compress(content).size();
  }
  EXPECT_EQ(reg.storage_bytes(), expected_bytes);
}

TEST_P(ConcurrentRegistryTest, ReadersOverlapWithWriters) {
  GearRegistry reg(make_backend());
  std::vector<Bytes> preloaded = make_corpus(67, 24, 3000);
  std::vector<Fingerprint> fps;
  for (const Bytes& content : preloaded) {
    fps.push_back(fp_of(content));
    reg.upload(fps.back(), content);
  }
  std::vector<Bytes> incoming = make_corpus(71, 64, 2000);

  std::thread writer([&] {
    for (const Bytes& content : incoming) {
      reg.upload(fp_of(content), content);
    }
  });
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::vector<std::vector<Bytes>> results(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int round = 0; round < 4; ++round) {
        results[static_cast<std::size_t>(r)] =
            reg.download_batch(fps).value();
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), preloaded.size());
    for (std::size_t i = 0; i < preloaded.size(); ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)][i], preloaded[i]);
    }
  }
  for (const Bytes& content : incoming) {
    EXPECT_EQ(reg.download(fp_of(content)).value(), content);
  }
}

TEST_P(ConcurrentRegistryTest, ConcurrentWireClientsMatchSerial) {
  std::unique_ptr<ObjectStore> backend = make_backend();
  net::LoopbackTransport server(std::move(backend));

  std::vector<Bytes> corpus = make_corpus(83, 32, 3000);
  std::vector<Fingerprint> fps;
  {
    net::RemoteGearRegistry pusher(server);
    std::vector<std::pair<Fingerprint, Bytes>> batch;
    for (const Bytes& content : corpus) {
      fps.push_back(fp_of(content));
      batch.emplace_back(fps.back(), compress(content));
    }
    ASSERT_EQ(pusher.upload_precompressed_batch(std::move(batch)),
              corpus.size());
  }

  net::RemoteGearRegistry serial_client(server);
  std::vector<Bytes> serial = serial_client.download_batch(fps).value();

  constexpr int kClients = 4;
  std::vector<std::vector<Bytes>> results(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        net::RemoteGearRegistry client(server);
        results[static_cast<std::size_t>(c)] =
            client.download_batch(fps).value();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(results[static_cast<std::size_t>(c)], serial) << "client " << c;
  }
  // Each download_batch is one round trip serving |fps| items.
  EXPECT_EQ(server.server_stats().download_round_trips, 1u + kClients);
  EXPECT_EQ(server.server_stats().download_items, (1u + kClients) * fps.size());
}

}  // namespace
}  // namespace gear
