// Tests for the wire protocol, transports, fault injection, and the remote
// registry stub.
#include <gtest/gtest.h>

#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear::net {
namespace {

Fingerprint fp_of(const std::string& s) {
  return default_hasher().fingerprint(to_bytes(s));
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // Classic check value for "123456789".
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  Bytes data = rng.next_bytes(10000, 0.3);
  std::uint32_t whole = crc32(data);
  std::uint32_t split = crc32_update(
      crc32(BytesView(data.data(), 3000)),
      BytesView(data.data() + 3000, data.size() - 3000));
  EXPECT_EQ(whole, split);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(2);
  Bytes data = rng.next_bytes(500);
  std::uint32_t original = crc32(data);
  data[250] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

// ----------------------------------------------------------------- wire

TEST(Wire, RoundTripAllTypes) {
  for (MessageType type :
       {MessageType::kQueryRequest, MessageType::kQueryResponse,
        MessageType::kUploadRequest, MessageType::kUploadResponse,
        MessageType::kDownloadRequest, MessageType::kDownloadResponse}) {
    WireMessage m;
    m.type = type;
    m.status = Status::kExists;
    m.fp = fp_of("content");
    m.payload = to_bytes("payload-bytes");
    StatusOr<WireMessage> back = decode_message(encode_message(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
}

TEST(Wire, EmptyPayload) {
  WireMessage m;
  m.type = MessageType::kQueryRequest;
  m.fp = fp_of("x");
  StatusOr<WireMessage> back = decode_message(encode_message(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Wire, EveryByteFlipDetected) {
  WireMessage m;
  m.type = MessageType::kDownloadResponse;
  m.fp = fp_of("y");
  m.payload = to_bytes("some payload to protect");
  Bytes frame = encode_message(m);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes bad = frame;
    bad[i] ^= 0xFF;
    StatusOr<WireMessage> decoded = decode_message(bad);
    // Either rejected outright, or (flip inside the CRC field of an
    // all-zero...) — no: any single-byte flip must fail CRC or magic.
    EXPECT_FALSE(decoded.ok()) << "flip at " << i;
  }
}

TEST(Wire, TruncationAndGarbageRejected) {
  WireMessage m;
  m.type = MessageType::kUploadRequest;
  m.fp = fp_of("z");
  m.payload = Bytes(100, 7);
  Bytes frame = encode_message(m);
  for (std::size_t len : {0ul, 4ul, 26ul, frame.size() - 1}) {
    EXPECT_FALSE(decode_message(BytesView(frame.data(), len)).ok()) << len;
  }
  Bytes padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(decode_message(padded).ok());
}

// ------------------------------------------------------------ transports

struct NetFixture : ::testing::Test {
  GearRegistry registry;
  LoopbackTransport loopback{registry};
};

TEST_F(NetFixture, LoopbackServesAllThreeInterfaces) {
  RemoteGearRegistry remote(loopback);
  Fingerprint fp = fp_of("hello");

  EXPECT_FALSE(remote.query(fp));
  EXPECT_TRUE(remote.upload(fp, to_bytes("hello")));
  EXPECT_FALSE(remote.upload(fp, to_bytes("hello")));  // deduplicated
  EXPECT_TRUE(remote.query(fp));
  EXPECT_EQ(to_string(remote.download(fp).value()), "hello");
  EXPECT_FALSE(remote.download(fp_of("missing")).ok());
  EXPECT_EQ(remote.stats().retries, 0u);
}

TEST_F(NetFixture, LoopbackChargesLink) {
  sim::SimClock clock;
  sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
  LoopbackTransport charged(registry, &link);
  RemoteGearRegistry remote(charged);
  Bytes content(10000, 'c');
  remote.upload(default_hasher().fingerprint(content), content);
  EXPECT_GT(link.stats().bytes_transferred, content.size());
  EXPECT_EQ(link.stats().requests, 2u);  // request + response frames
}

TEST_F(NetFixture, GarbageRequestGetsServerError) {
  Bytes garbage = to_bytes("not a frame at all");
  Bytes response_frame = loopback.round_trip(garbage);
  StatusOr<WireMessage> response = decode_message(response_frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, Status::kServerError);
}

TEST_F(NetFixture, TransientCorruptionRetriedTransparently) {
  // Every 2nd response is bit-flipped: each logical call needs one retry.
  FaultyTransport flaky(loopback, {FaultPlan::Kind::kFlipByte, 2}, 7);
  RemoteGearRegistry remote(flaky, /*max_attempts=*/4);
  Fingerprint fp = fp_of("resilient");
  EXPECT_TRUE(remote.upload(fp, to_bytes("resilient")));
  EXPECT_EQ(to_string(remote.download(fp).value()), "resilient");
  EXPECT_GT(remote.stats().retries, 0u);
  EXPECT_GT(flaky.faults_injected(), 0u);
}

TEST_F(NetFixture, TruncationAndDropsRetried) {
  for (FaultPlan::Kind kind :
       {FaultPlan::Kind::kTruncate, FaultPlan::Kind::kDrop}) {
    FaultyTransport flaky(loopback, {kind, 2}, 8);
    RemoteGearRegistry remote(flaky, 4);
    Fingerprint fp = fp_of("payload" + std::to_string(static_cast<int>(kind)));
    remote.upload(fp, to_bytes("payload"));
    EXPECT_TRUE(remote.query(fp));
  }
}

TEST_F(NetFixture, PersistentFailureSurfaces) {
  FaultyTransport dead(loopback, {FaultPlan::Kind::kDrop, 1}, 9);
  RemoteGearRegistry remote(dead, 3);
  EXPECT_THROW(remote.query(fp_of("anything")), Error);
  EXPECT_EQ(remote.stats().requests, 3u);
  EXPECT_EQ(remote.stats().retries, 2u);
}

TEST_F(NetFixture, LyingServerCaughtByContentVerification) {
  // Server stores wrong bytes under a fingerprint (passes CRC — the frame
  // is intact — but fails the end-to-end hash check).
  Fingerprint fp = fp_of("the-truth");
  registry.upload(fp, to_bytes("a lie"));
  RemoteGearRegistry remote(loopback, 2, /*verify_content=*/true);
  StatusOr<Bytes> got = remote.download(fp);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kCorruptData);
  EXPECT_GT(remote.stats().integrity_failures, 0u);

  // With verification off (collision-salted names), the payload passes.
  RemoteGearRegistry trusting(loopback, 2, /*verify_content=*/false);
  EXPECT_EQ(to_string(trusting.download(fp).value()), "a lie");
}

TEST_F(NetFixture, EndToEndThroughRemoteStub) {
  // A client-side flow: query-miss -> upload -> query-hit -> download, over
  // a flaky link, content verified.
  FaultyTransport flaky(loopback, {FaultPlan::Kind::kFlipByte, 3}, 10);
  RemoteGearRegistry remote(flaky, 5);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    Bytes content = rng.next_bytes(rng.next_range(1, 2000), 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    if (!remote.query(fp)) {
      remote.upload(fp, content);
    }
    EXPECT_EQ(remote.download(fp).value(), content);
  }
}

}  // namespace
}  // namespace gear::net
