// Tests for the wire protocol, transports, fault injection, and the remote
// registry stub.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear::net {
namespace {

Fingerprint fp_of(const std::string& s) {
  return default_hasher().fingerprint(to_bytes(s));
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // Classic check value for "123456789".
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  Bytes data = rng.next_bytes(10000, 0.3);
  std::uint32_t whole = crc32(data);
  std::uint32_t split = crc32_update(
      crc32(BytesView(data.data(), 3000)),
      BytesView(data.data() + 3000, data.size() - 3000));
  EXPECT_EQ(whole, split);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(2);
  Bytes data = rng.next_bytes(500);
  std::uint32_t original = crc32(data);
  data[250] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

// ----------------------------------------------------------------- wire

TEST(Wire, RoundTripAllTypes) {
  for (MessageType type :
       {MessageType::kQueryRequest, MessageType::kQueryResponse,
        MessageType::kUploadRequest, MessageType::kUploadResponse,
        MessageType::kDownloadRequest, MessageType::kDownloadResponse}) {
    WireMessage m;
    m.type = type;
    m.status = Status::kExists;
    m.fp = fp_of("content");
    m.payload = to_bytes("payload-bytes");
    StatusOr<WireMessage> back = decode_message(encode_message(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
}

TEST(Wire, EmptyPayload) {
  WireMessage m;
  m.type = MessageType::kQueryRequest;
  m.fp = fp_of("x");
  StatusOr<WireMessage> back = decode_message(encode_message(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Wire, EveryByteFlipDetected) {
  WireMessage m;
  m.type = MessageType::kDownloadResponse;
  m.fp = fp_of("y");
  m.payload = to_bytes("some payload to protect");
  Bytes frame = encode_message(m);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes bad = frame;
    bad[i] ^= 0xFF;
    StatusOr<WireMessage> decoded = decode_message(bad);
    // Either rejected outright, or (flip inside the CRC field of an
    // all-zero...) — no: any single-byte flip must fail CRC or magic.
    EXPECT_FALSE(decoded.ok()) << "flip at " << i;
  }
}

TEST(Wire, TruncationAndGarbageRejected) {
  WireMessage m;
  m.type = MessageType::kUploadRequest;
  m.fp = fp_of("z");
  m.payload = Bytes(100, 7);
  Bytes frame = encode_message(m);
  for (std::size_t len : {0ul, 4ul, 26ul, frame.size() - 1}) {
    EXPECT_FALSE(decode_message(BytesView(frame.data(), len)).ok()) << len;
  }
  Bytes padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(decode_message(padded).ok());
}

// ------------------------------------------------------------ transports

struct NetFixture : ::testing::Test {
  GearRegistry registry;
  LoopbackTransport loopback{registry};
};

TEST_F(NetFixture, LoopbackServesAllThreeInterfaces) {
  RemoteGearRegistry remote(loopback);
  Fingerprint fp = fp_of("hello");

  EXPECT_FALSE(remote.query(fp));
  EXPECT_TRUE(remote.upload(fp, to_bytes("hello")));
  EXPECT_FALSE(remote.upload(fp, to_bytes("hello")));  // deduplicated
  EXPECT_TRUE(remote.query(fp));
  EXPECT_EQ(to_string(remote.download(fp).value()), "hello");
  EXPECT_FALSE(remote.download(fp_of("missing")).ok());
  EXPECT_EQ(remote.stats().retries, 0u);
}

TEST_F(NetFixture, LoopbackChargesLink) {
  sim::SimClock clock;
  sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
  LoopbackTransport charged(registry, &link);
  RemoteGearRegistry remote(charged);
  Bytes content(10000, 'c');
  remote.upload(default_hasher().fingerprint(content), content);
  EXPECT_GT(link.stats().bytes_transferred, content.size());
  EXPECT_EQ(link.stats().requests, 2u);  // request + response frames
}

TEST_F(NetFixture, GarbageRequestGetsServerError) {
  Bytes garbage = to_bytes("not a frame at all");
  Bytes response_frame = loopback.round_trip(garbage);
  StatusOr<WireMessage> response = decode_message(response_frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, Status::kServerError);
}

TEST_F(NetFixture, TransientCorruptionRetriedTransparently) {
  // Every 2nd response is bit-flipped: each logical call needs one retry.
  FaultyTransport flaky(loopback, {FaultPlan::Kind::kFlipByte, 2}, 7);
  RemoteGearRegistry remote(flaky, /*max_attempts=*/4);
  Fingerprint fp = fp_of("resilient");
  EXPECT_TRUE(remote.upload(fp, to_bytes("resilient")));
  EXPECT_EQ(to_string(remote.download(fp).value()), "resilient");
  EXPECT_GT(remote.stats().retries, 0u);
  EXPECT_GT(flaky.faults_injected(), 0u);
}

TEST_F(NetFixture, TruncationAndDropsRetried) {
  for (FaultPlan::Kind kind :
       {FaultPlan::Kind::kTruncate, FaultPlan::Kind::kDrop}) {
    FaultyTransport flaky(loopback, {kind, 2}, 8);
    RemoteGearRegistry remote(flaky, 4);
    Fingerprint fp = fp_of("payload" + std::to_string(static_cast<int>(kind)));
    remote.upload(fp, to_bytes("payload"));
    EXPECT_TRUE(remote.query(fp));
  }
}

TEST_F(NetFixture, PersistentFailureSurfaces) {
  FaultyTransport dead(loopback, {FaultPlan::Kind::kDrop, 1}, 9);
  RemoteGearRegistry remote(dead, 3);
  EXPECT_THROW(remote.query(fp_of("anything")), Error);
  EXPECT_EQ(remote.stats().requests, 3u);
  EXPECT_EQ(remote.stats().retries, 2u);
}

TEST_F(NetFixture, LyingServerCaughtByContentVerification) {
  // Server stores wrong bytes under a fingerprint (passes CRC — the frame
  // is intact — but fails the end-to-end hash check).
  Fingerprint fp = fp_of("the-truth");
  registry.upload(fp, to_bytes("a lie"));
  RemoteGearRegistry remote(loopback, 2, /*verify_content=*/true);
  StatusOr<Bytes> got = remote.download(fp);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kCorruptData);
  EXPECT_GT(remote.stats().integrity_failures, 0u);

  // With verification off (collision-salted names), the payload passes.
  RemoteGearRegistry trusting(loopback, 2, /*verify_content=*/false);
  EXPECT_EQ(to_string(trusting.download(fp).value()), "a lie");
}

TEST_F(NetFixture, EndToEndThroughRemoteStub) {
  // A client-side flow: query-miss -> upload -> query-hit -> download, over
  // a flaky link, content verified.
  FaultyTransport flaky(loopback, {FaultPlan::Kind::kFlipByte, 3}, 10);
  RemoteGearRegistry remote(flaky, 5);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    Bytes content = rng.next_bytes(rng.next_range(1, 2000), 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    if (!remote.query(fp)) {
      remote.upload(fp, content);
    }
    EXPECT_EQ(remote.download(fp).value(), content);
  }
}

// ---------------------------------------------------------- batch wire

TEST(WireBatch, RoundTripAllBatchTypes) {
  for (MessageType type :
       {MessageType::kQueryManyRequest, MessageType::kQueryManyResponse,
        MessageType::kUploadManyRequest, MessageType::kUploadManyResponse,
        MessageType::kDownloadManyRequest,
        MessageType::kDownloadManyResponse}) {
    WireMessage m;
    m.type = type;
    m.fp = fp_of("batch");
    m.items.resize(3);
    m.items[0] = {fp_of("a"), Status::kOk, to_bytes("payload-a")};
    m.items[1] = {fp_of("b"), Status::kNotFound, {}};
    m.items[2] = {fp_of("c"), Status::kExists, Bytes(300, 9)};
    StatusOr<WireMessage> back = decode_message(encode_message(m));
    ASSERT_TRUE(back.ok()) << static_cast<int>(type);
    EXPECT_EQ(*back, m);
  }
}

TEST(WireBatch, EmptyItemListRoundTrips) {
  WireMessage m;
  m.type = MessageType::kDownloadManyRequest;
  StatusOr<WireMessage> back = decode_message(encode_message(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->items.empty());
}

TEST(WireBatch, ItemsOnNonBatchTypeNotEncoded) {
  // The legacy frame layout must stay byte-identical: a non-batch message
  // ignores (and does not transmit) any stray items.
  WireMessage with_items;
  with_items.type = MessageType::kQueryRequest;
  with_items.fp = fp_of("legacy");
  with_items.items.resize(2);
  WireMessage plain = with_items;
  plain.items.clear();
  EXPECT_EQ(encode_message(with_items), encode_message(plain));
}

TEST(WireBatch, EveryByteFlipDetected) {
  WireMessage m;
  m.type = MessageType::kDownloadManyResponse;
  m.items.resize(2);
  m.items[0] = {fp_of("p"), Status::kOk, to_bytes("first item bytes")};
  m.items[1] = {fp_of("q"), Status::kOk, to_bytes("second item bytes")};
  Bytes frame = encode_message(m);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes bad = frame;
    bad[i] ^= 0xFF;
    EXPECT_FALSE(decode_message(bad).ok()) << "flip at " << i;
  }
}

TEST(WireBatch, TruncationAndTrailingGarbageRejected) {
  WireMessage m;
  m.type = MessageType::kUploadManyRequest;
  m.items.resize(2);
  m.items[0] = {fp_of("t"), Status::kOk, Bytes(50, 3)};
  m.items[1] = {fp_of("u"), Status::kOk, Bytes(70, 4)};
  Bytes frame = encode_message(m);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_message(BytesView(frame.data(), len)).ok()) << len;
  }
  Bytes padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(decode_message(padded).ok());
}

// ------------------------------------------------------- batch transport

TEST_F(NetFixture, QueryManyAnswersInOneRoundTrip) {
  RemoteGearRegistry remote(loopback);
  registry.upload(fp_of("in-a"), to_bytes("in-a"));
  registry.upload(fp_of("in-b"), to_bytes("in-b"));
  std::vector<Fingerprint> fps = {fp_of("in-a"), fp_of("gone"), fp_of("in-b")};

  std::vector<std::uint8_t> present = remote.query_many(fps);
  ASSERT_EQ(present.size(), 3u);
  EXPECT_EQ(present[0], 1);
  EXPECT_EQ(present[1], 0);
  EXPECT_EQ(present[2], 1);
  EXPECT_EQ(loopback.server_stats().query_round_trips, 1u);
  EXPECT_EQ(loopback.server_stats().query_items, 3u);
  EXPECT_EQ(remote.stats().requests, 1u);
}

TEST_F(NetFixture, UploadBatchStoresExactlyWhatSerialUploadsWould) {
  GearRegistry serial_registry;
  std::vector<std::pair<Fingerprint, Bytes>> items;
  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    Bytes content = rng.next_bytes(rng.next_range(1, 3000), 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    serial_registry.upload(fp, content);
    items.emplace_back(fp, compress(content));
  }
  items.emplace_back(items.front());  // duplicate: server must dedup it

  RemoteGearRegistry remote(loopback);
  EXPECT_EQ(remote.upload_precompressed_batch(std::move(items)), 10u);
  EXPECT_EQ(loopback.server_stats().upload_round_trips, 1u);
  EXPECT_EQ(loopback.server_stats().upload_items, 11u);
  EXPECT_EQ(registry.storage_bytes(), serial_registry.storage_bytes());
  EXPECT_EQ(registry.object_count(), serial_registry.object_count());
  EXPECT_EQ(registry.stats().uploads_accepted, 10u);
  EXPECT_EQ(registry.stats().uploads_deduplicated, 1u);
}

TEST_F(NetFixture, DownloadBatchMovesStoredBytesInOneRoundTrip) {
  Rng rng(22);
  std::vector<Fingerprint> fps;
  std::vector<Bytes> originals;
  std::uint64_t stored_total = 0;
  for (int i = 0; i < 8; ++i) {
    Bytes content = rng.next_bytes(rng.next_range(1, 4000), 0.5);
    Fingerprint fp = default_hasher().fingerprint(content);
    registry.upload(fp, content);
    stored_total += registry.stored_size(fp).value();
    fps.push_back(fp);
    originals.push_back(std::move(content));
  }

  RemoteGearRegistry remote(loopback);
  std::uint64_t wire = 0;
  StatusOr<std::vector<Bytes>> got = remote.download_batch(fps, nullptr, &wire);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) EXPECT_EQ((*got)[i], originals[i]);
  // Wire accounting equals the in-process registry's: stored bytes move.
  EXPECT_EQ(wire, stored_total);
  EXPECT_EQ(loopback.server_stats().download_round_trips, 1u);
  EXPECT_EQ(loopback.server_stats().download_items, fps.size());
  EXPECT_EQ(remote.stats().requests, 1u);
  EXPECT_EQ(remote.stats().item_refetches, 0u);
}

TEST_F(NetFixture, DownloadBatchNotFoundNamesTheFingerprint) {
  registry.upload(fp_of("have"), to_bytes("have"));
  RemoteGearRegistry remote(loopback);
  Fingerprint absent = fp_of("absent-file");
  StatusOr<std::vector<Bytes>> got =
      remote.download_batch({fp_of("have"), absent});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kNotFound);
  EXPECT_NE(got.message().find(absent.hex()), std::string::npos)
      << got.message();
}

TEST_F(NetFixture, StoredSizeServedOverTheWire) {
  Bytes content(5000, 'q');
  Fingerprint fp = default_hasher().fingerprint(content);
  registry.upload(fp, content);
  RemoteGearRegistry remote(loopback);
  EXPECT_EQ(remote.stored_size(fp).value(), registry.stored_size(fp).value());
  EXPECT_EQ(remote.stored_size(fp_of("nope")).code(), ErrorCode::kNotFound);
}

TEST_F(NetFixture, DamagedBatchFrameRetriedWhole) {
  Rng rng(23);
  std::vector<Fingerprint> fps;
  std::vector<Bytes> originals;
  for (int i = 0; i < 6; ++i) {
    Bytes content = rng.next_bytes(2000, 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    registry.upload(fp, content);
    fps.push_back(fp);
    originals.push_back(std::move(content));
  }
  for (FaultPlan::Kind kind :
       {FaultPlan::Kind::kFlipByte, FaultPlan::Kind::kTruncate,
        FaultPlan::Kind::kDrop}) {
    FaultyTransport flaky(loopback, {kind, 2}, 24);
    RemoteGearRegistry remote(flaky, /*max_attempts=*/4);
    // Two batch calls: the 2nd and 4th transport frames are damaged, so at
    // least one call pays a whole-frame retry.
    for (int call = 0; call < 2; ++call) {
      StatusOr<std::vector<Bytes>> got = remote.download_batch(fps);
      ASSERT_TRUE(got.ok()) << static_cast<int>(kind);
      for (std::size_t i = 0; i < fps.size(); ++i) {
        EXPECT_EQ((*got)[i], originals[i]);
      }
    }
    EXPECT_GT(remote.stats().retries, 0u) << static_cast<int>(kind);
    // Frame damage is whole-frame retry territory, never item refetch.
    EXPECT_EQ(remote.stats().item_refetches, 0u) << static_cast<int>(kind);
  }
}

/// A lying middlebox: corrupts one item's payload inside the response and
/// re-frames it, so the CRC is valid but the item fails its fingerprint
/// check — exactly the case per-item refetch exists for.
class TamperingTransport final : public Transport {
 public:
  TamperingTransport(Transport& inner, std::size_t tamper_item)
      : inner_(inner), tamper_item_(tamper_item) {}

  Bytes round_trip(BytesView request_frame) override {
    if (StatusOr<WireMessage> req = decode_message(request_frame); req.ok()) {
      request_item_counts_.push_back(req->items.size());
    }
    Bytes response = inner_.round_trip(request_frame);
    if (++calls_ == 1) {
      WireMessage m = decode_message(response).value();
      Bytes& payload = m.items.at(tamper_item_).payload;
      payload.at(payload.size() / 2) ^= 0x5A;
      response = encode_message(m);  // CRC recomputed: the frame is intact
    }
    return response;
  }

  const std::vector<std::size_t>& request_item_counts() const {
    return request_item_counts_;
  }

 private:
  Transport& inner_;
  std::size_t tamper_item_;
  std::uint64_t calls_ = 0;
  std::vector<std::size_t> request_item_counts_;
};

TEST_F(NetFixture, IntactFrameWithDamagedItemRefetchesOnlyThatItem) {
  Rng rng(25);
  std::vector<Fingerprint> fps;
  std::vector<Bytes> originals;
  for (int i = 0; i < 5; ++i) {
    Bytes content = rng.next_bytes(1500, 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    registry.upload(fp, content);
    fps.push_back(fp);
    originals.push_back(std::move(content));
  }

  TamperingTransport tampered(loopback, /*tamper_item=*/2);
  RemoteGearRegistry remote(tampered, /*max_attempts=*/3);
  StatusOr<std::vector<Bytes>> got = remote.download_batch(fps);
  ASSERT_TRUE(got.ok());
  for (std::size_t i = 0; i < fps.size(); ++i) EXPECT_EQ((*got)[i], originals[i]);

  // The frame decoded fine, so no whole-frame retry happened; exactly one
  // item was refetched, and the follow-up request carried only that item.
  EXPECT_EQ(remote.stats().retries, 0u);
  EXPECT_EQ(remote.stats().item_refetches, 1u);
  EXPECT_EQ(remote.stats().integrity_failures, 1u);
  ASSERT_EQ(tampered.request_item_counts().size(), 2u);
  EXPECT_EQ(tampered.request_item_counts()[0], fps.size());
  EXPECT_EQ(tampered.request_item_counts()[1], 1u);
}

TEST_F(NetFixture, BatchRoundTripsThroughFlakyLinkEndToEnd) {
  FaultyTransport flaky(loopback, {FaultPlan::Kind::kFlipByte, 3}, 26);
  RemoteGearRegistry remote(flaky, 5);
  Rng rng(27);
  std::vector<std::pair<Fingerprint, Bytes>> items;
  std::vector<Fingerprint> fps;
  std::vector<Bytes> originals;
  for (int i = 0; i < 12; ++i) {
    Bytes content = rng.next_bytes(rng.next_range(1, 2500), 0.4);
    Fingerprint fp = default_hasher().fingerprint(content);
    items.emplace_back(fp, compress(content));
    fps.push_back(fp);
    originals.push_back(std::move(content));
  }
  remote.upload_precompressed_batch(std::move(items));
  StatusOr<std::vector<Bytes>> got = remote.download_batch(fps);
  ASSERT_TRUE(got.ok());
  for (std::size_t i = 0; i < fps.size(); ++i) EXPECT_EQ((*got)[i], originals[i]);
}

}  // namespace
}  // namespace gear::net
