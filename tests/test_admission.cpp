// Host-wide admission control (gear/admission): pick_next_ticket ranking,
// HostBudget blocking/ordering/preemption, BudgetLease RAII, and the
// ConcurrentAdmission* suites CI runs under TSAN.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "docker/client.hpp"
#include "gear/admission.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gear {
namespace {

AdmissionTicket bg(std::uint64_t bytes, std::uint64_t remaining,
                   std::uint64_t seq) {
  return {bytes, AdmissionLane::kBackground, remaining, seq};
}

AdmissionTicket demand(std::uint64_t bytes, std::uint64_t seq) {
  return {bytes, AdmissionLane::kDemand, bytes, seq};
}

TEST(PickNextTicket, EmptyWaitingReturnsNoTicket) {
  EXPECT_EQ(pick_next_ticket({}, 0, 100, AdmissionOrder::kSmallestFirst),
            kNoTicket);
}

TEST(PickNextTicket, ZeroBudgetAlwaysAdmitsPolicyChoice) {
  std::vector<AdmissionTicket> w = {bg(50, 500, 0), bg(50, 100, 1)};
  // Unbounded: admits immediately, still picking the policy's head.
  EXPECT_EQ(pick_next_ticket(w, 1u << 30, 0, AdmissionOrder::kSmallestFirst),
            1u);
}

TEST(PickNextTicket, SmallestRemainingFirstAmongBackground) {
  std::vector<AdmissionTicket> w = {bg(10, 900, 0), bg(10, 30, 2),
                                    bg(10, 300, 1)};
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kSmallestFirst), 1u);
}

TEST(PickNextTicket, SmallestRemainingTieBreaksBySeq) {
  std::vector<AdmissionTicket> w = {bg(10, 300, 5), bg(10, 300, 2)};
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kSmallestFirst), 1u);
}

TEST(PickNextTicket, FifoIgnoresRemainingHint) {
  std::vector<AdmissionTicket> w = {bg(10, 900, 0), bg(10, 30, 1)};
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kFifo), 0u);
}

TEST(PickNextTicket, DemandBeatsSmallerBackground) {
  std::vector<AdmissionTicket> w = {bg(10, 5, 0), demand(80, 1)};
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kSmallestFirst), 1u);
}

TEST(PickNextTicket, EarliestDemandWins) {
  std::vector<AdmissionTicket> w = {demand(10, 7), demand(10, 3)};
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kSmallestFirst), 1u);
}

TEST(PickNextTicket, HeadOfLineBlocksRatherThanSkips) {
  // The policy's choice (smallest remaining) does not fit; a later, larger-
  // remaining ticket would — but skipping it would starve the head.
  std::vector<AdmissionTicket> w = {bg(90, 90, 0), bg(5, 500, 1)};
  EXPECT_EQ(pick_next_ticket(w, 20, 100, AdmissionOrder::kSmallestFirst),
            kNoTicket);
}

TEST(PickNextTicket, OversizedRequestAdmittedWhenIdle) {
  std::vector<AdmissionTicket> w = {bg(500, 500, 0)};
  EXPECT_EQ(pick_next_ticket(w, 10, 100, AdmissionOrder::kSmallestFirst),
            kNoTicket);
  EXPECT_EQ(pick_next_ticket(w, 0, 100, AdmissionOrder::kSmallestFirst), 0u);
}

TEST(HostBudget, UnboundedMetersWithoutBlocking) {
  HostBudget budget(0);
  budget.acquire(70, AdmissionLane::kBackground, 70);
  budget.acquire(50, AdmissionLane::kDemand, 50);
  EXPECT_EQ(budget.stats().peak_inflight_bytes, 120u);
  EXPECT_EQ(budget.stats().inflight_bytes, 120u);
  EXPECT_EQ(budget.stats().admitted, 2u);
  EXPECT_EQ(budget.stats().waits, 0u);
  budget.release(70);
  budget.release(50);
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
}

TEST(HostBudget, AcquireBlocksUntilRelease) {
  HostBudget budget(100);
  budget.acquire(80, AdmissionLane::kBackground, 80);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    budget.acquire(50, AdmissionLane::kBackground, 50);
    admitted.store(true);
    budget.release(50);
  });
  while (budget.stats().waits == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  budget.release(80);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
}

TEST(HostBudget, SmallestRemainingDeployAdmittedFirst) {
  HostBudget budget(100, AdmissionOrder::kSmallestFirst);
  budget.acquire(100, AdmissionLane::kBackground, 100);

  std::atomic<int> order{0};
  std::atomic<int> big_at{0};
  std::atomic<int> small_at{0};
  std::thread big([&] {
    budget.acquire(60, AdmissionLane::kBackground, 900);
    big_at.store(++order);
    budget.release(60);
  });
  while (budget.stats().waits < 1) std::this_thread::yield();
  std::thread small([&] {
    budget.acquire(60, AdmissionLane::kBackground, 70);
    small_at.store(++order);
    budget.release(60);
  });
  while (budget.stats().waits < 2) std::this_thread::yield();

  // One release, both fit only serially (60 + 60 > 100): the deploy with
  // the smaller remaining bytes goes first despite queueing second.
  budget.release(100);
  big.join();
  small.join();
  EXPECT_LT(small_at.load(), big_at.load());
}

TEST(HostBudget, DemandPreemptsQueuedBackground) {
  HostBudget budget(100, AdmissionOrder::kSmallestFirst);
  budget.acquire(100, AdmissionLane::kBackground, 100);

  std::atomic<int> order{0};
  std::atomic<int> background_at{0};
  std::atomic<int> demand_at{0};
  std::thread background([&] {
    budget.acquire(80, AdmissionLane::kBackground, 80);
    background_at.store(++order);
    budget.release(80);
  });
  while (budget.stats().waits < 1) std::this_thread::yield();
  std::thread fault([&] {
    budget.acquire(80, AdmissionLane::kDemand, 80);
    demand_at.store(++order);
    budget.release(80);
  });
  while (budget.stats().waits < 2) std::this_thread::yield();

  budget.release(100);
  background.join();
  fault.join();
  EXPECT_LT(demand_at.load(), background_at.load());
  EXPECT_GE(budget.stats().demand_preemptions, 1u);
}

TEST(BudgetLease, ReleasesOnDestruction) {
  HostBudget budget(100);
  {
    BudgetLease lease(&budget, 60, AdmissionLane::kBackground, 60);
    EXPECT_EQ(budget.stats().inflight_bytes, 60u);
  }
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
}

TEST(BudgetLease, MoveTransfersOwnership) {
  HostBudget budget(100);
  BudgetLease a(&budget, 40, AdmissionLane::kBackground, 40);
  BudgetLease b = std::move(a);
  EXPECT_EQ(budget.stats().inflight_bytes, 40u);
  a = BudgetLease();  // idempotent on the moved-from lease
  EXPECT_EQ(budget.stats().inflight_bytes, 40u);
  b.release();
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
}

TEST(BudgetLease, NullBudgetIsNoop) {
  BudgetLease lease(nullptr, 40, AdmissionLane::kBackground, 40);
  EXPECT_EQ(make_budget_lease(nullptr, 40, AdmissionLane::kBackground, 40),
            nullptr);
}

TEST(BudgetLease, TypeErasedLeaseReleasesOnReset) {
  HostBudget budget(100);
  std::shared_ptr<void> lease =
      make_budget_lease(&budget, 60, AdmissionLane::kDemand, 60);
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(budget.stats().inflight_bytes, 60u);
  lease.reset();
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
}

// ---- ConcurrentAdmission*: CI's TSAN suites --------------------------

TEST(ConcurrentAdmissionStorm, PeakStaysUnderBudgetAcrossThreads) {
  constexpr std::uint64_t kBudget = 4000;
  HostBudget budget(kBudget, AdmissionOrder::kSmallestFirst);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        std::uint64_t bytes = rng.next_range(1, 1000);
        AdmissionLane lane = rng.next_double() < 0.2
                                 ? AdmissionLane::kDemand
                                 : AdmissionLane::kBackground;
        budget.acquire(bytes, lane, bytes * 3);
        std::this_thread::yield();
        budget.release(bytes);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(budget.stats().peak_inflight_bytes, kBudget);
  EXPECT_EQ(budget.stats().inflight_bytes, 0u);
  EXPECT_EQ(budget.stats().admitted,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ConcurrentAdmissionStorm, ClientDeploysShareOneBudget) {
  // Four clients deploy + fully warm four differently-sized images against
  // one HostBudget; the aggregate staging peak must respect the envelope
  // and governing must not change what moves over the wire.
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  constexpr int kNodes = 4;
  std::vector<std::string> refs;
  for (int i = 0; i < kNodes; ++i) {
    vfs::FileTree tree =
        gear::testing::random_tree(700 + i, 8 + 6 * i, 4096);
    docker::ImageBuilder b;
    b.add_snapshot(tree);
    docker::Image image =
        b.build("storm" + std::to_string(i), "v1", docker::ImageConfig{});
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
    refs.push_back("storm" + std::to_string(i) + ":v1");
  }

  struct Node {
    sim::SimClock clock;
    sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
    sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  };
  auto run_leg = [&](HostBudget& budget) {
    std::uint64_t wire = 0;
    std::vector<Node> nodes(kNodes);
    std::vector<std::unique_ptr<GearClient>> clients;
    for (int i = 0; i < kNodes; ++i) {
      clients.push_back(std::make_unique<GearClient>(
          index_registry, file_registry, nodes[static_cast<std::size_t>(i)]
              .link,
          nodes[static_cast<std::size_t>(i)].disk));
      clients.back()->set_concurrency({2, 8192});
      clients.back()->set_download_batch_files(4);
      clients.back()->set_host_budget(&budget);
    }
    std::vector<std::thread> threads;
    std::vector<std::uint64_t> moved(kNodes, 0);
    const workload::AccessSet empty_access;
    for (int i = 0; i < kNodes; ++i) {
      threads.emplace_back([&, i] {
        docker::DeployStats stats =
            clients[static_cast<std::size_t>(i)]->deploy(
                refs[static_cast<std::size_t>(i)], empty_access);
        auto [files, bytes] =
            clients[static_cast<std::size_t>(i)]->prefetch_remaining(
                refs[static_cast<std::size_t>(i)]);
        (void)files;
        moved[static_cast<std::size_t>(i)] = stats.total_bytes() + bytes;
      });
    }
    for (auto& t : threads) t.join();
    for (std::uint64_t m : moved) wire += m;
    return wire;
  };

  constexpr std::uint64_t kBudgetBytes = 16 * 1024;
  HostBudget meter(0);
  HostBudget governed(kBudgetBytes, AdmissionOrder::kSmallestFirst);
  std::uint64_t ungoverned_wire = run_leg(meter);
  std::uint64_t governed_wire = run_leg(governed);

  EXPECT_LE(governed.stats().peak_inflight_bytes, kBudgetBytes);
  EXPECT_EQ(governed.stats().inflight_bytes, 0u);
  // Admission delays downloads; it never changes them.
  EXPECT_EQ(governed_wire, ungoverned_wire);
  EXPECT_GT(governed_wire, 0u);
}

TEST(ConcurrentAdmissionEvictionChurn, SharedCacheUnderCapacityPressure) {
  SharedFileCache cache(64 * 1024, EvictionPolicy::kLru);
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 100);
      std::vector<Fingerprint> pinned;
      for (int i = 0; i < kIters; ++i) {
        Bytes content(rng.next_range(64, 2048),
                      static_cast<std::uint8_t>(t));
        Fingerprint fp = default_hasher().fingerprint(content);
        if (cache.put(fp, std::move(content)) && rng.next_double() < 0.25) {
          // Pin under a fresh get() so the entry provably still exists.
          if (cache.get(fp).ok()) {
            try {
              cache.link(fp);
              pinned.push_back(fp);
            } catch (const Error&) {
              // evicted between get and link — acceptable churn
            }
          }
        }
        if (!pinned.empty() && rng.next_double() < 0.2) {
          cache.unlink(pinned.back());
          pinned.pop_back();
        }
        if (rng.next_double() < 0.02) {
          cache.set_capacity(rng.next_double() < 0.5 ? 32 * 1024 : 64 * 1024);
        }
      }
      for (const Fingerprint& fp : pinned) cache.unlink(fp);
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent coherence: everything unpinned now, so one shrink empties
  // the cache entirely.
  cache.set_capacity(1);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

}  // namespace
}  // namespace gear
