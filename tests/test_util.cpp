// Unit tests for util/: hex, MD5, SHA-256, RNG, fingerprints, formatting.
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/format.hpp"
#include "util/hex.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace gear {
namespace {

// ---------------------------------------------------------------- hex

TEST(Hex, EncodesLowercase) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
}

TEST(Hex, EmptyRoundTrip) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Hex, DecodesMixedCase) {
  Bytes d = hex_decode("AbFf09");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 0xab);
  EXPECT_EQ(d[1], 0xff);
  EXPECT_EQ(d[2], 0x09);
}

TEST(Hex, RoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Bytes data = rng.next_bytes(rng.next_range(0, 300));
    EXPECT_EQ(hex_decode(hex_encode(data)), data);
  }
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), Error);
}

TEST(Hex, RejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), Error);
  EXPECT_THROW(hex_decode("0g"), Error);
}

// ---------------------------------------------------------------- md5

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(to_bytes("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(to_bytes("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(to_bytes("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(to_bytes("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(to_bytes("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::hex(to_bytes("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrst"
                              "uvwxyz0123456789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex(to_bytes("1234567890123456789012345678901234567890123456"
                              "7890123456789012345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  Rng rng(11);
  Bytes data = rng.next_bytes(10000, 0.3);
  for (std::size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 5000ul, 9999ul}) {
    Md5 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Md5::hash(data)) << "split=" << split;
  }
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and the 56-byte padding cutoff.
  for (std::size_t len : {55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul, 120ul,
                          121ul, 128ul}) {
    Bytes data(len, 'q');
    Md5 h;
    for (std::size_t i = 0; i < len; ++i) {
      h.update(BytesView(data.data() + i, 1));
    }
    EXPECT_EQ(h.finish(), Md5::hash(data)) << "len=" << len;
  }
}

TEST(Md5, FinishTwiceThrows) {
  Md5 h;
  h.update(to_bytes("x"));
  h.finish();
  EXPECT_THROW(h.finish(), Error);
  EXPECT_THROW(h.update(to_bytes("y")), Error);
}

TEST(Md5, ResetAllowsReuse) {
  Md5 h;
  h.update(to_bytes("abc"));
  h.finish();
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(hex_encode(h.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

// ------------------------------------------------------------- sha256

// FIPS 180-4 / NIST CAVS known-answer vectors.
TEST(Sha256, NistVectors) {
  EXPECT_EQ(Sha256::hex(to_bytes("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::hex(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomn"
                           "opnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Bytes data(1000000, 'a');
  EXPECT_EQ(Sha256::hex(data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(13);
  Bytes data = rng.next_bytes(4096, 0.5);
  Sha256 h;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t chunk = std::min<std::size_t>(97, data.size() - pos);
    h.update(BytesView(data.data() + pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash(to_bytes("a")), Sha256::hash(to_bytes("b")));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues appear over 1000 draws
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.next_range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    std::uint64_t v = rng.next_log_uniform(16, 65536);
    EXPECT_GE(v, 16u);
    EXPECT_LE(v, 65536u);
  }
}

TEST(Rng, BytesCompressibilityMonotonic) {
  // Higher requested compressibility must produce more repetitive data;
  // proxy: count byte-pairs that repeat.
  auto repetition = [](const Bytes& b) {
    int rep = 0;
    for (std::size_t i = 1; i < b.size(); ++i) rep += b[i] == b[i - 1];
    return rep;
  };
  Rng rng(12);
  Bytes incompressible = rng.next_bytes(20000, 0.0);
  Bytes compressible = rng.next_bytes(20000, 0.8);
  EXPECT_GT(repetition(compressible), repetition(incompressible) * 5);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(14);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_zipf(1000, 1.1) < 10) ++low;
  }
  // Top-10 ranks of 1000 should attract far more than 1% of draws.
  EXPECT_GT(low, n / 20);
}

TEST(Rng, FromLabelIndependentStreams) {
  Rng a = Rng::from_label(1, "alpha");
  Rng b = Rng::from_label(1, "beta");
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a2 = Rng::from_label(1, "alpha");
  Rng a3 = Rng::from_label(1, "alpha");
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

// -------------------------------------------------------- fingerprint

TEST(Fingerprint, Md5HasherMatchesMd5) {
  Bytes data = to_bytes("gear file content");
  Fingerprint fp = default_hasher().fingerprint(data);
  EXPECT_EQ(fp.hex(), Md5::hex(data));
}

TEST(Fingerprint, HexRoundTrip) {
  Fingerprint fp = default_hasher().fingerprint(to_bytes("x"));
  EXPECT_EQ(Fingerprint::from_hex(fp.hex()), fp);
}

TEST(Fingerprint, FromHexRejectsBadLength) {
  EXPECT_THROW(Fingerprint::from_hex("abcd"), Error);
  EXPECT_THROW(Fingerprint::from_hex(std::string(33, 'a')), Error);
}

TEST(Fingerprint, TruncatedHasherCollides) {
  TruncatedFingerprintHasher weak(8);  // 8-bit space: collisions certain
  std::set<Fingerprint> fps;
  int collisions = 0;
  Rng rng(15);
  for (int i = 0; i < 600; ++i) {
    Fingerprint fp = weak.fingerprint(rng.next_bytes(32));
    if (!fps.insert(fp).second) ++collisions;
  }
  EXPECT_GT(collisions, 300);  // far beyond 256 distinct values
}

TEST(Fingerprint, TruncatedHasherRespectsBitMask) {
  TruncatedFingerprintHasher weak(12);
  Fingerprint fp = weak.fingerprint(to_bytes("abc"));
  // Bits below the 12th must be zero: byte 1 low nibble and bytes 2..15.
  EXPECT_EQ(fp.raw()[1] & 0x0f, 0);
  for (std::size_t i = 2; i < Fingerprint::kSize; ++i) {
    EXPECT_EQ(fp.raw()[i], 0) << i;
  }
}

TEST(Fingerprint, TruncatedHasherBadBitsThrow) {
  EXPECT_THROW(TruncatedFingerprintHasher(0), Error);
  EXPECT_THROW(TruncatedFingerprintHasher(129), Error);
}

TEST(Fingerprint, CollisionBoundMatchesPaperEq1) {
  // Paper §III-B: ~5e10 deduplicated files under 128-bit MD5 gives a
  // collision probability around 5e-18 — far below disk error rates.
  double p = collision_probability_bound(5e10, 128);
  EXPECT_LT(p, 1e-17);
  EXPECT_GT(p, 1e-19);
  // And it is far below the 1e-12..1e-15 disk error probability band.
  EXPECT_LT(p, 1e-15);
}

// ------------------------------------------------------------- format

TEST(Format, Sizes) {
  EXPECT_EQ(format_size(0), "0 B");
  EXPECT_EQ(format_size(823), "823 B");
  EXPECT_EQ(format_size(1500), "1.5 KB");
  EXPECT_EQ(format_size(370000000000ull), "370.0 GB");
}

TEST(Format, Durations) {
  EXPECT_EQ(format_duration(0.0000005), "0.5 us");
  EXPECT_EQ(format_duration(0.25), "250.0 ms");
  EXPECT_EQ(format_duration(46.0), "46.00 s");
  EXPECT_EQ(format_duration(300.0), "5.0 min");
}

TEST(Format, PercentAndSpeedup) {
  EXPECT_EQ(format_percent(0.537), "53.7 %");
  EXPECT_EQ(format_speedup(5.01), "5.01x");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

// --------------------------------------------------------------- error

TEST(Error, CarriesCodeAndMessage) {
  try {
    throw_error(ErrorCode::kNotFound, "thing");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
    EXPECT_NE(std::string(e.what()).find("not_found"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("thing"), std::string::npos);
  }
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> err(ErrorCode::kNotFound, "missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  EXPECT_THROW(err.value(), Error);
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::string> s(std::string("hello"));
  std::string v = std::move(s).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace gear
