// Unit tests for the virtual filesystem: tree ops, diff/apply, serialization.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "vfs/file_tree.hpp"
#include "vfs/tree_diff.hpp"
#include "vfs/tree_serialize.hpp"

namespace gear::vfs {
namespace {

TEST(FileTree, AddAndLookupFile) {
  FileTree t;
  t.add_file("a/b/c.txt", to_bytes("hello"));
  const FileNode* node = t.lookup("a/b/c.txt");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->is_regular());
  EXPECT_EQ(to_string(node->content()), "hello");
  // Parents were auto-created as directories.
  EXPECT_TRUE(t.lookup("a")->is_directory());
  EXPECT_TRUE(t.lookup("a/b")->is_directory());
}

TEST(FileTree, PathNormalization) {
  FileTree t;
  t.add_file("/x//y/./z", to_bytes("v"));
  EXPECT_NE(t.lookup("x/y/z"), nullptr);
  EXPECT_NE(t.lookup("/x/y/z/"), nullptr);
}

TEST(FileTree, RejectsDotDotAndEmpty) {
  FileTree t;
  EXPECT_THROW(t.add_file("a/../b", to_bytes("v")), Error);
  EXPECT_THROW(t.add_file("", to_bytes("v")), Error);
  EXPECT_THROW(t.add_file("///", to_bytes("v")), Error);
}

TEST(FileTree, FileBlocksSubPath) {
  FileTree t;
  t.add_file("a/file", to_bytes("v"));
  EXPECT_THROW(t.add_file("a/file/sub", to_bytes("w")), Error);
}

TEST(FileTree, AddDirectoryIdempotent) {
  FileTree t;
  t.add_directory("d/e");
  t.add_directory("d/e");
  EXPECT_TRUE(t.lookup("d/e")->is_directory());
  t.add_file("d/e/f", to_bytes("v"));
  EXPECT_THROW(t.add_directory("d/e/f"), Error);
}

TEST(FileTree, SymlinkAndWhiteoutAndStub) {
  FileTree t;
  t.add_symlink("l", "target/path");
  t.add_whiteout("gone");
  Fingerprint fp = default_hasher().fingerprint(to_bytes("data"));
  t.add_fingerprint_stub("stub", fp, 4);
  EXPECT_EQ(t.lookup("l")->link_target(), "target/path");
  EXPECT_TRUE(t.lookup("gone")->is_whiteout());
  EXPECT_EQ(t.lookup("stub")->fingerprint(), fp);
  EXPECT_EQ(t.lookup("stub")->stub_size(), 4u);
}

TEST(FileTree, RemoveSubtree) {
  FileTree t;
  t.add_file("a/b/c", to_bytes("1"));
  t.add_file("a/b/d", to_bytes("2"));
  EXPECT_TRUE(t.remove("a/b"));
  EXPECT_EQ(t.lookup("a/b"), nullptr);
  EXPECT_EQ(t.lookup("a/b/c"), nullptr);
  EXPECT_FALSE(t.remove("a/b"));
}

TEST(FileTree, WalkVisitsEverythingInOrder) {
  FileTree t = gear::testing::sample_tree();
  std::vector<std::string> paths;
  t.walk([&paths](const std::string& p, const FileNode&) { paths.push_back(p); });
  // Pre-order, name-sorted within a directory.
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), "etc");
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_NE(paths[i], paths[i - 1]);
  }
  EXPECT_TRUE(t.lookup(paths.back()) != nullptr);
}

TEST(FileTree, StatsCounts) {
  FileTree t = gear::testing::sample_tree();
  TreeStats s = t.stats();
  EXPECT_EQ(s.regular_files, 4u);
  EXPECT_EQ(s.symlinks, 1u);
  EXPECT_GE(s.directories, 4u);
  EXPECT_EQ(s.total_file_bytes, 10u + 22u + 2000u + 7u);
}

TEST(FileTree, CopyIsDeep) {
  FileTree a = gear::testing::sample_tree();
  FileTree b = a;
  b.lookup("etc/hostname")->set_content(to_bytes("changed"));
  EXPECT_EQ(to_string(a.lookup("etc/hostname")->content()), "gear-test\n");
  EXPECT_FALSE(a.equals(b));
}

TEST(FileTree, EqualsDetectsMetadataDifference) {
  FileTree a, b;
  Metadata m1{0644, 0, 0, 100};
  Metadata m2{0755, 0, 0, 100};
  a.add_file("f", to_bytes("x"), m1);
  b.add_file("f", to_bytes("x"), m2);
  EXPECT_FALSE(a.equals(b));
}

TEST(FileNode, TypeGuards) {
  FileNode dir(NodeType::kDirectory);
  EXPECT_THROW(dir.set_content(to_bytes("x")), Error);
  EXPECT_THROW(dir.set_link_target("t"), Error);
  FileNode file(NodeType::kRegular);
  EXPECT_THROW(file.add_child("c", std::make_unique<FileNode>(NodeType::kRegular)),
               Error);
}

// ------------------------------------------------------------ diff/apply

TEST(TreeDiff, EmptyDiffForIdenticalTrees) {
  FileTree a = gear::testing::sample_tree();
  FileTree layer = diff_trees(a, a);
  EXPECT_TRUE(layer.root().children().empty());
}

TEST(TreeDiff, AddedFileAppearsInLayer) {
  FileTree a = gear::testing::sample_tree();
  FileTree b = a;
  b.add_file("etc/new.conf", to_bytes("n"));
  FileTree layer = diff_trees(a, b);
  ASSERT_NE(layer.lookup("etc/new.conf"), nullptr);
  EXPECT_EQ(layer.lookup("etc/hostname"), nullptr);  // unchanged not in layer
}

TEST(TreeDiff, DeletedFileBecomesWhiteout) {
  FileTree a = gear::testing::sample_tree();
  FileTree b = a;
  b.remove("etc/hostname");
  FileTree layer = diff_trees(a, b);
  ASSERT_NE(layer.lookup("etc/hostname"), nullptr);
  EXPECT_TRUE(layer.lookup("etc/hostname")->is_whiteout());
}

TEST(TreeDiff, ModifiedContentInLayer) {
  FileTree a = gear::testing::sample_tree();
  FileTree b = a;
  b.lookup("etc/hostname")->set_content(to_bytes("other"));
  FileTree layer = diff_trees(a, b);
  ASSERT_NE(layer.lookup("etc/hostname"), nullptr);
  EXPECT_EQ(to_string(layer.lookup("etc/hostname")->content()), "other");
}

TEST(TreeDiff, DirReplacedByFile) {
  FileTree a, b;
  a.add_file("d/inner", to_bytes("1"));
  b.add_file("d", to_bytes("2"));
  FileTree layer = diff_trees(a, b);
  ASSERT_NE(layer.lookup("d"), nullptr);
  EXPECT_TRUE(layer.lookup("d")->is_regular());
  FileTree merged = apply_layer(a, layer);
  EXPECT_TRUE(merged.equals(b));
}

TEST(TreeDiff, FileReplacedByDirIsOpaque) {
  FileTree a, b;
  a.add_file("d", to_bytes("1"));
  b.add_file("d/inner", to_bytes("2"));
  FileTree layer = diff_trees(a, b);
  ASSERT_NE(layer.lookup("d"), nullptr);
  EXPECT_TRUE(layer.lookup("d")->is_directory());
  EXPECT_TRUE(layer.lookup("d")->opaque());
  EXPECT_TRUE(apply_layer(a, layer).equals(b));
}

TEST(TreeDiff, SymlinkTargetChange) {
  FileTree a, b;
  a.add_symlink("l", "old");
  b.add_symlink("l", "new");
  FileTree layer = diff_trees(a, b);
  EXPECT_EQ(layer.lookup("l")->link_target(), "new");
  EXPECT_TRUE(apply_layer(a, layer).equals(b));
}

TEST(TreeDiff, RejectsWhiteoutInputs) {
  FileTree bad;
  bad.add_whiteout("w");
  FileTree good;
  EXPECT_THROW(diff_trees(bad, good), Error);
  EXPECT_THROW(diff_trees(good, bad), Error);
}

TEST(TreeDiff, ApplyWhiteoutRemovesSubtree) {
  FileTree base;
  base.add_file("d/x", to_bytes("1"));
  base.add_file("d/y", to_bytes("2"));
  FileTree layer;
  layer.add_whiteout("d");
  FileTree merged = apply_layer(base, layer);
  EXPECT_EQ(merged.lookup("d"), nullptr);
}

TEST(TreeDiff, OpaqueDirHidesLowerContents) {
  FileTree base;
  base.add_file("d/old", to_bytes("1"));
  FileTree layer;
  FileNode& d = layer.add_directory("d");
  d.set_opaque(true);
  layer.add_file("d/new", to_bytes("2"));
  FileTree merged = apply_layer(base, layer);
  EXPECT_EQ(merged.lookup("d/old"), nullptr);
  ASSERT_NE(merged.lookup("d/new"), nullptr);
  EXPECT_FALSE(merged.lookup("d")->opaque());  // merged trees carry no markers
}

TEST(TreeDiff, FlattenLayersComposes) {
  FileTree s0 = gear::testing::random_tree(100, 30);
  FileTree s1 = gear::testing::mutate_tree(s0, 101, 10);
  FileTree s2 = gear::testing::mutate_tree(s1, 102, 10);
  std::vector<FileTree> layers;
  layers.push_back(diff_trees(FileTree{}, s0));
  layers.push_back(diff_trees(s0, s1));
  layers.push_back(diff_trees(s1, s2));
  EXPECT_TRUE(flatten_layers(layers).equals(s2));
}

// Property: apply(base, diff(base, target)) == target, across random trees.
class DiffApplyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffApplyProperty, RoundTrip) {
  std::uint64_t seed = GetParam();
  FileTree base = gear::testing::random_tree(seed, 40);
  FileTree target = gear::testing::mutate_tree(base, seed + 1, 25);
  FileTree layer = diff_trees(base, target);
  FileTree merged = apply_layer(base, layer);
  EXPECT_TRUE(merged.equals(target));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffApplyProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------------------------- serialization

TEST(TreeSerialize, RoundTripSample) {
  FileTree t = gear::testing::sample_tree();
  Bytes data = serialize_tree(t);
  EXPECT_TRUE(deserialize_tree(data).equals(t));
}

TEST(TreeSerialize, RoundTripWithAllNodeTypes) {
  FileTree t;
  t.add_file("f", to_bytes("content"), Metadata{0755, 3, 4, 999});
  t.add_symlink("s", "f");
  t.add_whiteout("w");
  FileNode& d = t.add_directory("od");
  d.set_opaque(true);
  t.add_fingerprint_stub("fp", default_hasher().fingerprint(to_bytes("z")), 1);
  Bytes data = serialize_tree(t);
  EXPECT_TRUE(deserialize_tree(data).equals(t));
}

TEST(TreeSerialize, DeterministicEncoding) {
  FileTree a = gear::testing::random_tree(7, 25);
  FileTree b = gear::testing::random_tree(7, 25);
  EXPECT_EQ(serialize_tree(a), serialize_tree(b));
}

TEST(TreeSerialize, BadMagicThrows) {
  Bytes data = serialize_tree(gear::testing::sample_tree());
  data[0] = 'X';
  EXPECT_THROW(deserialize_tree(data), Error);
}

TEST(TreeSerialize, TruncationThrows) {
  Bytes data = serialize_tree(gear::testing::sample_tree());
  for (std::size_t cut : {4ul, 10ul, data.size() / 2, data.size() - 1}) {
    Bytes t(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(deserialize_tree(t), Error) << "cut=" << cut;
  }
}

TEST(TreeSerialize, TrailingBytesThrow) {
  Bytes data = serialize_tree(gear::testing::sample_tree());
  data.push_back(0);
  EXPECT_THROW(deserialize_tree(data), Error);
}

TEST(TreeSerialize, BadNodeTypeThrows) {
  FileTree t;
  t.add_file("f", to_bytes("x"));
  Bytes data = serialize_tree(t);
  // Find the child node type byte (after magic+root header+count+name).
  // Corrupt every byte position and require either equality-failure or throw;
  // never a crash or silent wrong node kinds.
  int threw = 0;
  for (std::size_t i = 4; i < data.size(); ++i) {
    Bytes corrupted = data;
    corrupted[i] = 0xee;
    try {
      FileTree parsed = deserialize_tree(corrupted);
      (void)parsed;
    } catch (const Error&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0);
}

class SerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperty, RoundTripRandomTrees) {
  FileTree t = gear::testing::random_tree(GetParam(), 50);
  EXPECT_TRUE(deserialize_tree(serialize_tree(t)).equals(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty,
                         ::testing::Range<std::uint64_t>(50, 60));

}  // namespace
}  // namespace gear::vfs
