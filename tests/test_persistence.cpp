// Tests for filesystem I/O (directory <-> tree) and registry persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/gc.hpp"
#include "gear/persistence.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "vfs/fs_io.hpp"

namespace gear {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  fs::path p = fs::path(::testing::TempDir()) /
               ("gear_persist_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

// ------------------------------------------------------------------ fs_io

TEST(FsIo, DirectoryRoundTrip) {
  fs::path src = fresh_dir("roundtrip_src");
  fs::path dst = fresh_dir("roundtrip_dst");

  vfs::FileTree tree = gear::testing::random_tree(600, 20);
  vfs::write_tree(tree, src);
  vfs::FileTree loaded = vfs::load_tree(src);

  // Content and structure must match (metadata mode/mtime differ: the real
  // filesystem applies umask and write time).
  int files = 0;
  tree.walk([&](const std::string& path, const vfs::FileNode& node) {
    const vfs::FileNode* got = loaded.lookup(path);
    ASSERT_NE(got, nullptr) << path;
    EXPECT_EQ(got->type(), node.type()) << path;
    if (node.is_regular()) {
      EXPECT_EQ(got->content(), node.content()) << path;
      ++files;
    }
    if (node.is_symlink()) {
      EXPECT_EQ(got->link_target(), node.link_target()) << path;
    }
  });
  EXPECT_GT(files, 0);

  // And the loaded tree exports back identically (fixpoint).
  vfs::write_tree(loaded, dst);
  vfs::FileTree again = vfs::load_tree(dst);
  int files2 = 0;
  loaded.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_regular()) return;
    EXPECT_EQ(again.lookup(path)->content(), node.content()) << path;
    ++files2;
  });
  EXPECT_EQ(files, files2);

  fs::remove_all(src);
  fs::remove_all(dst);
}

TEST(FsIo, MtimeIsSaneUnixEpoch) {
  // Regression: fs::file_time_type has an implementation-defined epoch;
  // a naive cast produced mtimes that overflowed the tar octal field.
  fs::path src = fresh_dir("mtime");
  std::ofstream(src / "f.txt") << "x";
  vfs::FileTree tree = vfs::load_tree(src);
  std::uint64_t mtime = tree.lookup("f.txt")->metadata().mtime;
  EXPECT_GT(mtime, 1500000000u);  // after 2017
  EXPECT_LT(mtime, 4102444800u);  // before 2100
  // And it must survive tar's 11-digit octal field.
  docker::Layer layer = docker::Layer::from_tree(tree);
  EXPECT_TRUE(layer.to_tree().lookup("f.txt") != nullptr);
  fs::remove_all(src);
}

TEST(FsIo, ByteBudgetEnforced) {
  fs::path src = fresh_dir("budget");
  std::ofstream(src / "big.bin") << std::string(10000, 'b');
  vfs::LoadOptions options;
  options.max_total_bytes = 100;
  EXPECT_THROW(vfs::load_tree(src, options), Error);
  fs::remove_all(src);
}

TEST(FsIo, MissingDirectoryRejected) {
  EXPECT_THROW(vfs::load_tree("/no/such/dir/anywhere"), Error);
}

TEST(FsIo, ExportRejectsStubsAndWhiteouts) {
  fs::path dst = fresh_dir("reject");
  vfs::FileTree stubby;
  stubby.add_fingerprint_stub("s", default_hasher().fingerprint(to_bytes("x")),
                              1);
  EXPECT_THROW(vfs::write_tree(stubby, dst), Error);
  vfs::FileTree whiteouty;
  whiteouty.add_whiteout("w");
  EXPECT_THROW(vfs::write_tree(whiteouty, dst), Error);
  fs::remove_all(dst);
}

// ------------------------------------------------------------ persistence

struct PersistenceFixture : ::testing::Test {
  fs::path root;
  docker::DockerRegistry docker_registry;
  GearRegistry gear_registry;

  void SetUp() override { root = fresh_dir("registries"); }
  void TearDown() override { fs::remove_all(root); }

  docker::Image push_one(std::uint64_t seed, const std::string& name,
                         const ChunkPolicy& policy = {}) {
    vfs::FileTree t = gear::testing::random_tree(seed, 15);
    // One big file so chunking has something to bite on.
    Rng rng(seed + 1);
    t.add_file("big/model.bin", rng.next_bytes(48 * 1024, 0.3));
    docker::ImageBuilder b;
    b.add_snapshot(t);
    docker::Image image = b.build(name, "v1", {});
    push_gear_image(GearConverter().convert(image).image, docker_registry,
                    gear_registry, policy);
    return image;
  }
};

TEST_F(PersistenceFixture, SaveLoadRoundTrip) {
  docker::Image image = push_one(700, "app");
  PersistReport saved = save_registries(docker_registry, gear_registry, root);
  EXPECT_GT(saved.blobs, 0u);
  EXPECT_GT(saved.objects, 0u);
  EXPECT_EQ(saved.manifests, 1u);

  docker::DockerRegistry docker2;
  GearRegistry gear2;
  PersistReport loaded = load_registries(root, &docker2, &gear2);
  EXPECT_EQ(loaded.blobs, saved.blobs);
  EXPECT_EQ(loaded.objects, saved.objects);
  EXPECT_EQ(loaded.manifests, saved.manifests);

  // Identical logical state.
  EXPECT_EQ(docker2.get_manifest("app:v1").value(),
            docker_registry.get_manifest("app:v1").value());
  EXPECT_EQ(gear2.object_count(), gear_registry.object_count());
  EXPECT_EQ(gear2.storage_bytes(), gear_registry.storage_bytes());
  for (const Fingerprint& fp : gear_registry.list_objects()) {
    EXPECT_EQ(gear2.download(fp).value(),
              gear_registry.download(fp).value());
  }
}

TEST_F(PersistenceFixture, ChunkedFilesSurviveRoundTrip) {
  const ChunkPolicy policy{16 * 1024, 8 * 1024};
  push_one(710, "ai", policy);
  ASSERT_FALSE(gear_registry.list_chunked().empty());
  save_registries(docker_registry, gear_registry, root);

  docker::DockerRegistry docker2;
  GearRegistry gear2;
  load_registries(root, &docker2, &gear2);
  for (const Fingerprint& fp : gear_registry.list_chunked()) {
    ASSERT_TRUE(gear2.is_chunked(fp));
    EXPECT_EQ(gear2.chunk_manifest(fp).value(),
              gear_registry.chunk_manifest(fp).value());
    EXPECT_EQ(gear2.download(fp).value(),
              gear_registry.download(fp).value());
  }
}

TEST_F(PersistenceFixture, SaveIsFullSnapshot) {
  // Regression: deleting a manifest then saving must not leave the old
  // manifest file behind to resurrect the image on load.
  push_one(720, "keep");
  push_one(721, "drop");
  save_registries(docker_registry, gear_registry, root);

  docker_registry.delete_manifest("drop:v1");
  GearRegistryGc(docker_registry, gear_registry).collect();
  save_registries(docker_registry, gear_registry, root);

  docker::DockerRegistry docker2;
  GearRegistry gear2;
  load_registries(root, &docker2, &gear2);
  EXPECT_TRUE(docker2.has_manifest("keep:v1"));
  EXPECT_FALSE(docker2.has_manifest("drop:v1"));
  EXPECT_EQ(gear2.object_count(), gear_registry.object_count());
}

TEST_F(PersistenceFixture, SingleChunkFilesStoredPlain) {
  // Regression: a policy whose chunk size exceeds the file size must not
  // create a manifest aliasing its only chunk's fingerprint.
  const ChunkPolicy policy{16 * 1024, 1024 * 1024};
  push_one(730, "single", policy);
  EXPECT_TRUE(gear_registry.list_chunked().empty());
  // Round-trip still clean.
  save_registries(docker_registry, gear_registry, root);
  docker::DockerRegistry docker2;
  GearRegistry gear2;
  EXPECT_NO_THROW(load_registries(root, &docker2, &gear2));
}

TEST_F(PersistenceFixture, LoadMissingLayoutThrows) {
  docker::DockerRegistry d;
  GearRegistry g;
  EXPECT_THROW(load_registries(root / "nothing_here", &d, &g), Error);
}

TEST_F(PersistenceFixture, CorruptBlobDetectedOnLoad) {
  push_one(740, "app");
  save_registries(docker_registry, gear_registry, root);
  // Flip a byte in some blob on disk.
  for (const auto& entry : fs::directory_iterator(root / "docker" / "blobs")) {
    std::fstream f(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xee');
    break;
  }
  docker::DockerRegistry d;
  GearRegistry g;
  EXPECT_THROW(load_registries(root, &d, &g), Error);  // digest mismatch
}

}  // namespace
}  // namespace gear
