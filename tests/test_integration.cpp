// Integration tests: the full pipeline on a reduced corpus — generate,
// convert, push, deploy with Docker vs Gear vs Slacker, verify correctness
// and the paper's directional results.
#include <gtest/gtest.h>

#include "dedup/analyzer.hpp"
#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/committer.hpp"
#include "gear/converter.hpp"
#include "slacker/slacker.hpp"
#include "workload/generator.hpp"

namespace gear {
namespace {

struct IntegrationFixture : ::testing::Test {
  static constexpr double kScale = 0.0005;
  workload::CorpusGenerator gen{42, kScale};
  std::vector<workload::SeriesSpec> specs;

  docker::DockerRegistry classic_registry;  // stores classic layered images
  docker::DockerRegistry index_registry;    // stores Gear index images
  GearRegistry gear_registry;

  void SetUp() override {
    specs = workload::small_corpus(1, 4);  // 6 series x 4 versions
    GearConverter converter;
    for (const auto& spec : specs) {
      for (int v = 0; v < spec.versions; ++v) {
        docker::Image image = gen.generate_image(spec, v);
        classic_registry.push_image(image);
        ConversionResult conv = converter.convert(image);
        push_gear_image(conv.image, index_registry, gear_registry);
      }
    }
  }
};

TEST_F(IntegrationFixture, GearRegistrySmallerThanDocker) {
  // Fig. 7b directionality: file-level sharing + per-file compression beats
  // layer-level sharing + per-layer compression.
  std::uint64_t docker_bytes = classic_registry.storage_bytes();
  std::uint64_t gear_bytes =
      gear_registry.storage_bytes() + index_registry.storage_bytes();
  EXPECT_LT(gear_bytes, docker_bytes);
}

TEST_F(IntegrationFixture, IndexesAreTinyFractionOfImages) {
  // Paper: indexes are tiny (~0.53 MB avg, ~1% of image bytes) — that is
  // what makes the pull phase nearly free. Check the per-image ratio: each
  // index blob vs the image data it references. (The registry-wide ratio is
  // scale-distorted here: scaled-down files shrink, per-entry index cost
  // does not; EXPERIMENTS.md quantifies this.)
  for (const auto& spec : specs) {
    std::string ref = spec.name + ":v0";
    docker::Manifest m = index_registry.get_manifest(ref).value();
    ASSERT_EQ(m.layers.size(), 1u);
    docker::Layer layer = docker::Layer::from_blob(
        index_registry.get_blob(m.layers[0].digest).value());
    GearIndex index = GearIndex::from_wire_tree(layer.to_tree());
    // Tiny scaled images (alpine at 1/2000 scale is ~3 KB) have nothing to
    // amortize the per-entry cost against; the ratio only means something
    // once the image has some data.
    if (index.referenced_bytes() < 40960) continue;
    EXPECT_LT(layer.compressed_size() * 10, index.referenced_bytes())
        << spec.name;
  }
  // Direction at the registry level: indexes are the (small) minority.
  EXPECT_LT(index_registry.blob_bytes(), gear_registry.storage_bytes());
}

TEST_F(IntegrationFixture, GearContainerSeesExactDockerFilesystem) {
  // For every image: a Gear container's materialized view must byte-match
  // the Docker root filesystem.
  for (const auto& spec : specs) {
    sim::SimClock clock;
    sim::NetworkLink link = sim::scaled_link(clock, 904.0, kScale);
    sim::DiskModel disk = sim::DiskModel::scaled_ssd(clock, kScale);
    GearClient client(index_registry, gear_registry, link, disk);

    docker::Image image = gen.generate_image(spec, 0);
    vfs::FileTree flat = image.flatten();
    std::string ref = spec.name + ":v0";
    client.pull(ref);
    std::string container = client.store().create_container(ref);
    GearFileViewer viewer = client.open_viewer(container);

    int checked = 0;
    flat.walk([&](const std::string& path, const vfs::FileNode& node) {
      if (node.is_regular() && checked < 25) {
        EXPECT_EQ(viewer.read_file(path).value(), node.content())
            << spec.name << " " << path;
        ++checked;
      } else if (node.is_symlink()) {
        EXPECT_EQ(viewer.read_symlink(path).value(), node.link_target());
      }
    });
    EXPECT_GT(checked, 0);
  }
}

TEST_F(IntegrationFixture, GearBeatsDockerAcrossBandwidths) {
  // Fig. 9 directionality: Gear total deploy time <= Docker's at every
  // bandwidth, and the advantage grows as bandwidth shrinks.
  std::vector<double> bandwidths = {904.0, 100.0, 20.0, 5.0};
  double prev_speedup = 0.0;
  for (double mbps : bandwidths) {
    double docker_total = 0, gear_total = 0;
    for (const auto& spec : specs) {
      workload::AccessSet access = gen.access_set(spec, 0);
      std::string ref = spec.name + ":v0";
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, kScale);
        sim::DiskModel d = sim::DiskModel::scaled_ssd(c, kScale);
        docker::DockerClient dc(classic_registry, l, d);
        docker_total += dc.deploy(ref, access).total_seconds();
      }
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, kScale);
        sim::DiskModel d = sim::DiskModel::scaled_ssd(c, kScale);
        GearClient gc(index_registry, gear_registry, l, d);
        gear_total += gc.deploy(ref, access).total_seconds();
      }
    }
    double speedup = docker_total / gear_total;
    EXPECT_GT(speedup, 1.0) << mbps << " Mbps";
    EXPECT_GE(speedup, prev_speedup * 0.9) << mbps << " Mbps";
    prev_speedup = speedup;
  }
}

TEST_F(IntegrationFixture, GearTransfersFractionOfDockerBytes) {
  // Fig. 8 directionality: Gear moves a small fraction of Docker's bytes.
  std::uint64_t docker_bytes = 0, gear_bytes = 0;
  for (const auto& spec : specs) {
    workload::AccessSet access = gen.access_set(spec, 1);
    std::string ref = spec.name + ":v1";
    {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 904.0, kScale);
      sim::DiskModel d = sim::DiskModel::scaled_ssd(c, kScale);
      docker::DockerClient dc(classic_registry, l, d);
      docker_bytes += dc.deploy(ref, access).total_bytes();
    }
    {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 904.0, kScale);
      sim::DiskModel d = sim::DiskModel::scaled_ssd(c, kScale);
      GearClient gc(index_registry, gear_registry, l, d);
      gear_bytes += gc.deploy(ref, access).total_bytes();
    }
  }
  EXPECT_LT(static_cast<double>(gear_bytes),
            0.6 * static_cast<double>(docker_bytes));
}

TEST_F(IntegrationFixture, VersionRolloutFavorsGearFileSharing) {
  // Fig. 10 directionality: deploying versions of one series one by one,
  // Gear's file-level cache makes later versions cheaper, while Slacker
  // re-fetches everything for every version. Uses tomcat (the paper's
  // Fig. 10 subject) with enough files for sharing statistics.
  workload::SeriesSpec series;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "tomcat") series = s;
  }
  series.versions = 6;

  GearConverter converter;
  slacker::SlackerRegistry slacker_registry;
  for (int v = 0; v < series.versions; ++v) {
    docker::Image image = gen.generate_image(series, v);
    push_gear_image(converter.convert(image).image, index_registry,
                    gear_registry);
    slacker_registry.put_image(
        image.manifest.reference(),
        slacker::VirtualBlockDevice::from_tree(image.flatten(), 512,
                                               1 << 22));
  }

  sim::SimClock gc;
  sim::NetworkLink gl = sim::scaled_link(gc, 100.0, kScale);
  sim::DiskModel gd = sim::DiskModel::scaled_ssd(gc, kScale);
  GearClient gear_client(index_registry, gear_registry, gl, gd);

  sim::SimClock sc;
  sim::NetworkLink sl = sim::scaled_link(sc, 100.0, kScale);
  sim::DiskModel sd = sim::DiskModel::scaled_ssd(sc, kScale);
  slacker::SlackerClient slacker_client(slacker_registry, sl, sd);

  std::uint64_t gear_first = 0, slacker_first = 0;
  std::uint64_t gear_tail = 0, slacker_tail = 0;  // bytes over versions 1..N
  for (int v = 0; v < series.versions; ++v) {
    workload::AccessSet access = gen.access_set(series, v);
    std::string ref = "tomcat:v" + std::to_string(v);
    docker::DeployStats g = gear_client.deploy(ref, access);
    docker::DeployStats s = slacker_client.deploy(ref, access);
    if (v == 0) {
      gear_first = g.total_bytes();
      slacker_first = s.total_bytes();
    } else {
      gear_tail += g.total_bytes();
      slacker_tail += s.total_bytes();
    }
  }
  int tail = series.versions - 1;
  // Gear's follow-up versions average well below its cold first deploy...
  EXPECT_LT(gear_tail, gear_first * static_cast<std::uint64_t>(tail) * 3 / 4);
  // ...while Slacker's do not improve at all.
  EXPECT_GT(slacker_tail * 5,
            slacker_first * static_cast<std::uint64_t>(tail) * 4);
  // And overall Gear moves far fewer bytes than Slacker over the rollout.
  EXPECT_LT(gear_first + gear_tail, slacker_first + slacker_tail);
}

TEST_F(IntegrationFixture, DedupOrderingOnFullPipelineCorpus) {
  dedup::DedupAnalyzer analyzer(512);
  for (const auto& spec : specs) {
    for (int v = 0; v < spec.versions; ++v) {
      analyzer.add_image(gen.generate_image(spec, v));
    }
  }
  EXPECT_GT(analyzer.none().storage_bytes, analyzer.layer_level().storage_bytes);
  EXPECT_GT(analyzer.layer_level().storage_bytes,
            analyzer.file_level().storage_bytes);
  EXPECT_GT(analyzer.chunk_level().object_count,
            analyzer.file_level().object_count * 2);
}

TEST_F(IntegrationFixture, CommitRoundTripThroughRegistries) {
  // Launch a container, modify it, commit, push, re-deploy elsewhere.
  sim::SimClock c;
  sim::NetworkLink l = sim::scaled_link(c, 904.0, kScale);
  sim::DiskModel d = sim::DiskModel::scaled_ssd(c, kScale);
  GearClient client(index_registry, gear_registry, l, d);

  std::string ref = specs[0].name + ":v0";
  client.pull(ref);
  std::string container = client.store().create_container(ref);
  GearFileViewer viewer = client.open_viewer(container);
  viewer.write_file("app/patch.bin", to_bytes("hotfix-payload"));

  GearCommitter committer;
  CommitResult commit = committer.commit(
      client.store().index_tree(ref), viewer.diff(),
      index_registry.get_manifest(ref).value().config, specs[0].name,
      "v0-patched");
  push_gear_image(commit.image, index_registry, gear_registry);

  // A different client deploys the committed image and sees the patch.
  sim::SimClock c2;
  sim::NetworkLink l2 = sim::scaled_link(c2, 904.0, kScale);
  sim::DiskModel d2 = sim::DiskModel::scaled_ssd(c2, kScale);
  GearClient other(index_registry, gear_registry, l2, d2);
  other.pull(specs[0].name + ":v0-patched");
  std::string c2id =
      other.store().create_container(specs[0].name + ":v0-patched");
  GearFileViewer v2 = other.open_viewer(c2id);
  EXPECT_EQ(to_string(v2.read_file("app/patch.bin").value()),
            "hotfix-payload");
}

}  // namespace
}  // namespace gear
