// Unit tests for the shared Gear-file cache: pinning, FIFO/LRU eviction.
#include <gtest/gtest.h>

#include "gear/cache.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

Fingerprint fp_of(const std::string& s) {
  return default_hasher().fingerprint(to_bytes(s));
}

TEST(Cache, PutGetRoundTrip) {
  SharedFileCache cache;
  Fingerprint fp = fp_of("a");
  EXPECT_FALSE(cache.contains(fp));
  EXPECT_TRUE(cache.put(fp, to_bytes("content-a")));
  EXPECT_TRUE(cache.contains(fp));
  EXPECT_EQ(to_string(cache.get(fp).value()), "content-a");
  EXPECT_EQ(cache.size_bytes(), 9u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(Cache, MissRecordsStats) {
  SharedFileCache cache;
  EXPECT_FALSE(cache.get(fp_of("nope")).ok());
  cache.put(fp_of("yes"), to_bytes("y"));
  cache.get(fp_of("yes")).value();
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, DuplicatePutIsNoop) {
  SharedFileCache cache;
  Fingerprint fp = fp_of("a");
  cache.put(fp, to_bytes("content"));
  EXPECT_TRUE(cache.put(fp, to_bytes("content")));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(Cache, UnboundedNeverEvicts) {
  SharedFileCache cache(0, EvictionPolicy::kLru);
  for (int i = 0; i < 100; ++i) {
    cache.put(fp_of(std::to_string(i)), Bytes(1000, 'x'));
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Cache, FifoEvictsInsertionOrder) {
  SharedFileCache cache(2500, EvictionPolicy::kFifo);
  cache.put(fp_of("first"), Bytes(1000, 'a'));
  cache.put(fp_of("second"), Bytes(1000, 'b'));
  // Access "first" — FIFO must ignore recency.
  cache.get(fp_of("first")).value();
  cache.put(fp_of("third"), Bytes(1000, 'c'));
  EXPECT_FALSE(cache.contains(fp_of("first")));
  EXPECT_TRUE(cache.contains(fp_of("second")));
  EXPECT_TRUE(cache.contains(fp_of("third")));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SharedFileCache cache(2500, EvictionPolicy::kLru);
  cache.put(fp_of("first"), Bytes(1000, 'a'));
  cache.put(fp_of("second"), Bytes(1000, 'b'));
  cache.get(fp_of("first")).value();  // refresh "first"
  cache.put(fp_of("third"), Bytes(1000, 'c'));
  EXPECT_TRUE(cache.contains(fp_of("first")));
  EXPECT_FALSE(cache.contains(fp_of("second")));
  EXPECT_TRUE(cache.contains(fp_of("third")));
}

TEST(Cache, PinnedEntriesSurviveEviction) {
  SharedFileCache cache(2500, EvictionPolicy::kLru);
  cache.put(fp_of("pinned"), Bytes(1000, 'p'));
  cache.link(fp_of("pinned"));
  cache.put(fp_of("other"), Bytes(1000, 'o'));
  cache.put(fp_of("new"), Bytes(1000, 'n'));  // must evict "other"
  EXPECT_TRUE(cache.contains(fp_of("pinned")));
  EXPECT_FALSE(cache.contains(fp_of("other")));
  EXPECT_TRUE(cache.contains(fp_of("new")));
}

TEST(Cache, RejectsWhenEverythingPinned) {
  SharedFileCache cache(2000, EvictionPolicy::kLru);
  cache.put(fp_of("a"), Bytes(1000, 'a'));
  cache.put(fp_of("b"), Bytes(900, 'b'));
  cache.link(fp_of("a"));
  cache.link(fp_of("b"));
  EXPECT_FALSE(cache.put(fp_of("c"), Bytes(500, 'c')));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(Cache, OversizedEntryRejected) {
  SharedFileCache cache(100, EvictionPolicy::kFifo);
  EXPECT_FALSE(cache.put(fp_of("big"), Bytes(200, 'x')));
}

TEST(Cache, UnlinkMakesEvictable) {
  SharedFileCache cache(2500, EvictionPolicy::kFifo);
  cache.put(fp_of("a"), Bytes(1000, 'a'));
  cache.link(fp_of("a"));
  cache.put(fp_of("b"), Bytes(1000, 'b'));
  cache.unlink(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 0u);
  cache.put(fp_of("c"), Bytes(1000, 'c'));  // now "a" can be evicted
  EXPECT_FALSE(cache.contains(fp_of("a")));
}

TEST(Cache, MultipleLinksCounted) {
  SharedFileCache cache;
  cache.put(fp_of("a"), to_bytes("x"));
  cache.link(fp_of("a"));
  cache.link(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 2u);
  cache.unlink(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 1u);
}

TEST(Cache, LinkErrors) {
  SharedFileCache cache;
  EXPECT_THROW(cache.link(fp_of("absent")), Error);
  EXPECT_THROW(cache.unlink(fp_of("absent")), Error);
  cache.put(fp_of("a"), to_bytes("x"));
  EXPECT_THROW(cache.unlink(fp_of("a")), Error);  // not linked
}

TEST(Cache, ClearUnpinnedKeepsPinned) {
  SharedFileCache cache;
  cache.put(fp_of("keep"), to_bytes("k"));
  cache.put(fp_of("drop"), to_bytes("d"));
  cache.link(fp_of("keep"));
  cache.clear_unpinned();
  EXPECT_TRUE(cache.contains(fp_of("keep")));
  EXPECT_FALSE(cache.contains(fp_of("drop")));
  EXPECT_EQ(cache.size_bytes(), 1u);
}

TEST(Cache, EvictionFreesExactBytes) {
  SharedFileCache cache(3000, EvictionPolicy::kFifo);
  cache.put(fp_of("a"), Bytes(1500, 'a'));
  cache.put(fp_of("b"), Bytes(1400, 'b'));
  EXPECT_EQ(cache.size_bytes(), 2900u);
  cache.put(fp_of("c"), Bytes(2000, 'c'));
  EXPECT_LE(cache.size_bytes(), 3000u);
  EXPECT_TRUE(cache.contains(fp_of("c")));
}

}  // namespace
}  // namespace gear
