// Unit tests for the shared Gear-file cache: pinning, FIFO/LRU eviction.
#include <gtest/gtest.h>

#include "gear/cache.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

Fingerprint fp_of(const std::string& s) {
  return default_hasher().fingerprint(to_bytes(s));
}

TEST(Cache, PutGetRoundTrip) {
  SharedFileCache cache;
  Fingerprint fp = fp_of("a");
  EXPECT_FALSE(cache.contains(fp));
  EXPECT_TRUE(cache.put(fp, to_bytes("content-a")));
  EXPECT_TRUE(cache.contains(fp));
  EXPECT_EQ(to_string(cache.get(fp).value()), "content-a");
  EXPECT_EQ(cache.size_bytes(), 9u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(Cache, MissRecordsStats) {
  SharedFileCache cache;
  EXPECT_FALSE(cache.get(fp_of("nope")).ok());
  cache.put(fp_of("yes"), to_bytes("y"));
  cache.get(fp_of("yes")).value();
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, DuplicatePutIsNoop) {
  SharedFileCache cache;
  Fingerprint fp = fp_of("a");
  cache.put(fp, to_bytes("content"));
  EXPECT_TRUE(cache.put(fp, to_bytes("content")));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(Cache, UnboundedNeverEvicts) {
  SharedFileCache cache(0, EvictionPolicy::kLru);
  for (int i = 0; i < 100; ++i) {
    cache.put(fp_of(std::to_string(i)), Bytes(1000, 'x'));
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Cache, FifoEvictsInsertionOrder) {
  SharedFileCache cache(2500, EvictionPolicy::kFifo);
  cache.put(fp_of("first"), Bytes(1000, 'a'));
  cache.put(fp_of("second"), Bytes(1000, 'b'));
  // Access "first" — FIFO must ignore recency.
  cache.get(fp_of("first")).value();
  cache.put(fp_of("third"), Bytes(1000, 'c'));
  EXPECT_FALSE(cache.contains(fp_of("first")));
  EXPECT_TRUE(cache.contains(fp_of("second")));
  EXPECT_TRUE(cache.contains(fp_of("third")));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SharedFileCache cache(2500, EvictionPolicy::kLru);
  cache.put(fp_of("first"), Bytes(1000, 'a'));
  cache.put(fp_of("second"), Bytes(1000, 'b'));
  cache.get(fp_of("first")).value();  // refresh "first"
  cache.put(fp_of("third"), Bytes(1000, 'c'));
  EXPECT_TRUE(cache.contains(fp_of("first")));
  EXPECT_FALSE(cache.contains(fp_of("second")));
  EXPECT_TRUE(cache.contains(fp_of("third")));
}

TEST(Cache, PinnedEntriesSurviveEviction) {
  SharedFileCache cache(2500, EvictionPolicy::kLru);
  cache.put(fp_of("pinned"), Bytes(1000, 'p'));
  cache.link(fp_of("pinned"));
  cache.put(fp_of("other"), Bytes(1000, 'o'));
  cache.put(fp_of("new"), Bytes(1000, 'n'));  // must evict "other"
  EXPECT_TRUE(cache.contains(fp_of("pinned")));
  EXPECT_FALSE(cache.contains(fp_of("other")));
  EXPECT_TRUE(cache.contains(fp_of("new")));
}

TEST(Cache, RejectsWhenEverythingPinned) {
  SharedFileCache cache(2000, EvictionPolicy::kLru);
  cache.put(fp_of("a"), Bytes(1000, 'a'));
  cache.put(fp_of("b"), Bytes(900, 'b'));
  cache.link(fp_of("a"));
  cache.link(fp_of("b"));
  EXPECT_FALSE(cache.put(fp_of("c"), Bytes(500, 'c')));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(Cache, OversizedEntryRejected) {
  SharedFileCache cache(100, EvictionPolicy::kFifo);
  EXPECT_FALSE(cache.put(fp_of("big"), Bytes(200, 'x')));
}

TEST(Cache, UnlinkMakesEvictable) {
  SharedFileCache cache(2500, EvictionPolicy::kFifo);
  cache.put(fp_of("a"), Bytes(1000, 'a'));
  cache.link(fp_of("a"));
  cache.put(fp_of("b"), Bytes(1000, 'b'));
  cache.unlink(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 0u);
  cache.put(fp_of("c"), Bytes(1000, 'c'));  // now "a" can be evicted
  EXPECT_FALSE(cache.contains(fp_of("a")));
}

TEST(Cache, MultipleLinksCounted) {
  SharedFileCache cache;
  cache.put(fp_of("a"), to_bytes("x"));
  cache.link(fp_of("a"));
  cache.link(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 2u);
  cache.unlink(fp_of("a"));
  EXPECT_EQ(cache.link_count(fp_of("a")), 1u);
}

TEST(Cache, LinkErrors) {
  SharedFileCache cache;
  EXPECT_THROW(cache.link(fp_of("absent")), Error);
  EXPECT_THROW(cache.unlink(fp_of("absent")), Error);
  cache.put(fp_of("a"), to_bytes("x"));
  EXPECT_THROW(cache.unlink(fp_of("a")), Error);  // not linked
}

TEST(Cache, ClearUnpinnedKeepsPinned) {
  SharedFileCache cache;
  cache.put(fp_of("keep"), to_bytes("k"));
  cache.put(fp_of("drop"), to_bytes("d"));
  cache.link(fp_of("keep"));
  cache.clear_unpinned();
  EXPECT_TRUE(cache.contains(fp_of("keep")));
  EXPECT_FALSE(cache.contains(fp_of("drop")));
  EXPECT_EQ(cache.size_bytes(), 1u);
}

TEST(Cache, EntryStatsTrackAccessesAndTicks) {
  SharedFileCache cache;
  cache.put(fp_of("a"), to_bytes("aa"));
  cache.put(fp_of("b"), to_bytes("bbb"));

  // Fresh entries: no hits yet, insertion stamped the last-access tick.
  CacheEntryStats a0 = cache.entry_stats(fp_of("a")).value();
  EXPECT_EQ(a0.size, 2u);
  EXPECT_EQ(a0.accesses, 0u);
  EXPECT_GT(a0.last_access_tick, 0u);
  EXPECT_FALSE(cache.entry_stats(fp_of("missing")).has_value());

  // Hits bump the count and advance the tick monotonically.
  cache.get(fp_of("a")).value();
  cache.get(fp_of("a")).value();
  CacheEntryStats a2 = cache.entry_stats(fp_of("a")).value();
  EXPECT_EQ(a2.accesses, 2u);
  EXPECT_GT(a2.last_access_tick, a0.last_access_tick);

  // A dedup re-put refreshes recency but is not an access.
  CacheEntryStats b0 = cache.entry_stats(fp_of("b")).value();
  cache.put(fp_of("b"), to_bytes("bbb"));
  CacheEntryStats b1 = cache.entry_stats(fp_of("b")).value();
  EXPECT_EQ(b1.accesses, 0u);
  EXPECT_GT(b1.last_access_tick, b0.last_access_tick);

  // Misses never touch entry stats.
  (void)cache.get(fp_of("missing"));
  EXPECT_EQ(cache.entry_stats(fp_of("a")).value().last_access_tick,
            a2.last_access_tick);
}

TEST(Cache, EntrySnapshotReportsHotness) {
  SharedFileCache cache;
  cache.put(fp_of("cold"), to_bytes("c"));
  cache.put(fp_of("hot"), to_bytes("hh"));
  cache.link(fp_of("hot"));
  for (int i = 0; i < 3; ++i) cache.get(fp_of("hot")).value();

  auto snapshot = cache.entry_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  // Sorted by fingerprint, deterministic across runs.
  EXPECT_LT(snapshot[0].first, snapshot[1].first);
  for (const auto& [fp, stats] : snapshot) {
    if (fp == fp_of("hot")) {
      EXPECT_EQ(stats.accesses, 3u);
      EXPECT_EQ(stats.links, 1u);
      EXPECT_EQ(stats.size, 2u);
    } else {
      EXPECT_EQ(stats.accesses, 0u);
      EXPECT_EQ(stats.links, 0u);
    }
  }
}

TEST(Cache, TicksMakeFifoVersusLruObservable) {
  // Same access sequence against both policies: the recency ticks agree
  // (they are policy-independent), but the victim differs — FIFO ignores
  // the refreshed tick, LRU obeys it. The tick telemetry makes the policy
  // difference observable from the outside.
  auto run = [](EvictionPolicy policy) {
    SharedFileCache cache(2500, policy);
    cache.put(fp_of("first"), Bytes(1000, 'a'));
    cache.put(fp_of("second"), Bytes(1000, 'b'));
    cache.get(fp_of("first")).value();  // refresh "first"
    std::uint64_t first_tick =
        cache.entry_stats(fp_of("first")).value().last_access_tick;
    std::uint64_t second_tick =
        cache.entry_stats(fp_of("second")).value().last_access_tick;
    EXPECT_GT(first_tick, second_tick);  // "first" is the recency winner
    cache.put(fp_of("third"), Bytes(1000, 'c'));
    return cache.contains(fp_of("first"));
  };
  EXPECT_FALSE(run(EvictionPolicy::kFifo));  // evicted despite recency
  EXPECT_TRUE(run(EvictionPolicy::kLru));    // recency saved it
}

TEST(Cache, SetCapacityShrinkEvictsImmediately) {
  SharedFileCache cache(0, EvictionPolicy::kFifo);
  for (int i = 0; i < 5; ++i) {
    cache.put(fp_of(std::to_string(i)), Bytes(1000, 'x'));
  }
  std::uint64_t evicted = cache.set_capacity(2500);
  EXPECT_EQ(evicted, 3000u);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_EQ(cache.capacity_bytes(), 2500u);
  // FIFO: the three oldest inserts went.
  EXPECT_FALSE(cache.contains(fp_of("0")));
  EXPECT_TRUE(cache.contains(fp_of("4")));
}

TEST(Cache, SetCapacityKeepsPinnedAndCountsRejections) {
  SharedFileCache cache(0, EvictionPolicy::kLru);
  cache.put(fp_of("pinned-a"), Bytes(1000, 'a'));
  cache.put(fp_of("pinned-b"), Bytes(1000, 'b'));
  cache.link(fp_of("pinned-a"));
  cache.link(fp_of("pinned-b"));
  // Pinned bytes exceed the shrunken envelope: nothing is evicted.
  EXPECT_EQ(cache.set_capacity(500), 0u);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.size_bytes(), 2000u);
  // And later inserts are rejected until something unpins.
  EXPECT_FALSE(cache.put(fp_of("new"), Bytes(100, 'c')));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(Cache, SetCapacityZeroUnboundsAgain) {
  SharedFileCache cache(1000, EvictionPolicy::kLru);
  cache.put(fp_of("a"), Bytes(900, 'a'));
  cache.link(fp_of("a"));  // pinned: no room can be made
  EXPECT_FALSE(cache.put(fp_of("b"), Bytes(900, 'b')));
  cache.set_capacity(0);
  EXPECT_TRUE(cache.put(fp_of("b"), Bytes(900, 'b')));
  EXPECT_EQ(cache.size_bytes(), 1800u);
}

TEST(Cache, GcUnpinThenShrinkEvicts) {
  // The gc-refcount path: linked while an image references the file,
  // unlinked on image deletion, then disk pressure reclaims it.
  SharedFileCache cache(0, EvictionPolicy::kLru);
  cache.put(fp_of("shared"), Bytes(1000, 's'));
  cache.link(fp_of("shared"));
  EXPECT_EQ(cache.set_capacity(500), 0u);  // pinned: survives
  EXPECT_TRUE(cache.contains(fp_of("shared")));
  cache.unlink(fp_of("shared"));
  EXPECT_EQ(cache.set_capacity(500), 1000u);  // unpinned: reclaimed
  EXPECT_FALSE(cache.contains(fp_of("shared")));
}

TEST(Cache, SetCapacityVictimDiffersByPolicy) {
  // Same sequence, same shrink — the policies reclaim different entries,
  // observable through entry_stats survivors.
  auto survivor = [](EvictionPolicy policy) {
    SharedFileCache cache(0, policy);
    cache.put(fp_of("old"), Bytes(1000, 'o'));
    cache.put(fp_of("new"), Bytes(1000, 'n'));
    cache.get(fp_of("old")).value();  // refresh the older insert
    cache.set_capacity(1000);
    return cache.entry_stats(fp_of("old")).has_value();
  };
  EXPECT_FALSE(survivor(EvictionPolicy::kFifo));
  EXPECT_TRUE(survivor(EvictionPolicy::kLru));
}

TEST(Cache, EvictionFreesExactBytes) {
  SharedFileCache cache(3000, EvictionPolicy::kFifo);
  cache.put(fp_of("a"), Bytes(1500, 'a'));
  cache.put(fp_of("b"), Bytes(1400, 'b'));
  EXPECT_EQ(cache.size_bytes(), 2900u);
  cache.put(fp_of("c"), Bytes(2000, 'c'));
  EXPECT_LE(cache.size_bytes(), 3000u);
  EXPECT_TRUE(cache.contains(fp_of("c")));
}

}  // namespace
}  // namespace gear
