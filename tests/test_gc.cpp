// Tests for registry-side mark-and-sweep garbage collection.
#include <gtest/gtest.h>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/gc.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear {
namespace {

struct GcFixture : ::testing::Test {
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;

  docker::Image make_image(std::uint64_t seed, const std::string& name) {
    vfs::FileTree t = gear::testing::random_tree(seed, 20);
    docker::ImageBuilder b;
    b.add_snapshot(t);
    return b.build(name, "v1", {});
  }

  void push(const docker::Image& image, const ChunkPolicy& policy = {}) {
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry, policy);
  }
};

TEST_F(GcFixture, NothingSweptWhileImagesLive) {
  push(make_image(1, "a"));
  push(make_image(2, "b"));
  std::uint64_t before = file_registry.storage_bytes();

  GearRegistryGc gc(index_registry, file_registry);
  GcReport report = gc.collect();
  EXPECT_EQ(report.indexes_scanned, 2u);
  EXPECT_EQ(report.swept_objects, 0u);
  EXPECT_EQ(file_registry.storage_bytes(), before);
}

TEST_F(GcFixture, DeletedImageFilesReclaimed) {
  push(make_image(10, "keep"));
  push(make_image(11, "drop"));
  std::size_t objects_with_both = file_registry.object_count();

  index_registry.delete_manifest("drop:v1");
  GearRegistryGc gc(index_registry, file_registry);
  GcReport report = gc.collect();

  EXPECT_GT(report.swept_objects, 0u);
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_LT(file_registry.object_count(), objects_with_both);

  // The surviving image still fully resolves.
  docker::Image keep = make_image(10, "keep");
  ConversionResult conv = converter.convert(keep);
  for (const auto& [fp, content] : conv.image.files) {
    EXPECT_EQ(file_registry.download(fp).value(), content);
  }
}

TEST_F(GcFixture, SharedFilesSurviveWhileAnyReferrerLives) {
  // Two images sharing most content; deleting one must keep shared files.
  vfs::FileTree t = gear::testing::random_tree(20, 20);
  docker::ImageBuilder b1;
  b1.add_snapshot(t);
  docker::Image a = b1.build("a", "v1", {});
  vfs::FileTree t2 = gear::testing::mutate_tree(t, 21, 4);
  docker::ImageBuilder b2;
  b2.add_snapshot(t2);
  docker::Image b = b2.build("b", "v1", {});
  push(a);
  push(b);

  index_registry.delete_manifest("a:v1");
  GearRegistryGc gc(index_registry, file_registry);
  gc.collect();

  // Every file of the surviving image remains downloadable.
  ConversionResult conv = converter.convert(b);
  for (const auto& [fp, content] : conv.image.files) {
    EXPECT_EQ(file_registry.download(fp).value(), content);
  }
}

TEST_F(GcFixture, ChunkedFilesCollectedWithChunks) {
  Rng rng(30);
  Bytes model = rng.next_bytes(64 * 1024, 0.3);
  vfs::FileTree t;
  t.add_file("model.bin", model);
  docker::ImageBuilder b;
  b.add_snapshot(t);
  docker::Image image = b.build("ai", "v1", {});
  const ChunkPolicy policy{16 * 1024, 8 * 1024};
  push(image, policy);
  ASSERT_TRUE(
      file_registry.is_chunked(default_hasher().fingerprint(model)));
  std::size_t objects = file_registry.object_count();
  ASSERT_GT(objects, 2u);  // manifest + several chunks

  // Live: nothing swept (chunks are reachable through the manifest).
  GearRegistryGc gc(index_registry, file_registry);
  EXPECT_EQ(gc.collect().swept_objects, 0u);
  EXPECT_EQ(file_registry.object_count(), objects);

  // Dead: manifest and all chunks go.
  index_registry.delete_manifest("ai:v1");
  GcReport report = gc.collect();
  EXPECT_EQ(report.swept_objects, objects);
  EXPECT_EQ(file_registry.object_count(), 0u);
  EXPECT_EQ(file_registry.storage_bytes(), 0u);
}

TEST_F(GcFixture, ClassicImagesIgnored) {
  // A classic (non-Gear) image in the same Docker registry neither keeps
  // Gear files alive nor breaks the scan.
  docker::Image classic = make_image(40, "classic");
  index_registry.push_image(classic);
  push(make_image(41, "gear"));

  GearRegistryGc gc(index_registry, file_registry);
  GcReport report = gc.collect();
  EXPECT_EQ(report.indexes_scanned, 1u);
  EXPECT_EQ(report.swept_objects, 0u);
}

TEST_F(GcFixture, RemoveReturnsZeroForUnknown) {
  EXPECT_EQ(file_registry.remove(default_hasher().fingerprint(to_bytes("x"))),
            0u);
}

TEST_F(GcFixture, ScrubVerifiesHealthyRegistry) {
  const ChunkPolicy policy{16 * 1024, 8 * 1024};
  push(make_image(50, "a"), policy);
  Rng rng(51);
  vfs::FileTree t;
  t.add_file("big.bin", rng.next_bytes(64 * 1024, 0.3));
  docker::ImageBuilder b;
  b.add_snapshot(t);
  push(b.build("big", "v1", {}), policy);

  ScrubReport report = scrub_registry(file_registry);
  EXPECT_EQ(report.objects_checked, file_registry.object_count());
  EXPECT_EQ(report.corrupt, 0u);
  EXPECT_EQ(report.unverifiable, 0u);
  EXPECT_EQ(report.verified, report.objects_checked);
}

TEST_F(GcFixture, ScrubFlagsSaltedIdsAsUnverifiableNotCorrupt) {
  // An object stored under a salted unique ID (collision handling) hashes
  // to something other than its name.
  Fingerprint salted = Fingerprint::from_hex("00112233445566778899aabbccddeeff");
  file_registry.upload(salted, to_bytes("content with salted name"));
  ScrubReport report = scrub_registry(file_registry);
  EXPECT_EQ(report.unverifiable, 1u);
  EXPECT_EQ(report.corrupt, 0u);
}

TEST_F(GcFixture, ScrubDetectsManifestWithMissingChunks) {
  const ChunkPolicy policy{8 * 1024, 4 * 1024};
  Rng rng(52);
  Bytes content = rng.next_bytes(32 * 1024, 0.3);
  Fingerprint fp = default_hasher().fingerprint(content);
  file_registry.upload_chunked(fp, content, policy);
  // Delete one chunk out from under the manifest.
  ChunkManifest manifest = file_registry.chunk_manifest(fp).value();
  file_registry.remove(manifest.chunks[2]);

  ScrubReport report = scrub_registry(file_registry);
  EXPECT_EQ(report.corrupt, 1u);
  ASSERT_EQ(report.corrupt_fingerprints.size(), 1u);
  EXPECT_EQ(report.corrupt_fingerprints[0], fp);
}

}  // namespace
}  // namespace gear
