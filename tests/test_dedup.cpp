// Tests for the deduplication-granularity analyzer (Table II machinery).
#include <gtest/gtest.h>

#include <map>

#include "dedup/analyzer.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace gear::dedup {
namespace {

docker::Image image_from_tree(const vfs::FileTree& t, const std::string& name,
                              const std::string& tag) {
  docker::ImageBuilder b;
  b.add_snapshot(t);
  return b.build(name, tag, {});
}

TEST(DedupAnalyzer, SingleImageBaseline) {
  DedupAnalyzer analyzer(512);
  docker::Image img = image_from_tree(gear::testing::sample_tree(), "a", "1");
  analyzer.add_image(img);

  EXPECT_EQ(analyzer.none().object_count, 1u);
  EXPECT_EQ(analyzer.none().storage_bytes, img.uncompressed_size());
  EXPECT_EQ(analyzer.layer_level().object_count, 1u);
  EXPECT_EQ(analyzer.file_level().object_count, 4u);  // 4 distinct files
  EXPECT_GT(analyzer.chunk_level().object_count,
            analyzer.layer_level().object_count);
}

TEST(DedupAnalyzer, IdenticalImagesFullyDeduplicated) {
  DedupAnalyzer analyzer(512);
  docker::Image img = image_from_tree(gear::testing::random_tree(1, 20), "a", "1");
  analyzer.add_image(img);
  DedupReport layer1 = analyzer.layer_level();
  DedupReport file1 = analyzer.file_level();
  DedupReport chunk1 = analyzer.chunk_level();

  // Same content pushed again under a different tag.
  analyzer.add_image(image_from_tree(gear::testing::random_tree(1, 20), "a", "2"));
  EXPECT_EQ(analyzer.none().object_count, 2u);
  EXPECT_EQ(analyzer.layer_level().storage_bytes, layer1.storage_bytes);
  EXPECT_EQ(analyzer.file_level().storage_bytes, file1.storage_bytes);
  EXPECT_EQ(analyzer.chunk_level().storage_bytes, chunk1.storage_bytes);
}

TEST(DedupAnalyzer, FileLevelCatchesWhatLayerLevelMisses) {
  // Two images share 90% of files but pack them into different layers:
  // layer digests differ, file fingerprints mostly match.
  vfs::FileTree t1 = gear::testing::random_tree(5, 40);
  vfs::FileTree t2 = gear::testing::mutate_tree(t1, 6, 4);
  DedupAnalyzer analyzer(512);
  analyzer.add_image(image_from_tree(t1, "a", "1"));
  analyzer.add_image(image_from_tree(t2, "a", "2"));

  // Layer level stored both layers in full.
  EXPECT_EQ(analyzer.layer_level().object_count, 2u);
  // File level stored the union of files once.
  std::uint64_t distinct_files = analyzer.file_level().object_count;
  vfs::TreeStats s1 = t1.stats();
  vfs::TreeStats s2 = t2.stats();
  EXPECT_LT(distinct_files, s1.regular_files + s2.regular_files);
  // And file-level storage beats layer-level storage.
  EXPECT_LT(analyzer.file_level().storage_bytes,
            analyzer.layer_level().storage_bytes);
}

TEST(DedupAnalyzer, ChunkCountExceedsFileCount) {
  DedupAnalyzer analyzer(512);
  vfs::FileTree t = gear::testing::random_tree(7, 30, 8192);
  analyzer.add_image(image_from_tree(t, "a", "1"));
  EXPECT_GT(analyzer.chunk_level().object_count,
            analyzer.file_level().object_count);
}

TEST(DedupAnalyzer, OrderingInvariantOnCorpus) {
  // On a realistic multi-version corpus: none >= layer >= file storage.
  workload::CorpusGenerator gen(7, 0.0005);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "redis") spec = s;
  }
  spec.versions = 6;
  DedupAnalyzer analyzer(512);
  for (int v = 0; v < spec.versions; ++v) {
    analyzer.add_image(gen.generate_image(spec, v));
  }
  EXPECT_GT(analyzer.none().storage_bytes,
            analyzer.layer_level().storage_bytes);
  EXPECT_GT(analyzer.layer_level().storage_bytes,
            analyzer.file_level().storage_bytes);
  // Object-count explosion as granularity shrinks (Table II's second row).
  EXPECT_LT(analyzer.none().object_count,
            analyzer.layer_level().object_count);
  EXPECT_LT(analyzer.layer_level().object_count,
            analyzer.file_level().object_count);
  EXPECT_LT(analyzer.file_level().object_count,
            analyzer.chunk_level().object_count);
}

TEST(DedupAnalyzer, ZeroChunkSizeRejected) {
  EXPECT_THROW(DedupAnalyzer(0), Error);
}

}  // namespace
}  // namespace gear::dedup
