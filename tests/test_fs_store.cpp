// Tests for the on-disk three-level store: real files, real hard links.
#include <gtest/gtest.h>

#include <filesystem>

#include "gear/converter.hpp"
#include "gear/fs_store.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

namespace fs = std::filesystem;

struct FsStoreFixture : ::testing::Test {
  fs::path root;
  std::unique_ptr<FsStore> store;

  void SetUp() override {
    root = fs::path(::testing::TempDir()) /
           ("gear_fs_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root);
    store = std::make_unique<FsStore>(root);
  }

  void TearDown() override {
    store.reset();
    fs::remove_all(root);
  }

  Fingerprint put(const std::string& content) {
    Bytes data = to_bytes(content);
    Fingerprint fp = default_hasher().fingerprint(data);
    store->cache_put(fp, data);
    return fp;
  }
};

TEST_F(FsStoreFixture, CreatesLayout) {
  EXPECT_TRUE(fs::is_directory(root / "cache"));
  EXPECT_TRUE(fs::is_directory(root / "images"));
  EXPECT_TRUE(fs::is_directory(root / "containers"));
}

TEST_F(FsStoreFixture, CachePutGetRoundTrip) {
  Fingerprint fp = put("cached-bytes");
  EXPECT_TRUE(store->cache_contains(fp));
  EXPECT_EQ(to_string(store->cache_get(fp).value()), "cached-bytes");
  EXPECT_EQ(store->cache_entries(), 1u);
  EXPECT_EQ(store->cache_bytes(), 12u);
  EXPECT_EQ(store->link_count(fp), 1u);
}

TEST_F(FsStoreFixture, CachePutIdempotent) {
  Fingerprint fp = put("same");
  store->cache_put(fp, to_bytes("same"));
  EXPECT_EQ(store->cache_entries(), 1u);
}

TEST_F(FsStoreFixture, CacheMiss) {
  EXPECT_FALSE(store->cache_get(default_hasher().fingerprint(to_bytes("x")))
                   .ok());
}

TEST_F(FsStoreFixture, IndexInstallLoadRoundTrip) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("web:1.17", index);
  EXPECT_TRUE(store->has_index("web:1.17"));
  GearIndex loaded = store->load_index("web:1.17");
  EXPECT_TRUE(loaded.tree().equals(index.tree()));
  EXPECT_EQ(store->images(), std::vector<std::string>{"web_1.17"});
}

TEST_F(FsStoreFixture, HardLinkMaterialization) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);

  const vfs::FileNode* file = rootfs.lookup("usr/bin/app");
  Fingerprint fp = default_hasher().fingerprint(file->content());
  store->cache_put(fp, file->content());

  EXPECT_FALSE(store->is_materialized("app:v1", "usr/bin/app"));
  store->link_file("app:v1", "usr/bin/app", fp);
  EXPECT_TRUE(store->is_materialized("app:v1", "usr/bin/app"));
  // The materialized file IS the cache file: st_nlink == 2, same bytes.
  EXPECT_EQ(store->link_count(fp), 2u);
  EXPECT_EQ(store->read_materialized("app:v1", "usr/bin/app").value(),
            file->content());
  // Idempotent.
  store->link_file("app:v1", "usr/bin/app", fp);
  EXPECT_EQ(store->link_count(fp), 2u);
}

TEST_F(FsStoreFixture, SharedFileLinkedIntoTwoImages) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("a:v1", index);
  store->install_index("b:v1", index);
  Fingerprint fp = put("shared-library-content");
  store->link_file("a:v1", "lib/shared.so", fp);
  store->link_file("b:v1", "lib/shared.so", fp);
  EXPECT_EQ(store->link_count(fp), 3u);  // cache + two images

  // Deleting one image drops one link; content stays shared.
  store->remove_image("a:v1");
  EXPECT_EQ(store->link_count(fp), 2u);
  EXPECT_EQ(store->read_materialized("b:v1", "lib/shared.so").value(),
            to_bytes("shared-library-content"));
}

TEST_F(FsStoreFixture, EvictUnlinkedKeepsLinkedFiles) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);
  Fingerprint linked = put("linked-content");
  Fingerprint loose = put("loose-content");
  store->link_file("app:v1", "opt/linked.bin", linked);

  EXPECT_EQ(store->evict_unlinked(), 1u);
  EXPECT_TRUE(store->cache_contains(linked));
  EXPECT_FALSE(store->cache_contains(loose));
}

TEST_F(FsStoreFixture, ImageDeletionThenEvictionReclaimsEverything) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);
  Fingerprint fp = put("doomed");
  store->link_file("app:v1", "bin/doomed", fp);
  EXPECT_EQ(store->evict_unlinked(), 0u);  // pinned by the image
  store->remove_image("app:v1");
  EXPECT_EQ(store->evict_unlinked(), 1u);  // now reclaimable
  EXPECT_EQ(store->cache_entries(), 0u);
}

TEST_F(FsStoreFixture, ContainerLifecycle) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);

  std::string c1 = store->create_container("app:v1");
  std::string c2 = store->create_container("app:v1");
  EXPECT_NE(c1, c2);
  EXPECT_EQ(store->container_image(c1), "app:v1");

  // Persist a modified diff and read it back.
  vfs::FileTree diff;
  diff.add_file("srv/state.db", to_bytes("dirty"));
  diff.add_whiteout("etc/hostname");
  store->save_diff(c1, diff);
  EXPECT_TRUE(store->load_diff(c1).equals(diff));
  // The other container's diff is untouched.
  EXPECT_TRUE(store->load_diff(c2).root().children().empty());

  store->remove_container(c1);
  EXPECT_FALSE(store->has_container(c1));
  EXPECT_THROW(store->load_diff(c1), Error);
  EXPECT_TRUE(store->has_container(c2));
}

TEST_F(FsStoreFixture, CreateContainerRequiresIndex) {
  EXPECT_THROW(store->create_container("ghost:v1"), Error);
}

TEST_F(FsStoreFixture, StateSurvivesReopen) {
  vfs::FileTree rootfs = gear::testing::sample_tree();
  GearIndex index = GearIndex::from_root_fs(
      rootfs, [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);
  Fingerprint fp = put("persistent");
  store->link_file("app:v1", "data/p.bin", fp);

  // Re-open the same root (daemon restart).
  store = std::make_unique<FsStore>(root);
  EXPECT_TRUE(store->has_index("app:v1"));
  EXPECT_TRUE(store->load_index("app:v1").tree().equals(index.tree()));
  EXPECT_TRUE(store->cache_contains(fp));
  EXPECT_EQ(store->link_count(fp), 2u);
  EXPECT_EQ(store->read_materialized("app:v1", "data/p.bin").value(),
            to_bytes("persistent"));
}

TEST_F(FsStoreFixture, EndToEndWithConverter) {
  // Convert an image, persist everything to disk, and reconstruct files
  // purely from the on-disk store.
  vfs::FileTree rootfs = gear::testing::random_tree(808, 25);
  docker::ImageBuilder b;
  b.add_snapshot(rootfs);
  docker::Image image = b.build("e2e", "v1", {});
  ConversionResult conv = GearConverter().convert(image);

  store->install_index("e2e:v1", conv.image.index);
  for (const auto& [fp, content] : conv.image.files) {
    store->cache_put(fp, content);
  }
  GearIndex loaded = store->load_index("e2e:v1");
  for (const auto& stub : loaded.stubs()) {
    store->link_file("e2e:v1", stub.path, stub.fingerprint);
    EXPECT_EQ(store->read_materialized("e2e:v1", stub.path).value(),
              rootfs.lookup(stub.path)->content())
        << stub.path;
  }
}

TEST_F(FsStoreFixture, CacheCapacityEvictsFifoByInsertion) {
  store->set_cache_capacity(25, EvictionPolicy::kFifo);
  Fingerprint a = put("aaaaaaaaaa");  // 10 bytes, oldest
  Fingerprint b = put("bbbbbbbbbb");
  // Touch the oldest — FIFO must ignore recency.
  store->cache_get(a).value();
  Fingerprint c = put("cccccccccc");  // needs room: evicts a
  EXPECT_FALSE(store->cache_contains(a));
  EXPECT_TRUE(store->cache_contains(b));
  EXPECT_TRUE(store->cache_contains(c));
  EXPECT_EQ(store->session_stats().evictions, 1u);
}

TEST_F(FsStoreFixture, CacheCapacityLruKeepsTouchedEntry) {
  store->set_cache_capacity(25, EvictionPolicy::kLru);
  Fingerprint a = put("aaaaaaaaaa");
  Fingerprint b = put("bbbbbbbbbb");
  store->cache_get(a).value();  // refresh a: b is now the LRU victim
  Fingerprint c = put("cccccccccc");
  EXPECT_TRUE(store->cache_contains(a));
  EXPECT_FALSE(store->cache_contains(b));
  EXPECT_TRUE(store->cache_contains(c));
}

TEST_F(FsStoreFixture, LinkedFilesSurvivePressureAndOvershootIsCounted) {
  Fingerprint fp = put("pinned-content");  // 14 bytes
  GearIndex index = GearIndex::from_root_fs(
      gear::testing::sample_tree(), [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);
  store->link_file("app:v1", "etc/pinned", fp);
  EXPECT_GT(store->link_count(fp), 1u);

  store->set_cache_capacity(10, EvictionPolicy::kLru);
  // The hard-linked file must not be evicted even though it alone
  // overflows the envelope...
  EXPECT_TRUE(store->cache_contains(fp));
  // ...and the next insert lands anyway (it is about to be linked) but is
  // recorded as an overshoot.
  Fingerprint extra = put("x");
  EXPECT_TRUE(store->cache_contains(extra));
  EXPECT_EQ(store->session_stats().rejected, 1u);
}

TEST_F(FsStoreFixture, ImageRemovalUnpinsForEviction) {
  Fingerprint fp = put("gc-me-please");
  GearIndex index = GearIndex::from_root_fs(
      gear::testing::sample_tree(), [](const std::string&, const Bytes& c) {
        return default_hasher().fingerprint(c);
      });
  store->install_index("app:v1", index);
  store->link_file("app:v1", "etc/f", fp);

  store->set_cache_capacity(5, EvictionPolicy::kLru);
  EXPECT_TRUE(store->cache_contains(fp));  // pinned: survives the shrink
  store->remove_image("app:v1");           // st_nlink drops back to 1
  store->set_cache_capacity(5, EvictionPolicy::kLru);
  EXPECT_FALSE(store->cache_contains(fp));
  EXPECT_EQ(store->session_stats().evictions, 1u);
}

TEST_F(FsStoreFixture, PreexistingFilesRankOldestUnderCapacity) {
  // Files written by an earlier process carry no tick: they are evicted
  // before anything this process inserted.
  Fingerprint old_fp = put("from-before");
  store = std::make_unique<FsStore>(root);  // reopen: tick map is empty
  store->set_cache_capacity(30, EvictionPolicy::kLru);
  Fingerprint fresh = put("fresh-contentfresh");  // 18 bytes
  Fingerprint fresh2 = put("0123456789");         // 10 bytes: needs room
  EXPECT_FALSE(store->cache_contains(old_fp));
  EXPECT_TRUE(store->cache_contains(fresh));
  EXPECT_TRUE(store->cache_contains(fresh2));
}

TEST(SanitizeReference, MapsAndRejects) {
  EXPECT_EQ(sanitize_reference("nginx:1.17"), "nginx_1.17");
  EXPECT_EQ(sanitize_reference("library/redis:7"), "library_redis_7");
  EXPECT_THROW(sanitize_reference(""), Error);
  EXPECT_THROW(sanitize_reference("../escape"), Error);
  EXPECT_THROW(sanitize_reference("a b"), Error);
}

}  // namespace
}  // namespace gear
