// Delta-first, priority-ordered prefetch (gear/prefetch): plan ordering,
// access-profile persistence format, the overlapped drain pipeline, and the
// client-level guarantees — path order stays byte-/wire-/stats-identical to
// the legacy walk, delta files land before unchanged ones, and delta-first
// strictly reduces time-to-first-useful-byte on a two-version redeploy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/prefetch.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "workload/trace.hpp"

namespace gear {
namespace {

Fingerprint fp_of(const std::string& label) {
  return default_hasher().fingerprint(to_bytes(label));
}

// ------------------------------------------------------------ order parse

TEST(PrefetchOrderParse, StrictValues) {
  EXPECT_EQ(parse_prefetch_order("path"), PrefetchOrder::kPath);
  EXPECT_EQ(parse_prefetch_order("delta"), PrefetchOrder::kDelta);
  EXPECT_EQ(parse_prefetch_order("profile"), PrefetchOrder::kProfile);
  EXPECT_FALSE(parse_prefetch_order("").has_value());
  EXPECT_FALSE(parse_prefetch_order("Path").has_value());
  EXPECT_FALSE(parse_prefetch_order("delta ").has_value());
  EXPECT_FALSE(parse_prefetch_order("sideways").has_value());
  EXPECT_STREQ(prefetch_order_name(PrefetchOrder::kPath), "path");
  EXPECT_STREQ(prefetch_order_name(PrefetchOrder::kDelta), "delta");
  EXPECT_STREQ(prefetch_order_name(PrefetchOrder::kProfile), "profile");
}

// ------------------------------------------------------------ profiles

TEST(ImageAccessProfile, RecordSerializeParseRoundTrip) {
  ImageAccessProfile p;
  p.bump_run();
  p.record("usr/bin/app");
  p.record("usr/bin/app");
  p.record("etc/config with spaces.ini");
  std::string text = p.serialize();
  ASSERT_TRUE(text.rfind("GPRF1 ", 0) == 0);

  StatusOr<ImageAccessProfile> parsed = ImageAccessProfile::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->runs(), 1u);
  EXPECT_EQ(parsed->distinct_paths(), 2u);
  EXPECT_EQ(parsed->touches("usr/bin/app"), 2u);
  EXPECT_EQ(parsed->touches("etc/config with spaces.ini"), 1u);
  EXPECT_EQ(parsed->touches("never"), 0u);
  // Deterministic: a round-tripped profile reserializes bit-for-bit.
  EXPECT_EQ(parsed->serialize(), text);
}

TEST(ImageAccessProfile, MergeAddsCountsAndRuns) {
  ImageAccessProfile a;
  a.bump_run();
  a.record("x");
  a.record("y");
  ImageAccessProfile b;
  b.bump_run();
  b.bump_run();
  b.record("y");
  b.record("z");
  a.merge(b);
  EXPECT_EQ(a.runs(), 3u);
  EXPECT_EQ(a.touches("x"), 1u);
  EXPECT_EQ(a.touches("y"), 2u);
  EXPECT_EQ(a.touches("z"), 1u);
}

TEST(ImageAccessProfile, ParseRejectsMalformed) {
  EXPECT_FALSE(ImageAccessProfile::parse("").ok());
  EXPECT_FALSE(ImageAccessProfile::parse("GPRF9 1 0\n").ok());
  EXPECT_FALSE(ImageAccessProfile::parse("GPRF1 x 0\n").ok());
  // Truncated: promises two entries, carries one.
  EXPECT_FALSE(ImageAccessProfile::parse("GPRF1 1 2\n3 usr/bin/app\n").ok());
  // Non-numeric count line.
  EXPECT_FALSE(ImageAccessProfile::parse("GPRF1 1 1\nnope path\n").ok());
  // Empty profile is valid.
  StatusOr<ImageAccessProfile> empty = ImageAccessProfile::parse("GPRF1 0 0\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// ------------------------------------------------------------ series helpers

TEST(SeriesHelpers, SeriesOfAndNewestOtherVersion) {
  EXPECT_EQ(series_of("app:v1"), "app");
  EXPECT_EQ(series_of("repo/app:1.2.3"), "repo/app");
  EXPECT_EQ(series_of("plain"), "plain");

  std::vector<std::string> installed = {"app:v2", "app:v10", "app:v9",
                                        "other:v99", "app:v1"};
  // Numeric-aware: v10 is the newest other version, not v9.
  EXPECT_EQ(newest_other_version(installed, "app:v1"), "app:v10");
  // The reference itself never wins.
  EXPECT_EQ(newest_other_version(installed, "app:v10"), "app:v9");
  EXPECT_EQ(newest_other_version(installed, "solo:v1"), "");
  EXPECT_EQ(newest_other_version({}, "app:v1"), "");
}

// ------------------------------------------------------------ plan building

TEST(PrefetchPlan, PathOrderMatchesWalkExactly) {
  vfs::FileTree index;
  index.add_fingerprint_stub("b/late", fp_of("late"), 10);
  index.add_fingerprint_stub("a/early", fp_of("early"), 10);
  index.add_fingerprint_stub("c/last", fp_of("last"), 10);

  std::vector<std::string> walk_order;
  index.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_fingerprint()) walk_order.push_back(path);
  });

  PrefetchPlan plan =
      build_prefetch_plan(index, PrefetchOrder::kPath, nullptr, nullptr);
  ASSERT_EQ(plan.items.size(), walk_order.size());
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    EXPECT_EQ(plan.items[i].path, walk_order[i]);
  }
  EXPECT_EQ(plan.delta_files, 0u);
}

TEST(PrefetchPlan, DeltaMembersComeFirst) {
  // The changed files sort late in path order ("z_..."), so a delta-first
  // plan must be a genuine reordering, not an accident of the walk.
  vfs::FileTree previous;
  previous.add_fingerprint_stub("a/unchanged0", fp_of("u0"), 10);
  previous.add_fingerprint_stub("a/unchanged1", fp_of("u1"), 10);
  previous.add_fingerprint_stub("z_changed/old", fp_of("old"), 10);

  vfs::FileTree index;
  index.add_fingerprint_stub("a/unchanged0", fp_of("u0"), 10);
  index.add_fingerprint_stub("a/unchanged1", fp_of("u1"), 10);
  index.add_fingerprint_stub("z_changed/old", fp_of("new"), 10);  // modified
  index.add_fingerprint_stub("z_changed/added", fp_of("add"), 10);

  PrefetchPlan plan =
      build_prefetch_plan(index, PrefetchOrder::kDelta, &previous, nullptr);
  ASSERT_EQ(plan.items.size(), 4u);
  EXPECT_EQ(plan.delta_files, 2u);
  EXPECT_TRUE(plan.items[0].in_delta);
  EXPECT_TRUE(plan.items[1].in_delta);
  EXPECT_FALSE(plan.items[2].in_delta);
  EXPECT_FALSE(plan.items[3].in_delta);
  // Without a previous index the delta signal is off and ties keep walk
  // order — the plan degrades gracefully, it never throws.
  PrefetchPlan cold =
      build_prefetch_plan(index, PrefetchOrder::kDelta, nullptr, nullptr);
  EXPECT_EQ(cold.delta_files, 0u);
  EXPECT_EQ(cold.items.size(), 4u);
}

TEST(PrefetchPlan, ProfileRanksByTouchesWithinDelta) {
  vfs::FileTree index;
  index.add_fingerprint_stub("a/cold", fp_of("cold"), 10);
  index.add_fingerprint_stub("b/warm", fp_of("warm"), 10);
  index.add_fingerprint_stub("c/hot", fp_of("hot"), 10);

  ImageAccessProfile profile;
  profile.record("b/warm");
  for (int i = 0; i < 5; ++i) profile.record("c/hot");

  PrefetchPlan plan =
      build_prefetch_plan(index, PrefetchOrder::kProfile, nullptr, &profile);
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].path, "c/hot");
  EXPECT_EQ(plan.items[1].path, "b/warm");
  EXPECT_EQ(plan.items[2].path, "a/cold");
  EXPECT_EQ(plan.profiled_files, 2u);
}

TEST(PrefetchPlan, FaninThenSizeTieBreakers) {
  vfs::FileTree index;
  // fp "shared" referenced twice (fan-in 2); singles tie-break by size asc.
  index.add_fingerprint_stub("a/big", fp_of("big"), 900);
  index.add_fingerprint_stub("b/small", fp_of("small"), 50);
  index.add_fingerprint_stub("c/shared0", fp_of("shared"), 400);
  index.add_fingerprint_stub("d/shared1", fp_of("shared"), 400);

  PrefetchPlan plan =
      build_prefetch_plan(index, PrefetchOrder::kDelta, nullptr, nullptr);
  // Deduplicated: one item per fingerprint, first referencing path wins.
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].path, "c/shared0");
  EXPECT_EQ(plan.items[0].fanin, 2u);
  EXPECT_EQ(plan.items[1].path, "b/small");
  EXPECT_EQ(plan.items[2].path, "a/big");
}

// ------------------------------------------------------------ drain pipeline

TEST(DrainBatches, AccountingOrderPreservedAtAnyWidth) {
  std::vector<PrefetchBatch> batches;
  for (int i = 0; i < 9; ++i) {
    PrefetchBatch b;
    b.fps.push_back(fp_of("batch" + std::to_string(i)));
    b.sizes.push_back(100);
    b.wire_estimate = 100;
    b.requests = 1;
    batches.push_back(std::move(b));
  }
  auto fetch = [](const PrefetchBatch& b, util::ThreadPool*) {
    FetchedBatch out;
    out.contents.emplace_back(b.sizes[0], std::uint8_t{0});
    out.wire_bytes = b.wire_estimate;
    return out;
  };

  std::vector<Fingerprint> serial_order;
  drain_batches(batches, nullptr, 0, fetch,
                [&](const PrefetchBatch& b, FetchedBatch) {
                  serial_order.push_back(b.fps[0]);
                });

  util::ThreadPool pool(4);
  std::vector<Fingerprint> overlapped_order;
  drain_batches(batches, &pool, 250, fetch,
                [&](const PrefetchBatch& b, FetchedBatch) {
                  overlapped_order.push_back(b.fps[0]);
                });
  EXPECT_EQ(overlapped_order, serial_order);
}

TEST(DrainBatches, FetchErrorRethrownOnCallerThread) {
  std::vector<PrefetchBatch> batches;
  for (int i = 0; i < 6; ++i) {
    PrefetchBatch b;
    b.fps.push_back(fp_of("err" + std::to_string(i)));
    b.sizes.push_back(10);
    b.wire_estimate = 10;
    batches.push_back(std::move(b));
  }
  util::ThreadPool pool(3);
  std::atomic<int> accounted{0};
  EXPECT_THROW(
      drain_batches(
          batches, &pool, 0,
          [](const PrefetchBatch& b, util::ThreadPool*) -> FetchedBatch {
            if (b.fps[0] == fp_of("err3")) {
              throw_error(ErrorCode::kInternal, "wire down");
            }
            FetchedBatch out;
            out.contents.emplace_back(b.sizes[0], std::uint8_t{0});
            return out;
          },
          [&](const PrefetchBatch&, FetchedBatch) { ++accounted; }),
      Error);
  EXPECT_LT(accounted.load(), 6);
}

// ------------------------------------------------------------ client level

/// Two handcrafted versions of one series: v2 keeps the "a/*" payload and
/// replaces/adds files under "z_delta/*" — names chosen so the delta sorts
/// LAST in path order and a delta-first schedule is unmistakable.
struct TwoVersionFixture : ::testing::Test {
  docker::DockerRegistry docker_registry;
  GearRegistry gear_registry;
  std::vector<Fingerprint> delta_fps;
  workload::AccessSet access_v1, access_v2;

  void SetUp() override {
    Rng rng(7);
    vfs::FileTree v1;
    v1.add_directory("a");
    for (int i = 0; i < 24; ++i) {
      v1.add_file("a/f" + std::to_string(i), rng.next_bytes(3000, 0.5));
    }
    vfs::FileTree v2 = v1;
    v2.add_directory("z_delta");
    for (int i = 0; i < 6; ++i) {
      v2.add_file("z_delta/g" + std::to_string(i), rng.next_bytes(3000, 0.5));
    }

    push(v1, "app", "v1");
    GearImage image2 = push(v2, "app", "v2");
    std::set<std::string> v1_paths;
    v1.walk([&](const std::string& p, const vfs::FileNode&) {
      v1_paths.insert(p);
    });
    image2.index.tree().walk(
        [&](const std::string& p, const vfs::FileNode& node) {
          if (node.is_fingerprint() && v1_paths.count(p) == 0) {
            delta_fps.push_back(node.fingerprint());
          }
        });
    ASSERT_EQ(delta_fps.size(), 6u);

    access_v1.files = {{"a/f0", 3000}, {"a/f1", 3000}};
    access_v2.files = {{"a/f0", 3000}, {"z_delta/g0", 3000}};
  }

  GearImage push(const vfs::FileTree& tree, const std::string& name,
                 const std::string& tag) {
    docker::ImageBuilder b;
    b.add_snapshot(tree);
    docker::Image image = b.build(name, tag, docker::ImageConfig{});
    GearImage gi = GearConverter().convert(image).image;
    push_gear_image(gi, docker_registry, gear_registry);
    return gi;
  }
};

struct ClientRig {
  sim::SimClock clock;
  sim::NetworkLink link;
  sim::DiskModel disk;
  GearClient client;

  ClientRig(docker::DockerRegistry& dr, FileRegistryApi& fr)
      : link(clock, 904.0, 0.0005, 0.0003),
        disk(clock, 0.0001, 500.0, 480.0),
        client(dr, fr, link, disk) {}
};

TEST_F(TwoVersionFixture, OrdersAreWireAndStatsIdentical) {
  // The scheduling order may only permute the fetch sequence: files,
  // bytes, link totals, elapsed sim time, and final cache contents must be
  // identical across path/delta/profile.
  struct Leg {
    std::size_t files;
    std::uint64_t bytes;
    sim::NetworkStats net;
    double elapsed;
    std::vector<Fingerprint> cached;
  };
  auto run = [&](PrefetchOrder order) {
    ClientRig rig(docker_registry, gear_registry);
    rig.client.set_prefetch_order(order);
    rig.client.set_download_batch_files(5);
    rig.client.deploy("app:v1", access_v1);  // seeds a profile + the series
    rig.client.pull("app:v2");
    auto [files, bytes] = rig.client.prefetch_remaining("app:v2");
    std::vector<Fingerprint> cached =
        rig.client.store().cache().fingerprints();
    std::sort(cached.begin(), cached.end());
    return Leg{files, bytes, rig.link.stats(), rig.clock.now(), cached};
  };

  Leg path = run(PrefetchOrder::kPath);
  Leg delta = run(PrefetchOrder::kDelta);
  Leg profile = run(PrefetchOrder::kProfile);

  for (const Leg* leg : {&delta, &profile}) {
    EXPECT_EQ(leg->files, path.files);
    EXPECT_EQ(leg->bytes, path.bytes);
    EXPECT_EQ(leg->net.bytes_transferred, path.net.bytes_transferred);
    EXPECT_EQ(leg->net.requests, path.net.requests);
    EXPECT_NEAR(leg->elapsed, path.elapsed, 1e-9);
    EXPECT_EQ(leg->cached, path.cached);
  }
}

TEST_F(TwoVersionFixture, DeltaFilesArriveBeforeAnyUnchangedFile) {
  ClientRig rig(docker_registry, gear_registry);
  rig.client.set_prefetch_order(PrefetchOrder::kDelta);
  rig.client.set_download_batch_files(4);
  rig.client.pull("app:v1");  // index only: nothing cached, delta is known
  rig.client.pull("app:v2");

  std::set<Fingerprint> delta(delta_fps.begin(), delta_fps.end());
  std::vector<bool> arrivals_in_delta;
  rig.client.set_prefetch_observer(
      [&](const Fingerprint& fp, std::uint64_t, double) {
        arrivals_in_delta.push_back(delta.count(fp) != 0);
      });
  rig.client.prefetch_remaining("app:v2");

  ASSERT_EQ(arrivals_in_delta.size(), 30u);  // 24 unchanged + 6 delta
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_TRUE(arrivals_in_delta[i]) << "non-delta file at position " << i;
  }
  for (std::size_t i = delta.size(); i < arrivals_in_delta.size(); ++i) {
    EXPECT_FALSE(arrivals_in_delta[i]);
  }
}

TEST_F(TwoVersionFixture, SecondPrefetchEarlyOutsWithoutTouchingTheWire) {
  ClientRig rig(docker_registry, gear_registry);
  rig.client.pull("app:v1");
  auto [files, bytes] = rig.client.prefetch_remaining("app:v1");
  EXPECT_GT(files, 0u);
  EXPECT_GT(bytes, 0u);

  sim::NetworkStats before = rig.link.stats();
  double now_before = rig.clock.now();
  auto [files2, bytes2] = rig.client.prefetch_remaining("app:v1");
  EXPECT_EQ(files2, 0u);
  EXPECT_EQ(bytes2, 0u);
  sim::NetworkStats after = rig.link.stats();
  EXPECT_EQ(after.bytes_transferred, before.bytes_transferred);
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_DOUBLE_EQ(rig.clock.now(), now_before);
}

TEST_F(TwoVersionFixture, DeployStatsLabelThePrefetchedSubset) {
  // Bulk-warm deploys report the warm leg; totals are unchanged (the
  // prefetched_* fields are a labeled subset of run_bytes_downloaded).
  ClientRig warm(docker_registry, gear_registry);
  warm.client.set_bulk_warm_deploy(true);
  docker::DeployStats warm_stats = warm.client.deploy("app:v1", access_v1);
  EXPECT_GT(warm_stats.prefetched_files, 0u);
  EXPECT_GT(warm_stats.prefetched_bytes, 0u);
  EXPECT_LE(warm_stats.prefetched_bytes, warm_stats.run_bytes_downloaded);

  // Lazy deploy alone prefetches nothing...
  ClientRig lazy(docker_registry, gear_registry);
  docker::DeployStats lazy_stats = lazy.client.deploy("app:v1", access_v1);
  EXPECT_EQ(lazy_stats.prefetched_files, 0u);
  EXPECT_EQ(lazy_stats.prefetched_bytes, 0u);

  // ...until prefetch-after-deploy closes the window in the same call.
  ClientRig bg(docker_registry, gear_registry);
  bg.client.set_prefetch_after_deploy(true);
  docker::DeployStats bg_stats = bg.client.deploy("app:v1", access_v1);
  EXPECT_GT(bg_stats.prefetched_files, 0u);
  EXPECT_GT(bg_stats.prefetched_bytes, 0u);
}

TEST_F(TwoVersionFixture, DeployRecordsAccessProfileButPrefetchDoesNot) {
  ClientRig rig(docker_registry, gear_registry);
  rig.client.deploy("app:v1", access_v1);
  ImageAccessProfile profile = rig.client.access_profile("app");
  EXPECT_EQ(profile.runs(), 1u);
  EXPECT_GT(profile.touches("a/f0"), 0u);
  EXPECT_GT(profile.touches("a/f1"), 0u);
  std::size_t recorded = profile.distinct_paths();

  // The prefetch link sweep materializes every remaining file; none of
  // that is workload signal — the profile must not flatten to uniform.
  rig.client.prefetch_remaining("app:v1");
  EXPECT_EQ(rig.client.access_profile("app").distinct_paths(), recorded);
}

// ------------------------------------------------ trace replay (TTFB)

TEST_F(TwoVersionFixture, DeltaFirstStrictlyReducesTimeToFirstUsefulByte) {
  // A two-deploy trace (v1 then v2) over the wire protocol: the post-deploy
  // prefetch of v2 must serve the first *delta* byte strictly earlier under
  // delta order than under path order, at identical total wire bytes.
  std::set<Fingerprint> delta(delta_fps.begin(), delta_fps.end());

  struct LegResult {
    double first_delta_arrival = -1;
    std::uint64_t wire_bytes = 0;
    std::uint64_t prefetched_files = 0;
  };
  auto run = [&](PrefetchOrder order) {
    GearRegistry& server = gear_registry;
    sim::SimClock clock;
    sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
    sim::DiskModel disk(clock, 0.0001, 500.0, 480.0);
    net::LoopbackTransport transport(server, &link);
    net::RemoteGearRegistry remote(transport, 3, false);
    GearClient client(docker_registry, remote, link, disk);
    client.set_prefetch_order(order);
    client.set_download_batch_files(4);

    LegResult leg;
    client.set_prefetch_observer(
        [&](const Fingerprint& fp, std::uint64_t, double sim_seconds) {
          if (leg.first_delta_arrival < 0 && delta.count(fp) != 0) {
            leg.first_delta_arrival = sim_seconds;
          }
        });

    std::vector<workload::TraceEvent> events = {{0.0, 0, 0}, {5.0, 0, 1}};
    workload::TraceSpec spec;
    spec.max_live_containers = 2;
    std::map<std::string, std::string> image_of;  // container -> reference
    workload::TraceResult replay = workload::replay_trace(
        clock, events, spec,
        [&](std::size_t, int version) {
          std::string ref = "app:v" + std::to_string(version + 1);
          std::string container;
          client.deploy(ref, version == 0 ? access_v1 : access_v2, &container);
          image_of[container] = ref;
          return container;
        },
        [&](const std::string&) {},
        [&](const std::string& container)
            -> std::pair<std::size_t, std::uint64_t> {
          // Only the v2 redeploy prefetches — the v1 cache must stay cold
          // so the unchanged files still compete with the delta on the wire.
          const std::string& ref = image_of.at(container);
          if (ref != "app:v2") return {0, 0};
          return client.prefetch_remaining(ref);
        });
    EXPECT_EQ(replay.deployments, 2u);
    leg.prefetched_files = replay.prefetched_files;
    leg.wire_bytes = transport.server_stats().bytes_out.load();
    return leg;
  };

  LegResult path = run(PrefetchOrder::kPath);
  LegResult delta_leg = run(PrefetchOrder::kDelta);

  ASSERT_GE(path.first_delta_arrival, 0.0);
  ASSERT_GE(delta_leg.first_delta_arrival, 0.0);
  EXPECT_LT(delta_leg.first_delta_arrival, path.first_delta_arrival);
  // Ordering is free: both legs moved the same bytes and file count.
  EXPECT_EQ(delta_leg.wire_bytes, path.wire_bytes);
  EXPECT_EQ(delta_leg.prefetched_files, path.prefetched_files);
  EXPECT_GT(delta_leg.prefetched_files, 0u);
}

// ------------------------------------------------ concurrency (TSAN)

TEST_F(TwoVersionFixture, ConcurrentPrefetchManyClientsOneRemote) {
  // One remote registry stub shared by several clients prefetching on their
  // own threads — the documented concurrent-batch-downloader contract.
  net::LoopbackTransport transport(gear_registry);  // no link: shared
  net::RemoteGearRegistry remote(transport, 3, false);

  constexpr int kClients = 4;
  std::vector<std::unique_ptr<ClientRig>> rigs;
  for (int i = 0; i < kClients; ++i) {
    rigs.push_back(std::make_unique<ClientRig>(docker_registry, remote));
    rigs.back()->client.set_download_batch_files(4);
    rigs.back()->client.set_prefetch_order(i % 2 == 0 ? PrefetchOrder::kDelta
                                                      : PrefetchOrder::kPath);
    rigs.back()->client.pull("app:v1");
    rigs.back()->client.pull("app:v2");
  }

  std::vector<std::thread> threads;
  std::vector<std::pair<std::size_t, std::uint64_t>> moved(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      moved[static_cast<std::size_t>(i)] =
          rigs[static_cast<std::size_t>(i)]->client.prefetch_remaining(
              "app:v2");
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& [files, bytes] : moved) {
    EXPECT_EQ(files, 30u);
    EXPECT_GT(bytes, 0u);
  }
}

TEST_F(TwoVersionFixture, ConcurrentPrefetchOverlapsViewerFaults) {
  // One client: a prefetch of app:v2 races on-demand viewer faults against
  // app:v1 — shared cache, link/disk accounting, and profile recording all
  // run concurrently behind the client's locks.
  ClientRig rig(docker_registry, gear_registry);
  rig.client.set_download_batch_files(4);
  rig.client.pull("app:v1");
  rig.client.pull("app:v2");
  std::string container = rig.client.store().create_container("app:v1");
  GearFileViewer viewer = rig.client.open_viewer(container);

  std::pair<std::size_t, std::uint64_t> moved;
  std::thread prefetcher(
      [&] { moved = rig.client.prefetch_remaining("app:v2"); });
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(viewer.read_file("a/f" + std::to_string(i)).value().size(),
              3000u);
  }
  prefetcher.join();
  EXPECT_GT(moved.first, 0u);
  // Everything v2 references is now cache-resident.
  std::size_t missing = 0;
  rig.client.store().index_tree("app:v2").walk(
      [&](const std::string&, const vfs::FileNode& node) {
        if (node.is_fingerprint() &&
            !rig.client.store().cache().contains(node.fingerprint())) {
          ++missing;
        }
      });
  EXPECT_EQ(missing, 0u);
}

}  // namespace
}  // namespace gear
