// Unit tests for the Gear Converter, including hash-collision handling and
// timed (Fig. 6 style) conversion.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "docker/image.hpp"
#include "gear/converter.hpp"
#include "gear/registry.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

docker::Image two_layer_image(std::uint64_t seed) {
  vfs::FileTree s0 = gear::testing::random_tree(seed, 25);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, seed + 1, 10);
  docker::ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1);
  docker::ImageConfig cfg;
  cfg.env = {"APP=demo"};
  cfg.entrypoint = {"/bin/demo"};
  return b.build("demo", "v1", cfg);
}

TEST(Converter, IndexMatchesFlattenedImage) {
  docker::Image image = two_layer_image(500);
  ConversionResult result = GearConverter().convert(image);

  vfs::FileTree root = image.flatten();
  vfs::TreeStats root_stats = root.stats();
  EXPECT_EQ(result.stats.files_seen, root_stats.regular_files);
  EXPECT_EQ(result.stats.bytes_seen, root_stats.total_file_bytes);
  EXPECT_EQ(result.image.index.referenced_bytes(),
            root_stats.total_file_bytes);

  // Every stub resolves to a produced Gear file with matching content hash.
  std::map<Fingerprint, const Bytes*> files;
  for (const auto& [fp, content] : result.image.files) {
    files[fp] = &content;
  }
  for (const auto& stub : result.image.index.stubs()) {
    auto it = files.find(stub.fingerprint);
    ASSERT_NE(it, files.end()) << stub.path;
    const vfs::FileNode* orig = root.lookup(stub.path);
    ASSERT_NE(orig, nullptr);
    EXPECT_EQ(*it->second, orig->content()) << stub.path;
  }
}

TEST(Converter, ReconstructionIsLossless) {
  // Materializing every stub must reproduce the original root filesystem.
  docker::Image image = two_layer_image(510);
  ConversionResult result = GearConverter().convert(image);

  std::map<Fingerprint, Bytes> pool;
  for (auto& [fp, content] : result.image.files) pool[fp] = content;

  vfs::FileTree rebuilt;
  rebuilt.root().metadata() = result.image.index.tree().root().metadata();
  result.image.index.tree().walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        switch (node.type()) {
          case vfs::NodeType::kDirectory:
            rebuilt.add_directory(path, node.metadata());
            break;
          case vfs::NodeType::kSymlink:
            rebuilt.add_symlink(path, node.link_target(), node.metadata());
            break;
          case vfs::NodeType::kFingerprint:
            rebuilt.add_file(path, pool.at(node.fingerprint()),
                             node.metadata());
            break;
          default:
            FAIL() << "unexpected node at " << path;
        }
      });
  EXPECT_TRUE(rebuilt.equals(image.flatten()));
}

TEST(Converter, DuplicateContentProducesOneGearFile) {
  vfs::FileTree root;
  root.add_file("a/x", to_bytes("shared-bytes"));
  root.add_file("b/y", to_bytes("shared-bytes"));
  root.add_file("c/z", to_bytes("unique-bytes"));
  docker::ImageBuilder b;
  b.add_snapshot(root);
  docker::Image image = b.build("dup", "1", {});

  ConversionResult result = GearConverter().convert(image);
  EXPECT_EQ(result.stats.files_seen, 3u);
  EXPECT_EQ(result.stats.files_unique, 2u);
  EXPECT_EQ(result.stats.collisions, 0u);
}

TEST(Converter, IndexImageIsSingleLayerWithConfigAndLabel) {
  docker::Image image = two_layer_image(520);
  ConversionResult result = GearConverter().convert(image);
  const docker::Image& idx = result.image.index_image;
  EXPECT_EQ(idx.layers.size(), 1u);
  EXPECT_EQ(idx.manifest.name, "demo");
  EXPECT_EQ(idx.manifest.tag, "v1");
  // Original env/entrypoint copied (paper §III-C).
  EXPECT_EQ(idx.manifest.config.env, image.manifest.config.env);
  EXPECT_EQ(idx.manifest.config.entrypoint, image.manifest.config.entrypoint);
  EXPECT_EQ(idx.manifest.config.labels.at(kGearIndexLabel), "1");
  // And the index layer is much smaller than the original image.
  EXPECT_LT(idx.compressed_size(), image.compressed_size());
}

TEST(Converter, CollisionDetectedWithWeakHash) {
  // An 8-bit hash collides constantly; contents must still be kept distinct
  // through salted unique IDs (paper §III-B collision handling).
  TruncatedFingerprintHasher weak(8);
  vfs::FileTree root;
  Rng rng(530);
  const int kFiles = 120;  // >> 256 would guarantee; 120 makes it very likely
  for (int i = 0; i < kFiles; ++i) {
    root.add_file("f/" + std::to_string(i), rng.next_bytes(64));
  }
  docker::ImageBuilder b;
  b.add_snapshot(root);
  docker::Image image = b.build("weak", "1", {});

  ConversionResult result = GearConverter(weak).convert(image);
  EXPECT_GT(result.stats.collisions, 0u);
  // Correctness first: every distinct content keeps its own Gear file.
  EXPECT_EQ(result.stats.files_unique, static_cast<std::size_t>(kFiles));
  // All assigned fingerprints distinct.
  std::set<Fingerprint> fps;
  for (const auto& [fp, content] : result.image.files) {
    (void)content;
    EXPECT_TRUE(fps.insert(fp).second);
  }
  // And every stub still resolves to the right content.
  std::map<Fingerprint, Bytes> pool;
  for (auto& [fp, content] : result.image.files) pool[fp] = content;
  vfs::FileTree flat = image.flatten();
  for (const auto& stub : result.image.index.stubs()) {
    EXPECT_EQ(pool.at(stub.fingerprint), flat.lookup(stub.path)->content());
  }
}

TEST(Converter, CollisionAgainstExistingRegistryContent) {
  TruncatedFingerprintHasher weak(4);  // 16 possible fingerprints
  GearRegistry registry;
  Bytes original = to_bytes("original-content");
  Fingerprint fp0 = weak.fingerprint(original);
  registry.upload(fp0, original);

  // Find content colliding with fp0 under the weak hash.
  Rng rng(540);
  Bytes collider;
  for (;;) {
    collider = rng.next_bytes(24);
    if (weak.fingerprint(collider) == fp0 && collider != original) break;
  }

  vfs::FileTree root;
  root.add_file("c", collider);
  docker::ImageBuilder b;
  b.add_snapshot(root);
  docker::Image image = b.build("coll", "1", {});

  GearConverter converter(weak, [&registry](const Fingerprint& fp) {
    StatusOr<Bytes> got = registry.download(fp);
    return got.ok() ? std::optional<Bytes>(std::move(got).value())
                    : std::nullopt;
  });
  ConversionResult result = converter.convert(image);
  EXPECT_EQ(result.stats.collisions, 1u);
  ASSERT_EQ(result.image.files.size(), 1u);
  EXPECT_NE(result.image.files[0].first, fp0);  // salted unique ID
}

TEST(Converter, DedupAgainstExistingRegistryContent) {
  GearRegistry registry;
  Bytes shared = to_bytes("already-stored");
  Fingerprint fp = default_hasher().fingerprint(shared);
  registry.upload(fp, shared);

  vfs::FileTree root;
  root.add_file("s", shared);
  docker::ImageBuilder b;
  b.add_snapshot(root);
  docker::Image image = b.build("dedup", "1", {});

  GearConverter converter(default_hasher(),
                          [&registry](const Fingerprint& f) {
                            StatusOr<Bytes> got = registry.download(f);
                            return got.ok()
                                       ? std::optional<Bytes>(std::move(got).value())
                                       : std::nullopt;
                          });
  ConversionResult result = converter.convert(image);
  EXPECT_EQ(result.stats.collisions, 0u);
  ASSERT_EQ(result.image.files.size(), 1u);
  EXPECT_EQ(result.image.files[0].first, fp);  // same fingerprint: dedup
}

TEST(Converter, TimedConversionScalesWithSizeAndDisk) {
  docker::Image small = two_layer_image(550);
  vfs::FileTree big_tree = gear::testing::random_tree(551, 120, 32768);
  docker::ImageBuilder bb;
  bb.add_snapshot(big_tree);
  docker::Image big = bb.build("big", "1", {});

  sim::SimClock clock;
  sim::DiskModel hdd = sim::DiskModel::hdd(clock);
  double t_small = 0, t_big = 0;
  GearConverter converter;
  converter.convert_timed(small, hdd, &t_small);
  converter.convert_timed(big, hdd, &t_big);
  EXPECT_GT(t_big, t_small);

  // SSD conversion markedly faster than HDD (paper: node 105 s -> 36 s).
  sim::SimClock clock2;
  sim::DiskModel ssd = sim::DiskModel::ssd(clock2);
  double t_big_ssd = 0;
  converter.convert_timed(big, ssd, &t_big_ssd);
  EXPECT_GT(t_big, t_big_ssd * 2);
}

TEST(Converter, ConversionIsDeterministic) {
  docker::Image image = two_layer_image(560);
  ConversionResult a = GearConverter().convert(image);
  ConversionResult b = GearConverter().convert(image);
  EXPECT_TRUE(a.image.index.tree().equals(b.image.index.tree()));
  EXPECT_EQ(a.image.files.size(), b.image.files.size());
  EXPECT_EQ(a.image.index_image.layers[0].digest(),
            b.image.index_image.layers[0].digest());
}

}  // namespace
}  // namespace gear
