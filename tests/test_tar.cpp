// Unit tests for the ustar archiver and Docker whiteout conventions.
#include <gtest/gtest.h>

#include "tar/tar.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "vfs/tree_diff.hpp"

namespace gear::tar {
namespace {

TEST(Tar, EmptyTreeIsJustTrailer) {
  vfs::FileTree t;
  Bytes archive = archive_tree(t);
  EXPECT_EQ(archive.size(), 1024u);  // two zero blocks
  EXPECT_TRUE(extract_tree(archive).root().children().empty());
}

TEST(Tar, RoundTripSampleTree) {
  vfs::FileTree t = gear::testing::sample_tree();
  EXPECT_TRUE(extract_tree(archive_tree(t)).equals(t));
}

TEST(Tar, PreservesMetadata) {
  vfs::FileTree t;
  vfs::Metadata m{0751, 1000, 1001, 1600000000};
  t.add_file("bin/tool", to_bytes("#!x"), m);
  vfs::FileTree back = extract_tree(archive_tree(t));
  const vfs::FileNode* node = back.lookup("bin/tool");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->metadata().mode, 0751u);
  EXPECT_EQ(node->metadata().uid, 1000u);
  EXPECT_EQ(node->metadata().gid, 1001u);
  EXPECT_EQ(node->metadata().mtime, 1600000000u);
}

TEST(Tar, WhiteoutUsesDockerNaming) {
  vfs::FileTree layer;
  layer.add_whiteout("etc/removed.conf");
  Bytes archive = archive_tree(layer);
  // The raw archive must contain the ".wh." marker name.
  std::string raw = to_string(archive);
  EXPECT_NE(raw.find(".wh.removed.conf"), std::string::npos);
  vfs::FileTree back = extract_tree(archive);
  ASSERT_NE(back.lookup("etc/removed.conf"), nullptr);
  EXPECT_TRUE(back.lookup("etc/removed.conf")->is_whiteout());
}

TEST(Tar, RootLevelWhiteout) {
  vfs::FileTree layer;
  layer.add_whiteout("topfile");
  vfs::FileTree back = extract_tree(archive_tree(layer));
  ASSERT_NE(back.lookup("topfile"), nullptr);
  EXPECT_TRUE(back.lookup("topfile")->is_whiteout());
}

TEST(Tar, OpaqueDirectoryMarker) {
  vfs::FileTree layer;
  vfs::FileNode& d = layer.add_directory("etc");
  d.set_opaque(true);
  layer.add_file("etc/new", to_bytes("n"));
  Bytes archive = archive_tree(layer);
  std::string raw = to_string(archive);
  EXPECT_NE(raw.find(".wh..wh..opq"), std::string::npos);
  vfs::FileTree back = extract_tree(archive);
  ASSERT_NE(back.lookup("etc"), nullptr);
  EXPECT_TRUE(back.lookup("etc")->opaque());
  EXPECT_TRUE(back.equals(layer));
}

TEST(Tar, EmptyFile) {
  vfs::FileTree t;
  t.add_file("empty", {});
  vfs::FileTree back = extract_tree(archive_tree(t));
  ASSERT_NE(back.lookup("empty"), nullptr);
  EXPECT_TRUE(back.lookup("empty")->content().empty());
}

TEST(Tar, LongPathViaPrefixField) {
  vfs::FileTree t;
  std::string dir = "a";
  for (int i = 0; i < 15; ++i) dir += "/dir-" + std::to_string(i) + "-padding";
  std::string path = dir + "/leaf-file";
  ASSERT_GT(path.size(), 100u);
  ASSERT_LT(path.size(), 255u);
  t.add_file(path, to_bytes("deep"));
  vfs::FileTree back = extract_tree(archive_tree(t));
  ASSERT_NE(back.lookup(path), nullptr);
  EXPECT_EQ(to_string(back.lookup(path)->content()), "deep");
}

TEST(Tar, OversizedPathThrows) {
  vfs::FileTree t;
  std::string path(300, 'p');
  t.add_file(path, to_bytes("x"));
  EXPECT_THROW(archive_tree(t), Error);
}

TEST(Tar, SymlinkRoundTrip) {
  vfs::FileTree t;
  t.add_symlink("etc/alt", "/etc/alternatives/real");
  vfs::FileTree back = extract_tree(archive_tree(t));
  EXPECT_EQ(back.lookup("etc/alt")->link_target(), "/etc/alternatives/real");
}

TEST(Tar, FingerprintStubRefused) {
  vfs::FileTree t;
  t.add_fingerprint_stub("s", default_hasher().fingerprint(to_bytes("x")), 1);
  EXPECT_THROW(archive_tree(t), Error);
}

TEST(Tar, DeterministicBytes) {
  vfs::FileTree a = gear::testing::random_tree(31, 40);
  vfs::FileTree b = gear::testing::random_tree(31, 40);
  EXPECT_EQ(archive_tree(a), archive_tree(b));
}

TEST(Tar, CorruptChecksumThrows) {
  Bytes archive = archive_tree(gear::testing::sample_tree());
  archive[0] ^= 0xff;  // clobber first header's name byte
  EXPECT_THROW(extract_tree(archive), Error);
}

TEST(Tar, MisalignedArchiveThrows) {
  Bytes archive = archive_tree(gear::testing::sample_tree());
  archive.push_back(0);
  EXPECT_THROW(extract_tree(archive), Error);
}

TEST(Tar, TruncatedPayloadThrows) {
  vfs::FileTree t;
  t.add_file("big", Bytes(5000, 'b'));
  Bytes archive = archive_tree(t);
  archive.resize(1024);  // header survives, payload gone
  EXPECT_THROW(extract_tree(archive), Error);
}

TEST(Tar, BlockCountMatchesSize) {
  vfs::FileTree t = gear::testing::sample_tree();
  EXPECT_EQ(archive_block_count(t) * 512, archive_tree(t).size());
}

class TarRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TarRoundTripProperty, RandomTrees) {
  vfs::FileTree t = gear::testing::random_tree(GetParam(), 30);
  EXPECT_TRUE(extract_tree(archive_tree(t)).equals(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarRoundTripProperty,
                         ::testing::Range<std::uint64_t>(200, 212));

// Layer diffs (with whiteouts) round-trip too — the exact payload Docker
// ships.
class TarLayerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TarLayerProperty, DiffTreesRoundTrip) {
  std::uint64_t seed = GetParam();
  vfs::FileTree base = gear::testing::random_tree(seed, 30);
  vfs::FileTree target = gear::testing::mutate_tree(base, seed + 7, 20);
  vfs::FileTree layer = vfs::diff_trees(base, target);
  vfs::FileTree back = extract_tree(archive_tree(layer));
  EXPECT_TRUE(back.equals(layer));
  // And applying the round-tripped layer still reproduces the target.
  EXPECT_TRUE(vfs::apply_layer(base, back).equals(target));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarLayerProperty,
                         ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace gear::tar
