// End-to-end tests for the Gear client: pull, lazy deploy, cache sharing,
// bandwidth accounting, teardown.
#include <gtest/gtest.h>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

struct GearClientFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  docker::DockerRegistry docker_registry;
  GearRegistry gear_registry;

  docker::Image original;
  workload::AccessSet access;

  void SetUp() override {
    vfs::FileTree s0 = gear::testing::random_tree(900, 40, 8192);
    vfs::FileTree s1 = gear::testing::mutate_tree(s0, 901, 15);
    docker::ImageBuilder b;
    b.add_snapshot(s0).add_snapshot(s1);
    docker::ImageConfig cfg;
    cfg.env = {"MODE=prod"};
    original = b.build("app", "v1", cfg);

    ConversionResult conv = GearConverter().convert(original);
    push_gear_image(conv.image, docker_registry, gear_registry);

    access = workload::derive_access_set(original.flatten(),
                                         workload::AccessProfile{0.3, 0.8, 7, 1});
    ASSERT_FALSE(access.files.empty());
  }

  GearClient make_client() {
    return GearClient(docker_registry, gear_registry, link, disk);
  }
};

TEST_F(GearClientFixture, PullFetchesOnlyTinyIndex) {
  GearClient client = make_client();
  docker::PullStats p = client.pull("app:v1");
  EXPECT_EQ(p.layers_fetched, 1u);
  // Orders of magnitude less than the full image.
  EXPECT_LT(p.bytes_downloaded * 5, original.compressed_size());
  EXPECT_TRUE(client.store().has_index("app:v1"));

  // Re-pull: index cached, only manifest moves.
  docker::PullStats p2 = client.pull("app:v1");
  EXPECT_EQ(p2.layers_fetched, 0u);
  EXPECT_EQ(p2.layers_local, 1u);
}

TEST_F(GearClientFixture, PullRejectsNonGearImage) {
  docker_registry.push_image(original);  // classic image, no gear label
  GearClient client = make_client();
  EXPECT_THROW(client.pull("app:v1"), Error);  // overwritten manifest
}

TEST_F(GearClientFixture, DeployFetchesOnlyAccessedBytes) {
  GearClient client = make_client();
  std::string container;
  docker::DeployStats stats = client.deploy("app:v1", access, &container);

  // Lazy fetch: bytes on demand < full image; roughly the accessed data
  // (compressed), plus nothing else.
  EXPECT_GT(stats.run_bytes_downloaded, 0u);
  EXPECT_LT(stats.total_bytes(), original.compressed_size());
  EXPECT_FALSE(container.empty());

  // Every accessed file readable with correct content.
  GearFileViewer v = client.open_viewer(container);
  vfs::FileTree flat = original.flatten();
  for (const auto& fa : access.files) {
    EXPECT_EQ(v.read_file(fa.path).value(), flat.lookup(fa.path)->content());
  }
}

TEST_F(GearClientFixture, SecondDeploySameImageFetchesNothing) {
  GearClient client = make_client();
  client.deploy("app:v1", access);
  sim::NetworkStats before = link.stats();
  docker::DeployStats stats2 = client.deploy("app:v1", access);
  sim::NetworkStats delta = link.stats() - before;
  EXPECT_EQ(stats2.run_bytes_downloaded, 0u);
  // Only the manifest check moved.
  EXPECT_LE(delta.bytes_transferred, 2048u);
}

TEST_F(GearClientFixture, CacheSharesFilesAcrossImages) {
  // Convert a sibling version sharing most files with v1.
  vfs::FileTree s0 = gear::testing::random_tree(900, 40, 8192);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, 901, 15);
  vfs::FileTree s2 = gear::testing::mutate_tree(s1, 902, 6);
  docker::ImageBuilder b;
  b.add_snapshot(s0).add_snapshot(s1).add_snapshot(s2);
  docker::Image v2 = b.build("app", "v2", {});
  ConversionResult conv = GearConverter().convert(v2);
  push_gear_image(conv.image, docker_registry, gear_registry);

  workload::AccessSet access2 = workload::derive_access_set(
      v2.flatten(), workload::AccessProfile{0.3, 0.8, 7, 2});

  // Warm client: deploys v1 first, so shared files are already cached.
  GearClient warm = make_client();
  warm.deploy("app:v1", access);
  docker::DeployStats warm_v2 = warm.deploy("app:v2", access2);

  // Cold client: deploys v2 with an empty cache.
  GearClient cold = make_client();
  docker::DeployStats cold_v2 = cold.deploy("app:v2", access2);

  std::uint64_t shared = workload::shared_bytes(access, access2);
  ASSERT_GT(shared, 0u);
  EXPECT_LT(warm_v2.run_bytes_downloaded, cold_v2.run_bytes_downloaded);
  EXPECT_GT(warm.store().cache().stats().hits, 0u);
}

TEST_F(GearClientFixture, ColdCacheDownloadsEverythingAgain) {
  GearClient client = make_client();
  docker::DeployStats warm_first = client.deploy("app:v1", access);
  client.clear_all_local_state();
  docker::DeployStats cold = client.deploy("app:v1", access);
  EXPECT_EQ(cold.run_bytes_downloaded, warm_first.run_bytes_downloaded);
}

TEST_F(GearClientFixture, GearDeployBeatsDockerOnSlowLink) {
  sim::SimClock slow_clock;
  sim::NetworkLink slow_link(slow_clock, 5.0, 0.0005, 0.0003);
  sim::DiskModel slow_disk(slow_clock, 0.0001, 500.0, 480.0);

  docker::DockerRegistry classic_registry;
  classic_registry.push_image(original);
  docker::DockerClient docker_client(classic_registry, slow_link, slow_disk);
  double docker_time =
      docker_client.deploy("app:v1", access).total_seconds();

  sim::SimClock gear_clock;
  sim::NetworkLink gear_link(gear_clock, 5.0, 0.0005, 0.0003);
  sim::DiskModel gear_disk(gear_clock, 0.0001, 500.0, 480.0);
  GearClient gear_client(docker_registry, gear_registry, gear_link, gear_disk);
  double gear_time = gear_client.deploy("app:v1", access).total_seconds();

  EXPECT_LT(gear_time, docker_time);
}

TEST_F(GearClientFixture, GearPullPhaseTinyRunPhaseLonger) {
  // Paper Fig. 9: Gear's pull is shorter than Docker's, its run longer.
  docker::DockerRegistry classic_registry;
  classic_registry.push_image(original);

  sim::SimClock dc;
  sim::NetworkLink dl(dc, 100.0, 0.0005, 0.0003);
  sim::DiskModel dd(dc, 0.0001, 500.0, 480.0);
  docker::DockerClient docker_client(classic_registry, dl, dd);
  docker::DeployStats docker_stats = docker_client.deploy("app:v1", access);

  sim::SimClock gc;
  sim::NetworkLink gl(gc, 100.0, 0.0005, 0.0003);
  sim::DiskModel gd(gc, 0.0001, 500.0, 480.0);
  GearClient gear_client(docker_registry, gear_registry, gl, gd);
  docker::DeployStats gear_stats = gear_client.deploy("app:v1", access);

  EXPECT_LT(gear_stats.pull.seconds, docker_stats.pull.seconds);
  EXPECT_GT(gear_stats.run_seconds, docker_stats.run_seconds);
}

TEST_F(GearClientFixture, DestroyRemovesContainerOnly) {
  GearClient client = make_client();
  std::string container;
  client.deploy("app:v1", access, &container);
  double t = client.destroy(container);
  EXPECT_GT(t, 0.0);
  EXPECT_FALSE(client.store().has_container(container));
  EXPECT_TRUE(client.store().has_index("app:v1"));
  // Can deploy again without re-downloading gear files.
  docker::DeployStats again = client.deploy("app:v1", access);
  EXPECT_EQ(again.run_bytes_downloaded, 0u);
}

TEST_F(GearClientFixture, RemoveImageKeepsCachedFilesShareable) {
  GearClient client = make_client();
  client.deploy("app:v1", access);
  std::uint64_t cached = client.store().cache().size_bytes();
  client.remove_image("app:v1");
  EXPECT_FALSE(client.store().has_index("app:v1"));
  EXPECT_EQ(client.store().cache().size_bytes(), cached);
}

TEST_F(GearClientFixture, TinyCacheStillDeploysCorrectly) {
  // Regression: when the bounded cache rejects inserts (all entries pinned),
  // deployment must still serve correct content — the file just is not
  // shared. Found via the cache-capacity ablation.
  GearClient client(docker_registry, gear_registry, link, disk, {},
                    /*cache_capacity_bytes=*/512, EvictionPolicy::kLru);
  std::string container;
  docker::DeployStats stats = client.deploy("app:v1", access, &container);
  EXPECT_GT(stats.run_bytes_downloaded, 0u);

  GearFileViewer v = client.open_viewer(container);
  vfs::FileTree flat = original.flatten();
  for (const auto& fa : access.files) {
    EXPECT_EQ(v.read_file(fa.path).value(), flat.lookup(fa.path)->content());
  }
  EXPECT_GT(client.store().cache().stats().rejected, 0u);
}

TEST_F(GearClientFixture, PrefetchRemainingMakesImageFullyLocal) {
  GearClient client = make_client();
  client.deploy("app:v1", access);  // partial: only the access set is local

  auto [fetched, bytes] = client.prefetch_remaining("app:v1");
  EXPECT_GT(fetched, 0u);
  EXPECT_GT(bytes, 0u);

  // Every file is now served without touching the link.
  sim::NetworkStats before = link.stats();
  std::string container = client.store().create_container("app:v1");
  GearFileViewer viewer = client.open_viewer(container);
  vfs::FileTree flat = original.flatten();
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular()) {
      EXPECT_EQ(viewer.read_file(path).value(), node.content()) << path;
    }
  });
  EXPECT_EQ((link.stats() - before).bytes_transferred, 0u);

  // Idempotent: nothing left to fetch.
  auto [fetched2, bytes2] = client.prefetch_remaining("app:v1");
  EXPECT_EQ(fetched2, 0u);
  EXPECT_EQ(bytes2, 0u);
}

TEST(PushGearImage, DeduplicatesAcrossImages) {
  docker::DockerRegistry dreg;
  GearRegistry greg;

  vfs::FileTree s0 = gear::testing::random_tree(950, 30);
  docker::ImageBuilder b1;
  b1.add_snapshot(s0);
  docker::Image v1 = b1.build("x", "1", {});

  vfs::FileTree s1 = gear::testing::mutate_tree(s0, 951, 5);
  docker::ImageBuilder b2;
  b2.add_snapshot(s1);
  docker::Image v2 = b2.build("x", "2", {});

  GearConverter converter;
  std::size_t up1 =
      push_gear_image(converter.convert(v1).image, dreg, greg);
  std::uint64_t bytes_after_v1 = greg.storage_bytes();
  std::size_t up2 =
      push_gear_image(converter.convert(v2).image, dreg, greg);

  EXPECT_GT(up1, 0u);
  EXPECT_LT(up2, up1);  // most files already present
  EXPECT_LT(greg.storage_bytes() - bytes_after_v1, bytes_after_v1 / 2);
  // The push protocol queries fingerprints first and skips present ones.
  EXPECT_GT(greg.stats().queries, greg.stats().uploads_accepted);
}

}  // namespace
}  // namespace gear
