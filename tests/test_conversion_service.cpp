// Tests for the registry-side conversion service.
#include <gtest/gtest.h>

#include "gear/client.hpp"
#include "gear/conversion_service.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

struct ServiceFixture : ::testing::Test {
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  docker::Image make_image(std::uint64_t seed, const std::string& name,
                           const std::string& tag) {
    docker::ImageBuilder b;
    b.add_snapshot(gear::testing::random_tree(seed, 15));
    return b.build(name, tag, {});
  }
};

TEST_F(ServiceFixture, ConvertsOnArrival) {
  ConversionService service(classic, index_registry, file_registry);
  docker::Image image = make_image(9000, "web", "v1");
  std::string ref = service.receive_image(image);
  EXPECT_EQ(ref, "web:v1");
  EXPECT_TRUE(classic.has_manifest("web:v1"));
  EXPECT_TRUE(index_registry.has_manifest("web:v1"));
  EXPECT_GT(file_registry.object_count(), 0u);
  EXPECT_EQ(service.stats().conversions_performed, 1u);

  // The converted image deploys correctly.
  sim::SimClock c;
  sim::NetworkLink l(c, 904.0, 0.0005, 0.0003);
  sim::DiskModel d = sim::DiskModel::ssd(c);
  GearClient client(index_registry, file_registry, l, d);
  client.pull("web:v1");
  std::string container = client.store().create_container("web:v1");
  GearFileViewer viewer = client.open_viewer(container);
  vfs::FileTree flat = image.flatten();
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular()) {
      EXPECT_EQ(viewer.read_file(path).value(), node.content()) << path;
    }
  });
}

TEST_F(ServiceFixture, RepushSkipsConversion) {
  ConversionService service(classic, index_registry, file_registry);
  service.receive_image(make_image(9001, "app", "v1"));
  std::uint64_t files_after_first = file_registry.object_count();

  // Same content re-tagged: no re-conversion, but the alias manifest exists.
  service.receive_image(make_image(9001, "app", "stable"));
  EXPECT_EQ(service.stats().conversions_performed, 1u);
  EXPECT_EQ(service.stats().conversions_skipped, 1u);
  EXPECT_EQ(file_registry.object_count(), files_after_first);
  EXPECT_TRUE(index_registry.has_manifest("app:stable"));

  // Both references resolve to the same index layer.
  docker::Manifest a = index_registry.get_manifest("app:v1").value();
  docker::Manifest b = index_registry.get_manifest("app:stable").value();
  EXPECT_EQ(a.layers[0].digest, b.layers[0].digest);
}

TEST_F(ServiceFixture, DropOriginalSavesClassicSpace) {
  ConversionService::Options options;
  options.drop_original = true;
  ConversionService service(classic, index_registry, file_registry, options);
  service.receive_image(make_image(9002, "tmp", "v1"));
  EXPECT_FALSE(classic.has_manifest("tmp:v1"));
  // Layers become garbage the classic registry can reclaim.
  auto [swept, freed] = classic.collect_garbage();
  EXPECT_GT(swept, 0u);
  EXPECT_GT(freed, 0u);
  // The Gear side is unaffected.
  EXPECT_TRUE(index_registry.has_manifest("tmp:v1"));
}

TEST_F(ServiceFixture, BacklogMigration) {
  // Images pushed before the service existed.
  classic.push_image(make_image(9003, "old1", "v1"));
  classic.push_image(make_image(9004, "old2", "v1"));
  docker::Image shared = make_image(9003, "old1", "retag");  // same layers
  classic.push_image(shared);

  ConversionService service(classic, index_registry, file_registry);
  std::size_t converted = service.convert_backlog();
  // Distinct layer sets: old1 (shared with retag) and old2.
  EXPECT_EQ(converted, 2u);
  EXPECT_TRUE(index_registry.has_manifest("old1:v1"));
  EXPECT_TRUE(index_registry.has_manifest("old2:v1"));

  // Second run: nothing left.
  EXPECT_EQ(service.convert_backlog(), 0u);
}

TEST_F(ServiceFixture, CrossImageDedupThroughService) {
  ConversionService service(classic, index_registry, file_registry);
  vfs::FileTree base = gear::testing::random_tree(9005, 20);
  docker::ImageBuilder b1;
  b1.add_snapshot(base);
  service.receive_image(b1.build("a", "v1", {}));
  std::size_t uploaded_first = service.stats().files_uploaded;

  docker::ImageBuilder b2;
  b2.add_snapshot(gear::testing::mutate_tree(base, 9006, 3));
  service.receive_image(b2.build("b", "v1", {}));
  std::size_t uploaded_second =
      service.stats().files_uploaded - uploaded_first;
  EXPECT_LT(uploaded_second, uploaded_first / 2);  // most files shared
}

}  // namespace
}  // namespace gear
