// Chunk-granular batched range fetch: the kDownloadChunks wire message, the
// remote manifest probe + cache, the batched read_range gathering path, and
// its fault tolerance. Proves the round-trip arithmetic (1 manifest probe +
// ⌈missing/batch⌉ chunk frames), byte- and stats-identity between batch-1
// (the serial per-chunk protocol) and batch-64 modes, and that injected
// transmission faults never corrupt an accepted read.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "compress/codec.hpp"
#include "docker/image.hpp"
#include "gear/chunking.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/registry.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

using net::FaultPlan;
using net::FaultyTransport;
using net::LoopbackTransport;
using net::RemoteGearRegistry;

constexpr std::uint64_t kChunk = 4096;
const ChunkPolicy kPolicy{/*threshold_bytes=*/16 * 1024, /*chunk_bytes=*/kChunk};

Bytes big_content(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  return rng.next_bytes(n, 0.3);
}

// ----------------------------------------------------------- wire codec

TEST(WireChunk, IndexListRoundTrip) {
  std::vector<std::uint32_t> indices{0, 5, 9, 1000000};
  EXPECT_EQ(net::decode_chunk_index_list(net::encode_chunk_index_list(indices))
                .value(),
            indices);
  EXPECT_TRUE(net::decode_chunk_index_list(net::encode_chunk_index_list({}))
                  .value()
                  .empty());
}

TEST(WireChunk, IndexListRejectsMalformed) {
  Bytes good = net::encode_chunk_index_list({1, 2, 3});
  Bytes truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(net::decode_chunk_index_list(truncated).ok());

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(net::decode_chunk_index_list(trailing).ok());

  // Count larger than the remaining payload could possibly hold.
  Bytes lying;
  put_varint(lying, 1000);
  put_varint(lying, 1);
  EXPECT_FALSE(net::decode_chunk_index_list(lying).ok());

  // An index that overflows 32 bits.
  Bytes huge;
  put_varint(huge, 1);
  put_varint(huge, std::uint64_t{1} << 40);
  EXPECT_FALSE(net::decode_chunk_index_list(huge).ok());
}

TEST(WireChunk, EveryByteFlipOfAFrameIsRejected) {
  net::WireMessage request;
  request.type = net::MessageType::kDownloadChunksRequest;
  request.fp = default_hasher().fingerprint(to_bytes("model"));
  request.payload = net::encode_chunk_index_list({0, 7, 63});
  Bytes frame = net::encode_message(request);
  ASSERT_EQ(net::decode_message(frame).value(), request);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes damaged = frame;
    damaged[i] ^= 0xFF;
    EXPECT_FALSE(net::decode_message(damaged).ok()) << "flipped byte " << i;
  }
}

// ------------------------------------------------------ transport-backed

/// One full client stack over its own registry and (fault-injectable)
/// transport, so stacks with different batch sizes can be compared
/// byte-for-byte and stat-for-stat.
struct Stack {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  docker::DockerRegistry docker_registry;
  GearRegistry server;
  LoopbackTransport loopback{server, &link};
  FaultyTransport faulty;
  RemoteGearRegistry remote{faulty, /*max_attempts=*/5};
  GearClient client{docker_registry, remote, link, disk};
  std::string container;

  Stack(const GearImage& image, std::size_t batch, FaultPlan plan = {})
      : faulty(loopback, plan) {
    push_gear_image(image, docker_registry, server, kPolicy);
    client.set_range_batch_chunks(batch);
    client.pull("ai:v1");
    container = client.store().create_container("ai:v1");
  }

  StatusOr<Bytes> read(std::uint64_t offset, std::uint64_t length) {
    return client.read_range(container, "models/weights.bin", offset, length);
  }
};

struct ChunkBatchFixture : ::testing::Test {
  Bytes model;
  GearImage gear_image;
  std::size_t n_chunks = 0;

  void SetUp() override {
    model = big_content(42, 10 * kChunk + 100);  // 11 chunks, partial tail
    n_chunks = (model.size() + kChunk - 1) / kChunk;
    vfs::FileTree root;
    root.add_file("models/weights.bin", model);
    root.add_file("etc/config.json", to_bytes("{\"layers\":128}"));
    docker::ImageBuilder b;
    b.add_snapshot(root);
    gear_image = GearConverter().convert(b.build("ai", "v1", {})).image;
  }

  Bytes slice(std::uint64_t offset, std::uint64_t length) const {
    return Bytes(model.begin() + static_cast<std::ptrdiff_t>(offset),
                 model.begin() + static_cast<std::ptrdiff_t>(offset + length));
  }
};

TEST_F(ChunkBatchFixture, WholeRangeCostsOneProbePlusCeilChunkFrames) {
  Stack s(gear_image, /*batch=*/8);
  EXPECT_EQ(s.read(0, model.size()).value(), model);

  const net::LoopbackServerStats& stats = s.loopback.server_stats();
  EXPECT_EQ(stats.manifest_round_trips, 1u);
  EXPECT_EQ(stats.chunk_round_trips, (n_chunks + 7) / 8);  // ⌈11/8⌉ = 2
  EXPECT_EQ(stats.chunk_items, n_chunks);
  EXPECT_EQ(s.server.stats().downloads, n_chunks);
  EXPECT_EQ(s.remote.stats().retries, 0u);
  EXPECT_EQ(s.remote.stats().item_refetches, 0u);

  // Everything is cached now: a repeat read adds zero round trips, and the
  // manifest is cached on both the client and the stub.
  std::uint64_t trips = stats.round_trips;
  EXPECT_EQ(s.read(1000, 10000).value(), slice(1000, 10000));
  EXPECT_EQ(stats.round_trips, trips);
}

TEST_F(ChunkBatchFixture, PartialRangeFetchesOnlyMissingChunks) {
  Stack s(gear_image, /*batch=*/64);
  // Chunks 2..4 first (one frame), then 0..6: only 0,1,5,6 are missing.
  EXPECT_EQ(s.read(2 * kChunk, 3 * kChunk).value(),
            slice(2 * kChunk, 3 * kChunk));
  const net::LoopbackServerStats& stats = s.loopback.server_stats();
  EXPECT_EQ(stats.chunk_round_trips, 1u);
  EXPECT_EQ(stats.chunk_items, 3u);

  EXPECT_EQ(s.read(0, 7 * kChunk).value(), slice(0, 7 * kChunk));
  EXPECT_EQ(stats.chunk_round_trips, 2u);
  EXPECT_EQ(stats.chunk_items, 7u);
  EXPECT_EQ(stats.manifest_round_trips, 1u);
}

TEST_F(ChunkBatchFixture, BatchOneMatchesBatchSixtyFourExactly) {
  Stack serial(gear_image, /*batch=*/1);
  Stack batched(gear_image, /*batch=*/64);

  // Same read sequence through both stacks.
  const std::uint64_t off = 3 * kChunk - 57;
  const std::uint64_t len = 5 * kChunk + 200;
  EXPECT_EQ(serial.read(off, len).value(), batched.read(off, len).value());
  EXPECT_EQ(serial.read(0, model.size()).value(),
            batched.read(0, model.size()).value());
  EXPECT_EQ(serial.read(0, model.size()).value(), model);

  // Identical assembled bytes, wire volume, cache contents, and registry
  // stats — only the round-trip count differs.
  EXPECT_EQ(serial.client.range_bytes_downloaded(),
            batched.client.range_bytes_downloaded());
  EXPECT_EQ(serial.server.stats().downloads, batched.server.stats().downloads);
  std::vector<Fingerprint> a = serial.client.store().cache().fingerprints();
  std::vector<Fingerprint> b = batched.client.store().cache().fingerprints();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  EXPECT_EQ(serial.loopback.server_stats().chunk_items,
            batched.loopback.server_stats().chunk_items);
  EXPECT_EQ(serial.loopback.server_stats().chunk_round_trips, n_chunks);
  // Two reads, each one frame: chunks 2..8, then the missing 0,1,9,10.
  EXPECT_EQ(batched.loopback.server_stats().chunk_round_trips, 2u);
}

TEST_F(ChunkBatchFixture, FaultInjectionNeverCorruptsAnAcceptedRead) {
  // Every second frame has one byte flipped: the CRC rejects it and the
  // stub retransmits. The assembled bytes must still be exact, at batch 1
  // and at batch 64.
  FaultPlan plan{FaultPlan::Kind::kFlipByte, /*period=*/2};
  Stack serial(gear_image, /*batch=*/1, plan);
  Stack batched(gear_image, /*batch=*/64, plan);

  EXPECT_EQ(serial.read(0, model.size()).value(), model);
  EXPECT_EQ(batched.read(0, model.size()).value(), model);
  EXPECT_GT(serial.faulty.faults_injected(), 0u);
  EXPECT_GT(batched.faulty.faults_injected(), 0u);
  EXPECT_GT(serial.remote.stats().retries + serial.remote.stats().integrity_failures, 0u);

  // Cache contents converge to the same chunk set despite the faults.
  std::vector<Fingerprint> a = serial.client.store().cache().fingerprints();
  std::vector<Fingerprint> b = batched.client.store().cache().fingerprints();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(ChunkBatchFixture, TruncatedAndDroppedFramesAreRetried) {
  Stack truncating(gear_image, /*batch=*/8,
                   FaultPlan{FaultPlan::Kind::kTruncate, /*period=*/3});
  EXPECT_EQ(truncating.read(0, model.size()).value(), model);
  EXPECT_GT(truncating.remote.stats().retries, 0u);

  Stack dropping(gear_image, /*batch=*/8,
                 FaultPlan{FaultPlan::Kind::kDrop, /*period=*/2});
  EXPECT_EQ(dropping.read(0, model.size()).value(), model);
  EXPECT_GT(dropping.remote.stats().retries, 0u);
}

/// Damages one item payload inside an otherwise intact frame (the CRC is
/// recomputed), so only end-to-end chunk verification can catch it — the
/// trigger for the item-granular refetch level of the retry protocol.
class ItemCorruptingTransport final : public net::Transport {
 public:
  explicit ItemCorruptingTransport(net::Transport& inner) : inner_(inner) {}

  Bytes round_trip(BytesView request_frame) override {
    Bytes frame = inner_.round_trip(request_frame);
    if (!armed_) return frame;
    StatusOr<net::WireMessage> msg = net::decode_message(frame);
    if (!msg.ok() || msg->items.empty() || msg->items[0].payload.empty()) {
      return frame;
    }
    msg->items[0].payload[0] ^= 0xFF;
    armed_ = false;
    return net::encode_message(*msg);
  }

 private:
  net::Transport& inner_;
  bool armed_ = true;
};

TEST_F(ChunkBatchFixture, CorruptItemInIntactFrameRefetchesOnlyThatChunk) {
  GearRegistry server;
  docker::DockerRegistry docker_registry;
  push_gear_image(gear_image, docker_registry, server, kPolicy);
  LoopbackTransport loopback(server);
  ItemCorruptingTransport corrupting(loopback);
  RemoteGearRegistry remote(corrupting, 5);

  Fingerprint model_fp = default_hasher().fingerprint(model);
  StatusOr<ChunkManifest> manifest = remote.chunk_manifest(model_fp);
  ASSERT_TRUE(manifest.ok());

  std::vector<std::uint32_t> all(n_chunks);
  for (std::size_t i = 0; i < n_chunks; ++i) all[i] = static_cast<std::uint32_t>(i);
  StatusOr<std::vector<Bytes>> chunks =
      remote.download_chunks(model_fp, *manifest, all);
  ASSERT_TRUE(chunks.ok());
  Bytes assembled;
  for (const Bytes& c : *chunks) append(assembled, c);
  EXPECT_EQ(assembled, model);

  // One item refetched in one follow-up frame; the frame itself never
  // retransmitted whole.
  EXPECT_EQ(remote.stats().item_refetches, 1u);
  EXPECT_EQ(remote.stats().retries, 0u);
  EXPECT_EQ(loopback.server_stats().chunk_round_trips, 2u);
  EXPECT_EQ(loopback.server_stats().chunk_items, n_chunks + 1);
}

TEST_F(ChunkBatchFixture, EdgeRangesSpanFinalPartialChunkAndBounds) {
  Stack s(gear_image, /*batch=*/4);

  // Straddles the last full chunk and the 100-byte tail chunk.
  std::uint64_t off = 10 * kChunk - 50;
  EXPECT_EQ(s.read(off, 150).value(), slice(off, 150));
  // Exactly the tail.
  EXPECT_EQ(s.read(model.size() - 100, 100).value(),
            slice(model.size() - 100, 100));

  // Zero-length, offset at EOF, and offset past EOF are invalid.
  EXPECT_EQ(s.read(0, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.read(model.size(), 1).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.read(model.size() + 5, 1).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.read(model.size() - 10, 11).code(), ErrorCode::kInvalidArgument);
}

TEST(ChunkBatchPlain, SingleChunkFileFallsBackToPlainMaterialization) {
  // A file whose manifest would hold one chunk is stored plain; the remote
  // probe answers "not chunked" (kNotFound) and whole-file download serves.
  GearRegistry server;
  ChunkPolicy tiny{/*threshold_bytes=*/1024, /*chunk_bytes=*/8192};
  Bytes content = big_content(7, 5000);
  Fingerprint fp = default_hasher().fingerprint(content);
  ASSERT_TRUE(server.upload_chunked(fp, content, tiny));
  ASSERT_FALSE(server.is_chunked(fp));

  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3);
  EXPECT_FALSE(remote.is_chunked(fp));
  EXPECT_EQ(remote.chunk_manifest(fp).code(), ErrorCode::kNotFound);
  EXPECT_EQ(remote.download(fp).value(), content);
  // Probe answered once and cached (positive or negative, storage form is
  // immutable): the second is_chunked adds no round trip.
  std::uint64_t probes = transport.server_stats().manifest_round_trips;
  EXPECT_EQ(probes, 1u);
  EXPECT_FALSE(remote.is_chunked(fp));
  EXPECT_EQ(transport.server_stats().manifest_round_trips, probes);
}

TEST(ChunkBatchPlain, DownloadChunksOfUnchunkedFileIsNotFound) {
  GearRegistry server;
  Bytes content = big_content(8, 2000);
  Fingerprint fp = default_hasher().fingerprint(content);
  server.upload(fp, content);

  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3);
  ChunkManifest fake;
  fake.file_size = content.size();
  fake.chunk_bytes = 1024;
  fake.chunks.resize(2);
  EXPECT_EQ(remote.download_chunks(fp, fake, {0, 1}).code(),
            ErrorCode::kNotFound);
}

// ------------------------------------------------- concurrent clients

TEST(ConcurrentChunkBatch, SharedStubServesParallelChunkFetches) {
  const std::size_t kThreads = 8;
  const std::size_t kChunks = 32;
  GearRegistry server;
  Bytes content = big_content(99, kChunks * kChunk);
  Fingerprint fp = default_hasher().fingerprint(content);
  ASSERT_TRUE(server.upload_chunked(fp, content,
                                    ChunkPolicy{16 * 1024, kChunk}));

  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3);
  ChunkManifest manifest = remote.chunk_manifest(fp).value();
  ASSERT_EQ(manifest.chunks.size(), kChunks);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread fetches every chunk in batches of 8, in a thread-local
      // rotation so concurrent frames differ.
      for (std::size_t b = 0; b < kChunks; b += 8) {
        std::vector<std::uint32_t> batch;
        for (std::size_t i = 0; i < 8; ++i) {
          batch.push_back(static_cast<std::uint32_t>((b + i + t) % kChunks));
        }
        StatusOr<std::vector<Bytes>> got =
            remote.download_chunks(fp, manifest, batch);
        if (!got.ok()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
          BytesView want = chunk_view(content, manifest, batch[i]);
          if ((*got)[i] != Bytes(want.begin(), want.end())) ++mismatches;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(transport.server_stats().chunk_items, kThreads * kChunks);
  EXPECT_EQ(remote.stats().integrity_failures, 0u);
}

TEST(ConcurrentChunkBatch, ConcurrentManifestProbesConvergeAndCache) {
  GearRegistry server;
  Bytes content = big_content(100, 20 * kChunk);
  Fingerprint fp = default_hasher().fingerprint(content);
  ASSERT_TRUE(server.upload_chunked(fp, content,
                                    ChunkPolicy{16 * 1024, kChunk}));

  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      StatusOr<ChunkManifest> m = remote.chunk_manifest(fp);
      if (!m.ok() || m->chunks.size() != 20u) ++bad;
      if (!remote.is_chunked(fp)) ++bad;
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad, 0);

  // The answer is cached now: further probes cost nothing.
  std::uint64_t probes = transport.server_stats().manifest_round_trips;
  EXPECT_GE(probes, 1u);
  EXPECT_LE(probes, 8u);
  remote.chunk_manifest(fp).value();
  EXPECT_EQ(transport.server_stats().manifest_round_trips, probes);
}

}  // namespace
}  // namespace gear
