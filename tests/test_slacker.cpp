// Unit tests for the Slacker block-level baseline.
#include <gtest/gtest.h>

#include "slacker/slacker.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear::slacker {
namespace {

constexpr std::uint64_t kBlock = 512;

VirtualBlockDevice device_of(const vfs::FileTree& t,
                             std::uint64_t capacity = 1 << 16) {
  return VirtualBlockDevice::from_tree(t, kBlock, capacity);
}

TEST(BlockDevice, PacksFilesContiguously) {
  vfs::FileTree t;
  t.add_file("a", Bytes(1000, 'a'));  // 2 blocks
  t.add_file("b", Bytes(100, 'b'));   // 1 block
  VirtualBlockDevice dev = device_of(t);
  Extent ea = dev.extent_of("a").value();
  Extent eb = dev.extent_of("b").value();
  EXPECT_EQ(ea.first_block, 0u);
  EXPECT_EQ(ea.block_count, 2u);
  EXPECT_EQ(eb.first_block, 2u);
  EXPECT_EQ(eb.block_count, 1u);
  EXPECT_EQ(dev.used_blocks(), 3u);
  EXPECT_EQ(dev.file_count(), 2u);
}

TEST(BlockDevice, SmallFilesRoundUpToWholeBlocks) {
  vfs::FileTree t;
  t.add_file("tiny", Bytes(1, 'x'));
  t.add_file("empty", {});
  VirtualBlockDevice dev = device_of(t);
  EXPECT_EQ(dev.extent_of("tiny").value().block_count, 1u);
  EXPECT_EQ(dev.extent_of("empty").value().block_count, 1u);
}

TEST(BlockDevice, ReadBlockReturnsContent) {
  vfs::FileTree t;
  t.add_file("f", Bytes(600, 'z'));
  VirtualBlockDevice dev = device_of(t);
  Bytes b0 = dev.read_block(0);
  EXPECT_EQ(b0.size(), kBlock);
  EXPECT_EQ(b0[0], 'z');
  Bytes b1 = dev.read_block(1);
  EXPECT_EQ(b1[87], 'z');   // 600-512=88 bytes of payload
  EXPECT_EQ(b1[88], 0);     // zero padding after the file tail
  EXPECT_THROW(dev.read_block(1 << 20), Error);
}

TEST(BlockDevice, FixedCapacityEnforced) {
  vfs::FileTree t;
  t.add_file("big", Bytes(10 * kBlock, 'b'));
  EXPECT_THROW(VirtualBlockDevice::from_tree(t, kBlock, 5), Error);
  EXPECT_THROW(VirtualBlockDevice::from_tree(t, 0, 5), Error);
}

TEST(BlockDevice, MissingExtent) {
  vfs::FileTree t;
  t.add_file("present", Bytes(10, 'p'));
  VirtualBlockDevice dev = device_of(t);
  EXPECT_FALSE(dev.extent_of("absent").ok());
}

// ---------------------------------------------------------------- client

struct SlackerFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  SlackerRegistry registry;
  vfs::FileTree root;
  workload::AccessSet access;

  void SetUp() override {
    root = gear::testing::random_tree(1000, 30, 4096);
    registry.put_image("app:v1",
                       VirtualBlockDevice::from_tree(root, kBlock, 1 << 16));
    access = workload::derive_access_set(
        root, workload::AccessProfile{0.4, 0.8, 3, 1});
    ASSERT_FALSE(access.files.empty());
  }
};

TEST_F(SlackerFixture, DeployFetchesAccessedBlocksOnly) {
  SlackerClient client(registry, link, disk);
  docker::DeployStats stats = client.deploy("app:v1", access);
  const VirtualBlockDevice& dev = registry.device("app:v1");

  // Only accessed extents were fetched...
  std::uint64_t accessed_blocks = 0;
  for (const auto& fa : access.files) {
    accessed_blocks += dev.extent_of(fa.path).value().block_count;
  }
  EXPECT_EQ(client.blocks_fetched(), accessed_blocks);
  EXPECT_EQ(stats.run_bytes_downloaded, accessed_blocks * kBlock);
  // ...which is less than the whole device.
  EXPECT_LT(accessed_blocks, dev.used_blocks());
  // Block rounding means bytes moved >= file bytes accessed.
  EXPECT_GE(stats.run_bytes_downloaded, access.total_bytes());
}

TEST_F(SlackerFixture, BlocksCachedWithinSameVersion) {
  SlackerClient client(registry, link, disk);
  client.deploy("app:v1", access);
  std::uint64_t first = client.blocks_fetched();
  docker::DeployStats second = client.deploy("app:v1", access);
  EXPECT_EQ(client.blocks_fetched(), first);  // nothing re-fetched
  EXPECT_EQ(second.run_bytes_downloaded, 0u);
}

TEST_F(SlackerFixture, NoSharingAcrossVersions) {
  // v2 has identical content under a different reference: Slacker must
  // re-download everything (no content addressing).
  registry.put_image("app:v2",
                     VirtualBlockDevice::from_tree(root, kBlock, 1 << 16));
  SlackerClient client(registry, link, disk);
  docker::DeployStats s1 = client.deploy("app:v1", access);
  docker::DeployStats s2 = client.deploy("app:v2", access);
  EXPECT_EQ(s1.run_bytes_downloaded, s2.run_bytes_downloaded);
  EXPECT_GT(s2.run_bytes_downloaded, 0u);
}

TEST_F(SlackerFixture, RegistryStoresDevicesWithoutDedup) {
  std::uint64_t one = registry.storage_bytes();
  registry.put_image("app:v2",
                     VirtualBlockDevice::from_tree(root, kBlock, 1 << 16));
  EXPECT_EQ(registry.storage_bytes(), 2 * one);
}

TEST_F(SlackerFixture, PullPhaseIsConstantAndSmall) {
  SlackerClient client(registry, link, disk);
  docker::DeployStats stats = client.deploy("app:v1", access);
  EXPECT_LT(stats.pull.bytes_downloaded, 8192u);
  EXPECT_LT(stats.pull.seconds, 0.1);
}

TEST_F(SlackerFixture, UnknownImageThrows) {
  SlackerClient client(registry, link, disk);
  EXPECT_THROW(client.deploy("ghost:v1", access), Error);
}

TEST_F(SlackerFixture, ClearCacheForcesRefetch) {
  SlackerClient client(registry, link, disk);
  client.deploy("app:v1", access);
  std::uint64_t first = client.blocks_fetched();
  client.clear_cache();
  client.deploy("app:v1", access);
  EXPECT_EQ(client.blocks_fetched(), 2 * first);
}

}  // namespace
}  // namespace gear::slacker
