// Deployment over the wire protocol: GearClient + push_gear_image running
// against a RemoteGearRegistry stub and a LoopbackTransport. Proves the
// round-trip arithmetic of the batch protocol (⌈N/batch⌉ download round
// trips for an N-file fetch), byte-identity between per-file and batched
// modes, and singleflight coalescing of concurrent same-file faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

using net::LoopbackTransport;
using net::RemoteGearRegistry;

struct RemoteDeployFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  docker::DockerRegistry docker_registry;

  docker::Image original;
  GearImage gear_image;
  workload::AccessSet access;

  void SetUp() override {
    vfs::FileTree s0 = gear::testing::random_tree(700, 30, 6000);
    vfs::FileTree s1 = gear::testing::mutate_tree(s0, 701, 10);
    docker::ImageBuilder b;
    b.add_snapshot(s0).add_snapshot(s1);
    original = b.build("app", "v1", docker::ImageConfig{});
    gear_image = GearConverter().convert(original).image;
    access = workload::derive_access_set(
        original.flatten(), workload::AccessProfile{0.3, 0.8, 7, 1});
    ASSERT_FALSE(access.files.empty());
  }
};

// Converter fingerprints may be collision-salted (paper §III-B), so remote
// stubs in these tests skip the content-hash check; the frame CRC still
// guards every transfer.
constexpr bool kNoVerify = false;

TEST_F(RemoteDeployFixture, PrefetchIssuesOneDownloadRoundTripPerBatch) {
  GearRegistry server;
  push_gear_image(gear_image, docker_registry, server);
  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3, kNoVerify);
  GearClient client(docker_registry, remote, link, disk);
  client.set_download_batch_files(8);

  client.pull("app:v1");
  auto [fetched, bytes] = client.prefetch_remaining("app:v1");
  ASSERT_GT(fetched, 8u);  // several batches, or the test proves nothing
  EXPECT_GT(bytes, 0u);

  // The deployment-path claim: N files moved in ⌈N/8⌉ round trips, not N.
  const net::LoopbackServerStats& stats = transport.server_stats();
  EXPECT_EQ(stats.download_items, fetched);
  EXPECT_EQ(stats.download_round_trips, (fetched + 7) / 8);
  EXPECT_EQ(remote.stats().retries, 0u);
  EXPECT_EQ(remote.stats().item_refetches, 0u);

  // Fully local afterwards: a second prefetch moves nothing.
  auto [again_files, again_bytes] = client.prefetch_remaining("app:v1");
  EXPECT_EQ(again_files, 0u);
  EXPECT_EQ(again_bytes, 0u);
  EXPECT_EQ(transport.server_stats().download_items, fetched);
}

TEST_F(RemoteDeployFixture, BulkWarmDeployOverTransportServesCorrectContent) {
  GearRegistry server;
  push_gear_image(gear_image, docker_registry, server);
  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3, kNoVerify);
  GearClient client(docker_registry, remote, link, disk);
  client.set_download_batch_files(16);
  client.set_bulk_warm_deploy(true);

  std::string container;
  docker::DeployStats stats = client.deploy("app:v1", access, &container);
  EXPECT_GT(stats.run_bytes_downloaded, 0u);

  const net::LoopbackServerStats& server_stats = transport.server_stats();
  EXPECT_GT(server_stats.download_items, 0u);
  EXPECT_LE(server_stats.download_items, access.files.size());
  EXPECT_EQ(server_stats.download_round_trips,
            (server_stats.download_items + 15) / 16);

  GearFileViewer v = client.open_viewer(container);
  vfs::FileTree flat = original.flatten();
  for (const auto& fa : access.files) {
    EXPECT_EQ(v.read_file(fa.path).value(), flat.lookup(fa.path)->content());
  }
}

TEST_F(RemoteDeployFixture, BatchedModeByteIdenticalToPerFileMode) {
  // Two independent full stacks, same seeded server content; one fetches
  // per-file (batch = 1 — the serial protocol over the same messages), the
  // other in batches of 64. Everything except the round-trip count must
  // come out identical.
  struct Stack {
    sim::SimClock clock;
    sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
    sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
    docker::DockerRegistry docker_registry;
    GearRegistry server;
    LoopbackTransport transport{server};
    RemoteGearRegistry remote{transport, 3, kNoVerify};
  };
  Stack per_file;
  Stack batched;
  push_gear_image(gear_image, per_file.docker_registry, per_file.server);
  push_gear_image(gear_image, batched.docker_registry, batched.server);

  GearClient client_a(per_file.docker_registry, per_file.remote, per_file.link,
                      per_file.disk);
  client_a.set_download_batch_files(1);
  GearClient client_b(batched.docker_registry, batched.remote, batched.link,
                      batched.disk);
  client_b.set_download_batch_files(64);

  client_a.pull("app:v1");
  client_b.pull("app:v1");
  auto [fetched_a, bytes_a] = client_a.prefetch_remaining("app:v1");
  auto [fetched_b, bytes_b] = client_b.prefetch_remaining("app:v1");

  // Identical transfer results...
  EXPECT_EQ(fetched_a, fetched_b);
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(per_file.server.stats().downloads,
            batched.server.stats().downloads);
  EXPECT_EQ(per_file.transport.server_stats().download_items,
            batched.transport.server_stats().download_items);
  // ... and identical local state: every gear file cached with the original
  // bytes on both sides.
  for (const auto& [fp, content] : gear_image.files) {
    StatusOr<Bytes> got_a = client_a.store().cache().get(fp);
    StatusOr<Bytes> got_b = client_b.store().cache().get(fp);
    ASSERT_TRUE(got_a.ok());
    ASSERT_TRUE(got_b.ok());
    EXPECT_EQ(*got_a, content);
    EXPECT_EQ(*got_b, content);
  }
  // Only the round-trip count differs: N versus ⌈N/64⌉.
  EXPECT_EQ(per_file.transport.server_stats().download_round_trips, fetched_a);
  EXPECT_EQ(batched.transport.server_stats().download_round_trips,
            (fetched_b + 63) / 64);
  EXPECT_LT(batched.transport.server_stats().download_round_trips,
            per_file.transport.server_stats().download_round_trips);
}

TEST_F(RemoteDeployFixture, PushOverRemoteMatchesInProcessPush) {
  GearRegistry in_process;
  docker::DockerRegistry docker_a;
  std::size_t uploaded_local = push_gear_image(gear_image, docker_a, in_process);

  GearRegistry server;
  docker::DockerRegistry docker_b;
  LoopbackTransport transport(server);
  RemoteGearRegistry remote(transport, 3, kNoVerify);
  std::size_t uploaded_remote = push_gear_image(gear_image, docker_b, remote);

  // The wire push leaves the server byte-identical to an in-process push.
  EXPECT_EQ(uploaded_remote, uploaded_local);
  EXPECT_EQ(server.storage_bytes(), in_process.storage_bytes());
  EXPECT_EQ(server.object_count(), in_process.object_count());
  EXPECT_EQ(server.stats().queries, in_process.stats().queries);
  EXPECT_EQ(server.stats().uploads_accepted,
            in_process.stats().uploads_accepted);
  EXPECT_EQ(server.stats().uploads_deduplicated,
            in_process.stats().uploads_deduplicated);

  // Round-trip arithmetic: one query batch + ⌈uploaded/64⌉ upload batches.
  EXPECT_EQ(transport.server_stats().query_round_trips, 1u);
  EXPECT_EQ(transport.server_stats().query_items, gear_image.files.size());
  EXPECT_EQ(transport.server_stats().upload_round_trips,
            (uploaded_remote + 63) / 64);
  EXPECT_EQ(transport.server_stats().upload_items, uploaded_remote);

  // Re-push: everything deduplicates via one query round trip, no uploads.
  EXPECT_EQ(push_gear_image(gear_image, docker_b, remote), 0u);
  EXPECT_EQ(transport.server_stats().query_round_trips, 2u);
  EXPECT_EQ(transport.server_stats().upload_items, uploaded_remote);

  // And the pushed image deploys correctly end to end over the wire.
  GearClient client(docker_b, remote, link, disk);
  std::string container;
  client.deploy("app:v1", access, &container);
  GearFileViewer v = client.open_viewer(container);
  vfs::FileTree flat = original.flatten();
  for (const auto& fa : access.files) {
    EXPECT_EQ(v.read_file(fa.path).value(), flat.lookup(fa.path)->content());
  }
}

/// Wraps the in-process registry and holds every download until the test
/// opens the gate — freezes a flight leader mid-download so a concurrent
/// reader of the same fingerprint demonstrably joins the flight instead of
/// fetching on its own.
class GatedRegistry final : public FileRegistryApi {
 public:
  explicit GatedRegistry(GearRegistry& inner) : inner_(inner) {}

  bool query(const Fingerprint& fp) const override { return inner_.query(fp); }
  bool upload(const Fingerprint& fp, BytesView content) override {
    return inner_.upload(fp, content);
  }
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override {
    return inner_.upload_precompressed(fp, std::move(compressed));
  }
  StatusOr<Bytes> download(const Fingerprint& fp) const override {
    return inner_.download(fp);
  }
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
      std::uint64_t* wire_bytes_out) const override {
    download_calls_.fetch_add(1);
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return open_; });
    return inner_.download_batch(fps, pool, wire_bytes_out);
  }
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override {
    return inner_.stored_size(fp);
  }

  void open_gate() {
    {
      std::lock_guard<std::mutex> lock(m_);
      open_ = true;
    }
    cv_.notify_all();
  }
  int download_calls() const { return download_calls_.load(); }

 private:
  GearRegistry& inner_;
  mutable std::atomic<int> download_calls_{0};
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  bool open_ = false;
};

TEST(ParallelMaterialize, SingleflightCoalescesConcurrentSameFileFaults) {
  // Two images sharing one file fingerprint (distinct images, because a
  // viewer materialization mutates its own image's index tree): two
  // containers fault the shared file at the same time; exactly one registry
  // download must happen, with the second reader joining the flight.
  Rng rng(42);
  Bytes shared_content = rng.next_bytes(4000, 0.4);
  vfs::FileTree t1;
  t1.add_directory("data");
  t1.add_file("data/shared.bin", shared_content);
  t1.add_file("data/only-one.txt", to_bytes("image one"));
  vfs::FileTree t2;
  t2.add_directory("data");
  t2.add_file("data/shared.bin", shared_content);
  t2.add_file("data/only-two.txt", to_bytes("image two"));

  docker::ImageBuilder b1;
  b1.add_snapshot(t1);
  docker::Image image1 = b1.build("one", "v1", docker::ImageConfig{});
  docker::ImageBuilder b2;
  b2.add_snapshot(t2);
  docker::Image image2 = b2.build("two", "v1", docker::ImageConfig{});

  docker::DockerRegistry docker_registry;
  GearRegistry inner;
  push_gear_image(GearConverter().convert(image1).image, docker_registry,
                  inner);
  push_gear_image(GearConverter().convert(image2).image, docker_registry,
                  inner);
  GatedRegistry gated(inner);

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk(clock, 0.0001, 500.0, 480.0);
  GearClient client(docker_registry, gated, link, disk);
  client.pull("one:v1");
  client.pull("two:v1");
  std::string c1 = client.store().create_container("one:v1");
  std::string c2 = client.store().create_container("two:v1");
  GearFileViewer v1 = client.open_viewer(c1);
  GearFileViewer v2 = client.open_viewer(c2);

  Bytes got1, got2;
  std::atomic<bool> second_started{false};
  std::thread leader([&] { got1 = v1.read_file("data/shared.bin").value(); });
  std::thread joiner([&] {
    // Start only once the leader is pinned inside the gated download, so
    // this read is guaranteed to find the flight in progress.
    while (gated.download_calls() == 0) std::this_thread::yield();
    second_started.store(true);
    got2 = v2.read_file("data/shared.bin").value();
  });

  while (!second_started.load()) std::this_thread::yield();
  // Give the joiner time to travel through the cache miss into the flight
  // wait before the leader is released.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gated.open_gate();
  leader.join();
  joiner.join();

  EXPECT_EQ(got1, shared_content);
  EXPECT_EQ(got2, shared_content);
  EXPECT_EQ(gated.download_calls(), 1);
  EXPECT_EQ(client.coalesced_hits(), 1u);
  EXPECT_EQ(inner.stats().downloads, 1u);
}

}  // namespace
}  // namespace gear
