// Unit and property tests for the Overlay2-style union mount.
#include <gtest/gtest.h>

#include "docker/overlay.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "vfs/tree_diff.hpp"

namespace gear::docker {
namespace {

struct OverlayFixture : ::testing::Test {
  vfs::FileTree lower1;  // bottom
  vfs::FileTree lower2;  // top read-only layer (a diff tree)

  void SetUp() override {
    lower1.add_file("etc/conf", to_bytes("base"));
    lower1.add_file("bin/tool", to_bytes("v1"));
    lower1.add_file("data/keep", to_bytes("keep"));
    lower1.add_symlink("bin/t", "tool");

    // lower2 is a diff: modifies bin/tool, deletes data/keep, adds new file.
    lower2.add_file("bin/tool", to_bytes("v2"));
    lower2.add_whiteout("data/keep");
    lower2.add_file("srv/new", to_bytes("fresh"));
  }

  std::vector<const vfs::FileTree*> lowers() { return {&lower1, &lower2}; }
};

TEST_F(OverlayFixture, TopLayerMasksBottom) {
  OverlayMount m(lowers());
  EXPECT_EQ(to_string(m.read_file("bin/tool").value()), "v2");
}

TEST_F(OverlayFixture, WhiteoutHidesLowerEntry) {
  OverlayMount m(lowers());
  EXPECT_FALSE(m.exists("data/keep"));
  EXPECT_FALSE(m.read_file("data/keep").ok());
}

TEST_F(OverlayFixture, UntouchedLowerVisible) {
  OverlayMount m(lowers());
  EXPECT_EQ(to_string(m.read_file("etc/conf").value()), "base");
  EXPECT_EQ(m.read_symlink("bin/t").value(), "tool");
}

TEST_F(OverlayFixture, ListDirMergesAndMasks) {
  OverlayMount m(lowers());
  auto names = m.list_dir("");
  EXPECT_NE(std::find(names.begin(), names.end(), "srv"), names.end());
  auto data = m.list_dir("data");
  EXPECT_TRUE(data.empty());  // only child was whited out
  auto bin = m.list_dir("bin");
  ASSERT_EQ(bin.size(), 2u);
  EXPECT_EQ(bin[0], "t");
  EXPECT_EQ(bin[1], "tool");
}

TEST_F(OverlayFixture, WriteGoesToUpperOnly) {
  OverlayMount m(lowers());
  m.write_file("etc/conf", to_bytes("modified"));
  EXPECT_EQ(to_string(m.read_file("etc/conf").value()), "modified");
  // Lower layers untouched.
  EXPECT_EQ(to_string(lower1.lookup("etc/conf")->content()), "base");
  // Upper diff records the copy-up.
  ASSERT_NE(m.upper_diff().lookup("etc/conf"), nullptr);
}

TEST_F(OverlayFixture, RemoveLowerCreatesWhiteout) {
  OverlayMount m(lowers());
  EXPECT_TRUE(m.remove("etc/conf"));
  EXPECT_FALSE(m.exists("etc/conf"));
  ASSERT_NE(m.upper_diff().lookup("etc/conf"), nullptr);
  EXPECT_TRUE(m.upper_diff().lookup("etc/conf")->is_whiteout());
}

TEST_F(OverlayFixture, RemoveUpperOnlyFileLeavesNoWhiteout) {
  OverlayMount m(lowers());
  m.write_file("tmp/scratch", to_bytes("x"));
  EXPECT_TRUE(m.remove("tmp/scratch"));
  EXPECT_FALSE(m.exists("tmp/scratch"));
  EXPECT_EQ(m.upper_diff().lookup("tmp/scratch"), nullptr);
}

TEST_F(OverlayFixture, RemoveMissingReturnsFalse) {
  OverlayMount m(lowers());
  EXPECT_FALSE(m.remove("no/such/path"));
}

TEST_F(OverlayFixture, DeleteThenRecreateDirIsOpaque) {
  OverlayMount m(lowers());
  ASSERT_TRUE(m.remove("bin"));
  EXPECT_FALSE(m.exists("bin/tool"));
  m.make_dir("bin");
  m.write_file("bin/newtool", to_bytes("n"));
  EXPECT_TRUE(m.exists("bin/newtool"));
  // The old lower contents must stay hidden.
  EXPECT_FALSE(m.exists("bin/tool"));
  EXPECT_FALSE(m.exists("bin/t"));
}

TEST_F(OverlayFixture, WriteUnderDeletedDirectoryHidesLower) {
  OverlayMount m(lowers());
  ASSERT_TRUE(m.remove("bin"));
  m.write_file("bin/other", to_bytes("o"));
  EXPECT_TRUE(m.exists("bin/other"));
  EXPECT_FALSE(m.exists("bin/tool"));
}

TEST_F(OverlayFixture, WriteThroughFileComponentFails) {
  OverlayMount m(lowers());
  EXPECT_THROW(m.write_file("etc/conf/sub", to_bytes("x")), Error);
}

TEST_F(OverlayFixture, MergedEqualsFlattenPlusUpper) {
  OverlayMount m(lowers());
  m.write_file("etc/conf", to_bytes("modified"));
  m.remove("bin/tool");
  m.write_file("srv/extra", to_bytes("e"));

  vfs::FileTree expected = vfs::apply_layer(
      vfs::apply_layer(vfs::apply_layer(vfs::FileTree{}, lower1), lower2),
      m.upper_diff());
  EXPECT_TRUE(m.merged().equals(expected));
}

TEST(Overlay, NullLowerRejected) {
  EXPECT_THROW(OverlayMount({nullptr}), Error);
}

TEST(Overlay, EmptyMountWorks) {
  OverlayMount m({});
  EXPECT_FALSE(m.exists("anything"));
  m.write_file("a/b", to_bytes("x"));
  EXPECT_EQ(to_string(m.read_file("a/b").value()), "x");
}

TEST(Overlay, OpaqueLowerDirStopsMerge) {
  vfs::FileTree l1, l2;
  l1.add_file("d/hidden", to_bytes("h"));
  vfs::FileNode& d = l2.add_directory("d");
  d.set_opaque(true);
  l2.add_file("d/shown", to_bytes("s"));
  OverlayMount m({&l1, &l2});
  EXPECT_FALSE(m.exists("d/hidden"));
  EXPECT_TRUE(m.exists("d/shown"));
}

TEST(Overlay, DirOverFileMasksCompletely) {
  vfs::FileTree l1, l2;
  l1.add_file("p", to_bytes("file"));
  l2.add_file("p/inner", to_bytes("i"));  // p is now a dir in l2
  OverlayMount m({&l1, &l2});
  ASSERT_TRUE(m.exists("p/inner"));
  EXPECT_TRUE(m.lookup("p").node->is_directory());
}

TEST(Overlay, InUpperFlagAccurate) {
  vfs::FileTree l1;
  l1.add_file("low", to_bytes("l"));
  OverlayMount m({&l1});
  m.write_file("up", to_bytes("u"));
  EXPECT_FALSE(m.lookup("low").in_upper);
  EXPECT_TRUE(m.lookup("up").in_upper);
}

TEST(Overlay, ReadNonRegularFails) {
  vfs::FileTree l1;
  l1.add_directory("d");
  l1.add_symlink("s", "d");
  OverlayMount m({&l1});
  EXPECT_FALSE(m.read_file("d").ok());
  EXPECT_FALSE(m.read_file("s").ok());
  EXPECT_FALSE(m.read_symlink("d").ok());
}

// Property: for random layer stacks, every path visible in
// flatten_layers(layers) resolves identically through the lazy union, and
// readdir listings match.
class OverlayEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayEquivalence, LazyLookupMatchesFlatten) {
  std::uint64_t seed = GetParam();
  vfs::FileTree s0 = gear::testing::random_tree(seed, 35);
  vfs::FileTree s1 = gear::testing::mutate_tree(s0, seed + 1, 20);
  vfs::FileTree s2 = gear::testing::mutate_tree(s1, seed + 2, 20);

  std::vector<vfs::FileTree> layers;
  layers.push_back(vfs::diff_trees(vfs::FileTree{}, s0));
  layers.push_back(vfs::diff_trees(s0, s1));
  layers.push_back(vfs::diff_trees(s1, s2));

  std::vector<const vfs::FileTree*> lower_ptrs;
  for (const auto& l : layers) lower_ptrs.push_back(&l);
  OverlayMount mount(lower_ptrs);

  vfs::FileTree flat = vfs::flatten_layers(layers);
  EXPECT_TRUE(flat.equals(s2));

  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    OverlayEntry e = mount.lookup(path);
    ASSERT_NE(e.node, nullptr) << path;
    EXPECT_EQ(e.node->type(), node.type()) << path;
    if (node.is_regular()) {
      EXPECT_EQ(mount.read_file(path).value(), node.content()) << path;
    }
    if (node.is_directory()) {
      std::vector<std::string> expected;
      for (const auto& [name, child] : node.children()) {
        (void)child;
        expected.push_back(name);
      }
      EXPECT_EQ(mount.list_dir(path), expected) << path;
    }
  });

  // And the union exposes nothing beyond the flattened view.
  EXPECT_TRUE(mount.merged().equals(flat));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayEquivalence,
                         ::testing::Range<std::uint64_t>(400, 416));

}  // namespace
}  // namespace gear::docker
