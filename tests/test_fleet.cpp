// Registry fleet: consistent-hash routing, R-way replication, dead-replica
// fallback, join/leave rebalance, and concurrent clients over one fleet.
// The load-bearing claims: fleet deploys are byte-identical to the single-
// registry path, a rebalance moves only the ring-delta objects (zero
// re-upload of anything already resident on its home shard), and shard
// failures degrade to replica fallbacks instead of crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "compress/codec.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/fleet.hpp"
#include "gear/registry.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear {
namespace {

using net::DownTransport;
using net::LoopbackTransport;
using net::RemoteGearRegistry;

Fingerprint fp_of(const Bytes& content) {
  return default_hasher().fingerprint(content);
}

std::vector<Bytes> make_contents(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.next_bytes(rng.next_range(16, 2048), 0.5));
  }
  return out;
}

// ---- HashRing -------------------------------------------------------------

TEST(HashRing, DeterministicBalancedAndDistinctReplicas) {
  HashRing a, b;
  for (std::size_t s = 0; s < 4; ++s) {
    a.add_shard(s, 64);
    b.add_shard(3 - s, 64);  // reverse insertion order: same ring
  }
  auto contents = make_contents(2000, 11);
  std::vector<std::size_t> primary_count(4, 0);
  for (const auto& c : contents) {
    Fingerprint fp = fp_of(c);
    auto ra = a.replicas(fp, 2);
    EXPECT_EQ(ra, b.replicas(fp, 2));
    ASSERT_EQ(ra.size(), 2u);
    EXPECT_NE(ra[0], ra[1]);
    ++primary_count[ra[0]];
  }
  // Virtual nodes keep the spread sane: no shard owns less than 10% or
  // more than half of the keyspace.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(primary_count[s], 200u) << "shard " << s;
    EXPECT_LT(primary_count[s], 1000u) << "shard " << s;
  }
}

TEST(HashRing, JoinRemapsOnlyToTheNewShard) {
  HashRing before;
  for (std::size_t s = 0; s < 3; ++s) before.add_shard(s, 64);
  HashRing after = before;
  after.add_shard(3, 64);

  std::size_t moved = 0;
  for (const auto& c : make_contents(600, 12)) {
    Fingerprint fp = fp_of(c);
    auto old_reps = before.replicas(fp, 2);
    auto new_reps = after.replicas(fp, 2);
    // Consistent hashing invariant: membership may only change by gaining
    // the new shard — no object moves between pre-existing shards.
    for (std::size_t r : new_reps) {
      bool was_replica =
          std::find(old_reps.begin(), old_reps.end(), r) != old_reps.end();
      EXPECT_TRUE(was_replica || r == 3);
    }
    if (std::find(new_reps.begin(), new_reps.end(), 3) != new_reps.end()) {
      ++moved;
    }
  }
  // The new shard takes roughly 1/4 of the (2-replica) keyspace; all that
  // matters here is that the delta is a strict, non-empty subset.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 600u);
}

// ---- fixture --------------------------------------------------------------

struct FleetFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  docker::DockerRegistry docker_registry;

  docker::Image original;
  GearImage gear_image;
  workload::AccessSet access;

  void SetUp() override {
    vfs::FileTree s0 = gear::testing::random_tree(900, 30, 6000);
    vfs::FileTree s1 = gear::testing::mutate_tree(s0, 901, 10);
    docker::ImageBuilder b;
    b.add_snapshot(s0).add_snapshot(s1);
    original = b.build("app", "v1", docker::ImageConfig{});
    gear_image = GearConverter().convert(original).image;
    access = workload::derive_access_set(
        original.flatten(), workload::AccessProfile{0.3, 0.8, 7, 1});
    ASSERT_FALSE(access.files.empty());
  }

  /// Deploys `reference` through `registry` on a fresh client stack and
  /// returns every accessed file's bytes in access order.
  std::vector<Bytes> deploy_and_read(FileRegistryApi& registry,
                                     const std::string& reference) {
    sim::SimClock c2;
    sim::NetworkLink l2{c2, 904.0, 0.0005, 0.0003};
    sim::DiskModel d2{c2, 0.0001, 500.0, 480.0};
    GearClient client(docker_registry, registry, l2, d2);
    std::string container;
    client.deploy(reference, access, &container);
    client.prefetch_remaining(reference);
    GearFileViewer v = client.open_viewer(container);
    std::vector<Bytes> out;
    for (const auto& fa : access.files) {
      out.push_back(v.read_file(fa.path).value());
    }
    return out;
  }
};

// ---- parity ---------------------------------------------------------------

TEST_F(FleetFixture, FleetDeployByteIdenticalToSingleRegistry) {
  GearRegistry single;
  push_gear_image(gear_image, docker_registry, single);
  std::vector<Bytes> want = deploy_and_read(single, "app:v1");

  for (std::size_t shard_count : {1u, 4u}) {
    for (std::size_t replicas : {1u, 2u}) {
      std::vector<std::unique_ptr<GearRegistry>> shards;
      std::vector<FileRegistryApi*> apis;
      for (std::size_t i = 0; i < shard_count; ++i) {
        shards.push_back(std::make_unique<GearRegistry>());
        apis.push_back(shards.back().get());
      }
      FleetRegistry fleet(apis, FleetRegistry::Options{replicas, 64, 2});
      push_gear_image(gear_image, docker_registry, fleet);
      EXPECT_EQ(deploy_and_read(fleet, "app:v1"), want)
          << shard_count << " shards, R=" << replicas;

      // Dedup parity: summed home-shard accepts equal the single registry's
      // (replication tails land as replica_items, not extra home stores).
      std::uint64_t accepted = 0;
      for (const auto& s : shards) accepted += s->stats().uploads_accepted;
      std::uint64_t extra = 0;
      for (std::size_t i = 0; i < shard_count; ++i) {
        extra += fleet.shard_stats(i).replica_items;
      }
      EXPECT_GE(accepted, single.stats().uploads_accepted.load());
      if (replicas == 1) {
        EXPECT_EQ(accepted, single.stats().uploads_accepted.load());
        EXPECT_EQ(extra, 0u);
      }
    }
  }
}

TEST_F(FleetFixture, BatchCallsSplitPerShardInOneRoundTripEach) {
  constexpr std::size_t kShards = 4;
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<std::unique_ptr<LoopbackTransport>> transports;
  std::vector<std::unique_ptr<RemoteGearRegistry>> stubs;
  std::vector<FileRegistryApi*> apis;
  for (std::size_t i = 0; i < kShards; ++i) {
    regs.push_back(std::make_unique<GearRegistry>());
    transports.push_back(std::make_unique<LoopbackTransport>(*regs.back()));
    stubs.push_back(std::make_unique<RemoteGearRegistry>(*transports.back()));
    apis.push_back(stubs.back().get());
  }
  FleetRegistry fleet(apis, FleetRegistry::Options{1, 64, 2});

  auto contents = make_contents(40, 21);
  std::vector<Fingerprint> fps;
  std::vector<std::pair<Fingerprint, Bytes>> items;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    items.emplace_back(fps.back(), compress(c));
  }
  EXPECT_EQ(fleet.upload_precompressed_batch(items), contents.size());

  // One upload round trip per shard touched, not one per item.
  std::size_t shards_touched = 0;
  std::uint64_t upload_items = 0;
  for (const auto& t : transports) {
    if (t->server_stats().upload_round_trips > 0) {
      ++shards_touched;
      EXPECT_EQ(t->server_stats().upload_round_trips, 1u);
    }
    upload_items += t->server_stats().upload_items;
  }
  EXPECT_GT(shards_touched, 1u);
  EXPECT_EQ(upload_items, contents.size());

  // Same split on the download side: max-over-shards, not sum.
  std::uint64_t wire = 0;
  auto got = fleet.download_batch(fps, nullptr, &wire);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(wire, 0u);
  std::uint64_t download_items = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const auto& st = transports[i]->server_stats();
    EXPECT_LE(st.download_round_trips, 1u);
    download_items += st.download_items;
  }
  EXPECT_EQ(download_items, contents.size());
  for (std::size_t i = 0; i < contents.size(); ++i) {
    EXPECT_EQ(got.value()[i], contents[i]);
  }

  // Routing agrees with the published ring.
  for (std::size_t i = 0; i < fps.size(); ++i) {
    auto reps = fleet.replicas_of(fps[i]);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_TRUE(regs[reps[0]]->query(fps[i]));
  }
}

// ---- failure modes --------------------------------------------------------

struct FleetFailureFixture : ::testing::Test {
  static constexpr std::size_t kShards = 3;
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<std::unique_ptr<LoopbackTransport>> loopbacks;
  std::vector<std::unique_ptr<DownTransport>> switches;
  std::vector<std::unique_ptr<RemoteGearRegistry>> stubs;
  std::vector<FileRegistryApi*> apis;
  std::unique_ptr<FleetRegistry> fleet;

  void SetUp() override {
    for (std::size_t i = 0; i < kShards; ++i) {
      regs.push_back(std::make_unique<GearRegistry>());
      loopbacks.push_back(std::make_unique<LoopbackTransport>(*regs.back()));
      switches.push_back(std::make_unique<DownTransport>(*loopbacks.back()));
      stubs.push_back(std::make_unique<RemoteGearRegistry>(*switches.back()));
      apis.push_back(stubs.back().get());
    }
    fleet = std::make_unique<FleetRegistry>(
        apis, FleetRegistry::Options{/*replicas=*/2, 64, 2});
  }
};

TEST_F(FleetFailureFixture, DeadReplicaFallbackReturnsIdenticalBytes) {
  auto contents = make_contents(12, 31);
  std::vector<Fingerprint> fps;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    fleet->upload(fps.back(), c);
  }
  // Kill the home shard of fps[0]; its backup must answer, byte-identical.
  std::size_t home = fleet->replicas_of(fps[0])[0];
  switches[home]->set_down(true);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    auto got = fleet->download(fps[i]);
    ASSERT_TRUE(got.ok()) << got.message();
    EXPECT_EQ(got.value(), contents[i]);
  }
  EXPECT_GT(fleet->stats().replica_fallbacks.load(), 0u);
  // The batched path survives the same outage.
  auto batch = fleet->download_batch(fps);
  ASSERT_TRUE(batch.ok()) << batch.message();
  for (std::size_t i = 0; i < fps.size(); ++i) {
    EXPECT_EQ(batch.value()[i], contents[i]);
  }
  EXPECT_TRUE(fleet->query(fps[0]));
}

TEST_F(FleetFailureFixture, AllReplicasDownSurfacesCleanError) {
  Bytes content = make_contents(1, 32)[0];
  Fingerprint fp = fp_of(content);
  fleet->upload(fp, content);
  for (auto& s : switches) s->set_down(true);

  auto got = fleet->download(fp);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kInternal);
  auto batch = fleet->download_batch({fp});
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.message().find("all replicas"), std::string::npos);
  EXPECT_THROW((void)fleet->query(fp), Error);
  EXPECT_THROW((void)fleet->upload(fp, content), Error);

  // Recovery: the fleet serves again as soon as one replica returns.
  switches[fleet->replicas_of(fp)[1]]->set_down(false);
  auto again = fleet->download(fp);
  ASSERT_TRUE(again.ok()) << again.message();
  EXPECT_EQ(again.value(), content);
}

TEST_F(FleetFailureFixture, UploadWithHomeShardDownFallsForward) {
  auto contents = make_contents(10, 33);
  std::vector<std::pair<Fingerprint, Bytes>> items;
  std::vector<Fingerprint> fps;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    items.emplace_back(fps.back(), compress(c));
  }
  // Down the home of the first item, then batch-upload everything: the
  // write lands on a backup instead of failing.
  std::size_t home = fleet->replicas_of(fps[0])[0];
  switches[home]->set_down(true);
  fleet->upload_precompressed_batch(items);
  switches[home]->set_down(false);

  // The revived home missed the upload; reads fall through to the replica
  // that accepted it and still return identical bytes.
  for (std::size_t i = 0; i < fps.size(); ++i) {
    auto got = fleet->download(fps[i]);
    ASSERT_TRUE(got.ok()) << got.message();
    EXPECT_EQ(got.value(), contents[i]);
  }
  EXPECT_TRUE(fleet->query(fps[0]));
}

// ---- rebalance ------------------------------------------------------------

TEST(FleetRebalance, JoinMovesOnlyRingDeltaAndNeverReuploadsResident) {
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<FileRegistryApi*> apis;
  for (std::size_t i = 0; i < 2; ++i) {
    regs.push_back(std::make_unique<GearRegistry>());
    apis.push_back(regs.back().get());
  }
  FleetRegistry fleet(apis, FleetRegistry::Options{1, 64, 2});

  auto contents = make_contents(120, 41);
  std::vector<Fingerprint> fps;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    fleet.upload(fps.back(), c);
  }
  // One chunked object rides along to exercise the chunked migration path.
  Rng rng(42);
  Bytes big = rng.next_bytes(512 * 1024, 0.4);
  Fingerprint big_fp = fp_of(big);
  ChunkPolicy policy{64 * 1024, 128 * 1024};
  fleet.upload_chunked(big_fp, big, policy);

  std::uint64_t accepted_before[2] = {regs[0]->stats().uploads_accepted,
                                      regs[1]->stats().uploads_accepted};

  auto joiner = std::make_unique<GearRegistry>();
  RebalanceReport rep;
  std::size_t id = fleet.add_shard(joiner.get(), &rep);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(rep.examined, contents.size() + 1);
  EXPECT_EQ(rep.moved_objects + rep.unmoved_objects, rep.examined);
  EXPECT_GT(rep.moved_objects, 0u);
  EXPECT_LT(rep.moved_objects, rep.examined);
  EXPECT_GT(rep.moved_bytes, 0u);

  // Zero re-upload: the pre-existing shards accept nothing during the
  // rebalance; only the joiner stores objects, and exactly the delta.
  EXPECT_EQ(regs[0]->stats().uploads_accepted.load(), accepted_before[0]);
  EXPECT_EQ(regs[1]->stats().uploads_accepted.load(), accepted_before[1]);
  EXPECT_GT(joiner->stats().uploads_accepted.load(), 0u);

  // The moved set IS the ring delta: everything whose new home is the
  // joiner lives there; everything else was untouched.
  std::size_t delta = 0;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    bool on_joiner = fleet.replicas_of(fps[i])[0] == id;
    delta += on_joiner ? 1 : 0;
    EXPECT_EQ(joiner->query(fps[i]), on_joiner);
    auto got = fleet.download(fps[i]);
    ASSERT_TRUE(got.ok()) << got.message();
    EXPECT_EQ(got.value(), contents[i]);
  }
  if (fleet.replicas_of(big_fp)[0] == id) ++delta;
  EXPECT_EQ(rep.moved_objects, delta);
  // The chunked file survives whichever side of the delta it landed on.
  auto whole = fleet.download(big_fp);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value(), big);
  EXPECT_TRUE(fleet.is_chunked(big_fp));
  auto range = fleet.download_range(big_fp, 130000, 40000);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value(), Bytes(big.begin() + 130000,
                                 big.begin() + 130000 + 40000));
}

TEST(FleetRebalance, GracefulLeaveKeepsEveryObjectReadable) {
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<FileRegistryApi*> apis;
  for (std::size_t i = 0; i < 3; ++i) {
    regs.push_back(std::make_unique<GearRegistry>());
    apis.push_back(regs.back().get());
  }
  FleetRegistry fleet(apis, FleetRegistry::Options{1, 64, 2});
  auto contents = make_contents(90, 51);
  std::vector<Fingerprint> fps;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    fleet.upload(fps.back(), c);
  }
  RebalanceReport rep = fleet.remove_shard(1);
  EXPECT_EQ(fleet.shard_count(), 2u);
  EXPECT_EQ(rep.examined, contents.size());
  EXPECT_EQ(rep.moved_objects + rep.unmoved_objects, rep.examined);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    auto reps = fleet.replicas_of(fps[i]);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_NE(reps[0], 1u);  // nothing routes to the departed shard
    auto got = fleet.download(fps[i]);
    ASSERT_TRUE(got.ok()) << got.message();
    EXPECT_EQ(got.value(), contents[i]);
  }
  EXPECT_THROW((void)fleet.remove_shard(1), Error);  // already gone
}

// ---- concurrency (runs under TSAN in CI) ----------------------------------

TEST(ConcurrentFleet, ManyClientsShareOneFleet) {
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<FileRegistryApi*> apis;
  for (std::size_t i = 0; i < 4; ++i) {
    regs.push_back(std::make_unique<GearRegistry>());
    apis.push_back(regs.back().get());
  }
  FleetRegistry fleet(apis, FleetRegistry::Options{2, 64, 2});

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kObjectsPerClient = 24;
  std::vector<std::vector<Bytes>> contents(kClients);
  std::vector<std::vector<Fingerprint>> fps(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    contents[c] = make_contents(kObjectsPerClient, 60 + c);
    for (const auto& b : contents[c]) fps[c].push_back(fp_of(b));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        std::vector<std::pair<Fingerprint, Bytes>> items;
        for (std::size_t i = 0; i < kObjectsPerClient; ++i) {
          items.emplace_back(fps[c][i], compress(contents[c][i]));
        }
        fleet.upload_precompressed_batch(std::move(items));
        for (int round = 0; round < 3; ++round) {
          auto got = fleet.download_batch(fps[c]);
          if (!got.ok()) {
            ++failures;
            return;
          }
          for (std::size_t i = 0; i < kObjectsPerClient; ++i) {
            if (got.value()[i] != contents[c][i]) ++failures;
          }
          auto q = fleet.query_many(fps[c]);
          for (std::uint8_t hit : q) {
            if (!hit) ++failures;
          }
        }
      } catch (const Error&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every object is on exactly its R ring replicas.
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < kObjectsPerClient; ++i) {
      auto reps = fleet.replicas_of(fps[c][i]);
      ASSERT_EQ(reps.size(), 2u);
      for (std::size_t r : reps) EXPECT_TRUE(regs[r]->query(fps[c][i]));
    }
  }
}

TEST(ConcurrentFleet, JoinMidWorkloadRebalancesOnlyDeltaUnderReads) {
  std::vector<std::unique_ptr<GearRegistry>> regs;
  std::vector<FileRegistryApi*> apis;
  for (std::size_t i = 0; i < 2; ++i) {
    regs.push_back(std::make_unique<GearRegistry>());
    apis.push_back(regs.back().get());
  }
  FleetRegistry fleet(apis, FleetRegistry::Options{1, 64, 2});
  auto contents = make_contents(80, 71);
  std::vector<Fingerprint> fps;
  for (const auto& c : contents) {
    fps.push_back(fp_of(c));
    fleet.upload(fps.back(), c);
  }
  std::uint64_t accepted_before[2] = {regs[0]->stats().uploads_accepted,
                                      regs[1]->stats().uploads_accepted};

  // Readers hammer the fleet while a shard joins; every read must return
  // correct bytes whether it raced the old or the new ring.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto got = fleet.download_batch(fps);
        if (!got.ok()) {
          ++failures;
          continue;
        }
        for (std::size_t i = 0; i < fps.size(); ++i) {
          if (got.value()[i] != contents[i]) ++failures;
        }
      }
    });
  }
  auto joiner = std::make_unique<GearRegistry>();
  RebalanceReport rep;
  std::size_t id = fleet.add_shard(joiner.get(), &rep);
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rep.moved_objects + rep.unmoved_objects, rep.examined);
  // Delta-only under load: pre-existing shards accepted nothing new.
  EXPECT_EQ(regs[0]->stats().uploads_accepted.load(), accepted_before[0]);
  EXPECT_EQ(regs[1]->stats().uploads_accepted.load(), accepted_before[1]);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    EXPECT_EQ(joiner->query(fps[i]), fleet.replicas_of(fps[i])[0] == id);
    auto got = fleet.download(fps[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), contents[i]);
  }
}

}  // namespace
}  // namespace gear
