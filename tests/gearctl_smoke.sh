#!/bin/sh
# End-to-end smoke test for the gearctl CLI: import a real directory,
# inspect, cat, run (hard-link materialization), export, verify byte
# equality, delete, and garbage-collect. Driven by CTest.
set -eu

GEARCTL="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SRC="$WORK/src"
STORE="$WORK/store"
OUT="$WORK/out"

mkdir -p "$SRC/app" "$SRC/etc"
printf 'hello from gearctl\n' > "$SRC/app/hello.txt"
head -c 65536 /dev/urandom > "$SRC/app/blob.bin"
printf 'mode=prod\n' > "$SRC/etc/app.conf"
ln -s ../etc/app.conf "$SRC/app/conf-link"

"$GEARCTL" "$STORE" init
"$GEARCTL" "$STORE" import "$SRC" demo:v1
"$GEARCTL" "$STORE" images | grep -q "demo:v1"
"$GEARCTL" "$STORE" inspect demo:v1 | grep -q "files:"
test "$("$GEARCTL" "$STORE" cat demo:v1 app/hello.txt)" = "hello from gearctl"

# run twice: second hit must come from the local cache.
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "registry"
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "cache"

"$GEARCTL" "$STORE" export demo:v1 "$OUT"
diff -r "$SRC" "$OUT"

# container lifecycle: launch, lazy read, write, commit, relaunch.
C="$("$GEARCTL" "$STORE" launch demo:v1)"
test "$("$GEARCTL" "$STORE" read "$C" app/hello.txt)" = "hello from gearctl"
"$GEARCTL" "$STORE" write "$C" app/note.txt "patched"
test "$("$GEARCTL" "$STORE" read "$C" app/note.txt)" = "patched"
"$GEARCTL" "$STORE" commit "$C" demo:patched
test "$("$GEARCTL" "$STORE" cat demo:patched app/note.txt)" = "patched"

# second import of the same content deduplicates everything.
"$GEARCTL" "$STORE" import "$SRC" demo:v2 | grep -q "0 uploaded"

"$GEARCTL" "$STORE" rm demo:v1
"$GEARCTL" "$STORE" rm demo:v2
"$GEARCTL" "$STORE" rm demo:patched
"$GEARCTL" "$STORE" gc | grep -q "swept"
"$GEARCTL" "$STORE" stats | grep -q "0 objects"

echo "gearctl smoke test passed"
