#!/bin/sh
# End-to-end smoke test for the gearctl CLI: import a real directory,
# inspect, cat, run (hard-link materialization), export, verify byte
# equality, delete, and garbage-collect. Driven by CTest.
set -eu

GEARCTL="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SRC="$WORK/src"
STORE="$WORK/store"
OUT="$WORK/out"

mkdir -p "$SRC/app" "$SRC/etc"
printf 'hello from gearctl\n' > "$SRC/app/hello.txt"
head -c 65536 /dev/urandom > "$SRC/app/blob.bin"
printf 'mode=prod\n' > "$SRC/etc/app.conf"
ln -s ../etc/app.conf "$SRC/app/conf-link"

"$GEARCTL" "$STORE" init
"$GEARCTL" "$STORE" import "$SRC" demo:v1
"$GEARCTL" "$STORE" images | grep -q "demo:v1"
"$GEARCTL" "$STORE" inspect demo:v1 | grep -q "files:"
test "$("$GEARCTL" "$STORE" cat demo:v1 app/hello.txt)" = "hello from gearctl"

# run twice: second hit must come from the local cache.
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "registry"
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "cache"

"$GEARCTL" "$STORE" export demo:v1 "$OUT"
diff -r "$SRC" "$OUT"

# container lifecycle: launch, lazy read, write, commit, relaunch.
C="$("$GEARCTL" "$STORE" launch demo:v1)"
test "$("$GEARCTL" "$STORE" read "$C" app/hello.txt)" = "hello from gearctl"
"$GEARCTL" "$STORE" write "$C" app/note.txt "patched"
test "$("$GEARCTL" "$STORE" read "$C" app/note.txt)" = "patched"
"$GEARCTL" "$STORE" commit "$C" demo:patched
test "$("$GEARCTL" "$STORE" cat demo:patched app/note.txt)" = "patched"

# second import of the same content deduplicates everything.
"$GEARCTL" "$STORE" import "$SRC" demo:v2 | grep -q "0 uploaded"

"$GEARCTL" "$STORE" rm demo:v1
"$GEARCTL" "$STORE" rm demo:v2
"$GEARCTL" "$STORE" rm demo:patched
"$GEARCTL" "$STORE" gc | grep -q "swept"
"$GEARCTL" "$STORE" stats | grep -q "0 objects"

# --- durable on-disk backend (--store-dir) -------------------------------
# Push into a DiskObjectStore-backed registry, then "restart" (every gearctl
# invocation is a new process) and deploy WITHOUT re-pushing: the reopened
# store must already hold every object.
DSTORE="$WORK/dstore"
OBJDIR="$WORK/objstore"
DOUT="$WORK/dout"

"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" init
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" import "$SRC" disk:v1
test -n "$(ls "$OBJDIR/objects")"

# Restart: a fresh process reopens the same object store; a re-import of
# identical content must upload nothing (zero re-push after restart) and an
# export must reproduce the source byte-for-byte.
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" import "$SRC" disk:v2 \
  | grep -q "0 uploaded"
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" export disk:v1 "$DOUT"
diff -r "$SRC" "$DOUT"

# Crash recovery: a torn temp file (interrupted durable write) alongside the
# valid objects must be ignored and reaped on reopen, not served.
printf 'torn' > "$OBJDIR/objects/deadbeefdeadbeefdeadbeefdeadbeef.tmp"
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" stats | grep -q "gear registry"
test ! -e "$OBJDIR/objects/deadbeefdeadbeefdeadbeefdeadbeef.tmp"

# Flag validation mirrors --workers: a missing or empty path is a usage
# error (exit 2), not a crash.
if "$GEARCTL" --store-dir 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --store-dir "" "$DSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi

echo "gearctl smoke test passed"
