#!/bin/sh
# End-to-end smoke test for the gearctl CLI: import a real directory,
# inspect, cat, run (hard-link materialization), export, verify byte
# equality, delete, and garbage-collect. Driven by CTest.
set -eu

GEARCTL="$1"
WORK="$(mktemp -d)"
SERVE_PID=""
trap 'test -n "$SERVE_PID" && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

SRC="$WORK/src"
STORE="$WORK/store"
OUT="$WORK/out"

mkdir -p "$SRC/app" "$SRC/etc"
printf 'hello from gearctl\n' > "$SRC/app/hello.txt"
head -c 65536 /dev/urandom > "$SRC/app/blob.bin"
printf 'mode=prod\n' > "$SRC/etc/app.conf"
ln -s ../etc/app.conf "$SRC/app/conf-link"

"$GEARCTL" "$STORE" init
"$GEARCTL" "$STORE" import "$SRC" demo:v1
"$GEARCTL" "$STORE" images | grep -q "demo:v1"
"$GEARCTL" "$STORE" inspect demo:v1 | grep -q "files:"
test "$("$GEARCTL" "$STORE" cat demo:v1 app/hello.txt)" = "hello from gearctl"

# run twice: second hit must come from the local cache.
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "registry"
"$GEARCTL" "$STORE" run demo:v1 app/blob.bin | grep -q "cache"

"$GEARCTL" "$STORE" export demo:v1 "$OUT"
diff -r "$SRC" "$OUT"

# container lifecycle: launch, lazy read, write, commit, relaunch.
C="$("$GEARCTL" "$STORE" launch demo:v1)"
test "$("$GEARCTL" "$STORE" read "$C" app/hello.txt)" = "hello from gearctl"
"$GEARCTL" "$STORE" write "$C" app/note.txt "patched"
test "$("$GEARCTL" "$STORE" read "$C" app/note.txt)" = "patched"
"$GEARCTL" "$STORE" commit "$C" demo:patched
test "$("$GEARCTL" "$STORE" cat demo:patched app/note.txt)" = "patched"

# second import of the same content deduplicates everything.
"$GEARCTL" "$STORE" import "$SRC" demo:v2 | grep -q "0 uploaded"

"$GEARCTL" "$STORE" rm demo:v1
"$GEARCTL" "$STORE" rm demo:v2
"$GEARCTL" "$STORE" rm demo:patched
"$GEARCTL" "$STORE" gc | grep -q "swept"
"$GEARCTL" "$STORE" stats | grep -q "0 objects"

# --- durable on-disk backend (--store-dir) -------------------------------
# Push into a DiskObjectStore-backed registry, then "restart" (every gearctl
# invocation is a new process) and deploy WITHOUT re-pushing: the reopened
# store must already hold every object.
DSTORE="$WORK/dstore"
OBJDIR="$WORK/objstore"
DOUT="$WORK/dout"

"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" init
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" import "$SRC" disk:v1
test -n "$(ls "$OBJDIR/objects")"

# Restart: a fresh process reopens the same object store; a re-import of
# identical content must upload nothing (zero re-push after restart) and an
# export must reproduce the source byte-for-byte.
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" import "$SRC" disk:v2 \
  | grep -q "0 uploaded"
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" export disk:v1 "$DOUT"
diff -r "$SRC" "$DOUT"

# Crash recovery: a torn temp file (interrupted durable write) alongside the
# valid objects must be ignored and reaped on reopen, not served.
printf 'torn' > "$OBJDIR/objects/deadbeefdeadbeefdeadbeefdeadbeef.tmp"
"$GEARCTL" --store-dir "$OBJDIR" "$DSTORE" stats | grep -q "gear registry"
test ! -e "$OBJDIR/objects/deadbeefdeadbeefdeadbeefdeadbeef.tmp"

# Flag validation mirrors --workers: a missing or empty path is a usage
# error (exit 2), not a crash.
if "$GEARCTL" --store-dir 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --store-dir "" "$DSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi

# --- chunked range reads (--range-batch) ---------------------------------
# A 512 KiB blob imported with a 64 KiB chunk threshold stores chunked
# (default chunk size 128 KiB -> 4 chunks). Ranged cat must return the same
# bytes as a dd slice of the source, at batch 64 and at batch 1 (the serial
# per-chunk protocol).
CSRC="$WORK/csrc"
CSTORE="$WORK/cstore"
mkdir -p "$CSRC"
head -c 524288 /dev/urandom > "$CSRC/model.bin"

"$GEARCTL" "$CSTORE" init
"$GEARCTL" "$CSTORE" import "$CSRC" chunky:v1 65536
"$GEARCTL" "$CSTORE" inspect chunky:v1 | grep -q "chunked files: 1"

# A range spanning the chunk 1/2 boundary and a tail range into the file end.
dd if="$CSRC/model.bin" bs=1 skip=130000 count=40000 2>/dev/null \
  > "$WORK/want.mid"
dd if="$CSRC/model.bin" bs=1 skip=520000 count=4288 2>/dev/null \
  > "$WORK/want.tail"
"$GEARCTL" "$CSTORE" cat chunky:v1 model.bin 130000 40000 > "$WORK/got.mid"
cmp "$WORK/want.mid" "$WORK/got.mid"
"$GEARCTL" --range-batch 1 "$CSTORE" cat chunky:v1 model.bin 130000 40000 \
  > "$WORK/got.mid1"
cmp "$WORK/want.mid" "$WORK/got.mid1"
"$GEARCTL" --range-batch 1 "$CSTORE" cat chunky:v1 model.bin 520000 4288 \
  > "$WORK/got.tail"
cmp "$WORK/want.tail" "$WORK/got.tail"

# Whole-file range equals plain cat; a range on an unchunked file works too.
"$GEARCTL" "$CSTORE" cat chunky:v1 model.bin 0 524288 > "$WORK/got.whole"
cmp "$CSRC/model.bin" "$WORK/got.whole"
"$GEARCTL" "$STORE" import "$SRC" demo:v3 > /dev/null
"$GEARCTL" "$STORE" cat demo:v3 app/blob.bin 100 200 > "$WORK/got.plain"
dd if="$SRC/app/blob.bin" bs=1 skip=100 count=200 2>/dev/null \
  > "$WORK/want.plain"
cmp "$WORK/want.plain" "$WORK/got.plain"

# Out-of-bounds and malformed ranges fail cleanly.
if "$GEARCTL" "$CSTORE" cat chunky:v1 model.bin 524288 1 2>/dev/null
then exit 1; else test $? -eq 1; fi
if "$GEARCTL" "$CSTORE" cat chunky:v1 model.bin 0 0 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" "$CSTORE" cat chunky:v1 model.bin abc 10 2>/dev/null
then exit 1; else test $? -eq 2; fi

# --range-batch validation mirrors --workers: missing value, zero, and
# non-numeric values are usage errors (exit 2), not crashes.
if "$GEARCTL" --range-batch 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --range-batch 0 "$CSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --range-batch nope "$CSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi

# --- prefetch (--prefetch-order) -----------------------------------------
# Warm a whole image into the on-disk cache; a second prefetch must move
# nothing (the cheap membership pass early-outs). All three orders parse.
PSTORE="$WORK/pstore"
"$GEARCTL" "$PSTORE" init
"$GEARCTL" "$PSTORE" import "$SRC" pf:v1 > /dev/null
"$GEARCTL" "$PSTORE" prefetch pf:v1 | grep -q "delta order"
"$GEARCTL" "$PSTORE" prefetch pf:v1 | grep -q "0 files"
"$GEARCTL" --prefetch-order path "$PSTORE" prefetch pf:v1 | grep -q "0 files"
"$GEARCTL" --prefetch-order profile "$PSTORE" prefetch pf:v1 \
  | grep -q "profile order"
# A prefetched file reads from the cache, not the registry.
"$GEARCTL" "$PSTORE" run pf:v1 app/blob.bin | grep -q "cache"

# Flag validation mirrors --workers: missing and bogus values are usage
# errors (exit 2), not crashes.
if "$GEARCTL" --prefetch-order 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --prefetch-order sideways "$PSTORE" prefetch pf:v1 2>/dev/null
then exit 1; else test $? -eq 2; fi

# --- registry fleet (--shards / --replicas) -------------------------------
# Two disk-backed shards behind the consistent-hash router. Placement is
# stable across invocations, so a re-import of identical content uploads
# nothing, and an export reads every object back byte-for-byte through the
# ring.
FSTORE="$WORK/fstore"
FOBJ="$WORK/fobj"
FOUT="$WORK/fout"
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" init
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" import "$SRC" fleet:v1
test -d "$FOBJ/shard-0" && test -d "$FOBJ/shard-1"
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" import "$SRC" fleet:v2 \
  | grep -q "0 uploaded"
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" export fleet:v1 "$FOUT"
diff -r "$SRC" "$FOUT"
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" stats \
  | grep -q "fleet of 2 shards"

# With --replicas 2 every object lands on BOTH shards: each shard directory
# alone holds the full object count reported by stats.
ROBJ="$WORK/robj"
RSTORE="$WORK/rstore"
"$GEARCTL" --store-dir "$ROBJ" --shards 2 --replicas 2 "$RSTORE" init
"$GEARCTL" --store-dir "$ROBJ" --shards 2 --replicas 2 "$RSTORE" \
  import "$SRC" repl:v1
N0="$(ls "$ROBJ/shard-0/objects" | wc -l)"
N1="$(ls "$ROBJ/shard-1/objects" | wc -l)"
test "$N0" -eq "$N1"
test "$N0" -gt 0

# Read-only commands route through the fleet router: cat, prefetch, and a
# lazy launch's fault-in all work against a sharded registry.
test "$("$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" \
  cat fleet:v1 app/hello.txt)" = "hello from gearctl"
"$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" prefetch fleet:v1 \
  | grep -q "delta order"
FC="$("$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" \
  launch --lazy fleet:v1 2>/dev/null)"
test "$("$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" \
  read "$FC" app/hello.txt)" = "hello from gearctl"

# Registry-internal commands reject fleet mode cleanly (usage error).
if "$GEARCTL" --store-dir "$FOBJ" --shards 2 "$FSTORE" gc 2>/dev/null
then exit 1; else test $? -eq 2; fi

# Flag validation: missing, zero, and non-numeric counts, replicas
# exceeding shards, and fleet mode without a store dir are all usage
# errors (exit 2), not crashes.
if "$GEARCTL" --shards 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --shards 0 "$FSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --shards nope "$FSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --replicas 0 "$FSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --replicas nope "$FSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --store-dir "$FOBJ" --shards 2 --replicas 3 "$FSTORE" stats \
  2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --shards 2 "$FSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi

# --- lazy launch (--lazy) -------------------------------------------------
# launch --lazy prints the container id immediately (stdout) and reports the
# background backfill on stderr; reads against the container then hit the
# warmed cache.
ZSTORE="$WORK/zstore"
"$GEARCTL" "$ZSTORE" init
"$GEARCTL" "$ZSTORE" import "$SRC" zz:v1 > /dev/null
ZC="$("$GEARCTL" "$ZSTORE" launch --lazy zz:v1 2>"$WORK/lazy.err")"
test -n "$ZC"
grep -q "backfilled" "$WORK/lazy.err"
test "$("$GEARCTL" "$ZSTORE" read "$ZC" app/hello.txt)" = "hello from gearctl"
# The backfill warmed everything: a subsequent run reads from the cache and
# a prefetch moves nothing.
"$GEARCTL" "$ZSTORE" run zz:v1 app/blob.bin | grep -q "cache"
"$GEARCTL" "$ZSTORE" prefetch zz:v1 | grep -q "0 files"

# Strict flag validation: --lazy with any command but launch is a usage
# error (exit 2), not a silent no-op.
if "$GEARCTL" --lazy "$ZSTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" "$ZSTORE" cat --lazy zz:v1 app/hello.txt 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --lazy "$ZSTORE" prefetch zz:v1 2>/dev/null; then exit 1
else test $? -eq 2; fi

# --- host admission + cache governance -----------------------------------
# --host-budget-bytes meters the invocation's downloads and reports the
# admission telemetry on stderr; stats prints the governance block.
ASTORE="$WORK/astore"
"$GEARCTL" "$ASTORE" init
"$GEARCTL" "$ASTORE" import "$SRC" adm:v1 > /dev/null
"$GEARCTL" --host-budget-bytes 32768 "$ASTORE" prefetch adm:v1 \
  2> "$WORK/adm.err" | grep -q "delta order"
grep -q "admission: budget" "$WORK/adm.err"
"$GEARCTL" "$ASTORE" stats | grep -q "admission:       ungoverned"
"$GEARCTL" --host-budget-bytes 32768 "$ASTORE" stats \
  | grep -q "admission:       budget"
"$GEARCTL" "$ASTORE" stats | grep -q "local cache:"

# A tiny cache envelope forces disk-pressure evictions/rejections during
# prefetch (blob.bin alone is 64 KiB), reported on stderr; reads still work
# afterwards — whatever was reclaimed simply faults back in on demand.
ESTORE="$WORK/estore"
"$GEARCTL" "$ESTORE" init
"$GEARCTL" "$ESTORE" import "$SRC" ev:v1 > /dev/null
"$GEARCTL" --cache-capacity-bytes 16384 --eviction fifo "$ESTORE" \
  prefetch ev:v1 > /dev/null 2> "$WORK/ev.err"
grep -q "cache pressure: capacity" "$WORK/ev.err"
test "$("$GEARCTL" "$ESTORE" cat ev:v1 app/hello.txt)" = "hello from gearctl"

# Strict flag validation: missing, zero, and non-numeric byte counts and a
# bogus eviction policy are usage errors (exit 2), not crashes.
if "$GEARCTL" --host-budget-bytes 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --host-budget-bytes 0 "$ASTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --host-budget-bytes nope "$ASTORE" stats 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --cache-capacity-bytes 0 "$ASTORE" stats 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --cache-capacity-bytes nope "$ASTORE" stats 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --eviction 2>/dev/null; then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --eviction sideways "$ASTORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi

# --- TCP registry daemon (serve / --remote) -------------------------------
# Two real OS processes: a `gearctl serve` daemon owning the object store,
# and client invocations dialing it with --remote. Covers push over TCP,
# a daemon restart with zero re-upload, byte-identical export through the
# socket, remote stats, and clean SIGTERM shutdown.
NSTORE="$WORK/nstore"   # client side: docker snapshot only
NOBJ="$WORK/nobj"       # daemon side: the durable object store
NOUT="$WORK/nout"

wait_serving() {
  # Blocks until the daemon prints its "serving on" line (or ~10s pass).
  i=0
  while ! grep -q "serving on" "$1" 2>/dev/null; do
    i=$((i+1)); test "$i" -le 100; sleep 0.1
  done
}

"$GEARCTL" serve --addr 127.0.0.1:0 --store-dir "$NOBJ" \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVE_PID=$!
wait_serving "$WORK/serve.out"
PORT="$(sed -n 's/^serving on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
  "$WORK/serve.out")"
test -n "$PORT"

"$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" init
"$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" import "$SRC" net:v1
test -n "$(ls "$NOBJ/objects")"   # the objects live in the DAEMON's store
"$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" stats > "$WORK/rstats"
grep -q "reachable" "$WORK/rstats"
# Every referenced file present remotely: "N / N present" with N > 0.
grep -q "referenced gear files on remote: \([1-9][0-9]*\) / \1 present" \
  "$WORK/rstats"

# Restart the daemon: SIGTERM must shut it down cleanly (exit 0), and a new
# process on the same port over the same store must already hold everything
# — the re-import moves zero bytes over the wire.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "shut down" "$WORK/serve.err"
"$GEARCTL" serve --addr "127.0.0.1:$PORT" --store-dir "$NOBJ" \
  > "$WORK/serve2.out" 2> "$WORK/serve2.err" &
SERVE_PID=$!
wait_serving "$WORK/serve2.out"
"$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" import "$SRC" net:v2 \
  | grep -q "0 uploaded"
"$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" export net:v1 "$NOUT"
diff -r "$SRC" "$NOUT"
test "$("$GEARCTL" --remote "127.0.0.1:$PORT" "$NSTORE" \
  cat net:v1 app/hello.txt)" = "hello from gearctl"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

# Strict endpoint validation: malformed HOST:PORT specs and serve flag
# conflicts are usage errors (exit 2), not crashes.
for BAD in nohost host: :123 host:abc host:0 host:99999; do
  if "$GEARCTL" --remote "$BAD" "$NSTORE" stats 2>/dev/null
  then exit 1; else test $? -eq 2; fi
done
if "$GEARCTL" serve --store-dir "$NOBJ" 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" serve --addr 127.0.0.1:0 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" serve --addr bad-endpoint --store-dir "$NOBJ" 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" serve --addr 127.0.0.1:0 --store-dir "$NOBJ" \
  --remote 127.0.0.1:1 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --addr 127.0.0.1:0 "$NSTORE" stats 2>/dev/null
then exit 1; else test $? -eq 2; fi
if "$GEARCTL" --remote "127.0.0.1:$PORT" --store-dir "$NOBJ" "$NSTORE" stats \
  2>/dev/null
then exit 1; else test $? -eq 2; fi

# --- multi-site edge simulation (cluster-sim) -----------------------------
# A self-contained in-process storm: no store dir, no daemon. The summary
# must show per-site WAN lines and peer traffic; churn mode reports the
# crash and the rejoin; lazy mode and custom link speeds parse.
"$GEARCTL" cluster-sim > "$WORK/sim.out"
grep -q "cluster-sim: 2 sites x 3 nodes" "$WORK/sim.out"
grep -q "site 1: wan" "$WORK/sim.out"
grep -q "peer hits" "$WORK/sim.out"
"$GEARCTL" cluster-sim --sites 3 --nodes-per-site 2 --wan-mbps 25 \
  --lan-mbps 500 --mode lazy > "$WORK/sim2.out"
grep -q "3 sites x 2 nodes, wan 25 Mbps, lan 500 Mbps, lazy" "$WORK/sim2.out"
grep -q "site 2: wan" "$WORK/sim2.out"
"$GEARCTL" cluster-sim --churn > "$WORK/sim3.out"
grep -q "crashed s0" "$WORK/sim3.out"
grep -q "rejoined s0" "$WORK/sim3.out"

# Strict flag validation: missing, zero, and non-numeric values are usage
# errors (exit 2), and the cluster-sim flags are rejected everywhere else.
if "$GEARCTL" cluster-sim --sites 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --sites 0 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --nodes-per-site nope 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --wan-mbps 0 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --lan-mbps fast 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --mode sideways 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim extra-arg 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" cluster-sim --remote 127.0.0.1:9 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --sites 2 "$STORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" --churn "$STORE" stats 2>/dev/null; then exit 1
else test $? -eq 2; fi
if "$GEARCTL" serve --addr 127.0.0.1:0 --store-dir "$NOBJ" --mode lazy \
  2>/dev/null
then exit 1; else test $? -eq 2; fi

echo "gearctl smoke test passed"
