// Tests for the multi-site edge topology: hierarchical P2P with
// site-local trackers, cross-site gossip, WAN-aware routing, and churn.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gear/chunking.hpp"
#include "gear/converter.hpp"
#include "p2p/topology.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear::p2p {
namespace {

struct TopologyFixture : ::testing::Test {
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image;
  workload::AccessSet access;

  void SetUp() override {
    vfs::FileTree root = gear::testing::random_tree(7100, 30, 8192);
    docker::ImageBuilder b;
    b.add_snapshot(root);
    image = b.build("svc", "v1", {});
    push_gear_image(GearConverter().convert(image).image, index_registry,
                    file_registry);
    access = workload::derive_access_set(
        image.flatten(), workload::AccessProfile{0.4, 0.8, 9, 1});
    ASSERT_FALSE(access.files.empty());
  }

  static Topology::Params make_params(std::size_t sites,
                                      std::size_t nodes_per_site) {
    Topology::Params p;
    p.sites = sites;
    p.nodes_per_site = nodes_per_site;
    return p;
  }

  Topology make_topology(std::size_t sites, std::size_t nodes_per_site) {
    return Topology(index_registry, file_registry,
                    make_params(sites, nodes_per_site));
  }

  /// Every access file on (site, node) byte-equals the source image.
  void expect_byte_exact(Topology& topo, std::size_t site, std::size_t node) {
    vfs::FileTree flat = image.flatten();
    std::string c = topo.node(site, node).store().create_container("svc:v1");
    GearFileViewer viewer = topo.node(site, node).open_viewer(c);
    for (const auto& fa : access.files) {
      ASSERT_EQ(viewer.read_file(fa.path).value(),
                flat.lookup(fa.path)->content())
          << "s" << site << ".n" << node << " " << fa.path;
    }
  }
};

// ------------------------------------------------------- two-tier ladder

TEST_F(TopologyFixture, LanTierBeforeWanTierBeforeRegistry) {
  Topology topo = make_topology(2, 2);

  // Cold topology: the first deploy anywhere is all registry.
  docker::DeployStats seed = topo.deploy(0, 0, "svc:v1", access);
  EXPECT_GT(seed.run_bytes_downloaded, 0u);
  EXPECT_EQ(topo.peer_hits(), 0u);

  // A node in the *other* site has no local peers: the cross-site (WAN)
  // tier serves it, the registry moves no content.
  docker::DeployStats cross = topo.deploy(1, 0, "svc:v1", access);
  EXPECT_EQ(cross.run_bytes_downloaded, 0u);
  EXPECT_GT(topo.wan_peer_hits(), 0u);
  EXPECT_EQ(topo.lan_peer_hits(), 0u);
  EXPECT_GT(topo.wan_peer_bytes(), 0u);

  // Its site neighbor now has a warm local peer: the LAN tier is preferred
  // and the WAN tier is never consulted again.
  std::uint64_t wan_hits_before = topo.wan_peer_hits();
  std::uint64_t wan_peer_bytes_before = topo.wan_peer_bytes();
  docker::DeployStats local = topo.deploy(1, 1, "svc:v1", access);
  EXPECT_EQ(local.run_bytes_downloaded, 0u);
  EXPECT_GT(topo.lan_peer_hits(), 0u);
  EXPECT_GT(topo.lan_bytes(), 0u);
  EXPECT_EQ(topo.wan_peer_hits(), wan_hits_before);
  EXPECT_EQ(topo.wan_peer_bytes(), wan_peer_bytes_before);
}

TEST_F(TopologyFixture, CrossSiteFetchOffMakesSitesIslands) {
  Topology::Params p = make_params(2, 1);
  p.cross_site_fetch = false;
  Topology topo(index_registry, file_registry, p);

  topo.deploy(0, 0, "svc:v1", access);
  docker::DeployStats second = topo.deploy(1, 0, "svc:v1", access);
  EXPECT_GT(second.run_bytes_downloaded, 0u);  // registry, not site 0
  EXPECT_EQ(topo.peer_hits(), 0u);
  EXPECT_EQ(topo.lan_bytes(), 0u);
}

TEST_F(TopologyFixture, PeerContentByteExactAcrossSites) {
  Topology topo = make_topology(2, 2);
  topo.deploy(0, 0, "svc:v1", access);
  topo.deploy(1, 0, "svc:v1", access);  // via the WAN tier
  topo.deploy(1, 1, "svc:v1", access);  // via the LAN tier
  expect_byte_exact(topo, 1, 0);
  expect_byte_exact(topo, 1, 1);
}

TEST_F(TopologyFixture, StormPullsRegistryContentOnce) {
  const std::size_t kSites = 4;
  const std::size_t kNodes = 3;
  Topology topo = make_topology(kSites, kNodes);

  std::uint64_t registry_content = 0;
  for (std::size_t s = 0; s < kSites; ++s) {
    for (std::size_t n = 0; n < kNodes; ++n) {
      registry_content += topo.deploy(s, n, "svc:v1", access)
                              .run_bytes_downloaded;
    }
  }
  // Only the very first node touched the registry for content; every site
  // seed rode the WAN peer tier and everyone else the site LAN.
  Topology solo = make_topology(1, 1);
  std::uint64_t one_copy = solo.deploy(0, 0, "svc:v1", access)
                               .run_bytes_downloaded;
  EXPECT_EQ(registry_content, one_copy);
  EXPECT_GT(topo.lan_peer_hits(), 0u);
  EXPECT_GT(topo.wan_peer_hits(), 0u);
}

TEST_F(TopologyFixture, BatchedPrefetchFansOutInBursts) {
  Topology topo = make_topology(1, 2);
  topo.deploy(0, 0, "svc:v1", access);
  topo.deploy(0, 1, "svc:v1", access);
  topo.prefetch(0, 0, "svc:v1");  // warms the whole image from the registry

  // The neighbor's prefetch batch-pulls every remaining file from node 0:
  // pipelined LAN bursts, no new registry content. (The returned pair
  // counts registry downloads only, so it reads {0,0} here — the peer
  // traffic shows up on the LAN accounting.)
  std::uint64_t wan_before = topo.wan_bytes();
  std::uint64_t lan_before = topo.lan_bytes();
  std::uint64_t bursts_before = topo.lan_bursts();
  topo.prefetch(0, 1, "svc:v1");
  EXPECT_GT(topo.lan_bursts(), bursts_before);
  EXPECT_GT(topo.lan_bytes(), lan_before);
  EXPECT_EQ(topo.wan_bytes(), wan_before);

  // And the neighbor really is fully warm: no stub is left in its index.
  bool complete = true;
  topo.node(0, 1).store().index_tree("svc:v1").walk(
      [&](const std::string&, const vfs::FileNode& node) {
        if (node.is_fingerprint()) complete = false;
      });
  EXPECT_TRUE(complete);
}

// ------------------------------------------------------------- gossip

TEST_F(TopologyFixture, LazyGossipServesCrossSiteOnlyAfterRound) {
  Topology::Params p = make_params(3, 1);
  p.eager_gossip = false;
  Topology topo(index_registry, file_registry, p);

  topo.deploy(0, 0, "svc:v1", access);
  // No gossip ran: site 1 has no digest and must use the registry.
  docker::DeployStats before = topo.deploy(1, 0, "svc:v1", access);
  EXPECT_GT(before.run_bytes_downloaded, 0u);
  EXPECT_EQ(topo.wan_peer_hits(), 0u);

  topo.gossip();
  docker::DeployStats after = topo.deploy(2, 0, "svc:v1", access);
  EXPECT_EQ(after.run_bytes_downloaded, 0u);
  EXPECT_GT(topo.wan_peer_hits(), 0u);
}

TEST_F(TopologyFixture, StaleCrossSiteDigestFallsThroughToRegistry) {
  Topology::Params p = make_params(2, 1);
  p.eager_gossip = false;
  Topology topo(index_registry, file_registry, p);

  topo.deploy(0, 0, "svc:v1", access);
  topo.gossip();
  topo.crash_node(0, 0);

  // Site 1's digest still names site 0; the lone advertised holder is down,
  // so the fetch degrades through the stale advert to the registry — and
  // the deploy still lands byte-exact.
  docker::DeployStats stats = topo.deploy(1, 0, "svc:v1", access);
  EXPECT_GT(stats.run_bytes_downloaded, 0u);
  EXPECT_EQ(topo.wan_peer_hits(), 0u);
  expect_byte_exact(topo, 1, 0);
}

TEST_F(TopologyFixture, RetireRetractsAdvertsEverywhere) {
  Topology topo = make_topology(2, 1);  // eager gossip on by default
  topo.deploy(0, 0, "svc:v1", access);
  topo.retire_node(0, 0);

  // The retraction gossiped out: site 1 never chases the gone holder.
  docker::DeployStats stats = topo.deploy(1, 0, "svc:v1", access);
  EXPECT_GT(stats.run_bytes_downloaded, 0u);
  EXPECT_EQ(topo.peer_hits(), 0u);
}

// ------------------------------------------------------------- churn

TEST_F(TopologyFixture, CrashDegradesToNextRankedHolder) {
  Topology topo = make_topology(1, 3);
  topo.deploy(0, 0, "svc:v1", access);
  docker::DeployStats second = topo.deploy(0, 1, "svc:v1", access);
  EXPECT_EQ(second.run_bytes_downloaded, 0u);

  // Node 0 ranks first in the tracker and its adverts stay after the
  // crash; the next deployer must skip past it to node 1, all on the LAN.
  topo.crash_node(0, 0);
  std::uint64_t wan_before = topo.wan_bytes();
  docker::DeployStats third = topo.deploy(0, 2, "svc:v1", access);
  EXPECT_EQ(third.run_bytes_downloaded, 0u);
  // WAN grew only by node 2's own index pull, not by content.
  EXPECT_EQ(topo.wan_bytes() - wan_before, third.pull.bytes_downloaded);
}

TEST_F(TopologyFixture, CrashedSoleHolderFallsThroughToRegistry) {
  Topology topo = make_topology(1, 2);
  topo.deploy(0, 0, "svc:v1", access);
  topo.crash_node(0, 0);

  docker::DeployStats second = topo.deploy(0, 1, "svc:v1", access);
  EXPECT_GT(second.run_bytes_downloaded, 0u);
  EXPECT_EQ(topo.lan_bytes(), 0u);
  expect_byte_exact(topo, 0, 1);
}

TEST_F(TopologyFixture, RejoinReAnnouncesWholeCache) {
  Topology topo = make_topology(1, 3);
  topo.deploy(0, 0, "svc:v1", access);
  topo.crash_node(0, 0);
  docker::DeployStats while_down = topo.deploy(0, 1, "svc:v1", access);
  EXPECT_GT(while_down.run_bytes_downloaded, 0u);  // sole holder was down

  topo.rejoin_node(0, 0);
  docker::DeployStats after = topo.deploy(0, 2, "svc:v1", access);
  EXPECT_EQ(after.run_bytes_downloaded, 0u);  // a rejoined holder serves
  EXPECT_GT(topo.lan_peer_hits(), 0u);
}

// -------------------------------------------- batched cross-site chunks

struct ChunkedTopologyFixture : ::testing::Test {
  static constexpr std::uint64_t kChunk = 4096;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  Bytes model;
  workload::AccessSet no_access;

  void SetUp() override {
    Rng rng(321);
    model = rng.next_bytes(24 * kChunk, 0.3);
    vfs::FileTree root;
    root.add_file("models/weights.bin", model);
    root.add_file("etc/config.json", to_bytes("{\"layers\":128}"));
    docker::ImageBuilder b;
    b.add_snapshot(root);
    push_gear_image(GearConverter().convert(b.build("ai", "v1", {})).image,
                    index_registry, file_registry,
                    ChunkPolicy{/*threshold_bytes=*/16 * 1024, kChunk});
  }
};

TEST_F(ChunkedTopologyFixture, CrossSiteChunksFanOutInOneWanBurst) {
  Topology::Params p;
  p.sites = 2;
  p.nodes_per_site = 1;
  Topology topo(index_registry, file_registry, p);

  std::string c0;
  topo.deploy(0, 0, "ai:v1", no_access, &c0);
  ASSERT_EQ(
      topo.read_range(0, 0, c0, "models/weights.bin", 0, model.size()).value(),
      model);

  // The remote node's identical read batch-pulls every chunk from site 0's
  // holder as ONE pipelined WAN burst; nothing moves on any LAN.
  std::string c1;
  topo.deploy(1, 0, "ai:v1", no_access, &c1);
  std::uint64_t hits_before = topo.peer_hits();
  ASSERT_EQ(
      topo.read_range(1, 0, c1, "models/weights.bin", 0, model.size()).value(),
      model);
  EXPECT_EQ(topo.peer_hits() - hits_before, 24u);
  EXPECT_EQ(topo.wan_peer_bursts(), 1u);
  EXPECT_EQ(topo.lan_bursts(), 0u);
  EXPECT_EQ(topo.lan_bytes(), 0u);
}

// -------------------------------------------------------- validation

TEST_F(TopologyFixture, TopologyValidation) {
  Topology::Params bad;
  bad.sites = 0;
  EXPECT_THROW(Topology(index_registry, file_registry, bad), Error);
  bad.sites = 1;
  bad.nodes_per_site = 0;
  EXPECT_THROW(Topology(index_registry, file_registry, bad), Error);

  Topology topo = make_topology(2, 2);
  EXPECT_THROW(topo.deploy(2, 0, "svc:v1", access), Error);
  EXPECT_THROW(topo.deploy(0, 2, "svc:v1", access), Error);
  EXPECT_THROW(topo.crash_node(5, 0), Error);
  EXPECT_THROW(topo.wan_bytes(2), Error);
  EXPECT_THROW(topo.lan_bytes(2), Error);
  EXPECT_THROW(topo.node(0, 9), Error);
}

// ---------------------------------------------------- concurrent storms
// The ConcurrentEdge* suites run under TSAN in CI: deploys on distinct
// nodes race tracker announcements, gossip writes, and churn flips.

using ConcurrentEdgeStorm = TopologyFixture;

TEST_F(ConcurrentEdgeStorm, DistinctNodeDeploysAreRaceFree) {
  const std::size_t kSites = 2;
  const std::size_t kNodes = 3;
  Topology topo = make_topology(kSites, kNodes);

  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kSites; ++s) {
    for (std::size_t n = 0; n < kNodes; ++n) {
      threads.emplace_back([&, s, n] {
        topo.deploy(s, n, "svc:v1", access);
        topo.prefetch(s, n, "svc:v1");
      });
    }
  }
  for (std::thread& th : threads) th.join();

  for (std::size_t s = 0; s < kSites; ++s) {
    for (std::size_t n = 0; n < kNodes; ++n) {
      // Fully warmed: a second prefetch moves nothing.
      auto [files, bytes] = topo.prefetch(s, n, "svc:v1");
      EXPECT_EQ(files, 0u);
      EXPECT_EQ(bytes, 0u);
      expect_byte_exact(topo, s, n);
    }
  }
}

TEST_F(ConcurrentEdgeStorm, ChurnFlipsRaceDeployingNodes) {
  Topology topo = make_topology(2, 2);
  topo.deploy(0, 0, "svc:v1", access);
  topo.prefetch(0, 0, "svc:v1");

  // Three nodes deploy while the warmed holder flaps: fetchers see stale
  // adverts, degrade, and every deploy still lands byte-exact.
  std::vector<std::thread> threads;
  for (auto [s, n] : {std::pair<std::size_t, std::size_t>{0, 1},
                      {1, 0},
                      {1, 1}}) {
    threads.emplace_back([&, s = s, n = n] {
      topo.deploy(s, n, "svc:v1", access);
      topo.prefetch(s, n, "svc:v1");
    });
  }
  std::thread churn([&] {
    for (int i = 0; i < 50; ++i) {
      topo.crash_node(0, 0);
      topo.rejoin_node(0, 0);
    }
  });
  for (std::thread& th : threads) th.join();
  churn.join();

  for (auto [s, n] : {std::pair<std::size_t, std::size_t>{0, 1},
                      {1, 0},
                      {1, 1}}) {
    expect_byte_exact(topo, s, n);
  }
}

TEST(ConcurrentEdgeTracker, RetractRacesRankedLocates) {
  PeerTracker tracker;
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 64; ++i) {
    fps.push_back(
        default_hasher().fingerprint(to_bytes("edge" + std::to_string(i))));
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::string id = "node" + std::to_string(t);
      for (int round = 0; round < 50; ++round) {
        tracker.announce_all(id, fps);
        tracker.retract_node(id);
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::string self = "reader" + std::to_string(t);
      for (int round = 0; round < 50; ++round) {
        std::vector<std::vector<std::string>> ranked =
            tracker.locate_ranked_many(fps, self);
        if (ranked.size() != fps.size()) ++errors;
        for (const auto& holders : ranked) {
          for (const std::string& h : holders) {
            if (h == self) ++errors;  // requester must be excluded
          }
        }
        std::vector<std::string> one = tracker.locate_ranked(fps[0], self);
        for (const std::string& h : one) {
          if (h == self) ++errors;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors, 0);
  tracker.retract_node("node0");
  tracker.retract_node("node1");
  tracker.retract_node("node2");
  tracker.retract_node("node3");
  EXPECT_EQ(tracker.announced_objects(), 0u);
}

}  // namespace
}  // namespace gear::p2p
