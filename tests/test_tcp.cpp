// The real-socket transport: TcpServer/TcpTransport moving GWP1 frames
// between OS sockets. Proves the socket path is byte-identical to the
// loopback path (same frames, same server stats, same client state), and
// exercises the stream edge cases loopback can never hit: split writes and
// short reads, mid-frame peer disconnects, oversized-frame rejection,
// server restart with transparent client reconnect, and concurrent
// multi-client deploys (the ConcurrentTcp* test also runs under TSAN).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/object_store.hpp"
#include "gear/registry.hpp"
#include "net/remote_registry.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

namespace fs = std::filesystem;

using net::FrameServer;
using net::HostPort;
using net::LoopbackTransport;
using net::RemoteGearRegistry;
using net::TcpServer;
using net::TcpTransport;

// Converter fingerprints may be collision-salted, so remote stubs skip the
// content-hash check; the frame CRC still guards every transfer.
constexpr bool kNoVerify = false;

fs::path fresh_dir(const std::string& tag) {
  fs::path p = fs::path(::testing::TempDir()) /
               ("gear_tcp_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

/// Dials 127.0.0.1:`port` with a plain blocking socket — the raw-bytes
/// client for the stream edge-case tests.
int raw_dial(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

Bytes framed(BytesView frame) {
  std::uint8_t header[net::kFrameHeaderBytes];
  net::put_frame_length(header, frame.size());
  Bytes out(header, header + sizeof header);
  append(out, frame);
  return out;
}

Bytes query_frame(const Fingerprint& fp) {
  net::WireMessage req;
  req.type = net::MessageType::kQueryRequest;
  req.fp = fp;
  return net::encode_message(req);
}

TEST(TcpHostPort, ParsesAndRejects) {
  StatusOr<HostPort> ok = net::parse_host_port("localhost:8080");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->host, "localhost");
  EXPECT_EQ(ok->port, 8080);

  // rfind(':') splits on the LAST colon, so a bracketless v6-ish host works.
  ok = net::parse_host_port("::1:443");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->host, "::1");
  EXPECT_EQ(ok->port, 443);

  ok = net::parse_host_port("127.0.0.1:0");  // ephemeral bind parses
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->port, 0);

  for (const char* bad : {"nohost", "host:", ":123", "host:abc", "host:12x",
                          "host:65536", "host:999999", ""}) {
    StatusOr<HostPort> got = net::parse_host_port(bad);
    EXPECT_FALSE(got.ok()) << bad;
    EXPECT_EQ(got.code(), ErrorCode::kInvalidArgument) << bad;
  }
}

struct TcpSocketFixture : ::testing::Test {
  GearRegistry registry;
  FrameServer frames{registry};
  TcpServer server{frames};

  void SetUp() override { server.start("127.0.0.1", 0); }
};

TEST_F(TcpSocketFixture, RegistryCallsWorkOverRealSockets) {
  TcpTransport transport("127.0.0.1", server.port());
  RemoteGearRegistry remote(transport, 3, kNoVerify);

  Bytes content = to_bytes("file body over a real socket");
  Fingerprint fp = default_hasher().fingerprint(content);
  EXPECT_FALSE(remote.query(fp));
  EXPECT_TRUE(remote.upload(fp, content));
  EXPECT_TRUE(remote.query(fp));
  EXPECT_EQ(remote.download(fp).value(), content);
  EXPECT_EQ(remote.stored_size(fp).value(), registry.stored_size(fp).value());

  // Server-side accounting matches a loopback-served session.
  EXPECT_EQ(frames.stats().round_trips, 5u);
  EXPECT_EQ(server.frames_served(), 5u);
  EXPECT_EQ(server.connections_accepted(), 1u);  // one persistent connection
  EXPECT_EQ(remote.stats().retries, 0u);
}

TEST_F(TcpSocketFixture, SplitWritesAndShortReadsReassemble) {
  // A peer trickling one byte at a time is still one frame to the server,
  // and a client that drains the response one byte at a time still sees one
  // intact frame: framing survives arbitrary TCP segmentation.
  Bytes content = to_bytes("trickle");
  Fingerprint fp = default_hasher().fingerprint(content);
  registry.upload(fp, content);

  Bytes wire = framed(query_frame(fp));
  int fd = raw_dial(server.port());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_EQ(::send(fd, wire.data() + i, 1, 0), 1);
    if (i % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::uint8_t header[net::kFrameHeaderBytes];
  for (std::size_t i = 0; i < sizeof header; ++i) {
    ASSERT_EQ(::recv(fd, header + i, 1, 0), 1);
  }
  std::uint32_t len = net::get_frame_length(header);
  ASSERT_GT(len, 0u);
  Bytes response(len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(::recv(fd, response.data() + i, 1, 0), 1);
  }
  StatusOr<net::WireMessage> decoded = net::decode_message(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, net::MessageType::kQueryResponse);
  EXPECT_EQ(decoded->status, net::Status::kExists);
  EXPECT_EQ(decoded->fp, fp);
  ::close(fd);
}

TEST_F(TcpSocketFixture, MidFrameDisconnectLeavesServerServing) {
  // A peer that dies mid-frame costs the server nothing but that
  // connection: the next client is served normally.
  int fd = raw_dial(server.port());
  std::uint8_t header[net::kFrameHeaderBytes];
  net::put_frame_length(header, 100);  // promise 100 bytes...
  ASSERT_EQ(::send(fd, header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  ASSERT_EQ(::send(fd, "partial", 7, 0), 7);  // ...deliver 7, hang up
  ::close(fd);

  TcpTransport transport("127.0.0.1", server.port());
  RemoteGearRegistry remote(transport, 3, kNoVerify);
  Bytes content = to_bytes("after the crash");
  Fingerprint fp = default_hasher().fingerprint(content);
  EXPECT_TRUE(remote.upload(fp, content));
  EXPECT_EQ(remote.download(fp).value(), content);
  EXPECT_EQ(server.frames_rejected(), 0u);  // disconnect, not a violation
}

TEST(TcpSocketLimits, OversizedAndEmptyFramesDropTheConnection) {
  GearRegistry registry;
  FrameServer frames(registry);
  TcpServer::Options options;
  options.max_frame_bytes = 1024;
  TcpServer server(frames, options);
  server.start("127.0.0.1", 0);

  // An honest frame under the limit is served...
  Bytes content = to_bytes("x");
  Fingerprint fp = default_hasher().fingerprint(content);
  registry.upload(fp, content);
  {
    TcpTransport transport("127.0.0.1", server.port());
    RemoteGearRegistry remote(transport, 3, kNoVerify);
    EXPECT_TRUE(remote.query(fp));
  }

  // ...a length prefix past the limit is not: the connection just dies
  // (EOF on our side), before the server allocates anything.
  for (std::uint32_t bad_len : {std::uint32_t{10} << 20, std::uint32_t{0}}) {
    int fd = raw_dial(server.port());
    std::uint8_t header[net::kFrameHeaderBytes];
    net::put_frame_length(header, bad_len);
    ASSERT_EQ(::send(fd, header, sizeof header, 0),
              static_cast<ssize_t>(sizeof header));
    std::uint8_t byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // clean EOF, no response frame
    ::close(fd);
  }
  EXPECT_EQ(server.frames_rejected(), 2u);
  server.stop();
}

TEST(TcpReconnect, ServerRestartHealsMidWorkload) {
  // Durable store + wire serving: push through a daemon, kill it, bring a
  // new one up on the same port over the same store — the same client
  // transport redials on its own and the downloads come back intact.
  fs::path dir = fresh_dir("restart");
  Bytes a = to_bytes("survives the restart");
  Bytes b = to_bytes("second file");
  Fingerprint fp_a = default_hasher().fingerprint(a);
  Fingerprint fp_b = default_hasher().fingerprint(b);

  std::uint16_t port = 0;
  std::unique_ptr<TcpTransport> client;  // dialed once the first bind lands
  {
    GearRegistry registry(std::make_unique<DiskObjectStore>(dir));
    FrameServer frames(registry);
    TcpServer server(frames);
    server.start("127.0.0.1", 0);
    port = server.port();
    client = std::make_unique<TcpTransport>("127.0.0.1", port);
    RemoteGearRegistry remote(*client, 3, kNoVerify);
    EXPECT_TRUE(remote.upload(fp_a, a));
    EXPECT_TRUE(remote.upload(fp_b, b));
    server.stop();
  }

  // Daemon gone: the stub burns its retries and reports unreachable.
  {
    TcpTransport::Options fast;
    fast.max_attempts = 2;
    fast.connect_timeout_ms = 200;
    fast.backoff_initial_ms = 1;
    TcpTransport dead("127.0.0.1", port, fast);
    RemoteGearRegistry remote(dead, 2, kNoVerify);
    EXPECT_THROW((void)remote.query(fp_a), Error);
  }

  // New process incarnation: same store dir, same port. The original
  // client transport notices the dead connection and redials.
  GearRegistry reopened(std::make_unique<DiskObjectStore>(dir));
  FrameServer frames(reopened);
  TcpServer server(frames);
  server.start("127.0.0.1", port);
  RemoteGearRegistry remote(*client, 3, kNoVerify);
  EXPECT_EQ(remote.download(fp_a).value(), a);
  EXPECT_EQ(remote.download(fp_b).value(), b);
  EXPECT_GE(client->reconnects(), 1u);
  // Nothing was re-uploaded: the disk store already held both objects.
  EXPECT_EQ(reopened.object_count(), 2u);
  EXPECT_EQ(frames.stats().upload_round_trips, 0u);
  server.stop();
  fs::remove_all(dir);
}

struct TcpDeployFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};

  docker::Image original;
  GearImage gear_image;

  void SetUp() override {
    vfs::FileTree s0 = gear::testing::random_tree(311, 120, 3000);
    docker::ImageBuilder b;
    b.add_snapshot(s0);
    original = b.build("app", "v1", docker::ImageConfig{});
    gear_image = GearConverter().convert(original).image;
  }
};

TEST_F(TcpDeployFixture, TcpDeployIsByteIdenticalToLoopback) {
  // The acceptance claim of the socket transport: a full push + prefetch
  // over TCP produces the same server contents, the same wire traffic
  // (frames in/out, round trips per kind, items per kind), the same client
  // cache, and the same stub accounting as the in-process loopback path.
  GearRegistry loop_server;
  docker::DockerRegistry loop_docker;
  LoopbackTransport loop_transport(loop_server);
  RemoteGearRegistry loop_remote(loop_transport, 3, kNoVerify);

  GearRegistry tcp_registry;
  docker::DockerRegistry tcp_docker;
  FrameServer tcp_frames(tcp_registry);
  TcpServer tcp_server(tcp_frames);
  tcp_server.start("127.0.0.1", 0);
  TcpTransport tcp_transport("127.0.0.1", tcp_server.port());
  RemoteGearRegistry tcp_remote(tcp_transport, 3, kNoVerify);

  EXPECT_EQ(push_gear_image(gear_image, loop_docker, loop_remote),
            push_gear_image(gear_image, tcp_docker, tcp_remote));
  EXPECT_EQ(tcp_registry.storage_bytes(), loop_server.storage_bytes());
  EXPECT_EQ(tcp_registry.object_count(), loop_server.object_count());

  GearClient loop_client(loop_docker, loop_remote, link, disk);
  loop_client.set_download_batch_files(16);
  sim::SimClock clock2;
  sim::NetworkLink link2{clock2, 904.0, 0.0005, 0.0003};
  sim::DiskModel disk2{clock2, 0.0001, 500.0, 480.0};
  GearClient tcp_client(tcp_docker, tcp_remote, link2, disk2);
  tcp_client.set_download_batch_files(16);

  loop_client.pull("app:v1");
  tcp_client.pull("app:v1");
  auto [loop_files, loop_bytes] = loop_client.prefetch_remaining("app:v1");
  auto [tcp_files, tcp_bytes] = tcp_client.prefetch_remaining("app:v1");
  EXPECT_EQ(tcp_files, loop_files);
  EXPECT_EQ(tcp_bytes, loop_bytes);

  // Wire-level identity, interface by interface.
  const net::LoopbackServerStats& ls = loop_transport.server_stats();
  const net::LoopbackServerStats& ts = tcp_frames.stats();
  EXPECT_EQ(ts.round_trips, ls.round_trips);
  EXPECT_EQ(ts.query_round_trips, ls.query_round_trips);
  EXPECT_EQ(ts.query_items, ls.query_items);
  EXPECT_EQ(ts.upload_round_trips, ls.upload_round_trips);
  EXPECT_EQ(ts.upload_items, ls.upload_items);
  EXPECT_EQ(ts.download_round_trips, ls.download_round_trips);
  EXPECT_EQ(ts.download_items, ls.download_items);
  EXPECT_EQ(ts.bytes_in, ls.bytes_in);
  EXPECT_EQ(ts.bytes_out, ls.bytes_out);
  EXPECT_EQ(tcp_remote.stats().requests, loop_remote.stats().requests);
  EXPECT_EQ(tcp_remote.stats().retries, 0u);
  EXPECT_EQ(tcp_remote.stats().item_refetches, 0u);

  // Client-side identity: every gear file cached with the same bytes.
  for (const auto& [fp, content] : gear_image.files) {
    EXPECT_EQ(loop_client.store().cache().get(fp).value(), content);
    EXPECT_EQ(tcp_client.store().cache().get(fp).value(), content);
  }
  tcp_server.stop();
}

TEST_F(TcpDeployFixture, ConcurrentTcpClientsDeployAgainstOneDaemon) {
  // Several client processes' worth of traffic at once: each thread owns a
  // private transport+stub (its own connection) and fetches the full image.
  GearRegistry registry;
  docker::DockerRegistry docker_registry;
  FrameServer frames(registry);
  TcpServer server(frames);
  server.start("127.0.0.1", 0);
  {
    TcpTransport seed_transport("127.0.0.1", server.port());
    RemoteGearRegistry seeder(seed_transport, 3, kNoVerify);
    push_gear_image(gear_image, docker_registry, seeder);
  }

  constexpr int kClients = 4;
  std::vector<std::size_t> fetched(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpTransport transport("127.0.0.1", server.port());
      RemoteGearRegistry remote(transport, 3, kNoVerify);
      std::vector<Fingerprint> fps;
      for (const auto& [fp, content] : gear_image.files) fps.push_back(fp);
      StatusOr<std::vector<Bytes>> got = remote.download_batch(fps);
      ASSERT_TRUE(got.ok());
      for (std::size_t i = 0; i < fps.size(); ++i) {
        ASSERT_EQ((*got)[i], gear_image.files[i].second);
      }
      fetched[static_cast<std::size_t>(c)] = got->size();
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(fetched[static_cast<std::size_t>(c)], gear_image.files.size());
  }
  EXPECT_EQ(frames.stats().download_items,
            kClients * gear_image.files.size());
  EXPECT_GE(server.connections_accepted(),
            static_cast<std::uint64_t>(kClients));
  server.stop();
}

}  // namespace
}  // namespace gear
