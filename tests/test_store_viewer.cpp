// Unit tests for the three-level store, the Gear File Viewer, and commit.
#include <gtest/gtest.h>

#include <map>

#include "docker/image.hpp"
#include "gear/committer.hpp"
#include "gear/converter.hpp"
#include "gear/store.hpp"
#include "gear/viewer.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

/// Test fixture: a converted image, a content pool, and a store.
struct ViewerFixture : ::testing::Test {
  vfs::FileTree root;
  GearIndex index;
  std::map<Fingerprint, Bytes> pool;
  ThreeLevelStore store;
  int fetches = 0;

  void SetUp() override {
    root = gear::testing::sample_tree();
    index = GearIndex::from_root_fs(
        root, [this](const std::string&, const Bytes& content) {
          Fingerprint fp = default_hasher().fingerprint(content);
          pool[fp] = content;
          return fp;
        });
    store.add_index("app:v1", GearIndex{vfs::FileTree(index.tree())});
  }

  GearFileViewer make_viewer(const std::string& container_id) {
    return GearFileViewer(store.index_tree("app:v1"),
                          store.container_diff(container_id),
                          [this](const std::string&, const Fingerprint& fp,
                                 std::uint64_t) {
                            ++fetches;
                            return pool.at(fp);
                          });
  }
};

// ----------------------------------------------------------- three-level

TEST_F(ViewerFixture, StoreLifecycle) {
  EXPECT_TRUE(store.has_index("app:v1"));
  std::string c1 = store.create_container("app:v1");
  std::string c2 = store.create_container("app:v1");
  EXPECT_NE(c1, c2);
  EXPECT_EQ(store.container_image(c1), "app:v1");
  EXPECT_EQ(store.container_count(), 2u);

  // Deleting a container keeps the image launchable.
  store.remove_container(c1);
  EXPECT_EQ(store.container_count(), 1u);
  EXPECT_NO_THROW(store.create_container("app:v1"));

  EXPECT_THROW(store.create_container("ghost:v9"), Error);
  EXPECT_THROW(store.remove_container("nope"), Error);
}

TEST_F(ViewerFixture, RemoveImageUnpinsFiles) {
  Fingerprint fp = index.stubs()[0].fingerprint;
  store.cache().put(fp, pool.at(fp));
  store.record_link("app:v1", fp);
  EXPECT_EQ(store.cache().link_count(fp), 1u);

  store.remove_image("app:v1");
  EXPECT_FALSE(store.has_index("app:v1"));
  // The Gear file stays cached, just unpinned (paper §III-D1).
  EXPECT_TRUE(store.cache().contains(fp));
  EXPECT_EQ(store.cache().link_count(fp), 0u);
}

TEST_F(ViewerFixture, RecordLinkIdempotentPerImage) {
  Fingerprint fp = index.stubs()[0].fingerprint;
  store.cache().put(fp, pool.at(fp));
  store.record_link("app:v1", fp);
  store.record_link("app:v1", fp);
  EXPECT_EQ(store.cache().link_count(fp), 1u);
}

// ----------------------------------------------------------------- viewer

TEST_F(ViewerFixture, ReadMaterializesStubOnce) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);

  EXPECT_EQ(to_string(v.read_file("etc/hostname").value()), "gear-test\n");
  EXPECT_EQ(fetches, 1);
  EXPECT_EQ(v.materialized_count(), 1u);

  // Second read: served from the materialized index node, no fetch.
  EXPECT_EQ(to_string(v.read_file("etc/hostname").value()), "gear-test\n");
  EXPECT_EQ(fetches, 1);
}

TEST_F(ViewerFixture, MaterializationSharedAcrossContainers) {
  std::string c1 = store.create_container("app:v1");
  std::string c2 = store.create_container("app:v1");
  GearFileViewer v1 = make_viewer(c1);
  v1.read_file("usr/bin/app").value();
  EXPECT_EQ(fetches, 1);

  // The second container's viewer sees the already-materialized file.
  GearFileViewer v2 = make_viewer(c2);
  v2.read_file("usr/bin/app").value();
  EXPECT_EQ(fetches, 1);
}

TEST_F(ViewerFixture, IrregularFilesAnsweredWithoutFetch) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  EXPECT_EQ(v.read_symlink("usr/bin/app-link").value(), "app");
  EXPECT_TRUE(v.exists("etc"));
  auto listing = v.list_dir("etc");
  EXPECT_EQ(listing.size(), 2u);
  EXPECT_EQ(fetches, 0);  // no regular file was touched
}

TEST_F(ViewerFixture, StatDoesNotMaterialize) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  EXPECT_EQ(v.stat_size("usr/bin/app").value(), 2000u);
  EXPECT_EQ(fetches, 0);
}

TEST_F(ViewerFixture, WritesGoToDiffLayer) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  v.write_file("etc/hostname", to_bytes("modified\n"));
  EXPECT_EQ(to_string(v.read_file("etc/hostname").value()), "modified\n");
  EXPECT_EQ(fetches, 0);  // masked stub never materialized

  // The index keeps the pristine stub; a sibling container sees original.
  std::string c2 = store.create_container("app:v1");
  GearFileViewer v2 = make_viewer(c2);
  EXPECT_EQ(to_string(v2.read_file("etc/hostname").value()), "gear-test\n");
}

TEST_F(ViewerFixture, RemoveCreatesWhiteout) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  EXPECT_TRUE(v.remove("etc/hostname"));
  EXPECT_FALSE(v.exists("etc/hostname"));
  ASSERT_NE(v.diff().lookup("etc/hostname"), nullptr);
  EXPECT_TRUE(v.diff().lookup("etc/hostname")->is_whiteout());
  // Gone from listings.
  auto listing = v.list_dir("etc");
  EXPECT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0], "os-release");
}

TEST_F(ViewerFixture, RemoveDiffOnlyFileLeavesNoWhiteout) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  v.write_file("tmp/x", to_bytes("t"));
  EXPECT_TRUE(v.remove("tmp/x"));
  EXPECT_EQ(v.diff().lookup("tmp/x"), nullptr);
}

TEST_F(ViewerFixture, DeleteThenRecreateDirHidesIndexContents) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  ASSERT_TRUE(v.remove("usr/bin"));
  v.make_dir("usr/bin");
  v.write_file("usr/bin/newapp", to_bytes("n"));
  EXPECT_FALSE(v.exists("usr/bin/app"));
  EXPECT_FALSE(v.exists("usr/bin/app-link"));
  EXPECT_TRUE(v.exists("usr/bin/newapp"));
}

TEST_F(ViewerFixture, SizeMismatchFromMaterializerThrows) {
  std::string c = store.create_container("app:v1");
  GearFileViewer bad(store.index_tree("app:v1"), store.container_diff(c),
                     [](const std::string&, const Fingerprint&,
                        std::uint64_t) {
                       return to_bytes("wrong-size");
                     });
  EXPECT_THROW(bad.read_file("usr/bin/app").value(), Error);
}

TEST_F(ViewerFixture, NullMaterializerRejected) {
  std::string c = store.create_container("app:v1");
  EXPECT_THROW(GearFileViewer(store.index_tree("app:v1"),
                              store.container_diff(c), nullptr),
               Error);
}

TEST_F(ViewerFixture, ListDirMergesDiffAndIndex) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  v.write_file("etc/added.conf", to_bytes("a"));
  auto listing = v.list_dir("etc");
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0], "added.conf");
  EXPECT_EQ(listing[1], "hostname");
  EXPECT_EQ(listing[2], "os-release");
}

// ----------------------------------------------------------------- commit

TEST_F(ViewerFixture, CommitProducesNewImage) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  v.read_file("etc/hostname").value();  // materialize one stub
  v.write_file("app/data.bin", to_bytes("NEWDATA"));
  v.write_file("etc/hostname", to_bytes("edited\n"));
  v.remove("var/log/boot.log");

  GearCommitter committer;
  CommitResult result = committer.commit(store.index_tree("app:v1"), v.diff(),
                                         docker::ImageConfig{}, "app", "v2");

  EXPECT_EQ(result.files_extracted, 2u);  // data.bin + edited hostname
  const GearIndex& new_index = result.image.index;
  // New files are stubs in the new index.
  const vfs::FileNode* data = new_index.tree().lookup("app/data.bin");
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->is_fingerprint());
  EXPECT_EQ(data->stub_size(), 7u);
  // Deleted file absent.
  EXPECT_EQ(new_index.tree().lookup("var/log/boot.log"), nullptr);
  // Unmodified file still referenced by its original fingerprint.
  const vfs::FileNode* os_release = new_index.tree().lookup("etc/os-release");
  ASSERT_NE(os_release, nullptr);
  EXPECT_TRUE(pool.count(os_release->fingerprint()) == 1);
  // The materialized-then-unmodified stub re-normalizes to its fingerprint,
  // and is NOT re-uploaded.
  for (const auto& [fp, content] : result.image.files) {
    (void)content;
    EXPECT_EQ(pool.count(fp), 0u) << "pre-existing file re-extracted";
  }
  // Index image is a valid single-layer Docker image tagged app:v2.
  EXPECT_EQ(result.image.index_image.manifest.reference(), "app:v2");
  EXPECT_EQ(result.image.index_image.layers.size(), 1u);
}

TEST_F(ViewerFixture, CommittedImageLaunchesCorrectly) {
  std::string c = store.create_container("app:v1");
  GearFileViewer v = make_viewer(c);
  v.write_file("app/data.bin", to_bytes("NEWDATA"));
  v.remove("etc/hostname");

  GearCommitter committer;
  CommitResult result = committer.commit(store.index_tree("app:v1"), v.diff(),
                                         docker::ImageConfig{}, "app", "v2");

  // Extend the pool with newly extracted files and launch from the new index.
  for (auto& [fp, content] : result.image.files) pool[fp] = content;
  store.add_index("app:v2", GearIndex{vfs::FileTree(result.image.index.tree())});
  std::string c2 = store.create_container("app:v2");
  GearFileViewer v2(store.index_tree("app:v2"), store.container_diff(c2),
                    [this](const std::string&, const Fingerprint& fp,
                                 std::uint64_t) {
                      return pool.at(fp);
                    });
  EXPECT_EQ(to_string(v2.read_file("app/data.bin").value()), "NEWDATA");
  EXPECT_FALSE(v2.exists("etc/hostname"));
  EXPECT_EQ(to_string(v2.read_file("etc/os-release").value()),
            "NAME=gearos\nVERSION=1\n");
}

}  // namespace
}  // namespace gear
