// Lazy deploy (DeployMode::kLazy): start-before-warm containers.
//
// Covers the client-level guarantees behind gear/client's lazy mode:
//  * deploy returns at readiness with zero file bytes moved; demand faults
//    through the viewer materialize correct content afterwards;
//  * backfill_remaining completes the image byte-identically to an eager
//    deploy, and demand + backfill together never fetch a fingerprint
//    twice (wire identity);
//  * a demand fault issued mid-backfill preempts the drain (the yield is
//    observable and no backfill batch hits the registry while the fault is
//    in flight);
//  * the reader storm: several threads faulting overlapping files while
//    the backfill drains on another thread — run under TSAN in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

/// One pushed image ("app:v1", ~30 random files) plus the expected
/// path -> content map and a handful of demand paths with distinct,
/// non-empty fingerprints.
struct LazyFixture : ::testing::Test {
  docker::DockerRegistry docker_registry;
  GearRegistry gear_registry;
  std::map<std::string, Bytes> expected;   // regular files of the image
  std::vector<std::string> demand_paths;   // distinct-fingerprint subset

  void SetUp() override {
    vfs::FileTree tree = testing::random_tree(1234, 30);
    docker::ImageBuilder b;
    b.add_snapshot(tree);
    docker::Image image = b.build("app", "v1", docker::ImageConfig{});
    GearImage gi = GearConverter().convert(image).image;
    push_gear_image(gi, docker_registry, gear_registry);

    std::set<Fingerprint> seen;
    gi.index.tree().walk([&](const std::string& path,
                             const vfs::FileNode& node) {
      if (!node.is_fingerprint()) return;
      if (node.stub_size() > 0 && seen.insert(node.fingerprint()).second &&
          demand_paths.size() < 5) {
        demand_paths.push_back(path);
      }
    });
    tree.walk([&](const std::string& path, const vfs::FileNode& node) {
      if (node.is_regular()) expected[path] = node.content();
    });
    ASSERT_EQ(demand_paths.size(), 5u);
  }
};

struct ClientRig {
  sim::SimClock clock;
  sim::NetworkLink link;
  sim::DiskModel disk;
  GearClient client;

  ClientRig(docker::DockerRegistry& dr, FileRegistryApi& fr)
      : link(clock, 904.0, 0.0005, 0.0003),
        disk(clock, 0.0001, 500.0, 480.0),
        client(dr, fr, link, disk) {}
};

/// path -> content of the image index; counts leftover stubs.
std::map<std::string, Bytes> index_contents(GearClient& client,
                                            const std::string& reference,
                                            std::size_t* stubs) {
  std::map<std::string, Bytes> out;
  client.store().index_tree(reference).walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        if (node.is_fingerprint()) ++*stubs;
        if (node.is_regular()) out[path] = node.content();
      });
  return out;
}

TEST_F(LazyFixture, ReadyImmediatelyThenFaultsMaterialize) {
  ClientRig eager(docker_registry, gear_registry);
  workload::AccessSet all;
  for (const auto& [path, content] : expected) {
    all.files.push_back({path, content.size(), {}});
  }
  docker::DeployStats eager_stats = eager.client.deploy("app:v1", all);

  ClientRig lazy(docker_registry, gear_registry);
  std::string container;
  docker::DeployStats stats =
      lazy.client.deploy("app:v1", all, &container, DeployMode::kLazy);
  // Readiness is the index pull + mount + startup: no file content moved,
  // and the window is strictly shorter than the eager replay's.
  EXPECT_EQ(stats.run_bytes_downloaded, 0u);
  EXPECT_EQ(stats.prefetched_files, 0u);
  EXPECT_GT(stats.pull.bytes_downloaded, 0u);
  EXPECT_LT(stats.ready_seconds, eager_stats.run_seconds);
  EXPECT_DOUBLE_EQ(stats.ready_seconds, stats.pull.seconds + stats.run_seconds);

  GearFileViewer viewer = lazy.client.open_viewer(container);
  const std::string& path = demand_paths[0];
  EXPECT_EQ(viewer.read_file(path).value(), expected[path]);
  GearFileViewer::ReadStats rs = viewer.read_stats();
  EXPECT_EQ(rs.reads, 1u);
  EXPECT_EQ(rs.faults, 1u);
  EXPECT_GT(lazy.client.viewer_bytes_downloaded(), 0u);

  // Second read of the same file is a hit — the stub became regular.
  EXPECT_EQ(viewer.read_file(path).value(), expected[path]);
  EXPECT_EQ(viewer.read_stats().hits, 1u);
}

TEST_F(LazyFixture, BackfillCompletesTreeByteIdenticalToEager) {
  ClientRig eager(docker_registry, gear_registry);
  eager.client.pull("app:v1");
  auto [eager_files, eager_bytes] = eager.client.prefetch_remaining("app:v1");
  ASSERT_GT(eager_files, 0u);

  ClientRig lazy(docker_registry, gear_registry);
  std::string container;
  lazy.client.deploy("app:v1", {}, &container, DeployMode::kLazy);
  GearFileViewer viewer = lazy.client.open_viewer(container);
  for (const std::string& path : demand_paths) {
    EXPECT_EQ(viewer.read_file(path).value(), expected[path]);
  }
  auto [backfill_files, backfill_bytes] =
      lazy.client.backfill_remaining("app:v1");

  // Wire identity: the demand lane took the 5 probed fingerprints, the
  // backfill took exactly the rest — nothing moved twice by either lane.
  EXPECT_EQ(backfill_files + demand_paths.size(), eager_files);
  EXPECT_EQ(backfill_bytes + lazy.client.viewer_bytes_downloaded(),
            eager_bytes);

  // Byte identity: both images are fully materialized and equal.
  std::size_t eager_stubs = 0;
  std::size_t lazy_stubs = 0;
  auto a = index_contents(eager.client, "app:v1", &eager_stubs);
  auto b = index_contents(lazy.client, "app:v1", &lazy_stubs);
  EXPECT_EQ(eager_stubs, 0u);
  EXPECT_EQ(lazy_stubs, 0u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, expected);

  // A second backfill is a no-op.
  auto [again_files, again_bytes] = lazy.client.backfill_remaining("app:v1");
  EXPECT_EQ(again_files, 0u);
  EXPECT_EQ(again_bytes, 0u);
}

// Registry wrapper for the preemption probe: gates the demand fetch of one
// fingerprint until released and sequence-stamps demand enter/exit and the
// first backfill batch. The client's demand path fetches through a
// singleton download_batch; backfill batches are never a singleton of the
// probe (the demand flight owns it), so a singleton probe batch IS the
// demand fault.
class GatedRegistry final : public FileRegistryApi {
 public:
  explicit GatedRegistry(FileRegistryApi& inner) : inner_(inner) {}

  void arm(const Fingerprint& fp) { probe_ = fp; }
  void release_demand() {
    {
      std::lock_guard<std::mutex> lock(m_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void wait_demand_started() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return demand_enter_seq_ >= 0; });
  }
  long demand_enter_seq() const { return demand_enter_seq_.load(); }
  long demand_exit_seq() const { return demand_exit_seq_.load(); }
  long first_batch_seq() const { return first_batch_seq_.load(); }

  bool query(const Fingerprint& fp) const override { return inner_.query(fp); }
  bool upload(const Fingerprint& fp, BytesView content) override {
    return inner_.upload(fp, content);
  }
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override {
    return inner_.upload_precompressed(fp, std::move(compressed));
  }
  StatusOr<Bytes> download(const Fingerprint& fp) const override {
    return inner_.download(fp);
  }
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
      std::uint64_t* wire_bytes_out) const override {
    auto* self = const_cast<GatedRegistry*>(this);
    const bool is_probe_fault = fps.size() == 1 && fps[0] == probe_;
    if (is_probe_fault) {
      std::unique_lock<std::mutex> lock(self->m_);
      self->demand_enter_seq_ = self->next_seq();
      self->cv_.notify_all();
      self->cv_.wait(lock, [&] { return self->released_; });
    } else {
      long seq = self->next_seq();
      long expected = -1;
      self->first_batch_seq_.compare_exchange_strong(expected, seq);
    }
    auto got = inner_.download_batch(fps, pool, wire_bytes_out);
    if (is_probe_fault) self->demand_exit_seq_ = self->next_seq();
    return got;
  }
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override {
    return inner_.stored_size(fp);
  }

 private:
  long next_seq() { return seq_.fetch_add(1); }

  FileRegistryApi& inner_;
  Fingerprint probe_;
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  bool released_ = false;
  std::atomic<long> seq_{0};
  std::atomic<long> demand_enter_seq_{-1};
  std::atomic<long> demand_exit_seq_{-1};
  std::atomic<long> first_batch_seq_{-1};
};

TEST_F(LazyFixture, DemandPreemptsBackfill) {
  GatedRegistry gated(gear_registry);
  ClientRig rig(docker_registry, gated);
  rig.client.set_concurrency(util::Concurrency::serial());
  rig.client.set_download_batch_files(4);

  std::string container;
  rig.client.deploy("app:v1", {}, &container, DeployMode::kLazy);

  Fingerprint probe_fp;
  rig.client.store().index_tree("app:v1").walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        if (path == demand_paths[0]) probe_fp = node.fingerprint();
      });
  gated.arm(probe_fp);

  GearFileViewer viewer = rig.client.open_viewer(container);
  std::thread demand([&] {
    EXPECT_EQ(viewer.read_file(demand_paths[0]).value(),
              expected[demand_paths[0]]);
  });
  gated.wait_demand_started();  // the fault holds the demand lane

  std::thread backfill([&] { rig.client.backfill_remaining("app:v1"); });
  // The drain must park in yield_to_demand before its first wire batch.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rig.client.backfill_yields() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rig.client.backfill_yields(), 1u);
  EXPECT_LT(gated.first_batch_seq(), 0);  // no batch while the fault is live
  gated.release_demand();
  demand.join();
  backfill.join();

  EXPECT_GE(rig.client.demand_fetches(), 1u);
  ASSERT_GE(gated.demand_enter_seq(), 0);
  EXPECT_GT(gated.demand_exit_seq(), gated.demand_enter_seq());
  EXPECT_GT(gated.first_batch_seq(), gated.demand_exit_seq());

  std::size_t stubs = 0;
  EXPECT_EQ(index_contents(rig.client, "app:v1", &stubs), expected);
  EXPECT_EQ(stubs, 0u);
}

TEST_F(LazyFixture, LazyStormConcurrentReadersByteIdenticalToEager) {
  // The full concurrency surface at once: four reader threads faulting
  // overlapping files through viewers of the same image while
  // backfill_remaining drains on a fifth thread. Every read must see the
  // eager bytes and the image must end fully materialized.
  ClientRig rig(docker_registry, gear_registry);
  rig.client.set_download_batch_files(4);
  std::string container;
  rig.client.deploy("app:v1", {}, &container, DeployMode::kLazy);

  std::vector<std::string> paths;
  for (const auto& [path, content] : expected) paths.push_back(path);

  constexpr int kReaders = 4;
  std::mutex open_mutex;  // viewer creation is not part of the race surface
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      GearFileViewer viewer = [&] {
        std::lock_guard<std::mutex> lock(open_mutex);
        return rig.client.open_viewer(container);
      }();
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      // Each reader walks the whole file list from a different offset, so
      // every file is contended by all readers and the backfill.
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const std::string& path =
            paths[(i + static_cast<std::size_t>(r) * paths.size() / kReaders) %
                  paths.size()];
        StatusOr<Bytes> got = viewer.read_file(path);
        if (!got.ok() || *got != expected[path]) mismatches.fetch_add(1);
      }
      reads.fetch_add(viewer.read_stats().reads);
    });
  }
  while (ready.load() < kReaders) std::this_thread::yield();
  threads.emplace_back([&] { rig.client.backfill_remaining("app:v1"); });
  go.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  std::size_t stubs = 0;
  EXPECT_EQ(index_contents(rig.client, "app:v1", &stubs), expected);
  EXPECT_EQ(stubs, 0u);
  // Readers raced the backfill, but every read was answered.
  EXPECT_EQ(reads.load(), static_cast<std::uint64_t>(kReaders) * paths.size());
}

}  // namespace
}  // namespace gear
