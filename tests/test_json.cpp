// Unit tests for the JSON module.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace gear {
namespace {

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-13").as_int(), -13);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, StringEscapes) {
  Json j(std::string("a\"b\\c\nd\te"));
  std::string dumped = j.dump();
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ControlCharacterEscaping) {
  std::string s = "x";
  s.push_back('\x01');
  Json j(s);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), s);
}

TEST(Json, UnicodeEscapeParsing) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
  EXPECT_EQ(Json::parse("\"\\u4e2d\"").as_string(), "\xe4\xb8\xad");  // 中
}

TEST(Json, ArraysRoundTrip) {
  JsonArray arr;
  arr.emplace_back(1);
  arr.emplace_back("two");
  arr.emplace_back(true);
  Json j(std::move(arr));
  Json parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.is_array());
  EXPECT_EQ(parsed.as_array().size(), 3u);
  EXPECT_EQ(parsed.as_array()[1].as_string(), "two");
}

TEST(Json, ObjectsRoundTripAndStableOrder) {
  Json j;
  j["zeta"] = Json(1);
  j["alpha"] = Json(2);
  // std::map ordering: alpha before zeta, deterministically.
  EXPECT_EQ(j.dump(), "{\"alpha\":2,\"zeta\":1}");
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, NestedStructures) {
  Json j = Json::parse(R"({"a":{"b":[1,{"c":null}]},"d":[[]]})");
  EXPECT_EQ(j.at("a").at("b").as_array().size(), 2u);
  EXPECT_TRUE(j.at("a").at("b").as_array()[1].at("c").is_null());
  EXPECT_TRUE(j.at("d").as_array()[0].as_array().empty());
}

TEST(Json, WhitespaceTolerant) {
  Json j = Json::parse("  { \"a\" :\n[ 1 ,\t2 ] }  ");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  Json j(42);
  EXPECT_THROW(j.as_string(), Error);
  EXPECT_THROW(j.as_array(), Error);
  EXPECT_THROW(j.as_bool(), Error);
  EXPECT_EQ(j.as_double(), 42.0);  // int widens to double
}

TEST(Json, AtThrowsGetReturnsNull) {
  Json j = Json::parse(R"({"k":1})");
  EXPECT_EQ(j.at("k").as_int(), 1);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_EQ(j.get("missing"), nullptr);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("nan"), Error);
}

TEST(Json, LargeIntegersExact) {
  std::int64_t v = 9007199254740993;  // not representable in double
  EXPECT_EQ(Json::parse(Json(v).dump()).as_int(), v);
}

TEST(Json, IntegralDoubleAsInt) {
  EXPECT_EQ(Json::parse("3.0").as_int(), 3);
  EXPECT_THROW(Json::parse("3.5").as_int(), Error);
}

}  // namespace
}  // namespace gear
