// Tests for the disk-backed LocalRuntime: real-filesystem deployment
// semantics, persistence across reopen, and differential equivalence with
// the in-memory client path.
#include <gtest/gtest.h>

#include <filesystem>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "gear/local_runtime.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

namespace fs = std::filesystem;

struct LocalRuntimeFixture : ::testing::Test {
  fs::path root;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image;
  vfs::FileTree flat;

  void SetUp() override {
    root = fs::path(::testing::TempDir()) /
           ("gear_runtime_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root);

    vfs::FileTree t = gear::testing::random_tree(6000, 20, 4096);
    docker::ImageBuilder b;
    b.add_snapshot(t);
    image = b.build("app", "v1", {});
    flat = image.flatten();
    push_gear_image(GearConverter().convert(image).image, index_registry,
                    file_registry);
  }

  void TearDown() override { fs::remove_all(root); }
};

TEST_F(LocalRuntimeFixture, PullLaunchReadRoundTrip) {
  LocalRuntime runtime(index_registry, file_registry, root);
  runtime.pull("app:v1");
  EXPECT_TRUE(runtime.has_image("app:v1"));
  std::string container = runtime.launch("app:v1");

  int checked = 0;
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular()) {
      EXPECT_EQ(runtime.read(container, path).value(), node.content()) << path;
      ++checked;
    } else if (node.is_symlink()) {
      EXPECT_EQ(runtime.read_symlink(container, path).value(),
                node.link_target());
    }
  });
  EXPECT_GT(checked, 0);
  // Files were hard-linked into the image directory: nlink 2.
  const vfs::FileNode* some = nullptr;
  std::string some_path;
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular() && some == nullptr) {
      some = &node;
      some_path = path;
    }
  });
  Fingerprint fp = default_hasher().fingerprint(some->content());
  EXPECT_EQ(runtime.store().link_count(fp), 2u);
  EXPECT_TRUE(runtime.store().is_materialized("app:v1", some_path));
}

TEST_F(LocalRuntimeFixture, WritesPersistAcrossReopen) {
  std::string container;
  {
    LocalRuntime runtime(index_registry, file_registry, root);
    runtime.pull("app:v1");
    container = runtime.launch("app:v1");
    runtime.write(container, "srv/state.db", to_bytes("dirty-state"));
  }
  {
    // A new process reopening the same root resumes the same container:
    // the ref file and diff tree are recovered from disk.
    LocalRuntime runtime(index_registry, file_registry, root);
    EXPECT_TRUE(runtime.has_image("app:v1"));
    EXPECT_EQ(to_string(runtime.read(container, "srv/state.db").value()),
              "dirty-state");
    // New launches never reuse on-disk ids.
    std::string c2 = runtime.launch("app:v1");
    EXPECT_NE(c2, container);
  }
}

TEST_F(LocalRuntimeFixture, WriteMasksAndRemoveWhiteouts) {
  LocalRuntime runtime(index_registry, file_registry, root);
  runtime.pull("app:v1");
  std::string container = runtime.launch("app:v1");

  // Overwrite an image file: diff copy wins; a sibling container is clean.
  std::string victim;
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular() && victim.empty()) victim = path;
  });
  runtime.write(container, victim, to_bytes("patched"));
  EXPECT_EQ(to_string(runtime.read(container, victim).value()), "patched");

  std::string sibling = runtime.launch("app:v1");
  EXPECT_EQ(runtime.read(sibling, victim).value(),
            flat.lookup(victim)->content());

  // Remove: masked for this container only.
  EXPECT_TRUE(runtime.remove_path(container, victim));
  EXPECT_FALSE(runtime.read(container, victim).ok());
  EXPECT_TRUE(runtime.read(sibling, victim).ok());
}

TEST_F(LocalRuntimeFixture, CommitProducesDeployableImage) {
  LocalRuntime runtime(index_registry, file_registry, root);
  runtime.pull("app:v1");
  std::string container = runtime.launch("app:v1");
  runtime.write(container, "app/patch.txt", to_bytes("hotfix"));
  std::string ref = runtime.commit(container, "app", "v1-patched");
  EXPECT_EQ(ref, "app:v1-patched");

  runtime.pull(ref);
  std::string c2 = runtime.launch(ref);
  EXPECT_EQ(to_string(runtime.read(c2, "app/patch.txt").value()), "hotfix");
  // Original content still resolves through the new index.
  int checked = 0;
  flat.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular() && checked < 5) {
      EXPECT_EQ(runtime.read(c2, path).value(), node.content()) << path;
      ++checked;
    }
  });
}

TEST_F(LocalRuntimeFixture, DestroyKeepsImageLaunchable) {
  LocalRuntime runtime(index_registry, file_registry, root);
  runtime.pull("app:v1");
  std::string container = runtime.launch("app:v1");
  runtime.destroy(container);
  EXPECT_FALSE(runtime.read(container, "anything").ok());
  EXPECT_NO_THROW(runtime.launch("app:v1"));
}

TEST_F(LocalRuntimeFixture, PullRejectsClassicImage) {
  index_registry.push_image(image);  // overwrite with classic manifest
  LocalRuntime runtime(index_registry, file_registry, root);
  EXPECT_THROW(runtime.pull("app:v1"), Error);
}

TEST_F(LocalRuntimeFixture, DifferentialWithSimClient) {
  // The same operation sequence through the disk runtime and the in-memory
  // client yields identical file views.
  LocalRuntime runtime(index_registry, file_registry, root);
  runtime.pull("app:v1");
  std::string disk_container = runtime.launch("app:v1");

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, file_registry, link, disk);
  client.pull("app:v1");
  std::string mem_container = client.store().create_container("app:v1");
  GearFileViewer viewer = client.open_viewer(mem_container);

  Rng rng(6100);
  std::vector<std::string> paths;
  flat.walk([&paths](const std::string& p, const vfs::FileNode& n) {
    if (n.is_regular()) paths.push_back(p);
  });
  for (int op = 0; op < 40; ++op) {
    const std::string& target = paths[rng.next_below(paths.size())];
    double roll = rng.next_double();
    if (roll < 0.5) {
      StatusOr<Bytes> a = runtime.read(disk_container, target);
      StatusOr<Bytes> b = viewer.read_file(target);
      ASSERT_EQ(a.ok(), b.ok()) << target;
      if (a.ok()) {
        EXPECT_EQ(*a, *b) << target;
      }
    } else if (roll < 0.8) {
      Bytes content = rng.next_bytes(rng.next_range(1, 128), 0.4);
      runtime.write(disk_container, target, content);
      viewer.write_file(target, content);
    } else {
      EXPECT_EQ(runtime.remove_path(disk_container, target),
                viewer.remove(target))
          << target;
    }
  }
  for (const std::string& p : paths) {
    StatusOr<Bytes> a = runtime.read(disk_container, p);
    StatusOr<Bytes> b = viewer.read_file(p);
    ASSERT_EQ(a.ok(), b.ok()) << p;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << p;
    }
  }
}

}  // namespace
}  // namespace gear
