// Tests for chunked Gear files (paper §VII future work): manifest codec,
// chunked registry storage, chunk dedup, partial (range) downloads, and the
// client-side lazy range-read path.
#include <gtest/gtest.h>

#include "docker/image.hpp"
#include "gear/chunking.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

constexpr std::uint64_t kChunk = 4096;
const ChunkPolicy kPolicy{/*threshold_bytes=*/16 * 1024, /*chunk_bytes=*/kChunk};

Bytes big_content(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  return rng.next_bytes(n, 0.3);
}

// ------------------------------------------------------------- manifest

TEST(ChunkManifest, BuildGeometry) {
  Bytes content = big_content(1, 3 * kChunk + 100);
  ChunkManifest m = build_chunk_manifest(content, kPolicy, default_hasher());
  EXPECT_EQ(m.file_size, content.size());
  EXPECT_EQ(m.chunk_bytes, kChunk);
  EXPECT_EQ(m.chunks.size(), 4u);
  // Each chunk fingerprint matches its slice.
  for (std::size_t i = 0; i < m.chunks.size(); ++i) {
    EXPECT_EQ(m.chunks[i],
              default_hasher().fingerprint(chunk_view(content, m, i)));
  }
}

TEST(ChunkManifest, ExactMultipleHasNoShortTail) {
  Bytes content = big_content(2, 2 * kChunk);
  ChunkManifest m = build_chunk_manifest(content, kPolicy, default_hasher());
  EXPECT_EQ(m.chunks.size(), 2u);
  EXPECT_EQ(chunk_view(content, m, 1).size(), kChunk);
}

TEST(ChunkManifest, SerializeRoundTrip) {
  Bytes content = big_content(3, 5 * kChunk + 7);
  ChunkManifest m = build_chunk_manifest(content, kPolicy, default_hasher());
  EXPECT_EQ(ChunkManifest::parse(m.serialize()), m);
}

TEST(ChunkManifest, ParseRejectsCorruption) {
  Bytes content = big_content(4, 2 * kChunk);
  Bytes data = build_chunk_manifest(content, kPolicy, default_hasher())
                   .serialize();
  Bytes bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_THROW(ChunkManifest::parse(bad_magic), Error);
  Bytes truncated(data.begin(), data.end() - 3);
  EXPECT_THROW(ChunkManifest::parse(truncated), Error);
}

TEST(ChunkManifest, ChunkRangeMath) {
  ChunkManifest m;
  m.file_size = 10 * kChunk;
  m.chunk_bytes = kChunk;
  m.chunks.resize(10);
  auto [f1, l1] = m.chunk_range(0, 1);
  EXPECT_EQ(f1, 0u);
  EXPECT_EQ(l1, 0u);
  auto [f2, l2] = m.chunk_range(kChunk - 1, 2);  // straddles 0/1
  EXPECT_EQ(f2, 0u);
  EXPECT_EQ(l2, 1u);
  auto [f3, l3] = m.chunk_range(9 * kChunk, kChunk);  // last chunk
  EXPECT_EQ(f3, 9u);
  EXPECT_EQ(l3, 9u);
  EXPECT_THROW(m.chunk_range(10 * kChunk, 1), Error);
  EXPECT_THROW(m.chunk_range(0, 0), Error);
}

// ------------------------------------------------------------- registry

TEST(ChunkedRegistry, UploadDownloadRoundTrip) {
  GearRegistry reg;
  Bytes content = big_content(10, 7 * kChunk + 123);
  Fingerprint fp = default_hasher().fingerprint(content);
  EXPECT_TRUE(reg.upload_chunked(fp, content, kPolicy));
  EXPECT_TRUE(reg.query(fp));
  EXPECT_TRUE(reg.is_chunked(fp));
  EXPECT_EQ(reg.download(fp).value(), content);
  // Objects: 8 chunks + 1 manifest.
  EXPECT_EQ(reg.object_count(), 9u);
}

TEST(ChunkedRegistry, SmallFileFallsBackToPlain) {
  GearRegistry reg;
  Bytes content = big_content(11, 1024);  // below threshold
  Fingerprint fp = default_hasher().fingerprint(content);
  reg.upload_chunked(fp, content, kPolicy);
  EXPECT_FALSE(reg.is_chunked(fp));
  EXPECT_EQ(reg.download(fp).value(), content);
}

TEST(ChunkedRegistry, SharedChunksDeduplicated) {
  GearRegistry reg;
  // Two "model" files sharing a common prefix (chunk-aligned): v2 only
  // changes the tail.
  Bytes v1 = big_content(12, 8 * kChunk);
  Bytes v2 = v1;
  Rng rng(13);
  Bytes tail = rng.next_bytes(kChunk, 0.3);
  std::copy(tail.begin(), tail.end(), v2.end() - static_cast<std::ptrdiff_t>(kChunk));

  reg.upload_chunked(default_hasher().fingerprint(v1), v1, kPolicy);
  std::uint64_t after_v1 = reg.storage_bytes();
  reg.upload_chunked(default_hasher().fingerprint(v2), v2, kPolicy);
  std::uint64_t growth = reg.storage_bytes() - after_v1;
  // v2 adds roughly one chunk + manifest, not 8 chunks.
  EXPECT_LT(growth, after_v1 / 4);
  EXPECT_EQ(reg.download(default_hasher().fingerprint(v2)).value(), v2);
}

TEST(ChunkedRegistry, DownloadRangeFetchesOnlyCoveringChunks) {
  GearRegistry reg;
  Bytes content = big_content(14, 16 * kChunk);
  Fingerprint fp = default_hasher().fingerprint(content);
  reg.upload_chunked(fp, content, kPolicy);

  std::uint64_t wire = 0;
  Bytes slice = reg.download_range(fp, 5, 100, &wire).value();
  EXPECT_EQ(slice, Bytes(content.begin() + 5, content.begin() + 105));
  // One chunk's compressed size, far below the whole file.
  EXPECT_LT(wire, reg.stored_size(fp).value() / 8);
}

TEST(ChunkedRegistry, DownloadRangeAcrossChunkBoundary) {
  GearRegistry reg;
  Bytes content = big_content(15, 4 * kChunk);
  Fingerprint fp = default_hasher().fingerprint(content);
  reg.upload_chunked(fp, content, kPolicy);
  Bytes slice =
      reg.download_range(fp, kChunk - 10, 20, nullptr).value();
  EXPECT_EQ(slice, Bytes(content.begin() + static_cast<std::ptrdiff_t>(kChunk - 10),
                         content.begin() + static_cast<std::ptrdiff_t>(kChunk + 10)));
}

TEST(ChunkedRegistry, RangeOnPlainObjectMovesWholeBlob) {
  GearRegistry reg;
  Bytes content = big_content(16, 2048);
  Fingerprint fp = default_hasher().fingerprint(content);
  reg.upload(fp, content);
  std::uint64_t wire = 0;
  Bytes slice = reg.download_range(fp, 10, 20, &wire).value();
  EXPECT_EQ(slice, Bytes(content.begin() + 10, content.begin() + 30));
  EXPECT_EQ(wire, reg.stored_size(fp).value());
}

TEST(ChunkedRegistry, StoredSizeCoversManifestAndChunks) {
  GearRegistry reg;
  Bytes content = big_content(17, 6 * kChunk);
  Fingerprint fp = default_hasher().fingerprint(content);
  reg.upload_chunked(fp, content, kPolicy);
  EXPECT_EQ(reg.stored_size(fp).value(), reg.storage_bytes());
}

// ----------------------------------------------------------- client path

struct ChunkClientFixture : ::testing::Test {
  sim::SimClock clock;
  sim::NetworkLink link{clock, 100.0, 0.0005, 0.0003};
  sim::DiskModel disk{clock, 0.0001, 500.0, 480.0};
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  Bytes model;
  std::string container;
  GearClient client{index_registry, file_registry, link, disk};

  void SetUp() override {
    model = big_content(20, 64 * kChunk);  // the "AI model" file
    vfs::FileTree root;
    root.add_file("models/weights.bin", model);
    root.add_file("etc/config.json", to_bytes("{\"layers\":128}"));
    docker::ImageBuilder b;
    b.add_snapshot(root);
    docker::Image image = b.build("ai", "v1", {});
    ConversionResult conv = GearConverter().convert(image);
    push_gear_image(conv.image, index_registry, file_registry, kPolicy);

    client.pull("ai:v1");
    container = client.store().create_container("ai:v1");
  }
};

TEST_F(ChunkClientFixture, HeaderPeekMovesOnlyCoveringChunks) {
  sim::NetworkStats before = link.stats();
  Bytes header = client.read_range(container, "models/weights.bin", 0,
                                   1024).value();
  EXPECT_EQ(header, Bytes(model.begin(), model.begin() + 1024));
  sim::NetworkStats delta = link.stats() - before;
  // Manifest + one chunk, not 64 chunks.
  EXPECT_LT(delta.bytes_transferred,
            file_registry.stored_size(
                default_hasher().fingerprint(model)).value() / 16);
  EXPECT_GT(client.range_bytes_downloaded(), 0u);
}

TEST_F(ChunkClientFixture, RepeatedRangeReadsHitChunkCache) {
  client.read_range(container, "models/weights.bin", 0, 1024).value();
  sim::NetworkStats before = link.stats();
  client.read_range(container, "models/weights.bin", 100, 500).value();
  sim::NetworkStats delta = link.stats() - before;
  EXPECT_EQ(delta.bytes_transferred, 0u);  // same chunk, cached
}

TEST_F(ChunkClientFixture, CrossChunkRangeCorrect) {
  std::uint64_t off = 7 * kChunk - 100;
  Bytes got = client.read_range(container, "models/weights.bin", off,
                                300).value();
  EXPECT_EQ(got, Bytes(model.begin() + static_cast<std::ptrdiff_t>(off),
                       model.begin() + static_cast<std::ptrdiff_t>(off + 300)));
}

TEST_F(ChunkClientFixture, FullDeployStillByteExact) {
  workload::AccessSet access;
  access.files.push_back({"models/weights.bin", model.size(),
                          default_hasher().fingerprint(model)});
  docker::DeployStats stats = client.deploy("ai:v1", access);
  EXPECT_GT(stats.run_bytes_downloaded, 0u);
  GearFileViewer viewer = client.open_viewer(container);
  EXPECT_EQ(viewer.read_file("models/weights.bin").value(), model);
}

TEST_F(ChunkClientFixture, RangeOnSmallPlainFileWorks) {
  Bytes got = client.read_range(container, "etc/config.json", 1, 8).value();
  EXPECT_EQ(to_string(got), "\"layers\"");
}

TEST_F(ChunkClientFixture, RangeErrors) {
  EXPECT_FALSE(client.read_range(container, "missing", 0, 1).ok());
  EXPECT_FALSE(
      client.read_range(container, "models/weights.bin", 0, 0).ok());
  EXPECT_FALSE(client
                   .read_range(container, "models/weights.bin",
                               model.size() - 1, 10)
                   .ok());
  EXPECT_FALSE(client.read_range(container, "models", 0, 1).ok());  // dir
}

TEST_F(ChunkClientFixture, DiffLayerWinsOverIndex) {
  GearFileViewer viewer = client.open_viewer(container);
  viewer.write_file("models/weights.bin", to_bytes("patched-model"));
  Bytes got = client.read_range(container, "models/weights.bin", 0, 7).value();
  EXPECT_EQ(to_string(got), "patched");
}

}  // namespace
}  // namespace gear
