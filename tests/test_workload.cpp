// Tests for the corpus spec, generator, access sets, and service model.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "util/error.hpp"
#include "workload/access.hpp"
#include "workload/generator.hpp"
#include "workload/service.hpp"
#include "workload/spec.hpp"

namespace gear::workload {
namespace {

// ------------------------------------------------------------------ spec

TEST(Spec, Table1Has50SeriesAnd971Images) {
  std::vector<SeriesSpec> specs = table1_corpus();
  EXPECT_EQ(specs.size(), 50u);
  EXPECT_EQ(total_images(specs), 971);
}

TEST(Spec, AllCategoriesPopulated) {
  std::vector<SeriesSpec> specs = table1_corpus();
  std::map<Category, int> counts;
  for (const auto& s : specs) counts[s.category]++;
  EXPECT_EQ(counts[Category::kLinuxDistro], 6);
  EXPECT_EQ(counts[Category::kLanguage], 6);
  EXPECT_EQ(counts[Category::kDatabase], 11);
  EXPECT_EQ(counts[Category::kWebComponent], 11);
  EXPECT_EQ(counts[Category::kApplicationPlatform], 8);
  EXPECT_EQ(counts[Category::kOthers], 8);
}

TEST(Spec, ReducedVersionSeriesMatchPaper) {
  std::vector<SeriesSpec> specs = table1_corpus();
  std::map<std::string, int> versions;
  for (const auto& s : specs) versions[s.name] = s.versions;
  EXPECT_LT(versions["hello-world"], 20);
  EXPECT_LT(versions["centos"], 20);
  EXPECT_LT(versions["eclipse-mosquitto"], 20);
  EXPECT_EQ(versions["nginx"], 20);
}

TEST(Spec, UniqueNames) {
  std::set<std::string> names;
  for (const auto& s : table1_corpus()) {
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
  }
}

TEST(Spec, AccessFractionsWithinPaperRange) {
  // §II-D: remote formats download about 6.4%–33.3% on demand.
  for (const auto& s : table1_corpus()) {
    EXPECT_GE(s.access_fraction, 0.05) << s.name;
    EXPECT_LE(s.access_fraction, 0.34) << s.name;
  }
}

TEST(Spec, SmallCorpusTruncates) {
  std::vector<SeriesSpec> specs = small_corpus(2, 3);
  EXPECT_EQ(specs.size(), 12u);
  for (const auto& s : specs) EXPECT_LE(s.versions, 3);
}

// ------------------------------------------------------------- generator

struct GeneratorFixture : ::testing::Test {
  CorpusGenerator gen{42, 0.0005};
  SeriesSpec nginx_spec;
  SeriesSpec debian_spec;

  void SetUp() override {
    for (const auto& s : table1_corpus()) {
      if (s.name == "nginx") nginx_spec = s;
      if (s.name == "debian") debian_spec = s;
    }
    ASSERT_EQ(nginx_spec.name, "nginx");
  }
};

TEST_F(GeneratorFixture, DeterministicGeneration) {
  docker::Image a = gen.generate_image(nginx_spec, 3);
  docker::Image b = CorpusGenerator(42, 0.0005).generate_image(nginx_spec, 3);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].digest(), b.layers[i].digest());
  }
}

TEST_F(GeneratorFixture, DifferentSeedDifferentContent) {
  docker::Image a = gen.generate_image(nginx_spec, 3);
  docker::Image b = CorpusGenerator(43, 0.0005).generate_image(nginx_spec, 3);
  EXPECT_NE(a.layers.back().digest(), b.layers.back().digest());
}

TEST_F(GeneratorFixture, ImageSizeTracksSpec) {
  docker::Image img = gen.generate_image(nginx_spec, 0);
  auto expected = static_cast<double>(nginx_spec.image_bytes) * 0.0005;
  auto actual = static_cast<double>(img.flatten().stats().total_file_bytes);
  EXPECT_GT(actual, expected * 0.6);
  EXPECT_LT(actual, expected * 1.4);
}

TEST_F(GeneratorFixture, ThreeLayerStructure) {
  docker::Image img = gen.generate_image(nginx_spec, 0);
  EXPECT_EQ(img.layers.size(), 3u);  // base, env, app
}

TEST_F(GeneratorFixture, ConsecutiveVersionsShareBaseLayers) {
  docker::Image v3 = gen.generate_image(nginx_spec, 3);
  docker::Image v4 = gen.generate_image(nginx_spec, 4);
  // Same base epoch and env epoch -> identical first two layer digests.
  EXPECT_EQ(v3.layers[0].digest(), v4.layers[0].digest());
  EXPECT_EQ(v3.layers[1].digest(), v4.layers[1].digest());
  // App layer churns.
  EXPECT_NE(v3.layers[2].digest(), v4.layers[2].digest());
}

TEST_F(GeneratorFixture, AppImagesShareFilesAcrossVersions) {
  docker::Image v3 = gen.generate_image(nginx_spec, 3);
  docker::Image v4 = gen.generate_image(nginx_spec, 4);
  std::unordered_set<Fingerprint, FingerprintHash> v3_files;
  v3.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (n.is_regular()) {
      v3_files.insert(default_hasher().fingerprint(n.content()));
    }
  });
  int shared = 0, total = 0;
  v4.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (!n.is_regular()) return;
    ++total;
    shared += v3_files.count(default_hasher().fingerprint(n.content())) != 0;
  });
  // Application images keep the majority of files across adjacent versions.
  EXPECT_GT(static_cast<double>(shared) / total, 0.6);
}

TEST_F(GeneratorFixture, DistroVersionsChurnHeavily) {
  docker::Image v3 = gen.generate_image(debian_spec, 3);
  docker::Image v4 = gen.generate_image(debian_spec, 4);
  std::unordered_set<Fingerprint, FingerprintHash> v3_files;
  v3.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (n.is_regular()) {
      v3_files.insert(default_hasher().fingerprint(n.content()));
    }
  });
  int shared = 0, total = 0;
  v4.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (!n.is_regular()) return;
    ++total;
    shared += v3_files.count(default_hasher().fingerprint(n.content())) != 0;
  });
  // Base images change most content between versions (paper Fig. 7a).
  EXPECT_LT(static_cast<double>(shared) / total, 0.75);
}

TEST_F(GeneratorFixture, CrossSeriesSharingOnSameDistro) {
  // nginx and httpd are both debian-based: their base files must overlap.
  SeriesSpec httpd_spec;
  for (const auto& s : table1_corpus()) {
    if (s.name == "httpd") httpd_spec = s;
  }
  docker::Image nginx = gen.generate_image(nginx_spec, 0);
  docker::Image httpd = gen.generate_image(httpd_spec, 0);

  std::unordered_set<Fingerprint, FingerprintHash> nginx_files;
  nginx.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (n.is_regular()) {
      nginx_files.insert(default_hasher().fingerprint(n.content()));
    }
  });
  int shared = 0;
  httpd.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
    if (n.is_regular() &&
        nginx_files.count(default_hasher().fingerprint(n.content())) != 0) {
      ++shared;
    }
  });
  // Both take their base from the shared debian pool; at test scale each
  // takes a handful of pool files, all of which must match byte-for-byte.
  EXPECT_GT(shared, 3);
}

TEST_F(GeneratorFixture, VersionOutOfRangeThrows) {
  EXPECT_THROW(gen.generate_image(nginx_spec, -1), Error);
  EXPECT_THROW(gen.generate_image(nginx_spec, nginx_spec.versions), Error);
}

TEST_F(GeneratorFixture, BadScaleRejected) {
  EXPECT_THROW(CorpusGenerator(1, 0.0), Error);
  EXPECT_THROW(CorpusGenerator(1, 1.5), Error);
}

TEST_F(GeneratorFixture, ConfigCarriesSeriesIdentity) {
  docker::Image img = gen.generate_image(nginx_spec, 2);
  EXPECT_EQ(img.manifest.reference(), "nginx:v2");
  EXPECT_EQ(img.manifest.config.labels.at("series"), "nginx");
  EXPECT_FALSE(img.manifest.config.entrypoint.empty());
}

// ----------------------------------------------------------- access sets

TEST_F(GeneratorFixture, AccessSetRespectsBudget) {
  docker::Image img = gen.generate_image(nginx_spec, 0);
  AccessSet set = derive_access_set(img.flatten(),
                                    gen.access_profile(nginx_spec, 0));
  auto total = img.flatten().stats().total_file_bytes;
  EXPECT_GT(set.total_bytes(), 0u);
  // Within a loose band of the requested fraction.
  EXPECT_LT(static_cast<double>(set.total_bytes()),
            static_cast<double>(total) * (nginx_spec.access_fraction + 0.15));
}

TEST_F(GeneratorFixture, AccessSetDeterministic) {
  docker::Image img = gen.generate_image(nginx_spec, 0);
  AccessSet a = derive_access_set(img.flatten(),
                                  gen.access_profile(nginx_spec, 0));
  AccessSet b = derive_access_set(img.flatten(),
                                  gen.access_profile(nginx_spec, 0));
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
  }
}

TEST_F(GeneratorFixture, AccessSetsOverlapAcrossVersions) {
  AccessSet a = gen.access_set(nginx_spec, 3);
  AccessSet b = gen.access_set(nginx_spec, 4);
  std::uint64_t shared = shared_bytes(a, b);
  // The same task on adjacent versions touches largely common files.
  EXPECT_GT(static_cast<double>(shared),
            0.25 * static_cast<double>(b.total_bytes()));
}

TEST(AccessRedundancy, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(access_redundancy({}), 0.0);
  AccessSet one;
  one.files.push_back({"p", 10, default_hasher().fingerprint(to_bytes("x"))});
  EXPECT_DOUBLE_EQ(access_redundancy({one}), 0.0);
}

TEST(AccessRedundancy, FullOverlapIsOne) {
  AccessSet a, b;
  FileAccess f{"p", 10, default_hasher().fingerprint(to_bytes("x"))};
  a.files.push_back(f);
  b.files.push_back(f);
  EXPECT_DOUBLE_EQ(access_redundancy({a, b}), 1.0);
}

TEST(AccessRedundancy, PartialOverlap) {
  AccessSet a, b;
  FileAccess shared{"s", 60, default_hasher().fingerprint(to_bytes("s"))};
  FileAccess only_a{"a", 20, default_hasher().fingerprint(to_bytes("a"))};
  FileAccess only_b{"b", 20, default_hasher().fingerprint(to_bytes("b"))};
  a.files = {shared, only_a};
  b.files = {shared, only_b};
  EXPECT_DOUBLE_EQ(access_redundancy({a, b}), 0.6);
}

TEST(SharedBytes, CountsIntersectionOnce) {
  AccessSet prev, next;
  FileAccess f{"p", 10, default_hasher().fingerprint(to_bytes("x"))};
  prev.files = {f};
  next.files = {f, f};  // duplicate entries counted once
  EXPECT_EQ(shared_bytes(prev, next), 10u);
}

// -------------------------------------------------------------- service

TEST(Service, Fig11ServicesDefined) {
  auto services = fig11_services();
  ASSERT_EQ(services.size(), 4u);
  EXPECT_EQ(services[0].name, "redis");
  // memtier 1:10 SET:GET ratio encoded as write_ratio 1/11.
  EXPECT_NEAR(services[0].write_ratio, 1.0 / 11.0, 1e-9);
  EXPECT_DOUBLE_EQ(services[2].write_ratio, 0.0);  // ab is read-only
}

TEST(Service, RunChargesClockAndCountsRequests) {
  sim::SimClock clock;
  ServiceSpec spec{"test", 1000, 4, 1e-5, 0.1, 0.0};
  std::vector<std::string> hot = {"a", "b", "c", "d"};
  int reads = 0;
  ServiceRun run = run_service(
      clock, spec, hot,
      [&reads](const std::string&) {
        ++reads;
        return to_bytes("data");
      },
      nullptr, 1e-6);
  EXPECT_EQ(run.requests, 1000u);
  EXPECT_GT(run.seconds, 1000 * 1e-5);
  EXPECT_GE(reads, 4);  // warm-up touches all hot files
  EXPECT_GT(run.requests_per_second(), 0.0);
}

TEST(Service, WriteRatioInvokesWrites) {
  sim::SimClock clock;
  ServiceSpec spec{"kv", 2000, 2, 1e-6, 0.0, 0.5};
  int writes = 0;
  run_service(
      clock, spec, {"x", "y"},
      [](const std::string&) { return to_bytes("d"); },
      [&writes](const std::string&, Bytes) { ++writes; }, 1e-6);
  EXPECT_GT(writes, 800);
  EXPECT_LT(writes, 1200);
}

TEST(Service, InvalidArgumentsThrow) {
  sim::SimClock clock;
  ServiceSpec spec;
  EXPECT_THROW(run_service(clock, spec, {},
                           [](const std::string&) { return Bytes{}; },
                           nullptr, 0),
               Error);
  EXPECT_THROW(run_service(clock, spec, {"p"}, nullptr, nullptr, 0), Error);
}

}  // namespace
}  // namespace gear::workload
