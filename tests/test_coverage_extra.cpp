// Additional coverage: Docker registry GC, scaled simulation models,
// chunk-aware client transfer accounting, and assorted edge cases the main
// suites don't reach.
#include <gtest/gtest.h>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

docker::Image one_layer_image(std::uint64_t seed, const std::string& name,
                              const std::string& tag) {
  docker::ImageBuilder b;
  b.add_snapshot(gear::testing::random_tree(seed, 15));
  return b.build(name, tag, {});
}

// ----------------------------------------------------- docker registry GC

TEST(DockerRegistryGc, SweepsOrphanedLayers) {
  docker::DockerRegistry registry;
  docker::Image a = one_layer_image(8000, "a", "v1");
  docker::Image b = one_layer_image(8001, "b", "v1");
  registry.push_image(a);
  registry.push_image(b);
  ASSERT_EQ(registry.blob_count(), 2u);

  // Nothing to sweep while both manifests live.
  auto [swept0, freed0] = registry.collect_garbage();
  EXPECT_EQ(swept0, 0u);
  EXPECT_EQ(freed0, 0u);

  registry.delete_manifest("a:v1");
  auto [swept1, freed1] = registry.collect_garbage();
  EXPECT_EQ(swept1, 1u);
  EXPECT_GT(freed1, 0u);
  EXPECT_EQ(registry.blob_count(), 1u);
  // b's layer still fetchable.
  EXPECT_TRUE(registry.get_blob(b.manifest.layers[0].digest).ok());
}

TEST(DockerRegistryGc, SharedLayersSurvive) {
  docker::DockerRegistry registry;
  vfs::FileTree base = gear::testing::random_tree(8010, 12);
  docker::ImageBuilder b1;
  b1.add_snapshot(base);
  docker::Image a = b1.build("a", "v1", {});
  docker::ImageBuilder b2(a);
  b2.add_snapshot(gear::testing::mutate_tree(base, 8011, 4));
  docker::Image child = b2.build("child", "v1", {});
  registry.push_image(a);
  registry.push_image(child);

  registry.delete_manifest("a:v1");
  registry.collect_garbage();
  // The shared base layer is still referenced by child.
  EXPECT_TRUE(registry.get_blob(a.manifest.layers[0].digest).ok());
}

TEST(DockerRegistryGc, DeleteBlobReturnsZeroWhenAbsent) {
  docker::DockerRegistry registry;
  EXPECT_EQ(registry.delete_blob(docker::Digest::of(to_bytes("x"))), 0u);
}

// -------------------------------------------------------- scaled sim models

TEST(ScaledModels, LinkPreservesTimeRatios) {
  // A scaled transfer of scaled bytes must take exactly as long as the
  // full-scale transfer of full-scale bytes.
  sim::SimClock c1, c2;
  sim::NetworkLink full(c1, 904.0, 0.0, 0.0);
  sim::NetworkLink scaled = sim::scaled_link(c2, 904.0, 0.001, 0.0, 0.0);
  full.request(390'000'000);
  scaled.request(390'000);
  EXPECT_NEAR(c1.now(), c2.now(), 1e-9);
}

TEST(ScaledModels, DiskPreservesTimeRatios) {
  sim::SimClock c1, c2;
  sim::DiskModel full = sim::DiskModel::hdd(c1);
  sim::DiskModel scaled = sim::DiskModel::scaled_hdd(c2, 0.001);
  full.read(150'000'000);
  scaled.read(150'000);
  EXPECT_NEAR(c1.now(), c2.now(), 1e-9);
}

TEST(ScaledModels, BadScaleRejected) {
  sim::SimClock c;
  EXPECT_THROW(sim::scaled_link(c, 100.0, 0.0), Error);
  EXPECT_THROW(sim::scaled_link(c, 100.0, 1.5), Error);
}

// -------------------------------------------- chunked deploy wire accounting

TEST(ChunkedDeployAccounting, PipelinedBurstCheaperThanPerChunkRequests) {
  // A chunked whole-file materialization pays RTT once (pipelined), not
  // once per chunk.
  Rng rng(8100);
  Bytes model = rng.next_bytes(64 * 4096, 0.3);
  vfs::FileTree t;
  t.add_file("m.bin", model);
  docker::ImageBuilder b;
  b.add_snapshot(t);
  docker::Image image = b.build("m", "v1", {});
  ConversionResult conv = GearConverter().convert(image);

  const ChunkPolicy policy{16 * 1024, 4096};
  workload::AccessSet access;
  access.files.push_back(
      {"m.bin", model.size(), default_hasher().fingerprint(model)});

  auto deploy_seconds = [&](bool chunked) {
    docker::DockerRegistry index_registry;
    GearRegistry file_registry;
    push_gear_image(conv.image, index_registry, file_registry,
                    chunked ? policy : ChunkPolicy{});
    sim::SimClock clock;
    sim::NetworkLink link(clock, 904.0, /*rtt=*/0.05, 0.0003);
    sim::DiskModel disk = sim::DiskModel::ssd(clock);
    GearClient client(index_registry, file_registry, link, disk);
    return client.deploy("m:v1", access).total_seconds();
  };

  double plain = deploy_seconds(false);
  double chunked = deploy_seconds(true);
  // 64 chunks at 50 ms RTT each would add >3 s; pipelining keeps the
  // chunked deploy within a modest factor of the plain one.
  EXPECT_LT(chunked, plain + 0.5);
}

// ------------------------------------------------------------ misc edges

TEST(ViewerEdge, RootListingAndWhiteoutMask) {
  vfs::FileTree index;
  Fingerprint fp = default_hasher().fingerprint(to_bytes("x"));
  index.add_fingerprint_stub("a/f", fp, 1);
  index.add_fingerprint_stub("b/g", fp, 1);
  vfs::FileTree diff;
  GearFileViewer viewer(index, diff,
                        [](const std::string&, const Fingerprint&, std::uint64_t) {
                          return to_bytes("x");
                        });
  EXPECT_EQ(viewer.list_dir("").size(), 2u);
  viewer.remove("b");
  auto names = viewer.list_dir("/");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "a");
}

TEST(OverlayEdge, WhiteoutInMiddleLayerThenReAdd) {
  vfs::FileTree l0, l1, l2;
  l0.add_file("f", to_bytes("v0"));
  l1.add_whiteout("f");
  l2.add_file("f", to_bytes("v2"));
  docker::OverlayMount m({&l0, &l1, &l2});
  EXPECT_EQ(to_string(m.read_file("f").value()), "v2");

  docker::OverlayMount m2({&l0, &l1});
  EXPECT_FALSE(m2.exists("f"));
}

TEST(ConverterEdge, EmptyDirectoriesAndSymlinkOnlyTrees) {
  vfs::FileTree t;
  t.add_directory("empty/nested");
  t.add_symlink("link", "empty");
  t.add_file("one", to_bytes("1"));  // builder rejects empty images
  docker::ImageBuilder b;
  b.add_snapshot(t);
  ConversionResult conv = GearConverter().convert(b.build("e", "v1", {}));
  EXPECT_EQ(conv.stats.files_unique, 1u);
  EXPECT_NE(conv.image.index.tree().lookup("empty/nested"), nullptr);
  EXPECT_EQ(conv.image.index.tree().lookup("link")->link_target(), "empty");
}

TEST(CacheEdge, ZeroByteFilesCached) {
  SharedFileCache cache(1000, EvictionPolicy::kLru);
  Fingerprint fp = default_hasher().fingerprint({});
  EXPECT_TRUE(cache.put(fp, {}));
  EXPECT_TRUE(cache.get(fp).ok());
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(StoreEdge, ReinstallIndexReleasesOldLinks) {
  ThreeLevelStore store;
  vfs::FileTree t;
  Fingerprint fp = default_hasher().fingerprint(to_bytes("c"));
  t.add_fingerprint_stub("f", fp, 1);
  store.add_index("app:v1", GearIndex{vfs::FileTree(t)});
  store.cache().put(fp, to_bytes("c"));
  store.record_link("app:v1", fp);
  ASSERT_EQ(store.cache().link_count(fp), 1u);

  // Installing a replacement index (image update) unpins the old links.
  store.add_index("app:v1", GearIndex{vfs::FileTree(t)});
  EXPECT_EQ(store.cache().link_count(fp), 0u);
}

}  // namespace
}  // namespace gear
