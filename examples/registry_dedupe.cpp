// Example: running a private registry and watching file-level deduplication
// work as image versions are pushed (the paper's §V-C storage story).
//
// Pushes 8 versions of a synthetic "webapp" series into a Docker registry
// and a Gear registry side by side, printing both footprints after each
// push. Layer-level dedup helps only when whole layers repeat; Gear's
// file-level sharing absorbs each version's unchanged files no matter how
// the layers were cut.
//
// Build & run:  cmake --build build && ./build/examples/registry_dedupe
#include <cstdio>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"

using namespace gear;

int main() {
  std::printf("== private registry deduplication ==\n\n");

  // A mid-size web application series: debian base, runtime env that is
  // stable across versions, application files churning 25% per release.
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "tomcat") spec = s;
  }
  spec.versions = 8;
  workload::CorpusGenerator gen(/*seed=*/7, /*scale=*/0.002);

  docker::DockerRegistry docker_registry;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;

  std::printf("%-10s  %14s  %14s  %8s  %10s\n", "push", "docker registry",
              "gear registry", "saving", "files(new)");
  std::printf("%s\n", std::string(68, '-').c_str());

  for (int v = 0; v < spec.versions; ++v) {
    docker::Image image = gen.generate_image(spec, v);
    docker::PushResult push = docker_registry.push_image(image);

    ConversionResult conv = converter.convert(image);
    std::size_t new_files =
        push_gear_image(conv.image, index_registry, file_registry);

    std::uint64_t docker_bytes = docker_registry.storage_bytes();
    std::uint64_t gear_bytes =
        file_registry.storage_bytes() + index_registry.storage_bytes();
    std::printf("%-10s  %14s  %14s  %7.1f%%  %6zu/%zu\n",
                image.manifest.reference().c_str(),
                format_size(docker_bytes).c_str(),
                format_size(gear_bytes).c_str(),
                100.0 * (1.0 - static_cast<double>(gear_bytes) /
                                   static_cast<double>(docker_bytes)),
                new_files, conv.stats.files_unique);
    std::printf("%-10s  (layers: %zu uploaded, %zu deduplicated)\n", "",
                push.layers_uploaded, push.layers_deduplicated);
  }

  std::printf("\ngear registry objects: %zu unique files, "
              "%llu uploads deduplicated by fingerprint query\n",
              file_registry.object_count(),
              static_cast<unsigned long long>(
                  file_registry.stats().uploads_deduplicated));
  std::printf("note how the Docker side grows by roughly one app layer per "
              "version,\nwhile the Gear side grows only by the churned "
              "files.\n");
  return 0;
}
