// Example: fingerprint collision handling, end to end (paper §III-B).
//
// Gear identifies files by MD5; the paper argues collisions are negligible
// (Eq. 1) but specifies a detection path anyway: compare contents on a
// fingerprint match during conversion, and give colliding files salted
// unique IDs. This example makes the path observable by converting with a
// deliberately truncated (12-bit) hash, then proves correctness survives.
//
// Build & run:  cmake --build build && ./build/examples/collision_audit
#include <cstdio>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace gear;

int main() {
  std::printf("== fingerprint collision audit ==\n\n");

  // Paper Eq. 1: expected collision bound for all of Docker Hub under MD5.
  double hub_files = 5e10;
  std::printf("birthday bound, %.0e files @128-bit MD5: p <= %.1e\n",
              hub_files, collision_probability_bound(hub_files, 128));
  std::printf("disk error probability band:             ~1e-12 .. 1e-15\n");
  std::printf("-> collisions are far below hardware noise. Now force some "
              "anyway.\n\n");

  // An image with 600 random files, converted under a 12-bit hash
  // (4096 possible fingerprints): collisions guaranteed in expectation.
  Rng rng(2024);
  vfs::FileTree root;
  for (int i = 0; i < 600; ++i) {
    root.add_file("data/blob" + std::to_string(i), rng.next_bytes(128));
  }
  docker::ImageBuilder builder;
  builder.add_snapshot(root);
  docker::Image image = builder.build("colliding", "1.0", {});

  TruncatedFingerprintHasher weak(12);
  GearConverter converter(weak);
  ConversionResult conv = converter.convert(image);

  std::printf("converted with %s hash: %zu files, %zu unique, "
              "%zu collisions detected and uniquified\n",
              weak.name().c_str(), conv.stats.files_seen,
              conv.stats.files_unique, conv.stats.collisions);

  // Prove correctness: push, deploy, and byte-compare every file.
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  push_gear_image(conv.image, index_registry, file_registry);

  sim::SimClock clock;
  sim::NetworkLink link(clock, 904.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, file_registry, link, disk);
  client.pull("colliding:1.0");
  std::string container = client.store().create_container("colliding:1.0");
  GearFileViewer viewer = client.open_viewer(container);

  int verified = 0;
  int mismatches = 0;
  root.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_regular()) return;
    Bytes got = viewer.read_file(path).value();
    if (got != node.content()) ++mismatches;
    ++verified;
  });
  std::printf("deployed and verified %d files: %d mismatches\n", verified,
              mismatches);
  std::printf("gear registry holds %zu objects (= unique contents, collisions "
              "included)\n\n",
              file_registry.object_count());

  if (mismatches != 0) {
    std::printf("FAILED: collision handling corrupted content\n");
    return 1;
  }
  std::printf("collision handling preserves content exactly — dedup is "
              "disabled only for the colliding files (paper §III-B).\n");
  return 0;
}
