// Example: rolling upgrades at the edge — the bandwidth-limited scenario the
// paper calls out for Gear (§V-E: "edge/fog computing and IoT").
//
// An edge node behind a 5 Mbps link runs a service that must follow version
// updates. Compares three strategies over a 6-version rollout:
//   * Docker   — pull each new image (layer reuse when layers match);
//   * Slacker  — block-level lazy pulls, no cross-version sharing;
//   * Gear     — lazy file pulls through the shared local cache.
//
// Build & run:  cmake --build build && ./build/examples/edge_deployment
#include <cstdio>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "slacker/slacker.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"

using namespace gear;

int main() {
  std::printf("== edge deployment: 6-version rollout over 5 Mbps ==\n\n");

  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "nginx") spec = s;
  }
  spec.versions = 6;
  const double kScale = 0.002;
  workload::CorpusGenerator gen(11, kScale);

  // Registries (cloud side).
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  slacker::SlackerRegistry slacker_registry;
  GearConverter converter;
  for (int v = 0; v < spec.versions; ++v) {
    docker::Image image = gen.generate_image(spec, v);
    classic.push_image(image);
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
    slacker_registry.put_image(
        image.manifest.reference(),
        slacker::VirtualBlockDevice::from_tree(
            image.flatten(), 512,
            static_cast<std::uint64_t>(4e9 * kScale / 512)));
  }

  // Edge node: 5 Mbps uplink (scaled with the corpus), slow eMMC-ish disk.
  sim::SimClock dc, sc, gc;
  sim::NetworkLink docker_link = sim::scaled_link(dc, 5.0, kScale);
  sim::DiskModel docker_disk = sim::DiskModel::scaled_hdd(dc, kScale);
  docker::DockerClient docker_client(classic, docker_link, docker_disk);

  sim::NetworkLink slacker_link = sim::scaled_link(sc, 5.0, kScale);
  sim::DiskModel slacker_disk = sim::DiskModel::scaled_hdd(sc, kScale);
  slacker::SlackerClient slacker_client(slacker_registry, slacker_link,
                                        slacker_disk);

  sim::NetworkLink gear_link = sim::scaled_link(gc, 5.0, kScale);
  sim::DiskModel gear_disk = sim::DiskModel::scaled_hdd(gc, kScale);
  GearClient gear_client(index_registry, file_registry, gear_link, gear_disk);

  std::printf("%-9s  %21s  %21s  %21s\n", "version", "docker (time/bytes)",
              "slacker (time/bytes)", "gear (time/bytes)");
  std::printf("%s\n", std::string(82, '-').c_str());

  double totals[3] = {};
  for (int v = 0; v < spec.versions; ++v) {
    workload::AccessSet access = gen.access_set(spec, v);
    std::string ref = "nginx:v" + std::to_string(v);

    docker::DeployStats d = docker_client.deploy(ref, access);
    docker::DeployStats s = slacker_client.deploy(ref, access);
    docker::DeployStats g = gear_client.deploy(ref, access);
    totals[0] += d.total_seconds();
    totals[1] += s.total_seconds();
    totals[2] += g.total_seconds();

    auto cell = [](const docker::DeployStats& st) {
      return format_duration(st.total_seconds()) + " / " +
             format_size(st.total_bytes());
    };
    std::printf("%-9s  %21s  %21s  %21s\n", ref.c_str(), cell(d).c_str(),
                cell(s).c_str(), cell(g).c_str());
  }

  std::printf("%s\n", std::string(82, '-').c_str());
  std::printf("rollout total: docker %s, slacker %s, gear %s "
              "(%.1fx faster than docker)\n",
              format_duration(totals[0]).c_str(),
              format_duration(totals[1]).c_str(),
              format_duration(totals[2]).c_str(), totals[0] / totals[2]);
  std::printf("\ncache state after rollout: %zu shared files, %s, "
              "hit rate %.1f%%\n",
              gear_client.store().cache().entry_count(),
              format_size(gear_client.store().cache().size_bytes()).c_str(),
              100.0 * static_cast<double>(
                          gear_client.store().cache().stats().hits) /
                  static_cast<double>(
                      gear_client.store().cache().stats().hits +
                      gear_client.store().cache().stats().misses));
  return 0;
}
