// Example: serving an AI model container (the paper's §VII future work).
//
// An inference image carries one large weights file. The serving flow:
//   1. publish the image with a chunking policy (big files -> 128 KB chunks);
//   2. deploy: only the tiny index moves;
//   3. probe: read the model header + a few windows through lazy range
//      reads — kilobytes move, not the model;
//   4. warm up in the background: prefetch the remaining chunks/files so the
//      node stops depending on the registry;
//   5. roll out v2 (5% of chunks changed): the registry grows by the delta
//      only, and the new version reuses cached chunks.
//
// Build & run:  cmake --build build && ./build/examples/ai_model_serving
#include <cstdio>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace gear;

namespace {

constexpr std::uint64_t kModelBytes = 32ull * 1024 * 1024;
constexpr std::uint64_t kChunkBytes = 128 * 1024;

docker::Image build_image(const Bytes& weights, const std::string& tag) {
  vfs::FileTree root;
  root.add_file("models/weights.bin", weights);
  root.add_file("etc/serving.json", to_bytes("{\"batch\":16,\"gpu\":false}\n"));
  root.add_file("bin/server", Bytes(256 * 1024, 0x90));
  docker::ImageBuilder b;
  b.add_snapshot(root);
  docker::ImageConfig config;
  config.entrypoint = {"/bin/server", "--model", "/models/weights.bin"};
  return b.build("inference", tag, config);
}

}  // namespace

int main() {
  std::printf("== AI model serving with chunked Gear files ==\n\n");

  Rng rng(4242);
  Bytes weights = rng.next_bytes(kModelBytes, 0.2);

  // 1. Publish with chunking for big files.
  const ChunkPolicy policy{/*threshold_bytes=*/1 * 1024 * 1024, kChunkBytes};
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  push_gear_image(converter.convert(build_image(weights, "v1")).image,
                  index_registry, file_registry, policy);
  std::printf("published inference:v1 — model %s in %zu chunk objects, "
              "registry %s\n",
              format_size(kModelBytes).c_str(),
              file_registry.object_count() - 3,  // minus 2 small files+manifest
              format_size(file_registry.storage_bytes()).c_str());

  // 2. Deploy on a 100 Mbps node: only the index moves.
  sim::SimClock clock;
  sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, file_registry, link, disk);
  docker::PullStats pull = client.pull("inference:v1");
  std::string container = client.store().create_container("inference:v1");
  std::printf("\ndeployed: pulled %s in %s (the model stayed remote)\n",
              format_size(pull.bytes_downloaded).c_str(),
              format_duration(pull.seconds).c_str());

  // 3. Startup probe through lazy range reads.
  sim::SimTimer probe_timer(clock);
  Bytes header =
      client.read_range(container, "models/weights.bin", 0, 4096).value();
  Bytes config =
      client.read_range(container, "etc/serving.json", 0, 10).value();
  Bytes window = client
                     .read_range(container, "models/weights.bin",
                                 kModelBytes / 2, 65536)
                     .value();
  (void)header; (void)config; (void)window;
  std::printf("startup probe (header + config + one window): %s moved in "
              "%s\n",
              format_size(client.range_bytes_downloaded()).c_str(),
              format_duration(probe_timer.elapsed()).c_str());

  // 4. Background warm-up: make the node registry-independent.
  sim::SimTimer warm_timer(clock);
  auto [files, bytes] = client.prefetch_remaining("inference:v1");
  std::printf("background prefetch: %zu objects, %s in %s — node now fully "
              "local\n",
              files, format_size(bytes).c_str(),
              format_duration(warm_timer.elapsed()).c_str());

  // 5. Roll out v2 with ~5% changed chunks.
  Bytes weights_v2 = weights;
  Rng upd(9);
  for (std::uint64_t c = 0; c < kModelBytes / kChunkBytes; ++c) {
    if (!upd.next_bool(0.05)) continue;
    Bytes fresh = upd.next_bytes(kChunkBytes, 0.2);
    std::copy(fresh.begin(), fresh.end(),
              weights_v2.begin() + static_cast<std::ptrdiff_t>(c * kChunkBytes));
  }
  std::uint64_t before = file_registry.storage_bytes();
  push_gear_image(converter.convert(build_image(weights_v2, "v2")).image,
                  index_registry, file_registry, policy);
  std::printf("\npublished inference:v2 (~5%% of chunks changed): registry "
              "grew by %s (not %s)\n",
              format_size(file_registry.storage_bytes() - before).c_str(),
              format_size(kModelBytes).c_str());

  sim::NetworkStats mark = link.stats();
  client.pull("inference:v2");
  std::string c2 = client.store().create_container("inference:v2");
  Bytes v2_header =
      client.read_range(c2, "models/weights.bin", 0, 4096).value();
  (void)v2_header;
  std::printf("v2 probe on the warm node: %s moved (unchanged chunks came "
              "from the shared cache)\n",
              format_size((link.stats() - mark).bytes_transferred).c_str());

  std::printf("\nai model serving example complete.\n");
  return 0;
}
