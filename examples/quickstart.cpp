// Quickstart: the whole Gear pipeline on one image, end to end.
//
//  1. Build a classic layered Docker image (base + app snapshot).
//  2. Convert it to a Gear image (index + content-addressed files).
//  3. Push: index image -> Docker registry, Gear files -> Gear registry.
//  4. Deploy on a simulated client: pull the tiny index, launch a container,
//     read files through the Gear File Viewer with on-demand materialization.
//  5. Modify the container and commit it as a new Gear image.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "docker/client.hpp"
#include "gear/client.hpp"
#include "gear/committer.hpp"
#include "gear/converter.hpp"
#include "util/format.hpp"

using namespace gear;

int main() {
  std::printf("== Gear quickstart ==\n\n");

  // 1. Build a small layered image the way a Dockerfile would: a base
  //    filesystem snapshot, then an application snapshot on top.
  vfs::FileTree base;
  base.add_file("etc/os-release", to_bytes("NAME=demo-linux\n"));
  base.add_file("lib/libc.so", Bytes(64 * 1024, 0x7f));
  base.add_symlink("bin/sh", "/bin/busybox");
  base.add_file("bin/busybox", Bytes(32 * 1024, 0x42));

  vfs::FileTree app = base;
  app.add_file("srv/www/index.html", to_bytes("<h1>hello from gear</h1>\n"));
  app.add_file("srv/httpd.conf", to_bytes("Listen 8080\nDocumentRoot /srv/www\n"));

  docker::ImageBuilder builder;
  builder.add_snapshot(base).add_snapshot(app);
  docker::ImageConfig config;
  config.env = {"PORT=8080"};
  config.entrypoint = {"/bin/httpd"};
  docker::Image image = builder.build("demo", "1.0", config);
  std::printf("built demo:1.0 — %zu layers, %s compressed\n",
              image.layers.size(), format_size(image.compressed_size()).c_str());

  // 2. Convert to the Gear format.
  GearConverter converter;
  ConversionResult conv = converter.convert(image);
  std::printf("converted: %zu files seen, %zu unique Gear files, index layer "
              "%s (%.1f%% of image)\n",
              conv.stats.files_seen, conv.stats.files_unique,
              format_size(conv.stats.index_wire_bytes).c_str(),
              100.0 * static_cast<double>(conv.stats.index_wire_bytes) /
                  static_cast<double>(image.compressed_size()));

  // 3. Push into the registries.
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  std::size_t uploaded = push_gear_image(conv.image, index_registry,
                                         file_registry);
  std::printf("pushed: %zu Gear files uploaded, registry now %s\n\n", uploaded,
              format_size(file_registry.storage_bytes()).c_str());

  // 4. Deploy on a client behind a simulated 100 Mbps link.
  sim::SimClock clock;
  sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  GearClient client(index_registry, file_registry, link, disk);

  workload::AccessSet access;
  for (const char* path : {"srv/httpd.conf", "srv/www/index.html",
                           "bin/busybox"}) {
    const vfs::FileNode* node = app.lookup(path);
    access.files.push_back({path, node->content().size(),
                            default_hasher().fingerprint(node->content())});
  }

  std::string container;
  docker::DeployStats stats = client.deploy("demo:1.0", access, &container);
  std::printf("deployed %s: pull %s (%s), run %s — fetched %s on demand\n",
              container.c_str(), format_duration(stats.pull.seconds).c_str(),
              format_size(stats.pull.bytes_downloaded).c_str(),
              format_duration(stats.run_seconds).c_str(),
              format_size(stats.run_bytes_downloaded).c_str());

  GearFileViewer viewer = client.open_viewer(container);
  std::printf("index.html -> %s",
              to_string(viewer.read_file("srv/www/index.html").value())
                  .c_str());

  // 5. Patch the container and commit it as demo:1.1.
  viewer.write_file("srv/www/index.html",
                    to_bytes("<h1>hello from gear v1.1</h1>\n"));
  viewer.remove("srv/httpd.conf");

  GearCommitter committer;
  CommitResult commit = committer.commit(
      client.store().index_tree("demo:1.0"), viewer.diff(), config, "demo",
      "1.1");
  push_gear_image(commit.image, index_registry, file_registry);
  std::printf("\ncommitted demo:1.1 (%zu new file%s extracted)\n",
              commit.files_extracted, commit.files_extracted == 1 ? "" : "s");

  // Deploy the committed image and verify the patch took.
  client.pull("demo:1.1");
  std::string c2 = client.store().create_container("demo:1.1");
  GearFileViewer v2 = client.open_viewer(c2);
  std::printf("demo:1.1 index.html -> %s",
              to_string(v2.read_file("srv/www/index.html").value()).c_str());
  std::printf("demo:1.1 httpd.conf exists: %s\n",
              v2.exists("srv/httpd.conf") ? "yes (BUG)" : "no (deleted)");

  std::printf("\nquickstart complete.\n");
  return 0;
}
