#include "docker/overlay.hpp"

#include <algorithm>
#include <set>

#include "vfs/tree_diff.hpp"

namespace gear::docker {

OverlayMount::OverlayMount(std::vector<const vfs::FileTree*> lowers)
    : lowers_(std::move(lowers)) {
  for (const auto* tree : lowers_) {
    if (tree == nullptr) {
      throw_error(ErrorCode::kInvalidArgument, "overlay: null lower tree");
    }
  }
}

const vfs::FileNode* OverlayMount::resolve_child(const DirStack& stack,
                                                 const std::string& name,
                                                 DirStack* next_stack) const {
  for (std::size_t i = 0; i < stack.size(); ++i) {
    const vfs::FileNode* child = stack[i]->child(name);
    if (child == nullptr) continue;
    if (child->is_whiteout()) return nullptr;  // deleted: masks lower layers
    if (!child->is_directory()) return child;  // non-dir masks lower layers

    // Directory: merge with same-named directories in lower layers until an
    // opaque marker, a whiteout, or a non-directory stops the merge.
    if (next_stack != nullptr) next_stack->push_back(child);
    if (!child->opaque()) {
      for (std::size_t j = i + 1; j < stack.size(); ++j) {
        const vfs::FileNode* lower = stack[j]->child(name);
        if (lower == nullptr) continue;
        if (!lower->is_directory()) break;  // masks everything below
        if (next_stack != nullptr) next_stack->push_back(lower);
        if (lower->opaque()) break;
      }
    }
    return child;
  }
  return nullptr;
}

OverlayMount::DirStack OverlayMount::dir_stack_at(
    const std::vector<std::string>& segments) const {
  DirStack stack;
  stack.push_back(&upper_.root());
  for (auto it = lowers_.rbegin(); it != lowers_.rend(); ++it) {
    stack.push_back(&(*it)->root());
  }
  for (const std::string& seg : segments) {
    DirStack next;
    const vfs::FileNode* node = resolve_child(stack, seg, &next);
    if (node == nullptr || !node->is_directory()) return {};
    stack = std::move(next);
  }
  return stack;
}

OverlayEntry OverlayMount::lookup(std::string_view path) const {
  auto segments = vfs::FileTree::split_path(path);
  std::vector<std::string> parent(segments.begin(), segments.end() - 1);
  DirStack stack = dir_stack_at(parent);
  if (stack.empty()) return {};
  const vfs::FileNode* node = resolve_child(stack, segments.back(), nullptr);
  if (node == nullptr) return {};
  // The node is in the upper layer iff the resolved pointer lives inside
  // upper_'s node graph; the cheap equivalent: re-resolve against upper only.
  const vfs::FileNode* upper_node = upper_.lookup(path);
  return {node, upper_node == node};
}

StatusOr<Bytes> OverlayMount::read_file(std::string_view path) const {
  OverlayEntry e = lookup(path);
  if (e.node == nullptr) {
    return {ErrorCode::kNotFound, "no such file: " + std::string(path)};
  }
  if (!e.node->is_regular()) {
    return {ErrorCode::kInvalidArgument,
            "not a regular file: " + std::string(path)};
  }
  return e.node->content();
}

StatusOr<std::string> OverlayMount::read_symlink(std::string_view path) const {
  OverlayEntry e = lookup(path);
  if (e.node == nullptr) {
    return {ErrorCode::kNotFound, "no such link: " + std::string(path)};
  }
  if (!e.node->is_symlink()) {
    return {ErrorCode::kInvalidArgument, "not a symlink: " + std::string(path)};
  }
  return e.node->link_target();
}

std::vector<std::string> OverlayMount::list_dir(std::string_view path) const {
  DirStack stack;
  if (path.empty() || path == "/" || path == ".") {
    stack = dir_stack_at({});
  } else {
    stack = dir_stack_at(vfs::FileTree::split_path(path));
  }
  if (stack.empty()) {
    throw_error(ErrorCode::kNotFound,
                "not a directory in union: " + std::string(path));
  }
  std::set<std::string> visible;
  std::set<std::string> hidden;
  for (const vfs::FileNode* dir : stack) {
    for (const auto& [name, child] : dir->children()) {
      if (hidden.count(name) != 0 || visible.count(name) != 0) continue;
      if (child->is_whiteout()) {
        hidden.insert(name);
      } else {
        visible.insert(name);
      }
    }
  }
  return {visible.begin(), visible.end()};
}

void OverlayMount::write_file(std::string_view path, Bytes content,
                              const vfs::Metadata& meta) {
  auto segments = vfs::FileTree::split_path(path);
  // The parent must resolve to a directory in the union (or be creatable).
  vfs::FileNode* node = &upper_.root();
  DirStack stack = dir_stack_at({});
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Validate against the union: a non-directory component is an error.
    DirStack next;
    const vfs::FileNode* merged = resolve_child(stack, segments[i], &next);
    if (merged != nullptr && !merged->is_directory()) {
      throw_error(ErrorCode::kInvalidArgument,
                  "overlay: path component is not a directory: " + segments[i]);
    }
    stack = std::move(next);

    vfs::FileNode* upper_child = node->child(segments[i]);
    if (upper_child == nullptr) {
      upper_child = &node->add_child(
          segments[i], std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory));
      if (merged != nullptr) upper_child->metadata() = merged->metadata();
    } else if (upper_child->is_whiteout()) {
      // Writing under a previously deleted directory re-creates it opaque.
      auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
      dir->set_opaque(true);
      upper_child = &node->add_child(segments[i], std::move(dir));
      stack.clear();  // lower contents are hidden from here down
    } else if (!upper_child->is_directory()) {
      throw_error(ErrorCode::kInvalidArgument,
                  "overlay: upper path component is not a directory: " +
                      segments[i]);
    }
    node = upper_child;
  }
  auto file = std::make_unique<vfs::FileNode>(vfs::NodeType::kRegular);
  file->metadata() = meta;
  file->set_content(std::move(content));
  node->add_child(segments.back(), std::move(file));
}

void OverlayMount::make_dir(std::string_view path, const vfs::Metadata& meta) {
  auto segments = vfs::FileTree::split_path(path);
  vfs::FileNode* node = &upper_.root();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    vfs::FileNode* child = node->child(segments[i]);
    bool last = i + 1 == segments.size();
    if (child == nullptr) {
      auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
      if (last) dir->metadata() = meta;
      child = &node->add_child(segments[i], std::move(dir));
    } else if (child->is_whiteout()) {
      auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
      dir->set_opaque(true);
      if (last) dir->metadata() = meta;
      child = &node->add_child(segments[i], std::move(dir));
    } else if (!child->is_directory()) {
      throw_error(ErrorCode::kAlreadyExists,
                  "overlay: non-directory exists at " + segments[i]);
    } else if (last) {
      child->metadata() = meta;
    }
    node = child;
  }
}

bool OverlayMount::remove(std::string_view path) {
  if (!exists(path)) return false;
  auto segments = vfs::FileTree::split_path(path);

  // Drop any upper entry.
  upper_.remove(path);

  // If a lower layer still provides the path, mask it with a whiteout.
  DirStack stack;
  for (auto it = lowers_.rbegin(); it != lowers_.rend(); ++it) {
    stack.push_back(&(*it)->root());
  }
  for (std::size_t i = 0; i + 1 < segments.size() && !stack.empty(); ++i) {
    DirStack next;
    const vfs::FileNode* node = resolve_child(stack, segments[i], &next);
    if (node == nullptr || !node->is_directory()) {
      stack.clear();
      break;
    }
    stack = std::move(next);
  }
  bool lower_has =
      !stack.empty() &&
      resolve_child(stack, segments.back(), nullptr) != nullptr;
  if (lower_has) {
    upper_.add_whiteout(path);
  }
  return true;
}

vfs::FileTree OverlayMount::merged() const {
  vfs::FileTree m;
  for (const auto* lower : lowers_) {
    m = vfs::apply_layer(m, *lower);
  }
  return vfs::apply_layer(m, upper_);
}

}  // namespace gear::docker
