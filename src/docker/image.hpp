// Layered images and the builder that produces them.
//
// An Image bundles a manifest with its materialized layers. ImageBuilder
// mimics how Dockerfiles create images: a sequence of filesystem snapshots,
// each becoming one layer (the diff against the previous snapshot). Images
// may share lower layers by construction (e.g. every nginx version starts
// from the same debian base snapshot), which is what layer-level dedup in
// the registry exploits (paper Fig. 1).
#pragma once

#include <string>
#include <vector>

#include "docker/layer.hpp"
#include "docker/manifest.hpp"
#include "vfs/file_tree.hpp"

namespace gear::docker {

/// A complete image: manifest plus layer blobs (bottom first).
struct Image {
  Manifest manifest;
  std::vector<Layer> layers;

  /// Reconstructs the root filesystem by applying all layers bottom-to-top.
  vfs::FileTree flatten() const;

  /// Total compressed bytes across layers.
  std::uint64_t compressed_size() const;

  /// Total uncompressed (tarball) bytes across layers.
  std::uint64_t uncompressed_size() const;
};

/// Builds an image from successive full-filesystem snapshots.
class ImageBuilder {
 public:
  /// Starts from an existing image's layers (a child image "FROM base").
  /// The new image shares the base's layer blobs.
  explicit ImageBuilder(const Image& base);
  ImageBuilder() = default;

  /// Appends a layer capturing the diff between the current state and
  /// `snapshot`. A snapshot identical to the current state is rejected
  /// (Docker refuses empty commits). Returns *this for chaining.
  ImageBuilder& add_snapshot(const vfs::FileTree& snapshot);

  /// Appends a pre-computed diff tree as a layer.
  ImageBuilder& add_diff(const vfs::FileTree& diff);

  /// Current merged filesystem state.
  const vfs::FileTree& state() const noexcept { return state_; }

  /// Finalizes the image.
  Image build(std::string name, std::string tag, ImageConfig config) const;

 private:
  std::vector<Layer> layers_;
  vfs::FileTree state_;
};

}  // namespace gear::docker
