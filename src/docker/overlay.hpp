// Overlay2-style union mount over file trees.
//
// Implements the merge semantics of the kernel's overlayfs as Docker's
// Overlay2 graph driver uses them (paper §II-C):
//  * layers are stacked bottom-to-top with one writable upper layer;
//  * lookups scan top-down; the first non-directory entry masks everything
//    below; whiteouts mask and report "absent"; directory entries from
//    several layers merge unless an upper one is opaque;
//  * writes copy up into the upper layer; deletes create whiteouts;
//  * readdir presents the merged, masked union of all layers.
//
// Lookups are lazy — nothing is flattened at mount time — mirroring the real
// driver. `merged()` materializes the full view for verification; the
// property suite checks lazy lookups against vfs::flatten_layers.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "vfs/file_tree.hpp"

namespace gear::docker {

/// Result of resolving a path through the union.
struct OverlayEntry {
  const vfs::FileNode* node = nullptr;
  /// True when the entry lives in the writable upper layer.
  bool in_upper = false;
};

class OverlayMount {
 public:
  /// `lowers`: read-only layer *diff* trees, bottom first (as Overlay2's
  /// lowerdir list). The caller keeps them alive for the mount's lifetime.
  explicit OverlayMount(std::vector<const vfs::FileTree*> lowers);

  /// Resolves `path` through the union. Returns nullopt-like entry with
  /// node == nullptr when absent (or masked by a whiteout).
  OverlayEntry lookup(std::string_view path) const;

  bool exists(std::string_view path) const { return lookup(path).node != nullptr; }

  /// Reads a regular file's content through the union.
  StatusOr<Bytes> read_file(std::string_view path) const;

  /// Reads a symlink target (paper §III-D2: irregular files are answered
  /// directly from the index/union without materialization).
  StatusOr<std::string> read_symlink(std::string_view path) const;

  /// Merged, masked directory listing (names only, sorted).
  std::vector<std::string> list_dir(std::string_view path) const;

  /// Creates/overwrites a regular file in the upper layer, creating parent
  /// directories as needed (copy-up of directory structure).
  void write_file(std::string_view path, Bytes content,
                  const vfs::Metadata& meta = {});

  /// Creates a directory in the upper layer. If the path was deleted
  /// earlier (whiteout present), the new directory is opaque so lower
  /// contents stay hidden.
  void make_dir(std::string_view path, const vfs::Metadata& meta = {});

  /// Removes `path` from the union view: erases any upper entry and places
  /// a whiteout if a lower layer still provides the path. Returns false if
  /// the path did not exist in the union.
  bool remove(std::string_view path);

  /// The writable layer as a diff tree — exactly what `docker commit` turns
  /// into a new image layer.
  const vfs::FileTree& upper_diff() const noexcept { return upper_; }

  /// Materializes the full merged view (for tests and commit verification).
  vfs::FileTree merged() const;

 private:
  // Directories from different layers that merge at one path, top-first.
  using DirStack = std::vector<const vfs::FileNode*>;

  /// Resolves one name within a merged directory stack. Appends merged
  /// sub-directories to `next_stack` when the result is a directory.
  const vfs::FileNode* resolve_child(const DirStack& stack,
                                     const std::string& name,
                                     DirStack* next_stack) const;

  /// Walks `segments` and returns the stack of merged directories at that
  /// path, or an empty stack when the path is not a directory in the union.
  DirStack dir_stack_at(const std::vector<std::string>& segments) const;

  std::vector<const vfs::FileTree*> lowers_;  // bottom first
  vfs::FileTree upper_;                       // writable layer (diff tree)
};

}  // namespace gear::docker
