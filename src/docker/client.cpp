#include "docker/client.hpp"

#include "vfs/tree_diff.hpp"

namespace gear::docker {

DockerClient::DockerClient(DockerRegistry& registry, sim::NetworkLink& link,
                           sim::DiskModel& disk, RuntimeParams params)
    : registry_(registry), link_(link), disk_(disk), params_(params) {}

PullStats DockerClient::pull(const std::string& reference) {
  PullStats stats;
  sim::SimTimer timer(link_.clock());

  Manifest manifest = registry_.get_manifest(reference).value();
  link_.request(manifest.wire_size());
  stats.bytes_downloaded += manifest.wire_size();

  for (const LayerDescriptor& desc : manifest.layers) {
    if (layer_store_.count(desc.digest) != 0) {
      ++stats.layers_local;
      continue;
    }
    Bytes blob = registry_.get_blob(desc.digest).value();
    link_.request(blob.size());
    stats.bytes_downloaded += blob.size();
    ++stats.layers_fetched;

    // The graph driver writes the compressed blob, then unpacks the layer
    // into its diff/ directory.
    disk_.write(blob.size());
    Layer layer = Layer::from_blob(std::move(blob), desc.digest);
    vfs::FileTree tree = layer.to_tree();
    disk_.write(layer.uncompressed_size());

    local_bytes_ += layer.uncompressed_size();
    layer_store_.emplace(desc.digest,
                         StoredLayer{std::move(tree), layer.uncompressed_size()});
  }

  manifests_[reference] = std::move(manifest);
  stats.seconds = timer.elapsed();
  return stats;
}

OverlayMount DockerClient::mount(const std::string& reference) const {
  auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    throw_error(ErrorCode::kNotFound, "image not pulled: " + reference);
  }
  std::vector<const vfs::FileTree*> lowers;
  for (const LayerDescriptor& desc : it->second.layers) {
    auto lit = layer_store_.find(desc.digest);
    if (lit == layer_store_.end()) {
      throw_error(ErrorCode::kNotFound,
                  "layer missing locally: " + desc.digest.hex());
    }
    lowers.push_back(&lit->second.tree);
  }
  return OverlayMount(std::move(lowers));
}

DeployStats DockerClient::deploy(const std::string& reference,
                                 const workload::AccessSet& access) {
  DeployStats stats;
  stats.pull = pull(reference);

  sim::SimTimer timer(link_.clock());
  link_.clock().advance(params_.mount_seconds + params_.startup_seconds);
  OverlayMount root = mount(reference);
  stats.ready_seconds = stats.pull.seconds + timer.elapsed();

  for (const workload::FileAccess& fa : access.files) {
    Bytes content = root.read_file(fa.path).value();
    if (content.size() != fa.size) {
      throw_error(ErrorCode::kInternal,
                  "access set size mismatch at " + fa.path);
    }
    link_.clock().advance(params_.per_file_open_seconds);
    disk_.read(content.size());
  }
  stats.run_seconds = timer.elapsed();
  return stats;
}

double DockerClient::destroy(const std::string& reference) const {
  auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    throw_error(ErrorCode::kNotFound, "image not pulled: " + reference);
  }
  // Docker tears down the whole mount: every inode the image populated in
  // the dentry/inode caches is dropped.
  std::uint64_t inodes = 0;
  for (const LayerDescriptor& desc : it->second.layers) {
    auto lit = layer_store_.find(desc.digest);
    if (lit == layer_store_.end()) continue;
    vfs::TreeStats s = lit->second.tree.stats();
    inodes += s.regular_files + s.directories + s.symlinks;
  }
  double seconds =
      params_.teardown_fixed_seconds +
      static_cast<double>(inodes) * params_.per_inode_teardown_seconds;
  link_.clock().advance(seconds);
  return seconds;
}

void DockerClient::clear_local_state() {
  layer_store_.clear();
  manifests_.clear();
  local_bytes_ = 0;
}

}  // namespace gear::docker
