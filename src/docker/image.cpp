#include "docker/image.hpp"

#include "util/error.hpp"
#include "vfs/tree_diff.hpp"

namespace gear::docker {

vfs::FileTree Image::flatten() const {
  vfs::FileTree merged;
  for (const Layer& layer : layers) {
    merged = vfs::apply_layer(merged, layer.to_tree());
  }
  return merged;
}

std::uint64_t Image::compressed_size() const {
  std::uint64_t total = 0;
  for (const Layer& l : layers) total += l.compressed_size();
  return total;
}

std::uint64_t Image::uncompressed_size() const {
  std::uint64_t total = 0;
  for (const Layer& l : layers) total += l.uncompressed_size();
  return total;
}

ImageBuilder::ImageBuilder(const Image& base)
    : layers_(base.layers), state_(base.flatten()) {}

ImageBuilder& ImageBuilder::add_snapshot(const vfs::FileTree& snapshot) {
  vfs::FileTree diff = vfs::diff_trees(state_, snapshot);
  if (diff.root().children().empty()) {
    throw_error(ErrorCode::kInvalidArgument,
                "add_snapshot: snapshot is identical to current state");
  }
  layers_.push_back(Layer::from_tree(diff));
  state_ = snapshot;
  return *this;
}

ImageBuilder& ImageBuilder::add_diff(const vfs::FileTree& diff) {
  layers_.push_back(Layer::from_tree(diff));
  state_ = vfs::apply_layer(state_, diff);
  return *this;
}

Image ImageBuilder::build(std::string name, std::string tag,
                          ImageConfig config) const {
  if (layers_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "build: image has no layers");
  }
  Image image;
  image.manifest.name = std::move(name);
  image.manifest.tag = std::move(tag);
  image.manifest.config = std::move(config);
  for (const Layer& l : layers_) {
    image.manifest.layers.push_back({l.digest(), l.compressed_size()});
  }
  image.layers = layers_;
  return image;
}

}  // namespace gear::docker
