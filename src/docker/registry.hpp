// Docker Registry: content-addressed layer store + manifest store.
//
// Implements the storage side of the classic distribution model (paper
// §II-B): layers arrive as compressed tarballs, are deduplicated at layer
// granularity by digest comparison, and manifests are JSON documents served
// by reference "name:tag". Storage accounting matches how the paper
// measures registry footprint (unique blob bytes + manifest bytes).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <string>
#include <unordered_map>
#include <vector>

#include "docker/image.hpp"
#include "docker/layer.hpp"
#include "docker/manifest.hpp"
#include "util/error.hpp"

namespace gear::docker {

/// Outcome of pushing one image.
struct PushResult {
  std::size_t layers_uploaded = 0;   // blobs actually transferred and stored
  std::size_t layers_deduplicated = 0;  // blobs already present (skipped)
  std::uint64_t bytes_uploaded = 0;  // compressed bytes stored
};

class DockerRegistry {
 public:
  /// True if a blob with this digest is already stored — the layer-level
  /// deduplication check run before any upload.
  bool has_blob(const Digest& digest) const;

  /// Stores a blob under its digest. Verifies digest matches content.
  /// Idempotent: re-putting an existing blob is a no-op.
  void put_blob(const Digest& digest, Bytes blob);

  /// Fetches a blob. kNotFound when absent.
  StatusOr<Bytes> get_blob(const Digest& digest) const;

  /// Pushes a full image: dedups layers by digest, stores the manifest.
  PushResult push_image(const Image& image);

  /// Serves a manifest by "name:tag" reference.
  StatusOr<Manifest> get_manifest(const std::string& reference) const;

  bool has_manifest(const std::string& reference) const {
    return manifests_.count(reference) != 0;
  }

  /// All stored manifest references, sorted.
  std::vector<std::string> list_manifests() const;

  /// Deletes a manifest (image removal). Layer blobs stay until a registry
  /// GC decides otherwise. Returns false when absent.
  bool delete_manifest(const std::string& reference);

  /// Enumerates stored blob digests (unordered) — persistence/GC support.
  std::vector<Digest> list_blobs() const;

  /// Raw manifest document access (persistence support).
  StatusOr<std::string> get_manifest_json(const std::string& reference) const;
  /// Stores a manifest document verbatim after validating it parses.
  void put_manifest_json(const std::string& reference, std::string json);

  /// Deletes a blob (GC sweep). Returns bytes freed, 0 when absent.
  std::uint64_t delete_blob(const Digest& digest);

  /// Mark-and-sweep GC: removes every blob no stored manifest references.
  /// Returns (blobs swept, bytes reclaimed).
  std::pair<std::size_t, std::uint64_t> collect_garbage();

  /// Storage accounting.
  std::uint64_t blob_bytes() const noexcept { return blob_bytes_; }
  std::uint64_t manifest_bytes() const;
  std::uint64_t storage_bytes() const { return blob_bytes() + manifest_bytes(); }
  std::size_t blob_count() const noexcept { return blobs_.size(); }
  std::size_t manifest_count() const noexcept { return manifests_.size(); }

 private:
  std::unordered_map<Digest, Bytes, DigestHash> blobs_;
  std::map<std::string, std::string> manifests_;  // reference -> manifest JSON
  std::uint64_t blob_bytes_ = 0;
};

}  // namespace gear::docker
