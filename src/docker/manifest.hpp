// Image manifests and runtime configuration.
//
// The manifest is the JSON document the registry serves first on a pull
// (paper §II-B): it names the image's layers by digest and carries the
// runtime configuration (environment, entrypoint) that the Gear converter
// must copy into the index image so applications still execute properly
// (paper §III-C).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "docker/layer.hpp"
#include "util/json.hpp"

namespace gear::docker {

/// Runtime configuration of an image (subset of Docker's config blob that
/// matters for correct execution of the contained application).
struct ImageConfig {
  std::vector<std::string> env;         // "KEY=value" pairs
  std::vector<std::string> entrypoint;  // argv
  std::vector<std::string> cmd;         // default args
  std::string working_dir;
  std::map<std::string, std::string> labels;

  Json to_json() const;
  static ImageConfig from_json(const Json& j);

  friend bool operator==(const ImageConfig&, const ImageConfig&) = default;
};

/// Reference to a layer inside a manifest.
struct LayerDescriptor {
  Digest digest;
  std::uint64_t compressed_size = 0;

  friend bool operator==(const LayerDescriptor&,
                         const LayerDescriptor&) = default;
};

/// An image manifest: name:tag, ordered layers (bottom first), config.
struct Manifest {
  std::string name;
  std::string tag;
  ImageConfig config;
  std::vector<LayerDescriptor> layers;

  /// Canonical reference "name:tag".
  std::string reference() const { return name + ":" + tag; }

  /// Total compressed size of all layers.
  std::uint64_t total_layer_bytes() const;

  /// JSON round-trip (what the registry stores and serves).
  std::string to_json_string() const;
  static Manifest from_json_string(std::string_view json_text);

  /// Serialized size in bytes — charged to the network when pulled.
  std::uint64_t wire_size() const { return to_json_string().size(); }

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

}  // namespace gear::docker
