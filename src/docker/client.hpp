// Docker deployment client: the daemon-side pull + run path.
//
// Reproduces the two-step deployment of §II-C: (1) fetch the manifest, then
// download and unpack every layer not already present locally; (2) mount the
// layer stack with Overlay2 and start the container. All network and disk
// costs run through the simulation models, and the run phase actually reads
// the task's files through the union mount, so timing and correctness are
// exercised together.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "docker/overlay.hpp"
#include "docker/registry.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "workload/access.hpp"

namespace gear::docker {

/// Cost constants of the container runtime itself (shared by the Docker,
/// Gear, and Slacker clients so comparisons isolate the image format).
struct RuntimeParams {
  double startup_seconds = 0.12;       // runc/namespace setup
  double mount_seconds = 0.02;         // graph-driver mount
  double per_file_open_seconds = 2e-4; // VFS open+read syscall path
  double teardown_fixed_seconds = 0.015;     // cgroup/namespace teardown
  double per_inode_teardown_seconds = 5e-5;  // unmount: drop one cached inode
};

struct PullStats {
  std::uint64_t bytes_downloaded = 0;
  double seconds = 0;
  std::size_t layers_fetched = 0;
  std::size_t layers_local = 0;  // reused from the local layer store
};

struct DeployStats {
  PullStats pull;
  double run_seconds = 0;
  std::uint64_t run_bytes_downloaded = 0;  // on-demand fetches (Gear/Slacker)
  /// Time from deploy start until the container could begin serving: pull +
  /// mount + startup (+ bulk-warm when a client warms before the replay).
  /// Lazy Gear deploys return at this point — their whole run window IS
  /// readiness; for eager deploys it marks where the access replay began.
  double ready_seconds = 0;
  /// Files/bytes moved ahead of need during deploy (Gear: the bulk-warm leg
  /// and, when enabled, the post-replay prefetch). A labeled subset of
  /// run_bytes_downloaded — totals are unchanged, the split just makes
  /// on-demand vs prefetch traffic separable.
  std::size_t prefetched_files = 0;
  std::uint64_t prefetched_bytes = 0;
  double total_seconds() const { return pull.seconds + run_seconds; }
  std::uint64_t total_bytes() const {
    return pull.bytes_downloaded + run_bytes_downloaded;
  }
};

class DockerClient {
 public:
  DockerClient(DockerRegistry& registry, sim::NetworkLink& link,
               sim::DiskModel& disk, RuntimeParams params = {});

  /// Step 1 of deployment: manifest + missing layers, charged to the link
  /// and local disk; layers are unpacked into the local layer store
  /// (Overlay2 "diff/" directories) keyed by digest for cross-image reuse.
  PullStats pull(const std::string& reference);

  /// Step 2: mounts a pulled image's layer stack. Throws if layers are
  /// missing locally.
  OverlayMount mount(const std::string& reference) const;

  /// Full deployment: pull + start the container and replay `access`
  /// through the mounted root. Every accessed file must exist in the image.
  DeployStats deploy(const std::string& reference,
                     const workload::AccessSet& access);

  /// Tears down a container of `reference` (Fig. 11b: unmount cost scales
  /// with cached inodes — for Docker, every file the image holds).
  double destroy(const std::string& reference) const;

  bool has_layer(const Digest& digest) const {
    return layer_store_.count(digest) != 0;
  }
  std::uint64_t local_storage_bytes() const noexcept { return local_bytes_; }

  /// Drops all local layers (cold-client experiments).
  void clear_local_state();

  const RuntimeParams& params() const noexcept { return params_; }

 private:
  struct StoredLayer {
    vfs::FileTree tree;             // unpacked diff directory
    std::uint64_t unpacked_bytes = 0;
  };

  DockerRegistry& registry_;
  sim::NetworkLink& link_;
  sim::DiskModel& disk_;
  RuntimeParams params_;
  std::unordered_map<Digest, StoredLayer, DigestHash> layer_store_;
  std::map<std::string, Manifest> manifests_;  // locally known images
  std::uint64_t local_bytes_ = 0;
};

}  // namespace gear::docker
