#include "docker/manifest.hpp"

#include "util/error.hpp"

namespace gear::docker {
namespace {

JsonArray strings_to_json(const std::vector<std::string>& v) {
  JsonArray arr;
  arr.reserve(v.size());
  for (const auto& s : v) arr.emplace_back(s);
  return arr;
}

std::vector<std::string> json_to_strings(const Json& j) {
  std::vector<std::string> out;
  for (const Json& v : j.as_array()) out.push_back(v.as_string());
  return out;
}

}  // namespace

Json ImageConfig::to_json() const {
  JsonObject obj;
  obj["Env"] = Json(strings_to_json(env));
  obj["Entrypoint"] = Json(strings_to_json(entrypoint));
  obj["Cmd"] = Json(strings_to_json(cmd));
  obj["WorkingDir"] = Json(working_dir);
  JsonObject label_obj;
  for (const auto& [k, v] : labels) label_obj[k] = Json(v);
  obj["Labels"] = Json(std::move(label_obj));
  return Json(std::move(obj));
}

ImageConfig ImageConfig::from_json(const Json& j) {
  ImageConfig cfg;
  cfg.env = json_to_strings(j.at("Env"));
  cfg.entrypoint = json_to_strings(j.at("Entrypoint"));
  cfg.cmd = json_to_strings(j.at("Cmd"));
  cfg.working_dir = j.at("WorkingDir").as_string();
  for (const auto& [k, v] : j.at("Labels").as_object()) {
    cfg.labels[k] = v.as_string();
  }
  return cfg;
}

std::uint64_t Manifest::total_layer_bytes() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) total += l.compressed_size;
  return total;
}

std::string Manifest::to_json_string() const {
  JsonObject obj;
  obj["schemaVersion"] = Json(2);
  obj["name"] = Json(name);
  obj["tag"] = Json(tag);
  obj["config"] = config.to_json();
  JsonArray layer_arr;
  for (const auto& l : layers) {
    JsonObject lo;
    lo["digest"] = Json(l.digest.to_string());
    lo["size"] = Json(l.compressed_size);
    layer_arr.emplace_back(std::move(lo));
  }
  obj["layers"] = Json(std::move(layer_arr));
  return Json(std::move(obj)).dump();
}

Manifest Manifest::from_json_string(std::string_view json_text) {
  Json j = Json::parse(json_text);
  if (j.at("schemaVersion").as_int() != 2) {
    throw_error(ErrorCode::kUnsupported, "manifest: unknown schema version");
  }
  Manifest m;
  m.name = j.at("name").as_string();
  m.tag = j.at("tag").as_string();
  m.config = ImageConfig::from_json(j.at("config"));
  for (const Json& lo : j.at("layers").as_array()) {
    LayerDescriptor d;
    d.digest = Digest::from_string(lo.at("digest").as_string());
    d.compressed_size = static_cast<std::uint64_t>(lo.at("size").as_int());
    m.layers.push_back(d);
  }
  return m;
}

}  // namespace gear::docker
