// Docker image layers.
//
// A layer is the unit of storage and distribution in the classic Docker
// format (paper §II-A): the diff of one filesystem snapshot against its
// parent, shipped as a compressed tarball and identified by the SHA-256
// digest of that tarball's bytes.
#pragma once

#include <compare>
#include <string>

#include "util/bytes.hpp"
#include "util/sha256.hpp"
#include "vfs/file_tree.hpp"

namespace gear::docker {

/// Content digest of a layer blob ("sha256:<hex>" in Docker parlance).
class Digest {
 public:
  Digest() = default;
  explicit Digest(const Sha256Digest& raw) : raw_(raw) {}

  /// Digest of arbitrary blob bytes.
  static Digest of(BytesView blob);

  /// Parses "sha256:<64 hex chars>" or bare hex.
  static Digest from_string(std::string_view s);

  const Sha256Digest& raw() const noexcept { return raw_; }
  std::string hex() const;
  /// Canonical "sha256:<hex>" form used in manifests.
  std::string to_string() const;

  auto operator<=>(const Digest&) const = default;

 private:
  Sha256Digest raw_{};
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const noexcept {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | d.raw()[i];
    }
    return h;
  }
};

/// A materialized layer: the compressed tarball plus derived identity/sizes.
class Layer {
 public:
  /// Builds a layer from a diff tree: tar -> compress -> digest.
  static Layer from_tree(const vfs::FileTree& diff_tree);

  /// Wraps an existing blob (e.g. fetched from a registry). Verifies the
  /// expected digest when provided; throws kCorruptData on mismatch.
  static Layer from_blob(Bytes compressed_blob);
  static Layer from_blob(Bytes compressed_blob, const Digest& expected);

  /// Decompresses and un-tars back into the diff tree.
  vfs::FileTree to_tree() const;

  const Digest& digest() const noexcept { return digest_; }
  const Bytes& blob() const noexcept { return blob_; }
  std::uint64_t compressed_size() const noexcept { return blob_.size(); }
  std::uint64_t uncompressed_size() const noexcept { return uncompressed_size_; }

 private:
  Layer(Bytes blob, Digest digest, std::uint64_t uncompressed_size)
      : blob_(std::move(blob)),
        digest_(digest),
        uncompressed_size_(uncompressed_size) {}

  Bytes blob_;  // compressed tarball
  Digest digest_;
  std::uint64_t uncompressed_size_;
};

}  // namespace gear::docker
