#include "docker/layer.hpp"

#include "compress/codec.hpp"
#include "tar/tar.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace gear::docker {

Digest Digest::of(BytesView blob) { return Digest(Sha256::hash(blob)); }

Digest Digest::from_string(std::string_view s) {
  constexpr std::string_view kPrefix = "sha256:";
  if (s.rfind(kPrefix, 0) == 0) s.remove_prefix(kPrefix.size());
  Bytes raw = hex_decode(s);
  if (raw.size() != 32) {
    throw_error(ErrorCode::kInvalidArgument, "digest must be 64 hex chars");
  }
  Sha256Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return Digest(d);
}

std::string Digest::hex() const {
  return hex_encode(BytesView(raw_.data(), raw_.size()));
}

std::string Digest::to_string() const { return "sha256:" + hex(); }

Layer Layer::from_tree(const vfs::FileTree& diff_tree) {
  Bytes tarball = tar::archive_tree(diff_tree);
  std::uint64_t uncompressed = tarball.size();
  Bytes blob = compress(tarball);
  Digest digest = Digest::of(blob);
  return Layer(std::move(blob), digest, uncompressed);
}

Layer Layer::from_blob(Bytes compressed_blob) {
  Digest digest = Digest::of(compressed_blob);
  std::uint64_t uncompressed =
      compressed_frame_original_size(compressed_blob);
  return Layer(std::move(compressed_blob), digest, uncompressed);
}

Layer Layer::from_blob(Bytes compressed_blob, const Digest& expected) {
  Layer layer = from_blob(std::move(compressed_blob));
  if (layer.digest() != expected) {
    throw_error(ErrorCode::kCorruptData,
                "layer digest mismatch: got " + layer.digest().hex() +
                    ", want " + expected.hex());
  }
  return layer;
}

vfs::FileTree Layer::to_tree() const {
  return tar::extract_tree(decompress(blob_));
}

}  // namespace gear::docker
