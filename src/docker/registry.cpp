#include "docker/registry.hpp"

namespace gear::docker {

bool DockerRegistry::has_blob(const Digest& digest) const {
  return blobs_.count(digest) != 0;
}

void DockerRegistry::put_blob(const Digest& digest, Bytes blob) {
  if (Digest::of(blob) != digest) {
    throw_error(ErrorCode::kCorruptData,
                "put_blob: content does not match digest");
  }
  auto [it, inserted] = blobs_.emplace(digest, std::move(blob));
  if (inserted) blob_bytes_ += it->second.size();
}

StatusOr<Bytes> DockerRegistry::get_blob(const Digest& digest) const {
  auto it = blobs_.find(digest);
  if (it == blobs_.end()) {
    return {ErrorCode::kNotFound, "blob not found: " + digest.hex()};
  }
  return it->second;
}

PushResult DockerRegistry::push_image(const Image& image) {
  PushResult result;
  for (const Layer& layer : image.layers) {
    if (has_blob(layer.digest())) {
      ++result.layers_deduplicated;
      continue;
    }
    put_blob(layer.digest(), layer.blob());
    ++result.layers_uploaded;
    result.bytes_uploaded += layer.compressed_size();
  }
  manifests_[image.manifest.reference()] = image.manifest.to_json_string();
  return result;
}

StatusOr<Manifest> DockerRegistry::get_manifest(
    const std::string& reference) const {
  auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    return {ErrorCode::kNotFound, "manifest not found: " + reference};
  }
  return Manifest::from_json_string(it->second);
}

std::vector<std::string> DockerRegistry::list_manifests() const {
  std::vector<std::string> refs;
  refs.reserve(manifests_.size());
  for (const auto& [ref, json] : manifests_) {
    (void)json;
    refs.push_back(ref);
  }
  return refs;
}

bool DockerRegistry::delete_manifest(const std::string& reference) {
  return manifests_.erase(reference) > 0;
}

std::vector<Digest> DockerRegistry::list_blobs() const {
  std::vector<Digest> out;
  out.reserve(blobs_.size());
  for (const auto& [digest, blob] : blobs_) {
    (void)blob;
    out.push_back(digest);
  }
  return out;
}

StatusOr<std::string> DockerRegistry::get_manifest_json(
    const std::string& reference) const {
  auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    return {ErrorCode::kNotFound, "manifest not found: " + reference};
  }
  return it->second;
}

void DockerRegistry::put_manifest_json(const std::string& reference,
                                       std::string json) {
  Manifest parsed = Manifest::from_json_string(json);  // validate
  if (parsed.reference() != reference) {
    throw_error(ErrorCode::kInvalidArgument,
                "manifest reference mismatch: " + reference);
  }
  manifests_[reference] = std::move(json);
}

std::uint64_t DockerRegistry::delete_blob(const Digest& digest) {
  auto it = blobs_.find(digest);
  if (it == blobs_.end()) return 0;
  std::uint64_t freed = it->second.size();
  blob_bytes_ -= freed;
  blobs_.erase(it);
  return freed;
}

std::pair<std::size_t, std::uint64_t> DockerRegistry::collect_garbage() {
  std::unordered_set<Digest, DigestHash> live;
  for (const auto& [ref, json] : manifests_) {
    (void)ref;
    Manifest manifest = Manifest::from_json_string(json);
    for (const LayerDescriptor& desc : manifest.layers) {
      live.insert(desc.digest);
    }
  }
  std::size_t swept = 0;
  std::uint64_t reclaimed = 0;
  for (const Digest& digest : list_blobs()) {
    if (live.count(digest) != 0) continue;
    reclaimed += delete_blob(digest);
    ++swept;
  }
  return {swept, reclaimed};
}

std::uint64_t DockerRegistry::manifest_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [ref, json] : manifests_) {
    (void)ref;
    total += json.size();
  }
  return total;
}

}  // namespace gear::docker
