#include "p2p/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gear::p2p {

Topology::Topology(docker::DockerRegistry& index_registry,
                   FileRegistryApi& file_registry, const Params& params)
    : params_(params),
      file_registry_(file_registry),
      nodes_per_site_(params.nodes_per_site) {
  if (params.sites == 0 || params.nodes_per_site == 0) {
    throw_error(ErrorCode::kInvalidArgument,
                "topology needs at least one site and one node");
  }
  for (std::size_t s = 0; s < params.sites; ++s) {
    auto site = std::make_unique<Site>();
    for (std::size_t n = 0; n < params.nodes_per_site; ++n) {
      auto node = std::make_unique<Node>();
      node->id = "s" + std::to_string(s) + ".n" + std::to_string(n);
      node->site = s;
      node->clock = std::make_unique<sim::SimClock>();
      node->wan = std::make_unique<sim::NetworkLink>(
          sim::scaled_link(*node->clock, params.wan_link, params.byte_scale));
      node->lan = std::make_unique<sim::NetworkLink>(
          sim::scaled_link(*node->clock, params.lan_link, params.byte_scale));
      node->disk = std::make_unique<sim::DiskModel>(
          sim::DiskModel::scaled_ssd(*node->clock, params.byte_scale));
      node->client = std::make_unique<GearClient>(
          index_registry, file_registry, *node->wan, *node->disk,
          params.runtime);
      node->client->set_prefetch_order(params.prefetch_order);

      // Two-tier cooperative ladder: tier 0 asks the site tracker and reads
      // over the LAN; tier 1 follows gossiped digests to another site over
      // the WAN; the registry (the client's own fall-through) stays last.
      Node* raw = node.get();
      node->client->add_peer_source(
          [this, raw](const Fingerprint& fp,
                      std::uint64_t size) -> std::optional<Bytes> {
            (void)size;
            return fetch_local(*raw, fp);
          });
      if (params.cross_site_fetch && params.sites > 1) {
        node->client->add_peer_source(
            [this, raw](const Fingerprint& fp,
                        std::uint64_t size) -> std::optional<Bytes> {
              (void)size;
              return fetch_cross_site(*raw, fp);
            });
      }
      if (params.batch_peer_fetch) {
        node->client->add_batch_peer_source(
            [this,
             raw](const std::vector<std::pair<Fingerprint, std::uint64_t>>&
                      wanted) -> std::vector<std::optional<Bytes>> {
              return fetch_local_batch(*raw, wanted);
            });
        if (params.cross_site_fetch && params.sites > 1) {
          node->client->add_batch_peer_source(
              [this,
               raw](const std::vector<std::pair<Fingerprint, std::uint64_t>>&
                        wanted) -> std::vector<std::optional<Bytes>> {
                return fetch_cross_site_batch(*raw, wanted);
              });
        }
      }
      site->nodes.push_back(std::move(node));
    }
    sites_.push_back(std::move(site));
  }
}

Topology::Node& Topology::checked(std::size_t site, std::size_t node) {
  if (site >= sites_.size() || node >= sites_[site]->nodes.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  return *sites_[site]->nodes[node];
}

Topology::Node* Topology::find_serving(std::size_t site,
                                       const std::string& node_id) {
  for (const auto& node : sites_[site]->nodes) {
    if (node->id == node_id) {
      return node->down.load(std::memory_order_acquire) ? nullptr : node.get();
    }
  }
  return nullptr;
}

StatusOr<Bytes> Topology::read_peer_cache(const Node& peer,
                                          const Fingerprint& fp) {
  StatusOr<Bytes> content = peer.client->store().cache().get(fp);
  if (!content.ok()) {
    return {content.code(), "peer " + peer.id + " serving " + fp.hex() + ": " +
                                content.message()};
  }
  return content;
}

void Topology::announce_node(Node& n) {
  if (n.down.load(std::memory_order_acquire)) return;
  sites_[n.site]->tracker.announce_all(
      n.id, n.client->store().cache().fingerprints());
  if (params_.eager_gossip && params_.cross_site_fetch && sites_.size() > 1) {
    propagate_site_digest(n.site);
  }
}

void Topology::propagate_site_digest(std::size_t from) {
  std::vector<Fingerprint> digest = sites_[from]->tracker.announced();
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    if (s == from) continue;
    Site& site = *sites_[s];
    std::lock_guard guard(site.adverts_mutex);
    for (auto it = site.remote_adverts.begin();
         it != site.remote_adverts.end();) {
      it->second.erase(from);
      if (it->second.empty()) {
        it = site.remote_adverts.erase(it);
      } else {
        ++it;
      }
    }
    for (const Fingerprint& fp : digest) {
      site.remote_adverts[fp].insert(from);
    }
  }
}

void Topology::gossip() {
  for (std::size_t s = 0; s < sites_.size(); ++s) propagate_site_digest(s);
}

std::vector<std::size_t> Topology::advertised_sites(
    std::size_t site, const Fingerprint& fp) const {
  const Site& s = *sites_[site];
  std::lock_guard guard(s.adverts_mutex);
  auto it = s.remote_adverts.find(fp);
  if (it == s.remote_adverts.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::optional<Bytes> Topology::fetch_local(Node& self, const Fingerprint& fp) {
  for (const std::string& holder_id :
       sites_[self.site]->tracker.locate_ranked(fp, self.id)) {
    Node* peer = find_serving(self.site, holder_id);
    if (peer == nullptr) continue;  // holder left/crashed: next holder
    StatusOr<Bytes> content = read_peer_cache(*peer, fp);
    if (!content.ok()) {
      if (content.code() == ErrorCode::kNotFound) continue;  // stale advert
      throw_error(content.code(), content.message());
    }
    self.lan->request(content->size());
    lan_bytes_.fetch_add(content->size(), std::memory_order_relaxed);
    return unwrap(std::move(content), "local peer fetch of " + fp.hex());
  }
  return std::nullopt;
}

std::uint64_t Topology::wan_wire_cost(const Fingerprint& fp,
                                      std::uint64_t raw_size) const {
  // Transport-backed registries would pay a metadata round trip per query;
  // charge raw bytes there rather than perturb their link accounting.
  if (file_registry_.transport_accounted()) return raw_size;
  StatusOr<std::uint64_t> stored = file_registry_.stored_size(fp);
  return stored.ok() ? *stored : raw_size;
}

std::optional<Bytes> Topology::fetch_cross_site(Node& self,
                                                const Fingerprint& fp) {
  for (std::size_t remote : advertised_sites(self.site, fp)) {
    // The digest names a *site*; ask that site's tracker for live holders.
    for (const std::string& holder_id :
         sites_[remote]->tracker.locate_ranked(fp, self.id)) {
      Node* peer = find_serving(remote, holder_id);
      if (peer == nullptr) continue;
      StatusOr<Bytes> content = read_peer_cache(*peer, fp);
      if (!content.ok()) {
        if (content.code() == ErrorCode::kNotFound) continue;
        throw_error(content.code(), content.message());
      }
      std::uint64_t wire = wan_wire_cost(fp, content->size());
      self.wan->request(wire);
      wan_peer_bytes_.fetch_add(wire, std::memory_order_relaxed);
      return unwrap(std::move(content),
                    "cross-site peer fetch of " + fp.hex());
    }
  }
  return std::nullopt;  // stale digest everywhere: registry
}

std::vector<std::optional<Bytes>> Topology::fetch_local_batch(
    Node& self,
    const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted) {
  std::vector<std::optional<Bytes>> out(wanted.size());
  std::vector<Fingerprint> fps(wanted.size());
  for (std::size_t i = 0; i < wanted.size(); ++i) fps[i] = wanted[i].first;
  std::vector<std::vector<std::string>> ranked =
      sites_[self.site]->tracker.locate_ranked_many(fps, self.id);

  // Attempt rounds: each unserved slot targets its next-ranked holder, one
  // pipelined burst per holder per round. Round 1 is the whole fan-out in
  // the steady state; later rounds only fire when a holder left mid-storm
  // or advertised stale content (degrade to the next holder).
  std::vector<std::size_t> attempt(wanted.size(), 0);
  for (;;) {
    std::map<std::string, std::vector<std::size_t>> by_holder;
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      if (out[i].has_value() || attempt[i] >= ranked[i].size()) continue;
      by_holder[ranked[i][attempt[i]]].push_back(i);
    }
    if (by_holder.empty()) break;
    for (const auto& [holder_id, slots] : by_holder) {
      Node* peer = find_serving(self.site, holder_id);
      std::uint64_t burst_bytes = 0;
      std::uint64_t served = 0;
      for (std::size_t slot : slots) {
        if (peer != nullptr) {
          StatusOr<Bytes> content =
              read_peer_cache(*peer, wanted[slot].first);
          if (content.ok()) {
            burst_bytes += content->size();
            ++served;
            out[slot] = unwrap(
                std::move(content),
                "local peer burst of " + wanted[slot].first.hex());
            continue;
          }
          if (content.code() != ErrorCode::kNotFound) {
            throw_error(content.code(), content.message());
          }
        }
        ++attempt[slot];  // holder down or stale: try the next one
      }
      if (served > 0) {
        self.lan->pipelined(burst_bytes, served);
        lan_bytes_.fetch_add(burst_bytes, std::memory_order_relaxed);
        lan_bursts_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return out;
}

std::vector<std::optional<Bytes>> Topology::fetch_cross_site_batch(
    Node& self,
    const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted) {
  std::vector<std::optional<Bytes>> out(wanted.size());
  // Group slots by the first advertising site, then burst per live holder
  // inside that site; a slot whose site turns out stale retries the next
  // advertised site in a later round.
  std::vector<std::vector<std::size_t>> candidate_sites(wanted.size());
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    candidate_sites[i] = advertised_sites(self.site, wanted[i].first);
  }
  std::vector<std::size_t> attempt(wanted.size(), 0);
  for (;;) {
    std::map<std::size_t, std::vector<std::size_t>> by_site;
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      if (out[i].has_value() || attempt[i] >= candidate_sites[i].size()) {
        continue;
      }
      by_site[candidate_sites[i][attempt[i]]].push_back(i);
    }
    if (by_site.empty()) break;
    for (const auto& [remote, slots] : by_site) {
      std::vector<Fingerprint> fps;
      fps.reserve(slots.size());
      for (std::size_t slot : slots) fps.push_back(wanted[slot].first);
      std::vector<std::vector<std::string>> ranked =
          sites_[remote]->tracker.locate_ranked_many(fps, self.id);
      std::map<std::string, std::vector<std::size_t>> by_holder;
      for (std::size_t k = 0; k < slots.size(); ++k) {
        if (ranked[k].empty()) {
          ++attempt[slots[k]];  // site digest was stale for this object
          continue;
        }
        by_holder[ranked[k][0]].push_back(slots[k]);
      }
      for (const auto& [holder_id, holder_slots] : by_holder) {
        Node* peer = find_serving(remote, holder_id);
        std::uint64_t burst_bytes = 0;
        std::uint64_t served = 0;
        for (std::size_t slot : holder_slots) {
          if (peer != nullptr) {
            StatusOr<Bytes> content =
                read_peer_cache(*peer, wanted[slot].first);
            if (content.ok()) {
              burst_bytes += wan_wire_cost(wanted[slot].first, content->size());
              ++served;
              out[slot] = unwrap(
                  std::move(content),
                  "cross-site peer burst of " + wanted[slot].first.hex());
              continue;
            }
            if (content.code() != ErrorCode::kNotFound) {
              throw_error(content.code(), content.message());
            }
          }
          ++attempt[slot];  // holder down or stale: next advertised site
        }
        if (served > 0) {
          self.wan->pipelined(burst_bytes, served);
          wan_peer_bytes_.fetch_add(burst_bytes, std::memory_order_relaxed);
          wan_peer_bursts_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  return out;
}

docker::DeployStats Topology::deploy(std::size_t site, std::size_t node,
                                     const std::string& reference,
                                     const workload::AccessSet& access,
                                     std::string* container_id_out,
                                     DeployMode mode) {
  Node& n = checked(site, node);
  docker::DeployStats stats =
      n.client->deploy(reference, access, container_id_out, mode);
  announce_node(n);
  return stats;
}

std::pair<std::size_t, std::uint64_t> Topology::backfill(
    std::size_t site, std::size_t node, const std::string& reference) {
  Node& n = checked(site, node);
  std::pair<std::size_t, std::uint64_t> moved =
      n.client->backfill_remaining(reference);
  announce_node(n);
  return moved;
}

StatusOr<Bytes> Topology::read_range(std::size_t site, std::size_t node,
                                     const std::string& container_id,
                                     std::string_view path,
                                     std::uint64_t offset,
                                     std::uint64_t length) {
  Node& n = checked(site, node);
  StatusOr<Bytes> out =
      n.client->read_range(container_id, path, offset, length);
  if (out.ok()) {
    // Chunk objects land in the shared cache like whole files; advertise
    // them so later readers anywhere batch-pull from this node.
    announce_node(n);
  }
  return out;
}

std::pair<std::size_t, std::uint64_t> Topology::prefetch(
    std::size_t site, std::size_t node, const std::string& reference) {
  Node& n = checked(site, node);
  std::pair<std::size_t, std::uint64_t> moved =
      n.client->prefetch_remaining(reference);
  announce_node(n);
  return moved;
}

void Topology::retire_node(std::size_t site, std::size_t node) {
  Node& n = checked(site, node);
  n.down.store(true, std::memory_order_release);
  sites_[site]->tracker.retract_node(n.id);
  if (params_.eager_gossip && params_.cross_site_fetch && sites_.size() > 1) {
    propagate_site_digest(site);
  }
}

void Topology::crash_node(std::size_t site, std::size_t node) {
  // No retraction: the tracker and every gossiped digest keep advertising
  // this node until fetchers miss and move on.
  checked(site, node).down.store(true, std::memory_order_release);
}

void Topology::rejoin_node(std::size_t site, std::size_t node) {
  Node& n = checked(site, node);
  n.down.store(false, std::memory_order_release);
  announce_node(n);
}

std::uint64_t Topology::wan_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sites_.size(); ++s) total += wan_bytes(s);
  return total;
}

std::uint64_t Topology::wan_bytes(std::size_t site) const {
  if (site >= sites_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such site");
  }
  std::uint64_t total = 0;
  for (const auto& node : sites_[site]->nodes) {
    total += node->wan->stats().bytes_transferred;
  }
  return total;
}

std::uint64_t Topology::lan_bytes(std::size_t site) const {
  if (site >= sites_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such site");
  }
  std::uint64_t total = 0;
  for (const auto& node : sites_[site]->nodes) {
    total += node->lan->stats().bytes_transferred;
  }
  return total;
}

std::uint64_t Topology::peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& site : sites_) {
    for (const auto& node : site->nodes) total += node->client->peer_hits();
  }
  return total;
}

std::uint64_t Topology::lan_peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& site : sites_) {
    for (const auto& node : site->nodes) {
      std::vector<std::uint64_t> hits = node->client->peer_tier_hits();
      // Tier 0 is the per-file LAN source; tier layout for batched sources
      // mirrors it, so tier 0 counts every site-local hit.
      total += hits.empty() ? 0 : hits[0];
    }
  }
  return total;
}

std::uint64_t Topology::wan_peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& site : sites_) {
    for (const auto& node : site->nodes) {
      std::vector<std::uint64_t> hits = node->client->peer_tier_hits();
      total += hits.size() > 1 ? hits[1] : 0;
    }
  }
  return total;
}

GearClient& Topology::node(std::size_t site, std::size_t node) {
  return *checked(site, node).client;
}

sim::SimClock& Topology::node_clock(std::size_t site, std::size_t node) {
  return *checked(site, node).clock;
}

}  // namespace gear::p2p
