// Cooperative (P2P) Gear-file distribution within a cluster.
//
// The paper's related work (§VI-B) notes that cooperative caches and P2P
// distribution — CoMICon, Wharf, Dragonfly, FID — are orthogonal to Gear
// and "also help speed up the distribution of Gear files". This module
// realizes that composition: every node in a cluster advertises the
// fingerprints it caches to a tracker; a node missing a file asks the
// tracker, pulls from a peer over the cluster-local link, and only falls
// back to the registry over the WAN when no peer holds the file. With N
// nodes cold-starting the same image, registry egress collapses to ~1/N.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "docker/registry.hpp"
#include "gear/client.hpp"
#include "gear/registry.hpp"
#include "sim/clock.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"

namespace gear::p2p {

/// Who has which fingerprint. A plain in-memory tracker, as CoMICon's
/// master or Dragonfly's supernode would keep. Internally locked: nodes on
/// different threads may announce and locate concurrently.
class PeerTracker {
 public:
  void announce(const std::string& node_id, const Fingerprint& fp);
  void announce_all(const std::string& node_id,
                    const std::vector<Fingerprint>& fps);

  /// Drops every announcement of a node (node left / crashed).
  void retract_node(const std::string& node_id);

  /// A node currently advertising `fp`, excluding `requester`; kNotFound
  /// when no such peer exists.
  StatusOr<std::string> locate(const Fingerprint& fp,
                               const std::string& requester) const;

  /// Batched locate: out[i] is a holder of fps[i] (excluding `requester`)
  /// or nullopt. One tracker query answers the whole list — the lookup leg
  /// of a batched peer fetch.
  std::vector<std::optional<std::string>> locate_many(
      const std::vector<Fingerprint>& fps, const std::string& requester) const;

  /// Every node advertising `fp` (excluding `requester`), in tracker order.
  /// A fetcher walks the list so a holder that left or lost the object
  /// degrades to the next holder instead of failing the pull.
  std::vector<std::string> locate_ranked(const Fingerprint& fp,
                                         const std::string& requester) const;

  /// Batched ranked locate: out[i] is every holder of fps[i] in tracker
  /// order (excluding `requester`). One query answers the whole miss list.
  std::vector<std::vector<std::string>> locate_ranked_many(
      const std::vector<Fingerprint>& fps, const std::string& requester) const;

  /// Digest of every advertised fingerprint — the gossip payload one site's
  /// tracker shares with other sites in a multi-site topology.
  std::vector<Fingerprint> announced() const;

  std::size_t announced_objects() const;

 private:
  mutable std::mutex mutex_;
  std::map<Fingerprint, std::set<std::string>> holders_;
};

class Topology;

/// A single-site cluster of Gear nodes: each node has a WAN link to the
/// registries and a LAN link to its peers. Since the multi-site growth this
/// is a thin facade over a one-site Topology (p2p/topology.hpp) — same
/// tracker, same batched fan-out, same byte accounting — kept for the flat
/// LAN experiments and API compatibility.
class Cluster {
 public:
  struct Params {
    double wan_mbps = 100.0;
    double lan_mbps = 1000.0;
    double byte_scale = 1.0;  // corpus scale (scales both link speeds)
    std::size_t nodes = 3;
    docker::RuntimeParams runtime = {};
    /// Batched peer fan-out: the bulk paths (warm deploys, range reads) ask
    /// the tracker for a whole miss list at once and pull each holder's
    /// objects as one pipelined LAN burst. Off = legacy one-probe-per-object
    /// fetching only (the baseline of the fan-out experiments).
    bool batch_peer_fetch = true;
    /// Scheduling order every node uses for prefetch_remaining.
    PrefetchOrder prefetch_order = PrefetchOrder::kPath;
  };

  /// `file_registry` is any FileRegistryApi — the single in-process
  /// registry, a remote stub, or a FleetRegistry (P2P caching composes
  /// with registry scale-out unchanged).
  Cluster(docker::DockerRegistry& index_registry,
          FileRegistryApi& file_registry, const Params& params);
  ~Cluster();

  std::size_t size() const noexcept;

  /// Deploys on one node; peer fetches and tracker announcements happen
  /// automatically. The launched container id is written to
  /// `container_id_out` when non-null (for follow-up read_range calls).
  /// With DeployMode::kLazy the node is ready after the index pull; reads
  /// fault in through read_range()/the node's viewers, and backfill()
  /// warms the rest behind them.
  docker::DeployStats deploy(std::size_t node, const std::string& reference,
                             const workload::AccessSet& access,
                             std::string* container_id_out = nullptr,
                             DeployMode mode = DeployMode::kEager);

  /// Backfills a lazily deployed image's remaining files on one node at
  /// strictly lower priority than demand faults (GearClient demand lane),
  /// then announces the warmed cache to the tracker.
  std::pair<std::size_t, std::uint64_t> backfill(std::size_t node,
                                                 const std::string& reference);

  /// Range read on one node's container. Covering chunks missing locally
  /// are pulled from peers in batched LAN bursts (batch_peer_fetch) before
  /// falling back to the registry; whatever the node now caches — chunk
  /// objects included — is announced to the tracker for later readers.
  StatusOr<Bytes> read_range(std::size_t node, const std::string& container_id,
                             std::string_view path, std::uint64_t offset,
                             std::uint64_t length);

  /// Prefetches a deployed image's remaining files on one node in the
  /// cluster's configured priority order. Peer fetches count as usual; the
  /// newly warmed cache is announced to the tracker so later deployers of
  /// the same image batch-pull from this node. Returns (files, bytes)
  /// fetched beyond what the node already cached.
  std::pair<std::size_t, std::uint64_t> prefetch(std::size_t node,
                                                 const std::string& reference);

  /// Removes a node's advertisements (simulated departure). The node's
  /// client keeps working but no longer serves peers.
  void retire_node(std::size_t node);

  /// Aggregate WAN bytes pulled from the registries by all nodes.
  std::uint64_t wan_bytes() const;
  /// Aggregate LAN bytes moved between peers.
  std::uint64_t lan_bytes() const noexcept;
  /// Pipelined LAN bursts issued by batched peer fetches (each serves a
  /// whole holder group in one round trip; legacy per-object probes are not
  /// counted here).
  std::uint64_t lan_bursts() const noexcept;
  /// Peer-satisfied fetches across the cluster.
  std::uint64_t peer_hits() const;

  GearClient& node(std::size_t i);

 private:
  std::unique_ptr<Topology> topo_;
};

}  // namespace gear::p2p
