#include "p2p/cluster.hpp"

namespace gear::p2p {

namespace {
/// Shared lookup body; the caller holds the tracker lock.
const std::string* find_holder(
    const std::map<Fingerprint, std::set<std::string>>& holders,
    const Fingerprint& fp, const std::string& requester) {
  auto it = holders.find(fp);
  if (it == holders.end()) return nullptr;
  for (const std::string& node : it->second) {
    if (node != requester) return &node;
  }
  return nullptr;
}
}  // namespace

void PeerTracker::announce(const std::string& node_id, const Fingerprint& fp) {
  std::lock_guard guard(mutex_);
  holders_[fp].insert(node_id);
}

void PeerTracker::announce_all(const std::string& node_id,
                               const std::vector<Fingerprint>& fps) {
  std::lock_guard guard(mutex_);
  for (const Fingerprint& fp : fps) holders_[fp].insert(node_id);
}

void PeerTracker::retract_node(const std::string& node_id) {
  std::lock_guard guard(mutex_);
  for (auto it = holders_.begin(); it != holders_.end();) {
    it->second.erase(node_id);
    if (it->second.empty()) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<std::string> PeerTracker::locate(const Fingerprint& fp,
                                          const std::string& requester) const {
  std::lock_guard guard(mutex_);
  const std::string* holder = find_holder(holders_, fp, requester);
  if (holder == nullptr) {
    return {ErrorCode::kNotFound, "no holder for " + fp.hex()};
  }
  return *holder;
}

std::vector<std::optional<std::string>> PeerTracker::locate_many(
    const std::vector<Fingerprint>& fps, const std::string& requester) const {
  std::lock_guard guard(mutex_);
  std::vector<std::optional<std::string>> out(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    const std::string* holder = find_holder(holders_, fps[i], requester);
    if (holder != nullptr) out[i] = *holder;
  }
  return out;
}

std::size_t PeerTracker::announced_objects() const {
  std::lock_guard guard(mutex_);
  return holders_.size();
}

Cluster::Cluster(docker::DockerRegistry& index_registry,
                 FileRegistryApi& file_registry, const Params& params) {
  if (params.nodes == 0) {
    throw_error(ErrorCode::kInvalidArgument, "cluster needs nodes");
  }
  for (std::size_t i = 0; i < params.nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->id = "node" + std::to_string(i);
    node->wan = std::make_unique<sim::NetworkLink>(
        sim::scaled_link(clock_, params.wan_mbps, params.byte_scale));
    node->lan = std::make_unique<sim::NetworkLink>(
        sim::scaled_link(clock_, params.lan_mbps, params.byte_scale,
                         /*rtt_seconds=*/0.0002,
                         /*request_overhead_seconds=*/0.0001));
    node->disk = std::make_unique<sim::DiskModel>(
        sim::DiskModel::scaled_ssd(clock_, params.byte_scale));
    node->client = std::make_unique<GearClient>(
        index_registry, file_registry, *node->wan, *node->disk,
        params.runtime);
    node->client->set_prefetch_order(params.prefetch_order);

    // Peer fetch path: tracker lookup, then read straight out of the
    // holder's shared cache over the LAN link.
    Node* raw = node.get();
    node->client->set_peer_source(
        [this, raw](const Fingerprint& fp,
                    std::uint64_t size) -> std::optional<Bytes> {
          StatusOr<std::string> holder = tracker_.locate(fp, raw->id);
          if (!holder.ok()) return std::nullopt;
          for (const auto& peer : nodes_) {
            if (peer->id != *holder || peer->retired) continue;
            StatusOr<Bytes> content = peer->client->store().cache().get(fp);
            if (!content.ok()) return std::nullopt;  // stale advertisement
            (void)size;
            raw->lan->request(content->size());
            lan_bytes_ += content->size();
            return std::move(content).value();
          }
          return std::nullopt;
        });

    // Batched fan-out: one tracker query for the whole miss list, then one
    // pipelined LAN burst per holder. Slots no peer can serve stay nullopt
    // and fall through to the registry.
    if (params.batch_peer_fetch) {
      node->client->set_batch_peer_source(
          [this, raw](const std::vector<std::pair<Fingerprint, std::uint64_t>>&
                          wanted) -> std::vector<std::optional<Bytes>> {
            std::vector<std::optional<Bytes>> out(wanted.size());
            std::vector<Fingerprint> fps(wanted.size());
            for (std::size_t i = 0; i < wanted.size(); ++i) {
              fps[i] = wanted[i].first;
            }
            std::vector<std::optional<std::string>> holders =
                tracker_.locate_many(fps, raw->id);
            std::map<std::string, std::vector<std::size_t>> by_holder;
            for (std::size_t i = 0; i < holders.size(); ++i) {
              if (holders[i].has_value()) by_holder[*holders[i]].push_back(i);
            }
            for (const auto& [holder_id, slots] : by_holder) {
              Node* peer = nullptr;
              for (const auto& p : nodes_) {
                if (p->id == holder_id && !p->retired) {
                  peer = p.get();
                  break;
                }
              }
              if (peer == nullptr) continue;  // stale advertisement
              std::uint64_t burst_bytes = 0;
              std::uint64_t served = 0;
              for (std::size_t slot : slots) {
                StatusOr<Bytes> content =
                    peer->client->store().cache().get(wanted[slot].first);
                if (!content.ok()) continue;  // stale advertisement
                burst_bytes += content->size();
                ++served;
                out[slot] = std::move(content).value();
              }
              if (served > 0) {
                raw->lan->pipelined(burst_bytes, served);
                lan_bytes_ += burst_bytes;
                ++lan_bursts_;
              }
            }
            return out;
          });
    }
    nodes_.push_back(std::move(node));
  }
}

docker::DeployStats Cluster::deploy(std::size_t node,
                                    const std::string& reference,
                                    const workload::AccessSet& access,
                                    std::string* container_id_out,
                                    DeployMode mode) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  Node& n = *nodes_[node];
  docker::DeployStats stats =
      n.client->deploy(reference, access, container_id_out, mode);
  if (!n.retired) {
    tracker_.announce_all(n.id, n.client->store().cache().fingerprints());
  }
  return stats;
}

std::pair<std::size_t, std::uint64_t> Cluster::backfill(
    std::size_t node, const std::string& reference) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  Node& n = *nodes_[node];
  std::pair<std::size_t, std::uint64_t> moved =
      n.client->backfill_remaining(reference);
  if (!n.retired) {
    tracker_.announce_all(n.id, n.client->store().cache().fingerprints());
  }
  return moved;
}

StatusOr<Bytes> Cluster::read_range(std::size_t node,
                                    const std::string& container_id,
                                    std::string_view path, std::uint64_t offset,
                                    std::uint64_t length) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  Node& n = *nodes_[node];
  StatusOr<Bytes> out =
      n.client->read_range(container_id, path, offset, length);
  if (out.ok() && !n.retired) {
    // Chunk objects land in the shared cache like whole files; advertise
    // them so later readers on other nodes batch-pull from this one.
    tracker_.announce_all(n.id, n.client->store().cache().fingerprints());
  }
  return out;
}

std::pair<std::size_t, std::uint64_t> Cluster::prefetch(
    std::size_t node, const std::string& reference) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  Node& n = *nodes_[node];
  std::pair<std::size_t, std::uint64_t> moved =
      n.client->prefetch_remaining(reference);
  if (!n.retired) {
    tracker_.announce_all(n.id, n.client->store().cache().fingerprints());
  }
  return moved;
}

void Cluster::retire_node(std::size_t node) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  nodes_[node]->retired = true;
  tracker_.retract_node(nodes_[node]->id);
}

std::uint64_t Cluster::wan_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->wan->stats().bytes_transferred;
  }
  return total;
}

std::uint64_t Cluster::peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->client->peer_hits();
  return total;
}

GearClient& Cluster::node(std::size_t i) {
  if (i >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  return *nodes_[i]->client;
}

}  // namespace gear::p2p
