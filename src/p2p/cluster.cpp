#include "p2p/cluster.hpp"

namespace gear::p2p {

void PeerTracker::announce(const std::string& node_id, const Fingerprint& fp) {
  holders_[fp].insert(node_id);
}

void PeerTracker::announce_all(const std::string& node_id,
                               const std::vector<Fingerprint>& fps) {
  for (const Fingerprint& fp : fps) announce(node_id, fp);
}

void PeerTracker::retract_node(const std::string& node_id) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    it->second.erase(node_id);
    if (it->second.empty()) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<std::string> PeerTracker::locate(const Fingerprint& fp,
                                          const std::string& requester) const {
  auto it = holders_.find(fp);
  if (it == holders_.end()) {
    return {ErrorCode::kNotFound, "no holder for " + fp.hex()};
  }
  for (const std::string& node : it->second) {
    if (node != requester) return node;
  }
  return {ErrorCode::kNotFound, "only the requester holds " + fp.hex()};
}

Cluster::Cluster(docker::DockerRegistry& index_registry,
                 GearRegistry& file_registry, const Params& params) {
  if (params.nodes == 0) {
    throw_error(ErrorCode::kInvalidArgument, "cluster needs nodes");
  }
  for (std::size_t i = 0; i < params.nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->id = "node" + std::to_string(i);
    node->wan = std::make_unique<sim::NetworkLink>(
        sim::scaled_link(clock_, params.wan_mbps, params.byte_scale));
    node->lan = std::make_unique<sim::NetworkLink>(
        sim::scaled_link(clock_, params.lan_mbps, params.byte_scale,
                         /*rtt_seconds=*/0.0002,
                         /*request_overhead_seconds=*/0.0001));
    node->disk = std::make_unique<sim::DiskModel>(
        sim::DiskModel::scaled_ssd(clock_, params.byte_scale));
    node->client = std::make_unique<GearClient>(
        index_registry, file_registry, *node->wan, *node->disk,
        params.runtime);

    // Peer fetch path: tracker lookup, then read straight out of the
    // holder's shared cache over the LAN link.
    Node* raw = node.get();
    node->client->set_peer_source(
        [this, raw](const Fingerprint& fp,
                    std::uint64_t size) -> std::optional<Bytes> {
          StatusOr<std::string> holder = tracker_.locate(fp, raw->id);
          if (!holder.ok()) return std::nullopt;
          for (const auto& peer : nodes_) {
            if (peer->id != *holder || peer->retired) continue;
            StatusOr<Bytes> content = peer->client->store().cache().get(fp);
            if (!content.ok()) return std::nullopt;  // stale advertisement
            (void)size;
            raw->lan->request(content->size());
            lan_bytes_ += content->size();
            return std::move(content).value();
          }
          return std::nullopt;
        });
    nodes_.push_back(std::move(node));
  }
}

docker::DeployStats Cluster::deploy(std::size_t node,
                                    const std::string& reference,
                                    const workload::AccessSet& access) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  Node& n = *nodes_[node];
  docker::DeployStats stats = n.client->deploy(reference, access);
  if (!n.retired) {
    tracker_.announce_all(n.id, n.client->store().cache().fingerprints());
  }
  return stats;
}

void Cluster::retire_node(std::size_t node) {
  if (node >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  nodes_[node]->retired = true;
  tracker_.retract_node(nodes_[node]->id);
}

std::uint64_t Cluster::wan_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->wan->stats().bytes_transferred;
  }
  return total;
}

std::uint64_t Cluster::peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->client->peer_hits();
  return total;
}

GearClient& Cluster::node(std::size_t i) {
  if (i >= nodes_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "no such node");
  }
  return *nodes_[i]->client;
}

}  // namespace gear::p2p
