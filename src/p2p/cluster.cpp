#include "p2p/cluster.hpp"

#include "p2p/topology.hpp"
#include "util/error.hpp"

namespace gear::p2p {

namespace {
/// Shared lookup body; the caller holds the tracker lock.
const std::string* find_holder(
    const std::map<Fingerprint, std::set<std::string>>& holders,
    const Fingerprint& fp, const std::string& requester) {
  auto it = holders.find(fp);
  if (it == holders.end()) return nullptr;
  for (const std::string& node : it->second) {
    if (node != requester) return &node;
  }
  return nullptr;
}
}  // namespace

void PeerTracker::announce(const std::string& node_id, const Fingerprint& fp) {
  std::lock_guard guard(mutex_);
  holders_[fp].insert(node_id);
}

void PeerTracker::announce_all(const std::string& node_id,
                               const std::vector<Fingerprint>& fps) {
  std::lock_guard guard(mutex_);
  for (const Fingerprint& fp : fps) holders_[fp].insert(node_id);
}

void PeerTracker::retract_node(const std::string& node_id) {
  std::lock_guard guard(mutex_);
  for (auto it = holders_.begin(); it != holders_.end();) {
    it->second.erase(node_id);
    if (it->second.empty()) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<std::string> PeerTracker::locate(const Fingerprint& fp,
                                          const std::string& requester) const {
  std::lock_guard guard(mutex_);
  const std::string* holder = find_holder(holders_, fp, requester);
  if (holder == nullptr) {
    return {ErrorCode::kNotFound, "no holder for " + fp.hex()};
  }
  return *holder;
}

std::vector<std::optional<std::string>> PeerTracker::locate_many(
    const std::vector<Fingerprint>& fps, const std::string& requester) const {
  std::lock_guard guard(mutex_);
  std::vector<std::optional<std::string>> out(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    const std::string* holder = find_holder(holders_, fps[i], requester);
    if (holder != nullptr) out[i] = *holder;
  }
  return out;
}

std::vector<std::string> PeerTracker::locate_ranked(
    const Fingerprint& fp, const std::string& requester) const {
  std::lock_guard guard(mutex_);
  std::vector<std::string> out;
  auto it = holders_.find(fp);
  if (it == holders_.end()) return out;
  for (const std::string& node : it->second) {
    if (node != requester) out.push_back(node);
  }
  return out;
}

std::vector<std::vector<std::string>> PeerTracker::locate_ranked_many(
    const std::vector<Fingerprint>& fps, const std::string& requester) const {
  std::lock_guard guard(mutex_);
  std::vector<std::vector<std::string>> out(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    auto it = holders_.find(fps[i]);
    if (it == holders_.end()) continue;
    for (const std::string& node : it->second) {
      if (node != requester) out[i].push_back(node);
    }
  }
  return out;
}

std::vector<Fingerprint> PeerTracker::announced() const {
  std::lock_guard guard(mutex_);
  std::vector<Fingerprint> out;
  out.reserve(holders_.size());
  for (const auto& [fp, nodes] : holders_) {
    if (!nodes.empty()) out.push_back(fp);
  }
  return out;
}

std::size_t PeerTracker::announced_objects() const {
  std::lock_guard guard(mutex_);
  return holders_.size();
}


namespace {
Topology::Params single_site(const Cluster::Params& params) {
  if (params.nodes == 0) {
    throw_error(ErrorCode::kInvalidArgument, "cluster needs nodes");
  }
  Topology::Params tp;
  tp.sites = 1;
  tp.nodes_per_site = params.nodes;
  // The flat-LAN experiments' historical link latencies, unchanged.
  tp.wan_link = sim::LinkProfile{params.wan_mbps, /*rtt_seconds=*/0.0005,
                                 /*request_overhead_seconds=*/0.0003};
  tp.lan_link = sim::LinkProfile{params.lan_mbps, /*rtt_seconds=*/0.0002,
                                 /*request_overhead_seconds=*/0.0001};
  tp.byte_scale = params.byte_scale;
  tp.runtime = params.runtime;
  tp.batch_peer_fetch = params.batch_peer_fetch;
  tp.cross_site_fetch = false;  // one site: there is no second tier
  tp.prefetch_order = params.prefetch_order;
  return tp;
}
}  // namespace

Cluster::Cluster(docker::DockerRegistry& index_registry,
                 FileRegistryApi& file_registry, const Params& params)
    : topo_(std::make_unique<Topology>(index_registry, file_registry,
                                       single_site(params))) {}

Cluster::~Cluster() = default;

std::size_t Cluster::size() const noexcept { return topo_->size(); }

docker::DeployStats Cluster::deploy(std::size_t node,
                                    const std::string& reference,
                                    const workload::AccessSet& access,
                                    std::string* container_id_out,
                                    DeployMode mode) {
  return topo_->deploy(0, node, reference, access, container_id_out, mode);
}

std::pair<std::size_t, std::uint64_t> Cluster::backfill(
    std::size_t node, const std::string& reference) {
  return topo_->backfill(0, node, reference);
}

StatusOr<Bytes> Cluster::read_range(std::size_t node,
                                    const std::string& container_id,
                                    std::string_view path, std::uint64_t offset,
                                    std::uint64_t length) {
  return topo_->read_range(0, node, container_id, path, offset, length);
}

std::pair<std::size_t, std::uint64_t> Cluster::prefetch(
    std::size_t node, const std::string& reference) {
  return topo_->prefetch(0, node, reference);
}

void Cluster::retire_node(std::size_t node) { topo_->retire_node(0, node); }

std::uint64_t Cluster::wan_bytes() const { return topo_->wan_bytes(); }

std::uint64_t Cluster::lan_bytes() const noexcept {
  return topo_->lan_bytes();
}

std::uint64_t Cluster::lan_bursts() const noexcept {
  return topo_->lan_bursts();
}

std::uint64_t Cluster::peer_hits() const { return topo_->peer_hits(); }

GearClient& Cluster::node(std::size_t i) { return topo_->node(0, i); }

}  // namespace gear::p2p
