// Multi-site edge topology: hierarchical P2P Gear-file distribution.
//
// EdgePier (PAPERS.md) distributes container images peer-to-peer inside and
// across edge sites, collapsing WAN egress to roughly one copy per site;
// the paper (§VI-B) names P2P distribution orthogonal to Gear's format.
// This module composes the two over the file/chunk-granular objects the
// cluster module already trades:
//
//   * a Topology is N sites, each with its own fast LAN, its own
//     PeerTracker, and a shared slow WAN to the registry and other sites;
//   * peer location is two-tier — site-local adverts are always preferred,
//     cross-site (WAN) peers are used only when no local peer holds the
//     object, and the registry is the last resort;
//   * site trackers gossip advert digests, so a node learns which *sites*
//     hold an object without a global tracker;
//   * batched fan-out survives at both tiers: a miss list costs one
//     pipelined burst per holding peer, LAN or WAN;
//   * churn is first-class: nodes leave (tracker retraction), crash
//     (stale adverts left behind — fetchers degrade to the next holder),
//     and rejoin (full re-announce).
//
// Every node owns its own SimClock, so concurrent deploy storms on distinct
// nodes are thread-safe: trackers and shared caches are internally locked,
// transfer counters are atomics, and link charging stays on the calling
// node's own links.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "docker/registry.hpp"
#include "gear/client.hpp"
#include "gear/registry.hpp"
#include "p2p/cluster.hpp"
#include "sim/clock.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"

namespace gear::p2p {

class Topology {
 public:
  struct Params {
    std::size_t sites = 2;
    std::size_t nodes_per_site = 3;
    /// Hop to the registry and to peers in other sites (EdgePier's
    /// 5-100 Mbps inter-site links).
    sim::LinkProfile wan_link = sim::wan_profile();
    /// Hop between peers inside one site.
    sim::LinkProfile lan_link = sim::lan_profile();
    double byte_scale = 1.0;  // corpus scale (scales both link speeds)
    docker::RuntimeParams runtime = {};
    /// Batched peer fan-out at both tiers (off = per-object probes only).
    bool batch_peer_fetch = true;
    /// Cross-site peer tier. Off = sites are P2P islands, every cold site
    /// node pulls from the registry — the no-cross-site baseline the edge
    /// bench compares against.
    bool cross_site_fetch = true;
    /// Push advert digests to the other sites after every announce and
    /// retraction. Off = digests move only on explicit gossip() rounds, so
    /// cross-site adverts can go stale (fetchers fall through).
    bool eager_gossip = true;
    /// Scheduling order every node uses for prefetch_remaining.
    PrefetchOrder prefetch_order = PrefetchOrder::kPath;
  };

  /// `file_registry` is any FileRegistryApi — in-process, remote stub, or a
  /// FleetRegistry; hierarchical P2P composes with registry scale-out.
  Topology(docker::DockerRegistry& index_registry,
           FileRegistryApi& file_registry, const Params& params);

  std::size_t sites() const noexcept { return sites_.size(); }
  std::size_t nodes_per_site() const noexcept { return nodes_per_site_; }
  std::size_t size() const noexcept { return sites_.size() * nodes_per_site_; }

  /// Deploys on one node; peer fetches (LAN tier, then WAN tier, then the
  /// registry) and tracker announcements happen automatically. Safe to call
  /// concurrently on *distinct* nodes.
  docker::DeployStats deploy(std::size_t site, std::size_t node,
                             const std::string& reference,
                             const workload::AccessSet& access,
                             std::string* container_id_out = nullptr,
                             DeployMode mode = DeployMode::kEager);

  /// Backfills a lazily deployed image's remaining files on one node, then
  /// announces the warmed cache.
  std::pair<std::size_t, std::uint64_t> backfill(std::size_t site,
                                                 std::size_t node,
                                                 const std::string& reference);

  /// Range read on one node's container; missing chunks go through the
  /// two-tier peer ladder before the registry.
  StatusOr<Bytes> read_range(std::size_t site, std::size_t node,
                             const std::string& container_id,
                             std::string_view path, std::uint64_t offset,
                             std::uint64_t length);

  /// Prefetches a deployed image's remaining files on one node.
  std::pair<std::size_t, std::uint64_t> prefetch(std::size_t site,
                                                 std::size_t node,
                                                 const std::string& reference);

  /// Graceful leave: the node's adverts are retracted everywhere and it
  /// stops serving peers. Its client keeps working (fetch-only).
  void retire_node(std::size_t site, std::size_t node);

  /// Ungraceful departure mid-deploy: the node stops serving but its
  /// adverts stay, stale, until fetchers miss and degrade to the next
  /// holder (or the registry).
  void crash_node(std::size_t site, std::size_t node);

  /// Rejoin after a leave or crash: resume serving and re-announce the
  /// whole cache to the site tracker (and, via gossip, to other sites).
  void rejoin_node(std::size_t site, std::size_t node);

  /// One full gossip round: every site rebuilds its cross-site advert
  /// digest from every other site's tracker. The repair path when
  /// eager_gossip is off (or after crashes left stale digests).
  void gossip();

  /// Aggregate WAN bytes (registry pulls + cross-site peer pulls).
  std::uint64_t wan_bytes() const;
  /// WAN bytes attributable to one site's nodes.
  std::uint64_t wan_bytes(std::size_t site) const;
  /// Aggregate LAN bytes moved between site-local peers. Atomic: peer
  /// fetch callbacks run on concurrent deploy threads.
  std::uint64_t lan_bytes() const noexcept {
    return lan_bytes_.load(std::memory_order_relaxed);
  }
  /// LAN bytes moved inside one site.
  std::uint64_t lan_bytes(std::size_t site) const;
  /// Pipelined bursts issued by batched LAN peer fetches.
  std::uint64_t lan_bursts() const noexcept {
    return lan_bursts_.load(std::memory_order_relaxed);
  }
  /// Bytes pulled from cross-site peers (subset of wan_bytes()).
  std::uint64_t wan_peer_bytes() const noexcept {
    return wan_peer_bytes_.load(std::memory_order_relaxed);
  }
  /// Pipelined bursts issued by batched cross-site peer fetches.
  std::uint64_t wan_peer_bursts() const noexcept {
    return wan_peer_bursts_.load(std::memory_order_relaxed);
  }
  /// Peer-satisfied fetches across the topology (both tiers).
  std::uint64_t peer_hits() const;
  /// Peer hits served by the site-local tier.
  std::uint64_t lan_peer_hits() const;
  /// Peer hits served by the cross-site tier.
  std::uint64_t wan_peer_hits() const;

  GearClient& node(std::size_t site, std::size_t node);
  /// The node's private clock (per-node: concurrent storms stay data-race
  /// free, and each node's elapsed time reads like a parallel wave).
  sim::SimClock& node_clock(std::size_t site, std::size_t node);

 private:
  struct Node {
    std::string id;
    std::size_t site = 0;
    std::unique_ptr<sim::SimClock> clock;
    std::unique_ptr<sim::NetworkLink> wan;
    std::unique_ptr<sim::NetworkLink> lan;
    std::unique_ptr<sim::DiskModel> disk;
    std::unique_ptr<GearClient> client;
    /// Down nodes (left or crashed) serve nobody; flipped from churn
    /// threads while fetchers read it.
    std::atomic<bool> down{false};
  };

  struct Site {
    PeerTracker tracker;
    std::vector<std::unique_ptr<Node>> nodes;
    /// Which *sites* advertise a fingerprint, as of the last gossip.
    /// Guarded: gossip writes race fetch-path reads under churn.
    mutable std::mutex adverts_mutex;
    std::map<Fingerprint, std::set<std::size_t>> remote_adverts;
  };

  Node& checked(std::size_t site, std::size_t node);
  /// Bytes a cross-site transfer of `fp` puts on the WAN. Peers recompress
  /// for the slow hop exactly like the registry stores it, so the charge is
  /// the registry's stored (compressed) size when known; LAN transfers stay
  /// uncompressed (the links are fast, the historical accounting keeps).
  std::uint64_t wan_wire_cost(const Fingerprint& fp,
                              std::uint64_t raw_size) const;
  /// Serving (non-down) node of `site` with this tracker id, or nullptr.
  Node* find_serving(std::size_t site, const std::string& node_id);
  /// Reads `fp` out of a peer's shared cache, tagging any failure with the
  /// peer's node id + the fingerprint. kNotFound = stale advertisement
  /// (recoverable: the caller degrades to the next holder).
  static StatusOr<Bytes> read_peer_cache(const Node& peer,
                                         const Fingerprint& fp);
  /// Announces a node's cache to its site tracker (+ eager gossip).
  void announce_node(Node& n);
  /// Replaces every site's view of `from`'s adverts with its current
  /// digest.
  void propagate_site_digest(std::size_t from);
  /// Sites advertising `fp` in `site`'s digest, in site order.
  std::vector<std::size_t> advertised_sites(std::size_t site,
                                            const Fingerprint& fp) const;

  std::optional<Bytes> fetch_local(Node& self, const Fingerprint& fp);
  std::optional<Bytes> fetch_cross_site(Node& self, const Fingerprint& fp);
  std::vector<std::optional<Bytes>> fetch_local_batch(
      Node& self,
      const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted);
  std::vector<std::optional<Bytes>> fetch_cross_site_batch(
      Node& self,
      const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted);

  Params params_;
  FileRegistryApi& file_registry_;
  std::size_t nodes_per_site_ = 0;
  std::vector<std::unique_ptr<Site>> sites_;
  std::atomic<std::uint64_t> lan_bytes_{0};
  std::atomic<std::uint64_t> lan_bursts_{0};
  std::atomic<std::uint64_t> wan_peer_bytes_{0};
  std::atomic<std::uint64_t> wan_peer_bursts_{0};
};

}  // namespace gear::p2p
