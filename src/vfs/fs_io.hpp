// Bridging file trees to the real filesystem.
//
// Lets the tooling (gearctl) import an actual directory as an image root
// and export a materialized image back to disk — the equivalent of
// `docker import` / `docker export` for the Gear pipeline.
#pragma once

#include <filesystem>

#include "vfs/file_tree.hpp"

namespace gear::vfs {

struct LoadOptions {
  /// Skip entries that are neither regular files, directories, nor
  /// symlinks (sockets, fifos, devices) instead of failing.
  bool skip_special = true;
  /// Upper bound on total bytes loaded; guards against importing huge
  /// trees by accident. 0 = unlimited.
  std::uint64_t max_total_bytes = 0;
};

/// Reads the directory at `root` into a FileTree. Symbolic links are kept
/// as links (not followed); permissions and mtimes are preserved.
/// Throws Error(kInvalidArgument/kOutOfSpace) on bad input or budget breach.
FileTree load_tree(const std::filesystem::path& root,
                   const LoadOptions& options = {});

/// Writes `tree` under the directory `root` (created if needed). Existing
/// contents are left in place; colliding paths are overwritten. Whiteouts
/// and fingerprint stubs are rejected — export materialized trees only.
void write_tree(const FileTree& tree, const std::filesystem::path& root);

}  // namespace gear::vfs
