#include "vfs/file_tree.hpp"

#include "util/error.hpp"

namespace gear::vfs {

void FileNode::set_content(Bytes content) {
  if (type_ != NodeType::kRegular) {
    throw_error(ErrorCode::kInvalidArgument, "set_content on non-regular node");
  }
  content_ = std::move(content);
}

void FileNode::set_link_target(std::string target) {
  if (type_ != NodeType::kSymlink) {
    throw_error(ErrorCode::kInvalidArgument,
                "set_link_target on non-symlink node");
  }
  link_target_ = std::move(target);
}

void FileNode::set_fingerprint(const Fingerprint& fp,
                               std::uint64_t original_size) {
  if (type_ != NodeType::kFingerprint) {
    throw_error(ErrorCode::kInvalidArgument,
                "set_fingerprint on non-stub node");
  }
  fingerprint_ = fp;
  stub_size_ = original_size;
}

FileNode* FileNode::child(std::string_view name) {
  auto it = children_.find(std::string(name));
  return it == children_.end() ? nullptr : it->second.get();
}

const FileNode* FileNode::child(std::string_view name) const {
  auto it = children_.find(std::string(name));
  return it == children_.end() ? nullptr : it->second.get();
}

FileNode& FileNode::add_child(std::string name,
                              std::unique_ptr<FileNode> node) {
  if (type_ != NodeType::kDirectory) {
    throw_error(ErrorCode::kInvalidArgument, "add_child on non-directory");
  }
  auto [it, inserted] = children_.insert_or_assign(std::move(name),
                                                   std::move(node));
  (void)inserted;
  return *it->second;
}

bool FileNode::remove_child(std::string_view name) {
  return children_.erase(std::string(name)) > 0;
}

std::unique_ptr<FileNode> FileNode::clone() const {
  auto copy = std::make_unique<FileNode>(type_);
  copy->meta_ = meta_;
  copy->content_ = content_;
  copy->link_target_ = link_target_;
  copy->fingerprint_ = fingerprint_;
  copy->stub_size_ = stub_size_;
  copy->opaque_ = opaque_;
  for (const auto& [name, child] : children_) {
    copy->children_.emplace(name, child->clone());
  }
  return copy;
}

bool FileNode::equals(const FileNode& other) const {
  if (type_ != other.type_ || !(meta_ == other.meta_) ||
      opaque_ != other.opaque_) {
    return false;
  }
  switch (type_) {
    case NodeType::kRegular:
      if (content_ != other.content_) return false;
      break;
    case NodeType::kSymlink:
      if (link_target_ != other.link_target_) return false;
      break;
    case NodeType::kFingerprint:
      if (fingerprint_ != other.fingerprint_ || stub_size_ != other.stub_size_)
        return false;
      break;
    case NodeType::kDirectory:
    case NodeType::kWhiteout:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  auto it = children_.begin();
  auto jt = other.children_.begin();
  for (; it != children_.end(); ++it, ++jt) {
    if (it->first != jt->first || !it->second->equals(*jt->second)) {
      return false;
    }
  }
  return true;
}

FileTree& FileTree::operator=(const FileTree& other) {
  if (this != &other) root_ = other.root_->clone();
  return *this;
}

std::vector<std::string> FileTree::split_path(std::string_view path) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view seg = path.substr(start, end - start);
    if (!seg.empty() && seg != ".") {
      if (seg == "..") {
        throw_error(ErrorCode::kInvalidArgument,
                    "path must not contain '..': " + std::string(path));
      }
      segments.emplace_back(seg);
    }
    start = end + 1;
  }
  if (segments.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "empty path");
  }
  return segments;
}

FileNode& FileTree::ensure_parent(const std::vector<std::string>& segments) {
  FileNode* node = root_.get();
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    FileNode* next = node->child(segments[i]);
    if (next == nullptr) {
      next = &node->add_child(segments[i],
                              std::make_unique<FileNode>(NodeType::kDirectory));
    } else if (!next->is_directory()) {
      throw_error(ErrorCode::kInvalidArgument,
                  "path component is not a directory: " + segments[i]);
    }
    node = next;
  }
  return *node;
}

FileNode& FileTree::add_file(std::string_view path, Bytes content,
                             const Metadata& meta) {
  auto segments = split_path(path);
  FileNode& parent = ensure_parent(segments);
  auto node = std::make_unique<FileNode>(NodeType::kRegular);
  node->metadata() = meta;
  node->set_content(std::move(content));
  return parent.add_child(segments.back(), std::move(node));
}

FileNode& FileTree::add_directory(std::string_view path, const Metadata& meta) {
  auto segments = split_path(path);
  FileNode& parent = ensure_parent(segments);
  if (FileNode* existing = parent.child(segments.back())) {
    if (!existing->is_directory()) {
      throw_error(ErrorCode::kAlreadyExists,
                  "non-directory already exists at " + std::string(path));
    }
    return *existing;
  }
  auto node = std::make_unique<FileNode>(NodeType::kDirectory);
  node->metadata() = meta;
  return parent.add_child(segments.back(), std::move(node));
}

FileNode& FileTree::add_symlink(std::string_view path, std::string target,
                                const Metadata& meta) {
  auto segments = split_path(path);
  FileNode& parent = ensure_parent(segments);
  auto node = std::make_unique<FileNode>(NodeType::kSymlink);
  node->metadata() = meta;
  node->set_link_target(std::move(target));
  return parent.add_child(segments.back(), std::move(node));
}

FileNode& FileTree::add_whiteout(std::string_view path) {
  auto segments = split_path(path);
  FileNode& parent = ensure_parent(segments);
  auto node = std::make_unique<FileNode>(NodeType::kWhiteout);
  return parent.add_child(segments.back(), std::move(node));
}

FileNode& FileTree::add_fingerprint_stub(std::string_view path,
                                         const Fingerprint& fp,
                                         std::uint64_t original_size,
                                         const Metadata& meta) {
  auto segments = split_path(path);
  FileNode& parent = ensure_parent(segments);
  auto node = std::make_unique<FileNode>(NodeType::kFingerprint);
  node->metadata() = meta;
  node->set_fingerprint(fp, original_size);
  return parent.add_child(segments.back(), std::move(node));
}

const FileNode* FileTree::lookup(std::string_view path) const {
  auto segments = split_path(path);
  const FileNode* node = root_.get();
  for (const auto& seg : segments) {
    if (!node->is_directory()) return nullptr;
    node = node->child(seg);
    if (node == nullptr) return nullptr;
  }
  return node;
}

FileNode* FileTree::lookup(std::string_view path) {
  return const_cast<FileNode*>(
      static_cast<const FileTree*>(this)->lookup(path));
}

bool FileTree::remove(std::string_view path) {
  auto segments = split_path(path);
  FileNode* node = root_.get();
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    node = node->child(segments[i]);
    if (node == nullptr || !node->is_directory()) return false;
  }
  return node->remove_child(segments.back());
}

namespace {

void walk_node(const std::string& prefix, const FileNode& node,
               const std::function<void(const std::string&, const FileNode&)>&
                   visitor) {
  for (const auto& [name, child] : node.children()) {
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    visitor(path, *child);
    if (child->is_directory()) walk_node(path, *child, visitor);
  }
}

}  // namespace

void FileTree::walk(
    const std::function<void(const std::string&, const FileNode&)>& visitor)
    const {
  walk_node("", *root_, visitor);
}

TreeStats FileTree::stats() const {
  TreeStats s;
  walk([&s](const std::string&, const FileNode& node) {
    switch (node.type()) {
      case NodeType::kRegular:
        ++s.regular_files;
        s.total_file_bytes += node.content().size();
        break;
      case NodeType::kDirectory:
        ++s.directories;
        break;
      case NodeType::kSymlink:
        ++s.symlinks;
        break;
      case NodeType::kWhiteout:
        ++s.whiteouts;
        break;
      case NodeType::kFingerprint:
        ++s.fingerprint_stubs;
        s.total_file_bytes += node.stub_size();
        break;
    }
  });
  return s;
}

}  // namespace gear::vfs
