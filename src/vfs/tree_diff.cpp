#include "vfs/tree_diff.hpp"

#include "util/error.hpp"

namespace gear::vfs {
namespace {

void check_merged_tree(const FileNode& node, const char* which) {
  if (node.is_whiteout()) {
    throw_error(ErrorCode::kInvalidArgument,
                std::string(which) + " tree contains whiteouts");
  }
  if (node.is_directory()) {
    if (node.opaque()) {
      throw_error(ErrorCode::kInvalidArgument,
                  std::string(which) + " tree contains opaque markers");
    }
    for (const auto& [name, child] : node.children()) {
      (void)name;
      check_merged_tree(*child, which);
    }
  }
}

/// Shallow (payload + metadata, not children) equality of two nodes.
bool same_entry(const FileNode& a, const FileNode& b) {
  if (a.type() != b.type() || !(a.metadata() == b.metadata())) return false;
  switch (a.type()) {
    case NodeType::kRegular:
      return a.content() == b.content();
    case NodeType::kSymlink:
      return a.link_target() == b.link_target();
    case NodeType::kFingerprint:
      return a.fingerprint() == b.fingerprint() &&
             a.stub_size() == b.stub_size();
    case NodeType::kDirectory:
    case NodeType::kWhiteout:
      return true;
  }
  return false;
}

/// Recursively diffs directory nodes `base` and `target`, appending entries
/// to `out` (a directory node in the layer tree). Returns true if `out`
/// received any child (i.e. the directories differ below this point).
bool diff_dir(const FileNode& base, const FileNode& target, FileNode& out) {
  bool changed = false;

  // Entries removed or replaced.
  for (const auto& [name, base_child] : base.children()) {
    const FileNode* target_child = target.child(name);
    if (target_child == nullptr) {
      out.add_child(name, std::make_unique<FileNode>(NodeType::kWhiteout));
      changed = true;
    }
  }

  // Entries added or modified.
  for (const auto& [name, target_child] : target.children()) {
    const FileNode* base_child = base.child(name);
    if (base_child == nullptr) {
      out.add_child(name, target_child->clone());
      changed = true;
      continue;
    }
    if (target_child->is_directory() && base_child->is_directory()) {
      auto sub = std::make_unique<FileNode>(NodeType::kDirectory);
      sub->metadata() = target_child->metadata();
      bool child_changed = diff_dir(*base_child, *target_child, *sub);
      bool meta_changed =
          !(base_child->metadata() == target_child->metadata());
      if (child_changed || meta_changed) {
        out.add_child(name, std::move(sub));
        changed = true;
      }
      continue;
    }
    if (target_child->is_directory()) {
      // Non-directory replaced by a directory: opaque dir masks the lower
      // entry entirely.
      auto clone = target_child->clone();
      clone->set_opaque(true);
      out.add_child(name, std::move(clone));
      changed = true;
      continue;
    }
    if (!same_entry(*base_child, *target_child)) {
      out.add_child(name, target_child->clone());
      changed = true;
    }
  }
  return changed;
}

void apply_dir(const FileNode& layer, FileNode& merged) {
  for (const auto& [name, layer_child] : layer.children()) {
    if (layer_child->is_whiteout()) {
      merged.remove_child(name);
      continue;
    }
    FileNode* existing = merged.child(name);
    if (layer_child->is_directory()) {
      if (existing != nullptr && existing->is_directory() &&
          !layer_child->opaque()) {
        existing->metadata() = layer_child->metadata();
        apply_dir(*layer_child, *existing);
        continue;
      }
      // Opaque, or lower entry is absent / not a directory: replace.
      auto clone = layer_child->clone();
      clone->set_opaque(false);
      merged.add_child(name, std::move(clone));
      continue;
    }
    merged.add_child(name, layer_child->clone());
  }
}

}  // namespace

FileTree diff_trees(const FileTree& base, const FileTree& target) {
  check_merged_tree(base.root(), "base");
  check_merged_tree(target.root(), "target");
  FileTree layer;
  layer.root().metadata() = target.root().metadata();
  diff_dir(base.root(), target.root(), layer.root());
  return layer;
}

FileTree apply_layer(const FileTree& base, const FileTree& layer) {
  FileTree merged(base);
  merged.root().metadata() = layer.root().metadata();
  apply_dir(layer.root(), merged.root());
  return merged;
}

FileTree flatten_layers(const std::vector<FileTree>& layers) {
  FileTree merged;
  for (const FileTree& layer : layers) {
    merged = apply_layer(merged, layer);
  }
  return merged;
}

}  // namespace gear::vfs
