// Layer diff and union-apply over file trees.
//
// These two operations are the heart of layered images (paper §II-A/§II-C):
//  * diff_trees(base, target) produces a *layer* — the minimal tree that,
//    unioned on top of `base`, reproduces `target`. Deletions become
//    whiteouts; a directory that replaces a non-directory (or whose lower
//    contents must be discarded) is marked opaque.
//  * apply_layer(base, layer) performs the union, i.e. what Overlay2 does
//    when it merges lowerdir + upperdir into one mount.
#pragma once

#include "vfs/file_tree.hpp"

namespace gear::vfs {

/// Computes the layer turning `base` into `target`.
/// Whiteout/opaque markers in `base`/`target` themselves are invalid input
/// (they only belong in layer trees) and throw kInvalidArgument.
FileTree diff_trees(const FileTree& base, const FileTree& target);

/// Applies `layer` on top of `base` and returns the merged tree.
/// The result contains no whiteouts or opaque flags.
FileTree apply_layer(const FileTree& base, const FileTree& layer);

/// Applies a sequence of layers bottom-to-top onto an empty tree.
FileTree flatten_layers(const std::vector<FileTree>& layers);

}  // namespace gear::vfs
