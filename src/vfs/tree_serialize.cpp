#include "vfs/tree_serialize.hpp"

#include <cstring>

#include "compress/codec.hpp"
#include "util/error.hpp"

namespace gear::vfs {
namespace {

constexpr char kMagic[4] = {'G', 'T', 'R', '1'};
constexpr std::uint8_t kMaxNodeType =
    static_cast<std::uint8_t>(NodeType::kFingerprint);

void put_string(Bytes& out, std::string_view s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(BytesView data, std::size_t& pos) {
  std::uint64_t len = get_varint(data, pos);
  if (pos + len > data.size()) {
    throw_error(ErrorCode::kCorruptData, "tree: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + pos), len);
  pos += len;
  return s;
}

void encode_node(Bytes& out, const FileNode& node) {
  out.push_back(static_cast<std::uint8_t>(node.type()));
  out.push_back(node.opaque() ? 1 : 0);
  put_varint(out, node.metadata().mode);
  put_varint(out, node.metadata().uid);
  put_varint(out, node.metadata().gid);
  put_varint(out, node.metadata().mtime);
  switch (node.type()) {
    case NodeType::kRegular:
      put_varint(out, node.content().size());
      append(out, node.content());
      break;
    case NodeType::kSymlink:
      put_string(out, node.link_target());
      break;
    case NodeType::kFingerprint:
      out.insert(out.end(), node.fingerprint().raw().begin(),
                 node.fingerprint().raw().end());
      put_varint(out, node.stub_size());
      break;
    case NodeType::kDirectory:
    case NodeType::kWhiteout:
      break;
  }
  if (node.is_directory()) {
    put_varint(out, node.children().size());
    for (const auto& [name, child] : node.children()) {
      put_string(out, name);
      encode_node(out, *child);
    }
  }
}

std::unique_ptr<FileNode> decode_node(BytesView data, std::size_t& pos,
                                      int depth) {
  // Depth guard: a crafted input must not blow the stack.
  if (depth > 512) {
    throw_error(ErrorCode::kCorruptData, "tree: nesting too deep");
  }
  if (pos + 2 > data.size()) {
    throw_error(ErrorCode::kCorruptData, "tree: truncated node header");
  }
  std::uint8_t type_byte = data[pos++];
  if (type_byte > kMaxNodeType) {
    throw_error(ErrorCode::kCorruptData, "tree: unknown node type");
  }
  auto node = std::make_unique<FileNode>(static_cast<NodeType>(type_byte));
  node->set_opaque(data[pos++] != 0);
  node->metadata().mode = static_cast<std::uint32_t>(get_varint(data, pos));
  node->metadata().uid = static_cast<std::uint32_t>(get_varint(data, pos));
  node->metadata().gid = static_cast<std::uint32_t>(get_varint(data, pos));
  node->metadata().mtime = get_varint(data, pos);

  switch (node->type()) {
    case NodeType::kRegular: {
      std::uint64_t len = get_varint(data, pos);
      if (pos + len > data.size()) {
        throw_error(ErrorCode::kCorruptData, "tree: truncated file content");
      }
      node->set_content(Bytes(data.begin() + pos, data.begin() + pos + len));
      pos += len;
      break;
    }
    case NodeType::kSymlink:
      node->set_link_target(get_string(data, pos));
      break;
    case NodeType::kFingerprint: {
      if (pos + Fingerprint::kSize > data.size()) {
        throw_error(ErrorCode::kCorruptData, "tree: truncated fingerprint");
      }
      std::array<std::uint8_t, Fingerprint::kSize> raw{};
      std::memcpy(raw.data(), data.data() + pos, raw.size());
      pos += raw.size();
      std::uint64_t size = get_varint(data, pos);
      node->set_fingerprint(Fingerprint(raw), size);
      break;
    }
    case NodeType::kDirectory:
    case NodeType::kWhiteout:
      break;
  }

  if (node->is_directory()) {
    std::uint64_t count = get_varint(data, pos);
    std::string prev_name;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string name = get_string(data, pos);
      if (name.empty() || name.find('/') != std::string::npos) {
        throw_error(ErrorCode::kCorruptData, "tree: invalid child name");
      }
      if (i > 0 && !(prev_name < name)) {
        throw_error(ErrorCode::kCorruptData, "tree: children out of order");
      }
      prev_name = name;
      node->add_child(std::move(name), decode_node(data, pos, depth + 1));
    }
  }
  return node;
}

}  // namespace

Bytes serialize_tree(const FileTree& tree) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  encode_node(out, tree.root());
  return out;
}

FileTree deserialize_tree(BytesView data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    throw_error(ErrorCode::kCorruptData, "tree: bad magic");
  }
  std::size_t pos = 4;
  auto root = decode_node(data, pos, 0);
  if (!root->is_directory()) {
    throw_error(ErrorCode::kCorruptData, "tree: root is not a directory");
  }
  if (pos != data.size()) {
    throw_error(ErrorCode::kCorruptData, "tree: trailing bytes");
  }
  FileTree tree;
  tree.root().metadata() = root->metadata();
  // Move the children into the tree's root.
  for (auto& [name, child] : const_cast<FileNode::ChildMap&>(root->children())) {
    tree.root().add_child(name, std::move(child));
  }
  return tree;
}

}  // namespace gear::vfs
