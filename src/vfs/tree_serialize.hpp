// Binary (de)serialization of file trees.
//
// A deterministic, compact encoding used for: the Gear index payload (the
// single file carried by the index's single-layer Docker image), layer diff
// trees inside tar archives' side metadata, and test round-trips. Children
// are emitted in name order, so equal trees always encode to equal bytes —
// which in turn makes digests of serialized trees stable.
#pragma once

#include "util/bytes.hpp"
#include "vfs/file_tree.hpp"

namespace gear::vfs {

/// Serializes a tree. The encoding is self-delimiting and versioned.
Bytes serialize_tree(const FileTree& tree);

/// Parses a serialized tree. Throws Error(kCorruptData) on malformed input.
FileTree deserialize_tree(BytesView data);

}  // namespace gear::vfs
