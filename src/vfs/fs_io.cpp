#include "vfs/fs_io.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/file_io.hpp"

namespace gear::vfs {
namespace fs = std::filesystem;

namespace {

Metadata metadata_of(const fs::path& p) {
  Metadata meta;
  std::error_code ec;
  fs::perms perms = fs::symlink_status(p, ec).permissions();
  if (!ec) {
    meta.mode = static_cast<std::uint32_t>(perms) & 07777;
  }
  auto mtime = fs::last_write_time(p, ec);
  if (!ec) {
    // file_clock's epoch is implementation-defined (clock_cast is missing
    // in this libstdc++); anchor against "now" on both clocks instead, and
    // clamp pre-1970 stamps to 0 (tar stores unsigned seconds).
    auto file_now = fs::file_time_type::clock::now();
    auto sys_now = std::chrono::system_clock::now();
    auto sys = sys_now + std::chrono::duration_cast<
                             std::chrono::system_clock::duration>(
                             mtime - file_now);
    auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                    sys.time_since_epoch())
                    .count();
    meta.mtime = secs > 0 ? static_cast<std::uint64_t>(secs) : 0;
  }
  return meta;
}

void load_dir(const fs::path& dir, const std::string& prefix, FileTree* tree,
              const LoadOptions& options, std::uint64_t* loaded_bytes) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    if (entry.is_symlink()) {
      tree->add_symlink(path, fs::read_symlink(entry.path()).string(),
                        metadata_of(entry.path()));
    } else if (entry.is_directory()) {
      tree->add_directory(path, metadata_of(entry.path()));
      load_dir(entry.path(), path, tree, options, loaded_bytes);
    } else if (entry.is_regular_file()) {
      *loaded_bytes += entry.file_size();
      if (options.max_total_bytes != 0 &&
          *loaded_bytes > options.max_total_bytes) {
        throw_error(ErrorCode::kOutOfSpace,
                    "import exceeds byte budget at " + path);
      }
      tree->add_file(path, read_file_bytes(entry.path()),
                     metadata_of(entry.path()));
    } else if (!options.skip_special) {
      throw_error(ErrorCode::kUnsupported,
                  "unsupported file type at " + path);
    }
  }
}

}  // namespace

FileTree load_tree(const fs::path& root, const LoadOptions& options) {
  if (!fs::is_directory(root)) {
    throw_error(ErrorCode::kInvalidArgument,
                "not a directory: " + root.string());
  }
  FileTree tree;
  std::uint64_t loaded = 0;
  load_dir(root, "", &tree, options, &loaded);
  return tree;
}

void write_tree(const FileTree& tree, const fs::path& root) {
  fs::create_directories(root);
  tree.walk([&root](const std::string& path, const FileNode& node) {
    fs::path target = root;
    for (const std::string& seg : FileTree::split_path(path)) target /= seg;
    switch (node.type()) {
      case NodeType::kDirectory:
        fs::create_directories(target);
        break;
      case NodeType::kRegular: {
        fs::create_directories(target.parent_path());
        std::ofstream out(target, std::ios::binary | std::ios::trunc);
        if (!out) {
          throw_error(ErrorCode::kInternal, "cannot write " + target.string());
        }
        out.write(reinterpret_cast<const char*>(node.content().data()),
                  static_cast<std::streamsize>(node.content().size()));
        break;
      }
      case NodeType::kSymlink: {
        fs::create_directories(target.parent_path());
        std::error_code ec;
        fs::remove(target, ec);
        fs::create_symlink(node.link_target(), target);
        break;
      }
      case NodeType::kWhiteout:
      case NodeType::kFingerprint:
        throw_error(ErrorCode::kInvalidArgument,
                    "cannot export unmaterialized node at " + path);
    }
  });
}

}  // namespace gear::vfs
