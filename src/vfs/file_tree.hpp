// In-memory filesystem tree.
//
// Models the root filesystem carried by container images: directories,
// regular files, symbolic links, whiteouts (layer-diff deletion markers, as
// in Overlay2), and — specific to Gear — fingerprint stubs, i.e. regular-file
// entries whose content has been replaced by the file's MD5 fingerprint
// (paper §III-B). Everything the Docker and Gear substrates store, diff,
// union-mount, or convert is one of these trees.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/fingerprint.hpp"

namespace gear::vfs {

enum class NodeType : std::uint8_t {
  kDirectory = 0,
  kRegular = 1,
  kSymlink = 2,
  kWhiteout = 3,     // deletion marker inside a layer diff
  kFingerprint = 4,  // Gear index stub: fingerprint + size in place of content
};

/// POSIX-ish metadata kept per node. Enough to make layer diffs and index
/// round-trips faithful; ownership/time fields participate in change
/// detection exactly as Overlay2's copy-up would see them.
struct Metadata {
  std::uint32_t mode = 0644;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t mtime = 0;

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

/// A single tree node. Directory children are name-ordered for deterministic
/// traversal, serialization, and digests.
class FileNode {
 public:
  using ChildMap = std::map<std::string, std::unique_ptr<FileNode>>;

  explicit FileNode(NodeType type) : type_(type) {}

  NodeType type() const noexcept { return type_; }
  bool is_directory() const noexcept { return type_ == NodeType::kDirectory; }
  bool is_regular() const noexcept { return type_ == NodeType::kRegular; }
  bool is_symlink() const noexcept { return type_ == NodeType::kSymlink; }
  bool is_whiteout() const noexcept { return type_ == NodeType::kWhiteout; }
  bool is_fingerprint() const noexcept {
    return type_ == NodeType::kFingerprint;
  }

  Metadata& metadata() noexcept { return meta_; }
  const Metadata& metadata() const noexcept { return meta_; }

  /// Regular-file content. Valid only for kRegular.
  const Bytes& content() const { return content_; }
  void set_content(Bytes content);

  /// Symlink target. Valid only for kSymlink.
  const std::string& link_target() const { return link_target_; }
  void set_link_target(std::string target);

  /// Fingerprint stub payload. Valid only for kFingerprint.
  const Fingerprint& fingerprint() const { return fingerprint_; }
  std::uint64_t stub_size() const { return stub_size_; }
  void set_fingerprint(const Fingerprint& fp, std::uint64_t original_size);

  /// Opaque flag (directories in layer-diff trees only): an opaque directory
  /// replaces the lower directory entirely instead of merging with it,
  /// exactly as Overlay2's "trusted.overlay.opaque" xattr.
  bool opaque() const noexcept { return opaque_; }
  void set_opaque(bool opaque) noexcept { opaque_ = opaque; }

  /// Children. Valid only for kDirectory.
  const ChildMap& children() const { return children_; }
  FileNode* child(std::string_view name);
  const FileNode* child(std::string_view name) const;
  FileNode& add_child(std::string name, std::unique_ptr<FileNode> node);
  bool remove_child(std::string_view name);

  /// Deep copy.
  std::unique_ptr<FileNode> clone() const;

  /// Deep structural equality (type, metadata, payload, children).
  bool equals(const FileNode& other) const;

 private:
  NodeType type_;
  Metadata meta_;
  Bytes content_;                    // kRegular
  std::string link_target_;          // kSymlink
  Fingerprint fingerprint_;          // kFingerprint
  std::uint64_t stub_size_ = 0;      // kFingerprint: original file size
  bool opaque_ = false;              // kDirectory, layer diffs only
  ChildMap children_;                // kDirectory
};

/// Aggregate statistics over a tree (directories excluded from byte counts).
struct TreeStats {
  std::uint64_t regular_files = 0;
  std::uint64_t directories = 0;  // excluding the root
  std::uint64_t symlinks = 0;
  std::uint64_t whiteouts = 0;
  std::uint64_t fingerprint_stubs = 0;
  std::uint64_t total_file_bytes = 0;  // regular content + stub sizes
};

/// A rooted filesystem tree with path-based operations.
///
/// Paths use '/' separators; leading slash optional; "." and empty segments
/// are ignored; ".." is rejected (images never legitimately contain it and
/// accepting it would let a crafted index escape the root).
class FileTree {
 public:
  FileTree() : root_(std::make_unique<FileNode>(NodeType::kDirectory)) {}
  FileTree(const FileTree& other) : root_(other.root_->clone()) {}
  FileTree& operator=(const FileTree& other);
  FileTree(FileTree&&) noexcept = default;
  FileTree& operator=(FileTree&&) noexcept = default;

  FileNode& root() noexcept { return *root_; }
  const FileNode& root() const noexcept { return *root_; }

  /// Splits and validates a path into segments.
  static std::vector<std::string> split_path(std::string_view path);

  /// Adds a regular file, creating parent directories as needed.
  /// Throws if a non-directory blocks the path.
  FileNode& add_file(std::string_view path, Bytes content,
                     const Metadata& meta = {});

  /// Adds (or returns an existing) directory.
  FileNode& add_directory(std::string_view path, const Metadata& meta = {});

  /// Adds a symbolic link.
  FileNode& add_symlink(std::string_view path, std::string target,
                        const Metadata& meta = {});

  /// Adds a whiteout (deletion marker) — only meaningful in layer-diff trees.
  FileNode& add_whiteout(std::string_view path);

  /// Adds a Gear fingerprint stub.
  FileNode& add_fingerprint_stub(std::string_view path, const Fingerprint& fp,
                                 std::uint64_t original_size,
                                 const Metadata& meta = {});

  /// Looks up a node; nullptr when absent.
  const FileNode* lookup(std::string_view path) const;
  FileNode* lookup(std::string_view path);

  bool exists(std::string_view path) const { return lookup(path) != nullptr; }

  /// Removes the node (and any subtree) at `path`. Returns false if absent.
  bool remove(std::string_view path);

  /// Pre-order traversal. The visitor receives the '/'-joined path (no
  /// leading slash) and the node; the root itself is not visited.
  void walk(const std::function<void(const std::string&, const FileNode&)>&
                visitor) const;

  /// Aggregate statistics.
  TreeStats stats() const;

  /// Deep equality.
  bool equals(const FileTree& other) const { return root_->equals(*other.root_); }

 private:
  FileNode& ensure_parent(const std::vector<std::string>& segments);

  std::unique_ptr<FileNode> root_;
};

}  // namespace gear::vfs
