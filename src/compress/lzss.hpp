// LZSS compression codec, implemented from scratch.
//
// The registries compress stored objects: Docker layers are stored as
// compressed tarballs, Gear files "can be further compressed for higher
// space efficiency" (paper §III-C). Any LZ-family codec preserves the
// *relative* compressibility the experiments depend on; this one uses a
// hash-chain match finder over a 64 KiB window with flag-byte token framing.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace gear {

/// Raw LZSS encode. Output is token stream only (no header); callers that
/// need framing use the Codec wrapper in codec.hpp.
Bytes lzss_compress(BytesView input);

/// Decodes a raw LZSS token stream produced by lzss_compress.
/// `decoded_size` must be the exact original size (carried by the framing).
/// Throws Error(kCorruptData) on malformed input.
Bytes lzss_decompress(BytesView input, std::size_t decoded_size);

}  // namespace gear
