#include "compress/lzss.hpp"

#include <array>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace gear {
namespace {

// Window and match parameters. Offsets are encoded in 16 bits and lengths in
// 8 bits (length - kMinMatch), giving matches of 4..259 bytes within the
// trailing 64 KiB.
constexpr std::size_t kWindowSize = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainProbes = 32;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes lzss_compress(BytesView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);

  // head[h]: most recent position with hash h; prev[i & mask]: previous
  // position in the same chain. Positions are offset by 1 so 0 means "none".
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> prev(kWindowSize, 0);

  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();

  std::size_t pos = 0;
  std::uint8_t flags = 0;
  int flag_count = 0;
  std::size_t flag_pos = 0;

  auto begin_group = [&] {
    flag_pos = out.size();
    out.push_back(0);
    flags = 0;
    flag_count = 0;
  };
  auto end_token = [&](bool is_match) {
    if (is_match) flags |= static_cast<std::uint8_t>(1u << flag_count);
    if (++flag_count == 8) {
      out[flag_pos] = flags;
      flag_count = 0;
      if (pos < n) begin_group();
    }
  };

  if (n > 0) begin_group();

  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kMinMatch <= n) {
      std::uint32_t h = hash4(data + pos);
      std::uint32_t candidate = head[h];
      int probes = kMaxChainProbes;
      while (candidate != 0 && probes-- > 0) {
        std::size_t cand_pos = candidate - 1;
        if (pos - cand_pos > kWindowSize - 1) break;
        std::size_t len = 0;
        std::size_t max_len = std::min(kMaxMatch, n - pos);
        while (len < max_len && data[cand_pos + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cand_pos;
          if (len == max_len) break;
        }
        candidate = prev[cand_pos & (kWindowSize - 1)];
      }
    }

    if (best_len >= kMinMatch) {
      // Match token: 2-byte distance (little endian), 1-byte (len - min).
      out.push_back(static_cast<std::uint8_t>(best_dist));
      out.push_back(static_cast<std::uint8_t>(best_dist >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      end_token(true);
      // Insert the covered positions into the hash chains.
      std::size_t end = pos + best_len;
      for (; pos < end && pos + kMinMatch <= n; ++pos) {
        std::uint32_t h = hash4(data + pos);
        prev[pos & (kWindowSize - 1)] = head[h];
        head[h] = static_cast<std::uint32_t>(pos + 1);
      }
      pos = end;
    } else {
      out.push_back(data[pos]);
      end_token(false);
      if (pos + kMinMatch <= n) {
        std::uint32_t h = hash4(data + pos);
        prev[pos & (kWindowSize - 1)] = head[h];
        head[h] = static_cast<std::uint32_t>(pos + 1);
      }
      ++pos;
    }
  }
  if (n > 0 && flag_count > 0) out[flag_pos] = flags;
  return out;
}

Bytes lzss_decompress(BytesView input, std::size_t decoded_size) {
  Bytes out;
  out.reserve(decoded_size);

  std::size_t pos = 0;
  while (out.size() < decoded_size) {
    if (pos >= input.size()) {
      throw_error(ErrorCode::kCorruptData, "lzss: truncated stream");
    }
    std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && out.size() < decoded_size; ++bit) {
      if (flags & (1u << bit)) {
        if (pos + 3 > input.size()) {
          throw_error(ErrorCode::kCorruptData, "lzss: truncated match token");
        }
        std::size_t dist = input[pos] | (static_cast<std::size_t>(input[pos + 1]) << 8);
        std::size_t len = kMinMatch + input[pos + 2];
        pos += 3;
        if (dist == 0 || dist > out.size()) {
          throw_error(ErrorCode::kCorruptData, "lzss: bad match distance");
        }
        if (out.size() + len > decoded_size) {
          throw_error(ErrorCode::kCorruptData, "lzss: match overruns output");
        }
        std::size_t src = out.size() - dist;
        // Byte-by-byte copy: overlapping matches (dist < len) replicate runs.
        for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
      } else {
        if (pos >= input.size()) {
          throw_error(ErrorCode::kCorruptData, "lzss: truncated literal");
        }
        out.push_back(input[pos++]);
      }
    }
  }
  return out;
}

}  // namespace gear
