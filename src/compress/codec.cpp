#include "compress/codec.hpp"

#include <cstring>

#include "compress/lzss.hpp"
#include "util/error.hpp"

namespace gear {
namespace {

constexpr char kMagic[4] = {'G', 'Z', 'C', '1'};

struct FrameHeader {
  CompressionMethod method;
  std::uint64_t orig_size;
  std::size_t payload_offset;
};

FrameHeader parse_header(BytesView frame) {
  if (frame.size() < 5 || std::memcmp(frame.data(), kMagic, 4) != 0) {
    throw_error(ErrorCode::kCorruptData, "compress: bad frame magic");
  }
  auto method = static_cast<CompressionMethod>(frame[4]);
  if (method != CompressionMethod::kStored &&
      method != CompressionMethod::kLzss) {
    throw_error(ErrorCode::kCorruptData, "compress: unknown method");
  }
  std::size_t pos = 5;
  std::uint64_t orig = get_varint(frame, pos);
  return {method, orig, pos};
}

}  // namespace

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(BytesView data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= data.size() || shift > 63) {
      throw_error(ErrorCode::kCorruptData, "varint: truncated or oversized");
    }
    std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Bytes compress(BytesView input) {
  Bytes packed = lzss_compress(input);
  CompressionMethod method = CompressionMethod::kLzss;
  if (packed.size() >= input.size()) {
    packed.assign(input.begin(), input.end());
    method = CompressionMethod::kStored;
  }

  Bytes frame;
  frame.reserve(packed.size() + 16);
  frame.insert(frame.end(), kMagic, kMagic + 4);
  frame.push_back(static_cast<std::uint8_t>(method));
  put_varint(frame, input.size());
  append(frame, packed);
  return frame;
}

Bytes decompress(BytesView frame) {
  FrameHeader h = parse_header(frame);
  BytesView payload = frame.subspan(h.payload_offset);
  if (h.method == CompressionMethod::kStored) {
    if (payload.size() != h.orig_size) {
      throw_error(ErrorCode::kCorruptData, "compress: stored size mismatch");
    }
    return Bytes(payload.begin(), payload.end());
  }
  return lzss_decompress(payload, h.orig_size);
}

std::uint64_t compressed_frame_original_size(BytesView frame) {
  return parse_header(frame).orig_size;
}

CompressionMethod compressed_frame_method(BytesView frame) {
  return parse_header(frame).method;
}

}  // namespace gear
