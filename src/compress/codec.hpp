// Self-describing compressed container format.
//
// Frame layout:
//   magic  "GZC1"           (4 bytes)
//   method u8                (0 = stored, 1 = lzss)
//   orig_size varint
//   payload
//
// compress() falls back to "stored" whenever LZSS fails to shrink the input,
// so incompressible data (already-compressed Gear files, random content)
// never grows by more than the 6..14 byte header.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace gear {

enum class CompressionMethod : std::uint8_t {
  kStored = 0,
  kLzss = 1,
};

/// Compresses `input`, choosing kStored when LZSS does not help.
Bytes compress(BytesView input);

/// Decompresses a frame produced by compress().
/// Throws Error(kCorruptData) on bad magic/method/payload.
Bytes decompress(BytesView frame);

/// Reads the original (decompressed) size from a frame without decoding it.
std::uint64_t compressed_frame_original_size(BytesView frame);

/// Method recorded in the frame header.
CompressionMethod compressed_frame_method(BytesView frame);

/// Varint helpers shared with other serializers (LEB128, unsigned).
void put_varint(Bytes& out, std::uint64_t v);
std::uint64_t get_varint(BytesView data, std::size_t& pos);

}  // namespace gear
