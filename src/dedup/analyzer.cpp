#include "dedup/analyzer.hpp"

#include "compress/codec.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace gear::dedup {

DedupAnalyzer::DedupAnalyzer(std::uint64_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  if (chunk_bytes == 0) {
    throw_error(ErrorCode::kInvalidArgument, "chunk size must be positive");
  }
}

void DedupAnalyzer::add_image(const docker::Image& image) {
  // No dedup: the unpacked image stored whole; one object per image.
  none_.storage_bytes += image.uncompressed_size();
  none_.object_count += 1;

  for (const docker::Layer& layer : image.layers) {
    if (!seen_layers_.insert(layer.digest()).second) {
      continue;  // duplicate layer: both layer- and chunk-level skip it
    }
    // Layer-level: store the unique compressed tarball.
    layer_.storage_bytes += layer.compressed_size();
    layer_.object_count += 1;

    // Chunk-level: fixed-size chunks of the *unpacked* layer stream,
    // deduplicated globally and compressed individually.
    Bytes tarball = decompress(layer.blob());
    for (std::size_t off = 0; off < tarball.size(); off += chunk_bytes_) {
      std::size_t len = std::min<std::size_t>(chunk_bytes_,
                                              tarball.size() - off);
      BytesView chunk(tarball.data() + off, len);
      Fingerprint fp{Md5::hash(chunk)};
      if (!seen_chunks_.insert(fp).second) continue;
      chunk_.storage_bytes += compress(chunk).size();
      chunk_.object_count += 1;
    }
  }

  // File-level: unique files across the flattened image, compressed
  // individually (what the Gear registry stores).
  vfs::FileTree root = image.flatten();
  root.walk([this](const std::string& path, const vfs::FileNode& node) {
    (void)path;
    if (!node.is_regular()) return;
    Fingerprint fp{Md5::hash(node.content())};
    if (!seen_files_.insert(fp).second) return;
    file_.storage_bytes += compress(node.content()).size();
    file_.object_count += 1;
  });
}

}  // namespace gear::dedup
