// Deduplication-granularity analysis (paper Table II).
//
// Measures registry storage usage and unique-object counts under the four
// schemes the paper compares on the 971-image corpus:
//  * none        — unpacked images stored whole;
//  * layer-level — unique compressed layer tarballs (what Docker does);
//  * file-level  — unique files, individually compressed (what Gear does);
//  * chunk-level — fixed-size chunks of the unpacked layer streams,
//                  individually compressed.
//
// Accumulator-style: feed images one at a time so the whole corpus never
// has to be resident at once.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "docker/image.hpp"
#include "util/fingerprint.hpp"

namespace gear::dedup {

struct DedupReport {
  std::uint64_t storage_bytes = 0;
  std::uint64_t object_count = 0;
};

class DedupAnalyzer {
 public:
  /// `chunk_bytes`: the fixed chunk size for chunk-level analysis. The paper
  /// uses 128 KB at full corpus scale; scaled-down corpora should scale the
  /// chunk size accordingly to preserve the chunk:file ratio.
  explicit DedupAnalyzer(std::uint64_t chunk_bytes = 128 * 1024);

  void add_image(const docker::Image& image);

  DedupReport none() const { return none_; }
  DedupReport layer_level() const { return layer_; }
  DedupReport file_level() const { return file_; }
  DedupReport chunk_level() const { return chunk_; }

  std::uint64_t chunk_bytes() const noexcept { return chunk_bytes_; }

 private:
  std::uint64_t chunk_bytes_;
  DedupReport none_;
  DedupReport layer_;
  DedupReport file_;
  DedupReport chunk_;
  std::unordered_set<docker::Digest, docker::DigestHash> seen_layers_;
  std::unordered_set<Fingerprint, FingerprintHash> seen_files_;
  std::unordered_set<Fingerprint, FingerprintHash> seen_chunks_;
};

}  // namespace gear::dedup
