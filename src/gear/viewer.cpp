#include "gear/viewer.hpp"

#include <set>

#include "util/error.hpp"

namespace gear {

GearFileViewer::GearFileViewer(vfs::FileTree& index, vfs::FileTree& diff,
                               Materializer materializer,
                               std::mutex* tree_lock)
    : index_(index),
      diff_(diff),
      materializer_(std::move(materializer)),
      tree_lock_(tree_lock) {
  if (!materializer_) {
    throw_error(ErrorCode::kInvalidArgument, "viewer: null materializer");
  }
}

namespace {
/// Optionally-engaged lock: engaged when the viewer has a tree lock,
/// default-constructed (no-op) otherwise.
std::unique_lock<std::mutex> maybe_lock(std::mutex* m) {
  return m != nullptr ? std::unique_lock<std::mutex>(*m)
                      : std::unique_lock<std::mutex>();
}
}  // namespace

GearFileViewer::ResolvedPair GearFileViewer::resolve_pair(
    const std::vector<std::string>& segments) const {
  const vfs::FileNode* diff_dir = &diff_.root();
  const vfs::FileNode* index_dir = &index_.root();

  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string& seg = segments[i];
    const vfs::FileNode* d = diff_dir ? diff_dir->child(seg) : nullptr;
    const vfs::FileNode* x = index_dir ? index_dir->child(seg) : nullptr;
    if (d != nullptr) {
      if (!d->is_directory()) return {};  // whiteout or file masks below
      diff_dir = d;
      // An opaque diff directory (or a non-directory on the index side)
      // masks the index from here down.
      index_dir = (d->opaque() || x == nullptr || !x->is_directory()) ? nullptr
                                                                      : x;
    } else {
      if (x == nullptr || !x->is_directory()) return {};
      diff_dir = nullptr;
      index_dir = x;
    }
  }

  const std::string& last = segments.back();
  ResolvedPair pair;
  const vfs::FileNode* d = diff_dir ? diff_dir->child(last) : nullptr;
  if (d != nullptr && d->is_whiteout()) {
    pair.whiteout = true;  // masks the index entry too
    return pair;
  }
  pair.diff_node = d;
  const vfs::FileNode* x = index_dir ? index_dir->child(last) : nullptr;
  // A non-directory diff entry masks the index entry; merged directories
  // keep both sides visible.
  if (d == nullptr || (d->is_directory() && !d->opaque())) {
    pair.index_node = x;
  }
  return pair;
}

const vfs::FileNode* GearFileViewer::resolve(std::string_view path,
                                             bool* from_diff) const {
  ResolvedPair pair = resolve_pair(vfs::FileTree::split_path(path));
  if (pair.diff_node != nullptr) {
    if (from_diff != nullptr) *from_diff = true;
    return pair.diff_node;
  }
  if (pair.index_node != nullptr && from_diff != nullptr) *from_diff = false;
  return pair.index_node;
}

StatusOr<Bytes> GearFileViewer::read_file(std::string_view path) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  Fingerprint fp;
  std::uint64_t size = 0;
  {
    // Resolution (and, for materialized files, the content copy) happens
    // under the tree lock; a concurrent fault may replace sibling stubs —
    // or this very node — while we look.
    std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
    bool from_diff = false;
    const vfs::FileNode* node = resolve(path, &from_diff);
    if (node == nullptr) {
      return {ErrorCode::kNotFound, "no such file: " + std::string(path)};
    }
    if (node->is_regular()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return node->content();
    }
    if (!node->is_fingerprint()) {
      return {ErrorCode::kInvalidArgument,
              "not a regular file: " + std::string(path)};
    }
    if (from_diff) {
      return {ErrorCode::kCorruptData,
              "stub in writable layer: " + std::string(path)};
    }
    fp = node->fingerprint();
    size = node->stub_size();
  }

  // ovl_lookup_single() hit a fingerprint file: pause, make the target file
  // readable (cache hard-link or registry download), then resume. The tree
  // lock is NOT held here — concurrent faults of different files download
  // in parallel; same-fingerprint races coalesce in the materializer's
  // singleflight layer.
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (fault_hook_) fault_hook_(std::string(path), fp, size);
  Bytes content = materializer_(std::string(path), fp, size);
  if (content.size() != size) {
    throw_error(ErrorCode::kCorruptData,
                "materialized size mismatch for " + std::string(path));
  }

  // Replace the stub in the index with the materialized file (the model of
  // hard-linking the Gear file into the index directory). Later lookups —
  // from any container of this image — see a plain regular file. Another
  // reader may have replaced it while we fetched; its content is ours
  // (same fingerprint), so losing that race just skips the swap.
  std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
  vfs::FileNode* index_node = index_.lookup(path);
  if (index_node == nullptr) {
    throw_error(ErrorCode::kInternal,
                "index stub vanished during materialization: " +
                    std::string(path));
  }
  if (index_node->is_fingerprint()) {
    auto segments = vfs::FileTree::split_path(path);
    vfs::FileNode* parent = &index_.root();
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      parent = parent->child(segments[i]);
    }
    auto regular = std::make_unique<vfs::FileNode>(vfs::NodeType::kRegular);
    regular->metadata() = index_node->metadata();
    regular->set_content(content);
    parent->add_child(segments.back(), std::move(regular));
    materialized_.fetch_add(1, std::memory_order_relaxed);
  }
  return content;
}

StatusOr<std::string> GearFileViewer::read_symlink(
    std::string_view path) const {
  std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
  const vfs::FileNode* node = resolve(path, nullptr);
  if (node == nullptr) {
    return {ErrorCode::kNotFound, "no such link: " + std::string(path)};
  }
  if (!node->is_symlink()) {
    return {ErrorCode::kInvalidArgument, "not a symlink: " + std::string(path)};
  }
  return node->link_target();
}

bool GearFileViewer::exists(std::string_view path) const {
  std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
  return resolve(path, nullptr) != nullptr;
}

StatusOr<std::uint64_t> GearFileViewer::stat_size(
    std::string_view path) const {
  std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
  const vfs::FileNode* node = resolve(path, nullptr);
  if (node == nullptr) {
    return {ErrorCode::kNotFound, "no such file: " + std::string(path)};
  }
  if (node->is_regular()) return node->content().size();
  if (node->is_fingerprint()) return node->stub_size();
  return {ErrorCode::kInvalidArgument,
          "not a regular file: " + std::string(path)};
}

std::vector<std::string> GearFileViewer::list_dir(
    std::string_view path) const {
  std::unique_lock<std::mutex> lock = maybe_lock(tree_lock_);
  const vfs::FileNode* diff_dir = nullptr;
  const vfs::FileNode* index_dir = nullptr;
  if (path.empty() || path == "/" || path == ".") {
    diff_dir = &diff_.root();
    index_dir = &index_.root();
  } else {
    ResolvedPair pair = resolve_pair(vfs::FileTree::split_path(path));
    const vfs::FileNode* node =
        pair.diff_node != nullptr ? pair.diff_node : pair.index_node;
    if (node == nullptr || !node->is_directory()) {
      throw_error(ErrorCode::kNotFound,
                  "not a directory: " + std::string(path));
    }
    diff_dir = pair.diff_node;
    index_dir = (pair.index_node != nullptr && pair.index_node->is_directory())
                    ? pair.index_node
                    : nullptr;
  }

  std::set<std::string> names;
  std::set<std::string> hidden;
  if (diff_dir != nullptr) {
    for (const auto& [name, child] : diff_dir->children()) {
      if (child->is_whiteout()) {
        hidden.insert(name);
      } else {
        names.insert(name);
      }
    }
  }
  if (index_dir != nullptr) {
    for (const auto& [name, child] : index_dir->children()) {
      (void)child;
      if (hidden.count(name) == 0) names.insert(name);
    }
  }
  return {names.begin(), names.end()};
}

vfs::FileNode& GearFileViewer::ensure_diff_parent(
    const std::vector<std::string>& segments) {
  vfs::FileNode* node = &diff_.root();
  const vfs::FileNode* index_dir = &index_.root();
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string& seg = segments[i];
    const vfs::FileNode* x = index_dir ? index_dir->child(seg) : nullptr;
    vfs::FileNode* d = node->child(seg);
    if (d == nullptr) {
      // The union must allow a directory here.
      if (x != nullptr && !x->is_directory()) {
        throw_error(ErrorCode::kInvalidArgument,
                    "path component is not a directory: " + seg);
      }
      auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
      if (x != nullptr) dir->metadata() = x->metadata();  // copy-up
      d = &node->add_child(seg, std::move(dir));
    } else if (d->is_whiteout()) {
      auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
      dir->set_opaque(true);
      d = &node->add_child(seg, std::move(dir));
    } else if (!d->is_directory()) {
      throw_error(ErrorCode::kInvalidArgument,
                  "path component is not a directory: " + seg);
    }
    index_dir = (d->opaque() || x == nullptr || !x->is_directory())
                    ? nullptr
                    : x;
    node = d;
  }
  return *node;
}

void GearFileViewer::write_file(std::string_view path, Bytes content,
                                const vfs::Metadata& meta) {
  auto segments = vfs::FileTree::split_path(path);
  vfs::FileNode& parent = ensure_diff_parent(segments);
  auto file = std::make_unique<vfs::FileNode>(vfs::NodeType::kRegular);
  file->metadata() = meta;
  file->set_content(std::move(content));
  parent.add_child(segments.back(), std::move(file));
}

void GearFileViewer::make_dir(std::string_view path,
                              const vfs::Metadata& meta) {
  auto segments = vfs::FileTree::split_path(path);
  vfs::FileNode& parent = ensure_diff_parent(segments);
  vfs::FileNode* existing = parent.child(segments.back());
  if (existing != nullptr && existing->is_whiteout()) {
    auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
    dir->set_opaque(true);
    dir->metadata() = meta;
    parent.add_child(segments.back(), std::move(dir));
    return;
  }
  if (existing != nullptr && !existing->is_directory()) {
    throw_error(ErrorCode::kAlreadyExists,
                "non-directory exists at " + std::string(path));
  }
  if (existing == nullptr) {
    auto dir = std::make_unique<vfs::FileNode>(vfs::NodeType::kDirectory);
    dir->metadata() = meta;
    parent.add_child(segments.back(), std::move(dir));
  }
}

bool GearFileViewer::remove(std::string_view path) {
  if (!exists(path)) return false;
  diff_.remove(path);
  // If the index still shows the path through the union, mask it.
  if (resolve(path, nullptr) != nullptr) {
    auto segments = vfs::FileTree::split_path(path);
    vfs::FileNode& parent = ensure_diff_parent(segments);
    parent.add_child(segments.back(),
                     std::make_unique<vfs::FileNode>(vfs::NodeType::kWhiteout));
  }
  return true;
}

}  // namespace gear
