// Gear Converter: turns a layered Docker image into a Gear image.
//
// Runs registry-side, once per image (paper §III-B): decompress the image's
// layers bottom-to-top, replay them into the full root filesystem (applying
// whiteouts), then walk the tree building the Gear index and the set of
// unique Gear files. The index is packaged as a single-layer Docker image
// carrying the original image's config (env/entrypoint), so Docker tooling
// stores and distributes it unchanged (paper §III-C).
//
// Collision handling (paper §III-B): when two different contents map to the
// same fingerprint — impossible in practice with MD5, but exercised in tests
// via a truncated hasher — the converter detects it by content comparison
// and assigns the newcomer a salted unique fingerprint, disabling dedup for
// that file only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "docker/image.hpp"
#include "gear/index.hpp"
#include "sim/disk.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace gear {

struct ConversionStats {
  std::size_t files_seen = 0;       // regular files in the root fs
  std::size_t files_unique = 0;     // distinct Gear files produced
  std::size_t collisions = 0;       // salted unique IDs assigned
  std::uint64_t bytes_seen = 0;     // logical file bytes
  std::uint64_t index_wire_bytes = 0;  // compressed index layer size
};

struct ConversionResult {
  GearImage image;
  ConversionStats stats;
};

class GearConverter {
 public:
  /// `existing_lookup` resolves a fingerprint to content already stored in
  /// the Gear registry, letting conversion detect collisions against files
  /// from previously converted images; pass nullptr to check only within
  /// the image being converted.
  explicit GearConverter(
      const FingerprintHasher& hasher = default_hasher(),
      std::function<std::optional<Bytes>(const Fingerprint&)> existing_lookup =
          nullptr);

  /// Converts `image`. The index image is named "<name>:<tag>" with the
  /// original config copied over; its manifest is distinguishable from a
  /// classic image by the "gear.index" label.
  ConversionResult convert(const docker::Image& image) const;

  /// Converts while charging the work to a disk model: reading the
  /// compressed layers, writing back the unpacked tree, reading it for the
  /// walk, and writing unique Gear files + the index (Fig. 6's cost).
  /// Returns the simulated seconds taken alongside the result.
  ConversionResult convert_timed(const docker::Image& image,
                                 sim::DiskModel& disk,
                                 double* seconds_out) const;

  /// Sets the worker budget for convert(): per-file fingerprinting fans out
  /// across a pool of `resolved_workers()` threads; collision resolution and
  /// stats stay an ordered single-threaded reduce, so the result (index,
  /// stats, file set, salted IDs) is byte-identical at any width.
  /// A converter is not itself thread-safe: call convert() from one thread.
  void set_concurrency(const util::Concurrency& concurrency) {
    concurrency_ = concurrency;
    pool_.reset();
  }
  const util::Concurrency& concurrency() const noexcept { return concurrency_; }

  /// Resolves the fingerprint for `content`: normally hasher(content), but
  /// salted to a unique value when a different content already owns that
  /// fingerprint. `local` is the in-conversion map of assigned fingerprints.
  /// `precomputed` (optional) supplies hasher(content) when the caller has
  /// already fingerprinted the content (the parallel pre-pass).
  Fingerprint resolve_fingerprint(
      const Bytes& content,
      const std::unordered_map<Fingerprint, const Bytes*, FingerprintHash>&
          local,
      bool* collided, const Fingerprint* precomputed = nullptr) const;

 private:
  util::ThreadPool& pool() const;

  const FingerprintHasher& hasher_;
  std::function<std::optional<Bytes>(const Fingerprint&)> existing_lookup_;
  util::Concurrency concurrency_;
  mutable std::unique_ptr<util::ThreadPool> pool_;  // lazily built
};

/// Marker label the converter writes into index-image manifests.
inline constexpr const char* kGearIndexLabel = "gear.index";

}  // namespace gear
