#include "gear/registry_api.hpp"

#include <algorithm>
#include <string>

namespace gear {

std::vector<std::uint8_t> FileRegistryApi::query_many(
    const std::vector<Fingerprint>& fps) const {
  std::vector<std::uint8_t> out(fps.size(), 0);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    out[i] = query(fps[i]) ? 1 : 0;
  }
  return out;
}

std::size_t FileRegistryApi::upload_precompressed_batch(
    std::vector<std::pair<Fingerprint, Bytes>> items) {
  std::size_t stored = 0;
  for (auto& [fp, compressed] : items) {
    if (upload_precompressed(fp, std::move(compressed))) ++stored;
  }
  return stored;
}

StatusOr<Bytes> FileRegistryApi::download_compressed(
    const Fingerprint& fp) const {
  return {ErrorCode::kUnsupported,
          "download_compressed: backend does not expose stored frames for " +
              fp.hex()};
}

StatusOr<Bytes> FileRegistryApi::download_chunk_compressed(
    const Fingerprint& chunk_fp) const {
  return {ErrorCode::kUnsupported,
          "download_chunk_compressed: backend does not expose stored frames "
          "for " +
              chunk_fp.hex()};
}

bool FileRegistryApi::upload_chunked(const Fingerprint& fp, BytesView content,
                                     const ChunkPolicy& policy,
                                     const FingerprintHasher& hasher) {
  (void)policy;
  (void)hasher;
  return upload(fp, content);
}

StatusOr<Bytes> FileRegistryApi::download_range(
    const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
    std::uint64_t* wire_bytes_out) const {
  StatusOr<Bytes> whole = download(fp);
  if (!whole.ok()) return whole;
  if (length == 0 || offset + length > whole->size()) {
    return {ErrorCode::kInvalidArgument, "range out of bounds"};
  }
  if (wire_bytes_out != nullptr) {
    StatusOr<std::uint64_t> wire = stored_size(fp);
    *wire_bytes_out = wire.ok() ? *wire : whole->size();
  }
  return Bytes(whole->begin() + static_cast<std::ptrdiff_t>(offset),
               whole->begin() + static_cast<std::ptrdiff_t>(offset + length));
}

StatusOr<std::vector<Bytes>> FileRegistryApi::download_chunks(
    const Fingerprint& fp, const ChunkManifest& manifest,
    const std::vector<std::uint32_t>& indices,
    std::uint64_t* wire_bytes_out) const {
  std::vector<Bytes> out(indices.size());
  std::uint64_t wire = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::uint32_t index = indices[i];
    if (index >= manifest.chunks.size()) {
      return {ErrorCode::kInvalidArgument,
              "download_chunks: chunk index " + std::to_string(index) +
                  " out of range for " + fp.hex()};
    }
    std::uint64_t chunk_off =
        static_cast<std::uint64_t>(index) * manifest.chunk_bytes;
    std::uint64_t chunk_len =
        std::min<std::uint64_t>(manifest.chunk_bytes,
                                manifest.file_size - chunk_off);
    std::uint64_t chunk_wire = 0;
    StatusOr<Bytes> chunk = download_range(fp, chunk_off, chunk_len,
                                           &chunk_wire);
    if (!chunk.ok()) {
      return {chunk.code(),
              "download_chunks: chunk " + std::to_string(index) + " of " +
                  fp.hex() + ": " + chunk.message()};
    }
    wire += chunk_wire;
    out[i] = std::move(chunk).value();
  }
  if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
  return out;
}

bool FileRegistryApi::is_chunked(const Fingerprint& fp) const {
  (void)fp;
  return false;
}

StatusOr<ChunkManifest> FileRegistryApi::chunk_manifest(
    const Fingerprint& fp) const {
  return {ErrorCode::kNotFound, "no chunk manifest for " + fp.hex()};
}

bool FileRegistryApi::transport_accounted() const { return false; }

}  // namespace gear
