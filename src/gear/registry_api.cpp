#include "gear/registry_api.hpp"

namespace gear {

std::vector<std::uint8_t> FileRegistryApi::query_many(
    const std::vector<Fingerprint>& fps) const {
  std::vector<std::uint8_t> out(fps.size(), 0);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    out[i] = query(fps[i]) ? 1 : 0;
  }
  return out;
}

std::size_t FileRegistryApi::upload_precompressed_batch(
    std::vector<std::pair<Fingerprint, Bytes>> items) {
  std::size_t stored = 0;
  for (auto& [fp, compressed] : items) {
    if (upload_precompressed(fp, std::move(compressed))) ++stored;
  }
  return stored;
}

bool FileRegistryApi::upload_chunked(const Fingerprint& fp, BytesView content,
                                     const ChunkPolicy& policy,
                                     const FingerprintHasher& hasher) {
  (void)policy;
  (void)hasher;
  return upload(fp, content);
}

StatusOr<Bytes> FileRegistryApi::download_range(
    const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
    std::uint64_t* wire_bytes_out) const {
  StatusOr<Bytes> whole = download(fp);
  if (!whole.ok()) return whole;
  if (length == 0 || offset + length > whole->size()) {
    return {ErrorCode::kInvalidArgument, "range out of bounds"};
  }
  if (wire_bytes_out != nullptr) {
    StatusOr<std::uint64_t> wire = stored_size(fp);
    *wire_bytes_out = wire.ok() ? *wire : whole->size();
  }
  return Bytes(whole->begin() + static_cast<std::ptrdiff_t>(offset),
               whole->begin() + static_cast<std::ptrdiff_t>(offset + length));
}

bool FileRegistryApi::is_chunked(const Fingerprint& fp) const {
  (void)fp;
  return false;
}

StatusOr<ChunkManifest> FileRegistryApi::chunk_manifest(
    const Fingerprint& fp) const {
  return {ErrorCode::kNotFound, "no chunk manifest for " + fp.hex()};
}

bool FileRegistryApi::transport_accounted() const { return false; }

}  // namespace gear
