// Object-store backends: the storage engine beneath GearRegistry.
//
// The registry's query/upload/download surface (the paper's three HTTP
// interfaces, §III-C) is policy — dedup upserts, chunk reassembly, stats.
// Where the bytes actually live is mechanism, and this interface makes that
// mechanism pluggable, mirroring the paper's MinIO-backed file server (§IV):
//
//   * MemoryObjectStore — the historical in-process map, now sharded so
//     independent fingerprints never contend on one lock;
//   * DiskObjectStore   — a durable content-addressed directory using the
//     gear/persistence naming layout (objects/<md5-hex>,
//     chunked/<md5-hex>.gcm), so a registry served over net/wire reopens
//     its store after a process restart with no re-push.
//
// Two kinds of payload, two namespaces (an fp may legitimately appear in
// both, see GearRegistry::remove):
//   * objects   — stored compressed (GZC1) frames: plain Gear files and the
//     individual chunks of chunked files;
//   * manifests — chunk manifests of chunked files, keyed by the *file's*
//     fingerprint, serialized in the .gcm wire form.
//
// Concurrency contract: every method is safe to call concurrently and is
// atomic in isolation (put_if_absent either fully stores a new object or
// reports it present; readers never observe a torn value). Compound
// read-modify-write sequences — the registry's "check both namespaces, then
// insert" dedup upsert — are linearized per fingerprint by GearRegistry's
// shard locks, not here.
//
// Accounting contract: stored_bytes() is the sum of stored compressed frame
// sizes plus serialized manifest sizes — identical between backends and to
// the pre-refactor GearRegistry::storage_bytes() accounting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "gear/chunking.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear {

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // ---- objects: compressed (GZC1) frames ---------------------------------

  virtual bool contains(const Fingerprint& fp) const = 0;

  /// Stores `compressed` under `fp` unless an object already exists there.
  /// Returns true when stored, false when already present (content-addressed
  /// stores never overwrite: same name means same bytes).
  virtual bool put_if_absent(const Fingerprint& fp, Bytes compressed) = 0;

  /// The stored compressed frame. kNotFound when absent.
  virtual StatusOr<Bytes> get(const Fingerprint& fp) const = 0;

  /// Size of the stored frame (= its wire transfer size). kNotFound when
  /// absent.
  virtual StatusOr<std::uint64_t> object_size(const Fingerprint& fp) const = 0;

  /// Removes one object. Returns bytes freed, 0 when absent.
  virtual std::uint64_t erase(const Fingerprint& fp) = 0;

  virtual std::vector<Fingerprint> list_objects() const = 0;
  virtual std::size_t object_count() const = 0;

  // ---- chunk manifests ---------------------------------------------------

  virtual bool contains_manifest(const Fingerprint& fp) const = 0;
  virtual bool put_manifest_if_absent(const Fingerprint& fp,
                                      const ChunkManifest& manifest) = 0;
  virtual StatusOr<ChunkManifest> get_manifest(const Fingerprint& fp) const = 0;
  virtual std::uint64_t erase_manifest(const Fingerprint& fp) = 0;
  virtual std::vector<Fingerprint> list_manifests() const = 0;
  virtual std::size_t manifest_count() const = 0;

  // ---- accounting --------------------------------------------------------

  virtual std::uint64_t stored_bytes() const = 0;
};

/// How many ways object-store state is sharded. Shard choice is by
/// FingerprintHash, which mixes all 16 fingerprint bytes, so uniformly
/// distributed keys spread uniformly across shards.
inline constexpr std::size_t kObjectStoreShards = 16;

inline std::size_t object_store_shard(const Fingerprint& fp) noexcept {
  return FingerprintHash{}(fp) % kObjectStoreShards;
}

/// The historical in-memory backend: byte- and accounting-identical to the
/// pre-refactor GearRegistry maps, split across kObjectStoreShards
/// independently-locked shards so concurrent operations on different
/// fingerprints proceed in parallel.
class MemoryObjectStore final : public ObjectStore {
 public:
  bool contains(const Fingerprint& fp) const override;
  bool put_if_absent(const Fingerprint& fp, Bytes compressed) override;
  StatusOr<Bytes> get(const Fingerprint& fp) const override;
  StatusOr<std::uint64_t> object_size(const Fingerprint& fp) const override;
  std::uint64_t erase(const Fingerprint& fp) override;
  std::vector<Fingerprint> list_objects() const override;
  std::size_t object_count() const override;

  bool contains_manifest(const Fingerprint& fp) const override;
  bool put_manifest_if_absent(const Fingerprint& fp,
                              const ChunkManifest& manifest) override;
  StatusOr<ChunkManifest> get_manifest(const Fingerprint& fp) const override;
  std::uint64_t erase_manifest(const Fingerprint& fp) override;
  std::vector<Fingerprint> list_manifests() const override;
  std::size_t manifest_count() const override;

  std::uint64_t stored_bytes() const override {
    return stored_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Fingerprint, Bytes, FingerprintHash> objects;
    std::unordered_map<Fingerprint, ChunkManifest, FingerprintHash> manifests;
  };

  std::array<Shard, kObjectStoreShards> shards_;
  std::atomic<std::uint64_t> stored_bytes_{0};
};

/// Durable content-addressed backend over a real directory:
///
///   <root>/objects/<md5-hex>        compressed (GZC1) frames
///   <root>/chunked/<md5-hex>.gcm    serialized chunk manifests
///
/// Crash safety: every write lands in a sibling "<name>.tmp" first, is
/// fsync'd, then atomically renamed into place (and the directory fsync'd),
/// so a visible object is always complete. A crash mid-write leaves only a
/// torn temp, which reopen ignores and reaps — reaped_temps() reports how
/// many. A freshly opened store therefore serves exactly the objects whose
/// writes completed, and a wire-served registry built on it survives a
/// process restart with no re-push.
///
/// Object names and manifest bytes follow the gear/persistence snapshot
/// layout; object *content* here is the stored compressed frame (what the
/// wire protocol ships per item), where persistence snapshots write
/// decompressed interchange bytes.
class DiskObjectStore final : public ObjectStore {
 public:
  /// Opens (creating if needed) a store rooted at `root`: indexes existing
  /// objects and parses existing manifests, removing torn "*.tmp" leftovers.
  /// Throws Error(kCorruptData) on an unparsable manifest file.
  explicit DiskObjectStore(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// Torn temp files removed by this open (crash-recovery observability).
  std::size_t reaped_temps() const noexcept { return reaped_temps_; }

  bool contains(const Fingerprint& fp) const override;
  bool put_if_absent(const Fingerprint& fp, Bytes compressed) override;
  StatusOr<Bytes> get(const Fingerprint& fp) const override;
  StatusOr<std::uint64_t> object_size(const Fingerprint& fp) const override;
  std::uint64_t erase(const Fingerprint& fp) override;
  std::vector<Fingerprint> list_objects() const override;
  std::size_t object_count() const override;

  bool contains_manifest(const Fingerprint& fp) const override;
  bool put_manifest_if_absent(const Fingerprint& fp,
                              const ChunkManifest& manifest) override;
  StatusOr<ChunkManifest> get_manifest(const Fingerprint& fp) const override;
  std::uint64_t erase_manifest(const Fingerprint& fp) override;
  std::vector<Fingerprint> list_manifests() const override;
  std::size_t manifest_count() const override;

  std::uint64_t stored_bytes() const override {
    return stored_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// In-memory index of what is on disk. Object payloads stay on disk (get
  /// reads the file); manifests are small and parsed once at open, so
  /// chunked downloads never re-read .gcm files.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash> objects;
    std::unordered_map<Fingerprint, ChunkManifest, FingerprintHash> manifests;
  };

  std::filesystem::path object_path(const Fingerprint& fp) const;
  std::filesystem::path manifest_path(const Fingerprint& fp) const;

  std::filesystem::path root_;
  std::array<Shard, kObjectStoreShards> shards_;
  std::atomic<std::uint64_t> stored_bytes_{0};
  std::size_t reaped_temps_ = 0;
};

}  // namespace gear
