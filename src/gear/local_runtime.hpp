// Disk-backed Gear runtime.
//
// The simulation-facing GearClient measures costs; this runtime performs the
// same deployment semantics on a real filesystem (FsStore, paper Fig. 5) so
// tooling like gearctl can actually host containers:
//
//   pull     — install the image's index into <root>/images/<ref>/;
//   launch   — create a container with a persisted diff tree;
//   read     — union lookup (diff over index); the first touch of a stub
//              materializes it: shared cache -> Gear Registry, then a hard
//              link into the image's files/ directory;
//   write /  — copy-up into the container's diff with whiteouts, persisted
//   remove     across process restarts;
//   commit   — extract the diff into new Gear files + a merged index and
//              push the result as a new image.
//
// All state lives under one directory; reopening the runtime on the same
// root resumes exactly where the previous process stopped.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "docker/registry.hpp"
#include "gear/admission.hpp"
#include "gear/committer.hpp"
#include "gear/fs_store.hpp"
#include "gear/prefetch.hpp"
#include "gear/registry_api.hpp"

namespace gear {

class LocalRuntime {
 public:
  /// Any FileRegistryApi works — a single GearRegistry or a FleetRegistry
  /// router — so gearctl's container commands run against --shards N too.
  LocalRuntime(docker::DockerRegistry& index_registry,
               FileRegistryApi& file_registry, std::filesystem::path root);

  /// Installs `reference`'s index from the Docker registry (no-op when
  /// already installed). Throws for classic (non-Gear) references.
  void pull(const std::string& reference);

  bool has_image(const std::string& reference) const;

  /// Creates a container from an installed image; returns its id.
  std::string launch(const std::string& reference);

  /// Reads a file through the container's union view, materializing stubs
  /// on demand (cache -> registry -> hard link).
  StatusOr<Bytes> read(const std::string& container_id,
                       std::string_view path);

  /// Resolves a symlink target from the union view.
  StatusOr<std::string> read_symlink(const std::string& container_id,
                                     std::string_view path);

  /// Writes a file into the container's diff (persisted immediately).
  void write(const std::string& container_id, std::string_view path,
             BytesView content);

  /// Removes a path from the container's view (whiteout when the image
  /// still provides it). Returns false when absent.
  bool remove_path(const std::string& container_id, std::string_view path);

  /// Commits the container as a new image and pushes it to the registries.
  /// Returns the new reference.
  std::string commit(const std::string& container_id, const std::string& name,
                     const std::string& tag);

  /// Deletes the container (its diff only; the image stays launchable).
  void destroy(const std::string& container_id);

  /// Warms every still-unmaterialized file of an installed image into the
  /// on-disk cache in priority order (gear/prefetch): delta vs the newest
  /// other installed version of the series, then the persisted access
  /// profiles of the whole series, then fan-in/size tie-breakers. Files are
  /// hard-linked into the image directory afterwards. Returns (files
  /// fetched from the registry, bytes moved).
  std::pair<std::size_t, std::uint64_t> prefetch(
      const std::string& reference,
      PrefetchOrder order = PrefetchOrder::kDelta);

  /// Attaches a host-wide admission budget (gearctl --host-budget-bytes):
  /// prefetch's downloads stage their bytes on the background lane,
  /// demand-fault materializations on the strict-priority demand lane. The
  /// budget must outlive the runtime; null = ungoverned (the default).
  void set_host_budget(HostBudget* budget) { host_budget_ = budget; }
  HostBudget* host_budget() const noexcept { return host_budget_; }

  FsStore& store() noexcept { return store_; }

 private:
  /// Loads the semantic index of a container's image with already
  /// materialized files reported through the FsStore.
  vfs::FileTree load_index_tree(const std::string& reference) const;

  /// Materializer callback bound to (reference); fetches through
  /// FsStore-materialized -> cache -> registry, hard-linking on success.
  /// `size` is the stub's raw size — the demand lane's admission charge.
  Bytes materialize(const std::string& reference, const std::string& path,
                    const Fingerprint& fp, std::uint64_t size);

  docker::DockerRegistry& index_registry_;
  FileRegistryApi& file_registry_;
  FsStore store_;
  HostBudget* host_budget_ = nullptr;  // not owned
};

}  // namespace gear
