// Gear File Viewer: the container's root filesystem view (paper §III-D2).
//
// Union-mounts the image's read-only index directory (level 2) under the
// container's writable diff directory (level 3), with Overlay2 semantics for
// whiteouts and copy-up. The Gear twist is the lookup path: when a read
// reaches a fingerprint stub, the viewer pauses the access and calls its
// materializer — the model of the paper's modified ovl_lookup_single() plus
// the user-mode helper that hard-links the file from the shared cache or
// downloads it from the Gear Registry. After materialization the stub node
// becomes a regular node backed by the shared content, so every later access
// (from this or any other container of the image) is served directly.
//
// Irregular files (directories, symlinks) are answered straight from the
// index without any fetch.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "vfs/file_tree.hpp"

namespace gear {

class GearFileViewer {
 public:
  /// Fetches the content of a Gear file by fingerprint, from the shared
  /// cache or the Gear Registry. Receives the union path being served so the
  /// client can record first-touch access profiles (gear/prefetch). Must
  /// throw (or propagate) on failure.
  using Materializer = std::function<Bytes(
      const std::string& path, const Fingerprint& fp, std::uint64_t size)>;

  /// `index`: the image's index tree (level 2, shared across containers of
  /// the image — stub materialization mutates it in place).
  /// `diff`: the container's writable layer (level 3).
  /// Both must outlive the viewer.
  ///
  /// `tree_lock` (optional) serializes index-tree access across viewers of
  /// the same image: lookups and the stub→regular replacement take it, but
  /// the materializer itself runs outside, so concurrent faults still
  /// download in parallel (singleflight dedups same-fingerprint races).
  /// Required whenever several threads read through viewers of one image —
  /// the lazy reader-storm-plus-backfill case; a null lock keeps the
  /// single-threaded fast path lock-free. The diff layer stays
  /// single-writer: write_file/make_dir/remove are not covered by the lock.
  GearFileViewer(vfs::FileTree& index, vfs::FileTree& diff,
                 Materializer materializer, std::mutex* tree_lock = nullptr);

  /// Reads a regular file, materializing a stub on first access.
  StatusOr<Bytes> read_file(std::string_view path);

  /// Fault-in hook: invoked once per stub fault, just before the
  /// materializer, with the union path and the stub's fingerprint/size.
  /// The lazy deploy path uses it to timestamp demand faults.
  using FaultHook = std::function<void(
      const std::string& path, const Fingerprint& fp, std::uint64_t size)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Per-read telemetry: every read_file counts as a read; a read that hit
  /// an already-materialized file (index or diff) is a hit, one that had to
  /// pause for a fingerprint stub is a fault. reads == hits + faults for
  /// successful reads (failed lookups count as reads only).
  struct ReadStats {
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
  };
  ReadStats read_stats() const noexcept {
    return {reads_.load(std::memory_order_relaxed),
            hits_.load(std::memory_order_relaxed),
            faults_.load(std::memory_order_relaxed)};
  }

  /// Reads a symlink target directly from the union (no materialization).
  StatusOr<std::string> read_symlink(std::string_view path) const;

  /// True if `path` resolves in the union view.
  bool exists(std::string_view path) const;

  /// Size of the file at `path` without materializing it (stat on a stub
  /// answers from the index).
  StatusOr<std::uint64_t> stat_size(std::string_view path) const;

  /// Merged directory listing.
  std::vector<std::string> list_dir(std::string_view path) const;

  /// Writes a file into the diff layer (copy-up semantics: the index copy,
  /// if any, is masked, not modified).
  void write_file(std::string_view path, Bytes content,
                  const vfs::Metadata& meta = {});

  /// Creates a directory in the diff layer.
  void make_dir(std::string_view path, const vfs::Metadata& meta = {});

  /// Deletes `path` from the view: removes any diff entry and places a
  /// whiteout if the index still provides it. Returns false when absent.
  bool remove(std::string_view path);

  /// Count of stubs materialized through this viewer (telemetry).
  std::uint64_t materialized_count() const noexcept {
    return materialized_.load(std::memory_order_relaxed);
  }

  const vfs::FileTree& diff() const noexcept { return diff_; }
  const vfs::FileTree& index() const noexcept { return index_; }

 private:
  /// Both sides of a masked resolution: the diff node (if any, and not a
  /// whiteout) and the index node (if visible through the union, i.e. not
  /// masked by a whiteout, opaque directory, or non-directory ancestor).
  struct ResolvedPair {
    const vfs::FileNode* diff_node = nullptr;
    const vfs::FileNode* index_node = nullptr;
    bool whiteout = false;  // diff holds a whiteout at the final segment
  };
  ResolvedPair resolve_pair(const std::vector<std::string>& segments) const;

  /// Resolves a path through diff-then-index with whiteout masking.
  /// Sets *from_diff when the winning node lives in the diff layer.
  const vfs::FileNode* resolve(std::string_view path, bool* from_diff) const;

  /// Ensures parent directories of `path` exist in the diff layer,
  /// validating against the union; returns the parent node.
  vfs::FileNode& ensure_diff_parent(const std::vector<std::string>& segments);

  vfs::FileTree& index_;
  vfs::FileTree& diff_;
  Materializer materializer_;
  FaultHook fault_hook_;
  std::mutex* tree_lock_;  // nullable; serializes index access + mutation
  std::atomic<std::uint64_t> materialized_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace gear
