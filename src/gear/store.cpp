#include "gear/store.hpp"

#include "util/error.hpp"

namespace gear {

ThreeLevelStore::ThreeLevelStore(std::uint64_t cache_capacity_bytes,
                                 EvictionPolicy policy)
    : cache_(cache_capacity_bytes, policy) {}

void ThreeLevelStore::add_index(const std::string& reference,
                                GearIndex index) {
  // Replacing an index releases the previous links first.
  if (auto it = indexes_.find(reference); it != indexes_.end()) {
    remove_image(reference);
  }
  IndexDir dir;
  dir.tree = std::move(index.tree());
  indexes_[reference] = std::move(dir);
}

bool ThreeLevelStore::has_index(const std::string& reference) const {
  return indexes_.count(reference) != 0;
}

vfs::FileTree& ThreeLevelStore::index_tree(const std::string& reference) {
  auto it = indexes_.find(reference);
  if (it == indexes_.end()) {
    throw_error(ErrorCode::kNotFound, "no index for image: " + reference);
  }
  return it->second.tree;
}

const vfs::FileTree& ThreeLevelStore::index_tree(
    const std::string& reference) const {
  auto it = indexes_.find(reference);
  if (it == indexes_.end()) {
    throw_error(ErrorCode::kNotFound, "no index for image: " + reference);
  }
  return it->second.tree;
}

void ThreeLevelStore::record_link(const std::string& reference,
                                  const Fingerprint& fp) {
  auto it = indexes_.find(reference);
  if (it == indexes_.end()) {
    throw_error(ErrorCode::kNotFound, "no index for image: " + reference);
  }
  if (it->second.linked.insert(fp).second) {
    cache_.link(fp);
  }
}

void ThreeLevelStore::remove_image(const std::string& reference) {
  auto it = indexes_.find(reference);
  if (it == indexes_.end()) {
    throw_error(ErrorCode::kNotFound, "no index for image: " + reference);
  }
  for (const Fingerprint& fp : it->second.linked) {
    cache_.unlink(fp);
  }
  indexes_.erase(it);
}

std::vector<std::string> ThreeLevelStore::images() const {
  std::vector<std::string> refs;
  refs.reserve(indexes_.size());
  for (const auto& [ref, dir] : indexes_) {
    (void)dir;
    refs.push_back(ref);
  }
  return refs;
}

std::string ThreeLevelStore::create_container(const std::string& reference) {
  if (!has_index(reference)) {
    throw_error(ErrorCode::kNotFound, "no index for image: " + reference);
  }
  std::string id = reference + "#" + std::to_string(next_container_++);
  containers_[id] = ContainerDir{reference, vfs::FileTree{}};
  return id;
}

bool ThreeLevelStore::has_container(const std::string& container_id) const {
  return containers_.count(container_id) != 0;
}

vfs::FileTree& ThreeLevelStore::container_diff(
    const std::string& container_id) {
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
  return it->second.diff;
}

const std::string& ThreeLevelStore::container_image(
    const std::string& container_id) const {
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
  return it->second.reference;
}

void ThreeLevelStore::remove_container(const std::string& container_id) {
  if (containers_.erase(container_id) == 0) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
}

}  // namespace gear
