// File-registry abstraction: the query/upload/download surface the Gear
// deployment path programs against (the paper's three HTTP interfaces,
// §III-C, plus the batched and chunked extensions).
//
// Two implementations exist:
//   * GearRegistry           — the in-process content-addressed store;
//   * net::RemoteGearRegistry — a client stub speaking the wire protocol
//     over a Transport (loopback, fault-injecting, or a simulated link).
//
// GearClient and push_gear_image operate exclusively on this interface, so
// the exact same deployment code runs against a local store or across the
// network boundary. The batched entry points (query_many, download_batch,
// upload_precompressed_batch) are what turn O(files) round-trips into
// O(files / batch) when the registry is remote; in-process they default to
// plain ordered loops, keeping contents and stats byte-identical to the
// serial protocol.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "gear/chunking.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace gear {

class FileRegistryApi {
 public:
  virtual ~FileRegistryApi() = default;

  /// "query" interface: does a Gear file with this fingerprint exist?
  virtual bool query(const Fingerprint& fp) const = 0;

  /// Batched query: out[i] != 0 iff fps[i] is stored. Default loops query()
  /// in order; remote implementations answer every fingerprint in a single
  /// round-trip.
  virtual std::vector<std::uint8_t> query_many(
      const std::vector<Fingerprint>& fps) const;

  /// "upload" interface: stores `content` under `fp` (compressing it).
  /// Returns true if stored, false if deduplicated (already present).
  virtual bool upload(const Fingerprint& fp, BytesView content) = 0;

  /// Stores an already-compressed (GZC1) frame under `fp`.
  virtual bool upload_precompressed(const Fingerprint& fp, Bytes compressed) = 0;

  /// Batched precompressed upload; returns the number actually stored (the
  /// rest were deduplicated). Default loops upload_precompressed() in item
  /// order; remote implementations move the whole batch in one round-trip.
  virtual std::size_t upload_precompressed_batch(
      std::vector<std::pair<Fingerprint, Bytes>> items);

  /// Chunked upload (paper §VII). Backends without chunk support store the
  /// file plain — readers are unaffected, they only lose range granularity.
  virtual bool upload_chunked(const Fingerprint& fp, BytesView content,
                              const ChunkPolicy& policy,
                              const FingerprintHasher& hasher = default_hasher());

  /// "download" interface: returns the decompressed file content.
  virtual StatusOr<Bytes> download(const Fingerprint& fp) const = 0;

  /// Batched download: results line up with `fps` by index; fails with
  /// kNotFound naming the offending fingerprint if any is absent (nothing
  /// about the batch is partial). `wire_bytes_out` (optional) receives the
  /// summed compressed transfer size. `pool`, when non-null, may be used for
  /// per-object decompression; placement stays deterministic at any width.
  virtual StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool = nullptr,
      std::uint64_t* wire_bytes_out = nullptr) const = 0;

  /// Partial download of [offset, offset+length). Default fetches the whole
  /// object and slices client-side; chunk-aware backends move only the
  /// covering chunks.
  virtual StatusOr<Bytes> download_range(
      const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
      std::uint64_t* wire_bytes_out = nullptr) const;

  /// Batched chunk download of the chunked file `fp`: out[i] is the
  /// decompressed content of manifest.chunks[indices[i]]. `manifest` is the
  /// file's chunk manifest as the caller already holds it (read_range
  /// fetches it once per client), so implementations need no extra lookup
  /// round-trip. Default is an ordered per-chunk download_range loop —
  /// byte- and stats-identical to fetching each chunk individually — while
  /// remote implementations move the whole batch in one kDownloadChunks
  /// frame. `wire_bytes_out` (optional) receives the summed compressed
  /// transfer size.
  virtual StatusOr<std::vector<Bytes>> download_chunks(
      const Fingerprint& fp, const ChunkManifest& manifest,
      const std::vector<std::uint32_t>& indices,
      std::uint64_t* wire_bytes_out = nullptr) const;

  /// Compressed (on-the-wire / on-disk) size of one object.
  virtual StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const = 0;

  /// The wire-transfer form of one object: the stored compressed (GZC1)
  /// frame, shipped verbatim so the bytes on the wire equal the bytes
  /// stored. This is the server half of the batch download protocol — a
  /// net::FrameServer answers kDownloadMany items straight from it, which
  /// is what lets one daemon host a single registry or a whole fleet behind
  /// the same frames. Default: kUnsupported (only storage-backed registries
  /// can serve stored frames; client stubs need not).
  virtual StatusOr<Bytes> download_compressed(const Fingerprint& fp) const;

  /// The stored compressed frame of one chunk object — what a
  /// kDownloadChunks response item carries. Default: kUnsupported.
  virtual StatusOr<Bytes> download_chunk_compressed(
      const Fingerprint& chunk_fp) const;

  /// True when `fp` is stored in chunked form. Default: never.
  virtual bool is_chunked(const Fingerprint& fp) const;

  /// The chunk manifest of a chunked file; kNotFound otherwise.
  virtual StatusOr<ChunkManifest> chunk_manifest(const Fingerprint& fp) const;

  /// True when transfers through this registry are already charged to a
  /// simulated link by the transport layer (per frame). The client must not
  /// then also charge its own link model — that would bill every byte twice.
  virtual bool transport_accounted() const;
};

}  // namespace gear
