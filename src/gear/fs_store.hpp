// On-disk three-level storage (paper Fig. 5) backed by a real filesystem.
//
// The in-memory ThreeLevelStore drives the simulations; this backend
// persists the same structure to disk with the paper's actual mechanism —
// POSIX hard links:
//
//   <root>/cache/<fp-hex>                    level 1: shared Gear files
//   <root>/images/<ref>/index.gtree          level 2: serialized index
//   <root>/images/<ref>/files/<path...>      materialized files, hard-linked
//                                            from the cache (st_nlink > 1)
//   <root>/containers/<id>/diff.gtree        level 3: writable-layer state
//
// Deleting an image removes its directory; its files survive in the cache
// because the link count only drops to 1. evict_unlinked() is the cache
// replacement candidate scan: exactly the files with st_nlink == 1 ("files
// that are not linked to Gear indexes", §III-D1).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "gear/cache.hpp"
#include "gear/index.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear {

class FsStore {
 public:
  /// Opens (creating if needed) a store rooted at `root`.
  explicit FsStore(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  // ---- Level 1: shared cache ------------------------------------

  bool cache_contains(const Fingerprint& fp) const;

  /// Stores content under its fingerprint. Idempotent.
  void cache_put(const Fingerprint& fp, BytesView content);

  StatusOr<Bytes> cache_get(const Fingerprint& fp) const;

  std::size_t cache_entries() const;
  std::uint64_t cache_bytes() const;

  /// Hard-link count of a cached file: 1 = cache only (evictable),
  /// 1 + N = linked into N image directories.
  std::uint64_t link_count(const Fingerprint& fp) const;

  /// Removes every cache entry no image links to. Returns count removed.
  std::size_t evict_unlinked();

  /// Bounds the on-disk cache — disk-pressure governance for gearctl's
  /// `--cache-capacity-bytes`/`--eviction`. When an insert would push the
  /// cache past `capacity_bytes`, unlinked entries (st_nlink == 1) are
  /// evicted in policy order first — FIFO by insertion, LRU by last
  /// cache_get (files from earlier processes rank oldest). Linked entries
  /// are never removed, so pinned bytes may exceed the envelope; such
  /// inserts still land (the file is about to be hard-linked into an index)
  /// but count as `rejected`. 0 = unbounded (the default).
  void set_cache_capacity(std::uint64_t capacity_bytes, EvictionPolicy policy);
  std::uint64_t cache_capacity() const noexcept { return cache_capacity_; }
  EvictionPolicy eviction_policy() const noexcept { return cache_policy_; }

  /// This process's cache traffic (hits/misses/insertions/evictions/
  /// rejected) since the store was opened — `gearctl stats` telemetry.
  const CacheStats& session_stats() const noexcept { return cache_stats_; }

  // ---- Level 2: image index directories --------------------------

  /// Persists an image's index. The reference ("name:tag") is sanitized
  /// into a directory name.
  void install_index(const std::string& reference, const GearIndex& index);

  bool has_index(const std::string& reference) const;
  GearIndex load_index(const std::string& reference) const;
  std::vector<std::string> images() const;

  /// Original (unsanitized) references of the installed images. Image dirs
  /// written before reference tracking fall back to their directory name.
  std::vector<std::string> references() const;

  /// Persists an access profile next to the image's index
  /// (<root>/images/<ref>/profile.gprf, "GPRF1" text). Overwrites; removed
  /// together with the image directory.
  void save_access_profile(const std::string& reference,
                           const std::string& serialized);

  /// Loads the saved profile text; kNotFound when none was recorded.
  StatusOr<std::string> load_access_profile(const std::string& reference) const;

  /// Materializes one stub: hard-links the cached file into the image's
  /// files/ directory at the stub's path. The cache entry must exist.
  void link_file(const std::string& reference, const std::string& path,
                 const Fingerprint& fp);

  bool is_materialized(const std::string& reference,
                       const std::string& path) const;
  StatusOr<Bytes> read_materialized(const std::string& reference,
                                    const std::string& path) const;

  /// Deletes the image directory. Hard-linked files stay alive in the cache.
  void remove_image(const std::string& reference);

  // ---- Level 3: container diff directories -----------------------

  std::string create_container(const std::string& reference);
  bool has_container(const std::string& container_id) const;
  void save_diff(const std::string& container_id, const vfs::FileTree& diff);
  vfs::FileTree load_diff(const std::string& container_id) const;
  const std::string& container_image(const std::string& container_id) const;
  void remove_container(const std::string& container_id);

 private:
  std::filesystem::path cache_path(const Fingerprint& fp) const;
  std::filesystem::path image_dir(const std::string& reference) const;
  std::filesystem::path container_dir(const std::string& id) const;

  /// Evicts unlinked entries in policy order until `needed` more bytes fit
  /// the envelope. Returns false when pinned bytes still overflow it.
  bool make_cache_room(std::uint64_t needed);

  std::filesystem::path root_;
  std::map<std::string, std::string> container_refs_;  // id -> reference
  std::uint64_t next_container_ = 1;
  std::uint64_t cache_capacity_ = 0;  // 0 = unbounded
  EvictionPolicy cache_policy_ = EvictionPolicy::kLru;
  /// Eviction order: fp-hex -> monotonic tick of insertion (FIFO) or last
  /// access (LRU). Files written by earlier processes have no tick and rank
  /// oldest. Mutable: cache_get is logically const but records hotness.
  mutable std::map<std::string, std::uint64_t> cache_ticks_;
  mutable std::uint64_t cache_tick_ = 0;
  mutable CacheStats cache_stats_;
};

/// Turns an image reference into a safe single directory name
/// ("nginx:1.17" -> "nginx_1.17"). Rejects references that would escape.
std::string sanitize_reference(const std::string& reference);

}  // namespace gear
