#include "gear/registry.hpp"

#include <mutex>

#include "compress/codec.hpp"

namespace gear {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

GearRegistry::GearRegistry(std::unique_ptr<ObjectStore> store)
    : store_(store != nullptr ? std::move(store)
                              : std::make_unique<MemoryObjectStore>()) {}

bool GearRegistry::query(const Fingerprint& fp) const {
  stats_.queries.fetch_add(1, kRelaxed);
  std::shared_lock lock(shard_lock(fp));
  return store_->contains(fp) || store_->contains_manifest(fp);
}

bool GearRegistry::upload_compressed_locked(const Fingerprint& fp,
                                            Bytes compressed) {
  store_->put_if_absent(fp, std::move(compressed));
  stats_.uploads_accepted.fetch_add(1, kRelaxed);
  return true;
}

bool GearRegistry::upload(const Fingerprint& fp, BytesView content) {
  std::unique_lock lock(shard_lock(fp));
  if (store_->contains(fp) || store_->contains_manifest(fp)) {
    stats_.uploads_deduplicated.fetch_add(1, kRelaxed);
    return false;
  }
  return upload_compressed_locked(fp, compress(content));
}

bool GearRegistry::upload_precompressed(const Fingerprint& fp,
                                        Bytes compressed) {
  std::unique_lock lock(shard_lock(fp));
  if (store_->contains(fp) || store_->contains_manifest(fp)) {
    stats_.uploads_deduplicated.fetch_add(1, kRelaxed);
    return false;
  }
  return upload_compressed_locked(fp, std::move(compressed));
}

bool GearRegistry::upload_chunked(const Fingerprint& fp, BytesView content,
                                  const ChunkPolicy& policy,
                                  const FingerprintHasher& hasher) {
  if (!policy.applies_to(content.size())) {
    return upload(fp, content);
  }
  std::unique_lock lock(shard_lock(fp));
  if (store_->contains(fp) || store_->contains_manifest(fp)) {
    stats_.uploads_deduplicated.fetch_add(1, kRelaxed);
    return false;
  }
  ChunkManifest manifest = build_chunk_manifest(content, policy, hasher);
  if (manifest.chunks.size() <= 1) {
    // A single-chunk manifest buys nothing and would alias the file's
    // fingerprint with its only chunk's (identical content): store plain.
    return upload_compressed_locked(fp, compress(content));
  }
  for (std::size_t i = 0; i < manifest.chunks.size(); ++i) {
    const Fingerprint& chunk_fp = manifest.chunks[i];
    if (store_->contains(chunk_fp)) continue;  // shared chunk: dedup
    // Chunk inserts go straight to the (internally synchronized) store: a
    // racing upload of another file sharing this chunk stores identical
    // bytes, and put_if_absent accounts the winner exactly once.
    store_->put_if_absent(chunk_fp, compress(chunk_view(content, manifest, i)));
  }
  store_->put_manifest_if_absent(fp, manifest);
  stats_.uploads_accepted.fetch_add(1, kRelaxed);
  return true;
}

bool GearRegistry::is_chunked(const Fingerprint& fp) const {
  return store_->contains_manifest(fp);
}

StatusOr<ChunkManifest> GearRegistry::chunk_manifest(
    const Fingerprint& fp) const {
  std::shared_lock lock(shard_lock(fp));
  StatusOr<ChunkManifest> manifest = store_->get_manifest(fp);
  if (!manifest.ok()) {
    return {ErrorCode::kNotFound, "no chunk manifest for " + fp.hex()};
  }
  return manifest;
}

StatusOr<Bytes> GearRegistry::download_locked(const Fingerprint& fp) const {
  if (StatusOr<ChunkManifest> manifest = store_->get_manifest(fp);
      manifest.ok()) {
    stats_.downloads.fetch_add(1, kRelaxed);
    const ChunkManifest& m = *manifest;
    Bytes out;
    out.reserve(m.file_size);
    for (const Fingerprint& chunk_fp : m.chunks) {
      StatusOr<Bytes> chunk = store_->get(chunk_fp);
      if (!chunk.ok()) {
        return {ErrorCode::kCorruptData,
                "chunk missing for " + fp.hex() + ": " + chunk_fp.hex()};
      }
      append(out, decompress(*chunk));
    }
    if (out.size() != m.file_size) {
      return {ErrorCode::kCorruptData, "chunked reassembly size mismatch"};
    }
    return out;
  }
  StatusOr<Bytes> frame = store_->get(fp);
  if (!frame.ok()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  stats_.downloads.fetch_add(1, kRelaxed);
  return decompress(*frame);
}

StatusOr<Bytes> GearRegistry::download(const Fingerprint& fp) const {
  std::shared_lock lock(shard_lock(fp));
  return download_locked(fp);
}

StatusOr<Bytes> GearRegistry::download_compressed(const Fingerprint& fp) const {
  std::shared_lock lock(shard_lock(fp));
  if (store_->contains_manifest(fp)) {
    // Chunked files have no single stored frame; reassemble (counts one
    // download, like any whole-file fetch) and re-frame for the wire.
    StatusOr<Bytes> whole = download_locked(fp);
    if (!whole.ok()) return whole;
    return compress(*whole);
  }
  StatusOr<Bytes> frame = store_->get(fp);
  if (!frame.ok()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  stats_.downloads.fetch_add(1, kRelaxed);
  return frame;
}

StatusOr<std::vector<Bytes>> GearRegistry::download_batch(
    const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
    std::uint64_t* wire_bytes_out) const {
  std::vector<Bytes> out(fps.size());
  std::uint64_t wire = 0;

  // Resolve phase: per-item shared shard lock; account stats and wire size,
  // and serve the (rare, reassembly-heavy) chunked objects. Plain objects
  // are only copied out compressed here; their decompression is deferred.
  std::vector<Bytes> plain(fps.size());
  std::vector<std::uint8_t> deferred(fps.size(), 0);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    const std::string item_pos = " (item " + std::to_string(i + 1) + " of " +
                                 std::to_string(fps.size()) + ")";
    std::shared_lock lock(shard_lock(fps[i]));
    if (store_->contains_manifest(fps[i])) {
      StatusOr<Bytes> whole = download_locked(fps[i]);
      if (!whole.ok()) {
        return {whole.code(),
                "download_batch: " + whole.message() + item_pos};
      }
      StatusOr<std::uint64_t> size = stored_size_locked(fps[i]);
      if (!size.ok()) {
        return {size.code(), "download_batch: stored size of " +
                                 fps[i].hex() + ": " + size.message() +
                                 item_pos};
      }
      wire += *size;
      out[i] = std::move(whole).value();
      continue;
    }
    StatusOr<Bytes> frame = store_->get(fps[i]);
    if (!frame.ok()) {
      return {ErrorCode::kNotFound,
              "download_batch: gear file not found: " + fps[i].hex() +
                  item_pos};
    }
    stats_.downloads.fetch_add(1, kRelaxed);
    wire += frame->size();
    plain[i] = std::move(*frame);
    deferred[i] = 1;
  }

  // Parallel phase: pure decompression, results placed by index.
  auto decompress_one = [&](std::size_t i) {
    if (deferred[i] != 0) out[i] = decompress(plain[i]);
  };
  if (pool != nullptr) {
    pool->parallel_for_each(fps.size(), decompress_one);
  } else {
    for (std::size_t i = 0; i < fps.size(); ++i) decompress_one(i);
  }

  if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
  return out;
}

StatusOr<Bytes> GearRegistry::download_range(
    const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
    std::uint64_t* wire_bytes_out) const {
  std::shared_lock lock(shard_lock(fp));
  if (StatusOr<ChunkManifest> manifest = store_->get_manifest(fp);
      manifest.ok()) {
    const ChunkManifest& m = *manifest;
    auto [first, last] = m.chunk_range(offset, length);
    stats_.downloads.fetch_add(1, kRelaxed);
    Bytes assembled;
    std::uint64_t wire = 0;
    for (std::size_t c = first; c <= last; ++c) {
      StatusOr<Bytes> chunk = store_->get(m.chunks[c]);
      if (!chunk.ok()) {
        return {ErrorCode::kCorruptData, "chunk missing: " + m.chunks[c].hex()};
      }
      wire += chunk->size();
      append(assembled, decompress(*chunk));
    }
    if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
    std::uint64_t skip = offset - first * m.chunk_bytes;
    if (skip + length > assembled.size()) {
      return {ErrorCode::kCorruptData, "chunk range reassembly too short"};
    }
    return Bytes(assembled.begin() + static_cast<std::ptrdiff_t>(skip),
                 assembled.begin() + static_cast<std::ptrdiff_t>(skip + length));
  }

  // Plain object: the whole blob moves; slice client-side.
  StatusOr<Bytes> frame = store_->get(fp);
  if (!frame.ok()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  stats_.downloads.fetch_add(1, kRelaxed);
  if (wire_bytes_out != nullptr) *wire_bytes_out = frame->size();
  Bytes whole = decompress(*frame);
  if (offset + length > whole.size() || length == 0) {
    return {ErrorCode::kInvalidArgument, "range out of bounds"};
  }
  return Bytes(whole.begin() + static_cast<std::ptrdiff_t>(offset),
               whole.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

StatusOr<std::uint64_t> GearRegistry::stored_size_locked(
    const Fingerprint& fp) const {
  if (StatusOr<ChunkManifest> manifest = store_->get_manifest(fp);
      manifest.ok()) {
    std::uint64_t total = manifest->serialize().size();
    for (const Fingerprint& chunk_fp : manifest->chunks) {
      StatusOr<std::uint64_t> size = store_->object_size(chunk_fp);
      if (size.ok()) total += *size;
    }
    return total;
  }
  StatusOr<std::uint64_t> size = store_->object_size(fp);
  if (!size.ok()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  return size;
}

StatusOr<std::uint64_t> GearRegistry::stored_size(const Fingerprint& fp) const {
  std::shared_lock lock(shard_lock(fp));
  return stored_size_locked(fp);
}

StatusOr<Bytes> GearRegistry::download_chunk_compressed(
    const Fingerprint& chunk_fp) const {
  std::shared_lock lock(shard_lock(chunk_fp));
  StatusOr<Bytes> frame = store_->get(chunk_fp);
  if (!frame.ok()) {
    return {ErrorCode::kNotFound, "chunk not found: " + chunk_fp.hex()};
  }
  stats_.downloads.fetch_add(1, kRelaxed);
  return frame;
}

StatusOr<std::uint64_t> GearRegistry::chunk_stored_size(
    const Fingerprint& chunk_fp) const {
  std::shared_lock lock(shard_lock(chunk_fp));
  StatusOr<std::uint64_t> size = store_->object_size(chunk_fp);
  if (!size.ok()) {
    return {ErrorCode::kNotFound, "chunk not found: " + chunk_fp.hex()};
  }
  return size;
}

void GearRegistry::restore_chunked(const Fingerprint& fp,
                                   ChunkManifest manifest) {
  std::unique_lock lock(shard_lock(fp));
  if (store_->contains_manifest(fp)) return;  // already registered
  for (const Fingerprint& chunk_fp : manifest.chunks) {
    if (!store_->contains(chunk_fp)) {
      throw_error(ErrorCode::kCorruptData,
                  "restore_chunked: missing chunk " + chunk_fp.hex());
    }
  }
  store_->put_manifest_if_absent(fp, manifest);
}

std::vector<Fingerprint> GearRegistry::list_objects() const {
  return store_->list_objects();
}

std::vector<Fingerprint> GearRegistry::list_chunked() const {
  return store_->list_manifests();
}

std::uint64_t GearRegistry::remove(const Fingerprint& fp) {
  // An fp can name both a plain/chunk object and a chunk manifest when
  // contents coincide; an unreferenced fp releases every role it plays.
  std::unique_lock lock(shard_lock(fp));
  return store_->erase(fp) + store_->erase_manifest(fp);
}

}  // namespace gear
