#include "gear/registry.hpp"

#include "compress/codec.hpp"

namespace gear {

bool GearRegistry::query(const Fingerprint& fp) const {
  ++stats_.queries;
  return objects_.count(fp) != 0 || chunked_.count(fp) != 0;
}

bool GearRegistry::upload(const Fingerprint& fp, BytesView content) {
  if (objects_.count(fp) != 0 || chunked_.count(fp) != 0) {
    ++stats_.uploads_deduplicated;
    return false;
  }
  Bytes compressed = compress(content);
  stored_bytes_ += compressed.size();
  objects_.emplace(fp, std::move(compressed));
  ++stats_.uploads_accepted;
  return true;
}

bool GearRegistry::upload_precompressed(const Fingerprint& fp,
                                        Bytes compressed) {
  if (objects_.count(fp) != 0 || chunked_.count(fp) != 0) {
    ++stats_.uploads_deduplicated;
    return false;
  }
  stored_bytes_ += compressed.size();
  objects_.emplace(fp, std::move(compressed));
  ++stats_.uploads_accepted;
  return true;
}

bool GearRegistry::upload_chunked(const Fingerprint& fp, BytesView content,
                                  const ChunkPolicy& policy,
                                  const FingerprintHasher& hasher) {
  if (!policy.applies_to(content.size())) {
    return upload(fp, content);
  }
  if (objects_.count(fp) != 0 || chunked_.count(fp) != 0) {
    ++stats_.uploads_deduplicated;
    return false;
  }
  ChunkManifest manifest = build_chunk_manifest(content, policy, hasher);
  if (manifest.chunks.size() <= 1) {
    // A single-chunk manifest buys nothing and would alias the file's
    // fingerprint with its only chunk's (identical content): store plain.
    return upload(fp, content);
  }
  for (std::size_t i = 0; i < manifest.chunks.size(); ++i) {
    const Fingerprint& chunk_fp = manifest.chunks[i];
    if (objects_.count(chunk_fp) != 0) continue;  // shared chunk: dedup
    Bytes compressed = compress(chunk_view(content, manifest, i));
    stored_bytes_ += compressed.size();
    objects_.emplace(chunk_fp, std::move(compressed));
  }
  stored_bytes_ += manifest.serialize().size();
  chunked_.emplace(fp, std::move(manifest));
  ++stats_.uploads_accepted;
  return true;
}

bool GearRegistry::is_chunked(const Fingerprint& fp) const {
  return chunked_.count(fp) != 0;
}

StatusOr<ChunkManifest> GearRegistry::chunk_manifest(
    const Fingerprint& fp) const {
  auto it = chunked_.find(fp);
  if (it == chunked_.end()) {
    return {ErrorCode::kNotFound, "no chunk manifest for " + fp.hex()};
  }
  return it->second;
}

StatusOr<Bytes> GearRegistry::download(const Fingerprint& fp) const {
  if (auto it = chunked_.find(fp); it != chunked_.end()) {
    ++stats_.downloads;
    const ChunkManifest& m = it->second;
    Bytes out;
    out.reserve(m.file_size);
    for (const Fingerprint& chunk_fp : m.chunks) {
      auto chunk_it = objects_.find(chunk_fp);
      if (chunk_it == objects_.end()) {
        return {ErrorCode::kCorruptData,
                "chunk missing for " + fp.hex() + ": " + chunk_fp.hex()};
      }
      append(out, decompress(chunk_it->second));
    }
    if (out.size() != m.file_size) {
      return {ErrorCode::kCorruptData, "chunked reassembly size mismatch"};
    }
    return out;
  }
  auto it = objects_.find(fp);
  if (it == objects_.end()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  ++stats_.downloads;
  return decompress(it->second);
}

StatusOr<Bytes> GearRegistry::download_compressed(const Fingerprint& fp) const {
  if (chunked_.count(fp) != 0) {
    // Chunked files have no single stored frame; reassemble (counts one
    // download, like any whole-file fetch) and re-frame for the wire.
    StatusOr<Bytes> whole = download(fp);
    if (!whole.ok()) return whole;
    return compress(*whole);
  }
  auto it = objects_.find(fp);
  if (it == objects_.end()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  ++stats_.downloads;
  return it->second;
}

StatusOr<std::vector<Bytes>> GearRegistry::download_batch(
    const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
    std::uint64_t* wire_bytes_out) const {
  std::vector<Bytes> out(fps.size());
  std::uint64_t wire = 0;

  // Serial phase: resolve every fingerprint, account stats and wire size,
  // and serve the (rare, reassembly-heavy) chunked objects. Plain objects
  // are only located here; their decompression is deferred.
  std::vector<const Bytes*> plain(fps.size(), nullptr);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    const std::string item_pos = " (item " + std::to_string(i + 1) + " of " +
                                 std::to_string(fps.size()) + ")";
    if (chunked_.count(fps[i]) != 0) {
      StatusOr<Bytes> whole = download(fps[i]);
      if (!whole.ok()) {
        return {whole.code(),
                "download_batch: " + whole.message() + item_pos};
      }
      wire += stored_size(fps[i]).value();
      out[i] = std::move(whole).value();
      continue;
    }
    auto it = objects_.find(fps[i]);
    if (it == objects_.end()) {
      return {ErrorCode::kNotFound,
              "download_batch: gear file not found: " + fps[i].hex() +
                  item_pos};
    }
    ++stats_.downloads;
    wire += it->second.size();
    plain[i] = &it->second;
  }

  // Parallel phase: pure decompression, results placed by index.
  auto decompress_one = [&](std::size_t i) {
    if (plain[i] != nullptr) out[i] = decompress(*plain[i]);
  };
  if (pool != nullptr) {
    pool->parallel_for_each(fps.size(), decompress_one);
  } else {
    for (std::size_t i = 0; i < fps.size(); ++i) decompress_one(i);
  }

  if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
  return out;
}

StatusOr<Bytes> GearRegistry::download_range(
    const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
    std::uint64_t* wire_bytes_out) const {
  if (auto it = chunked_.find(fp); it != chunked_.end()) {
    const ChunkManifest& m = it->second;
    auto [first, last] = m.chunk_range(offset, length);
    ++stats_.downloads;
    Bytes assembled;
    std::uint64_t wire = 0;
    for (std::size_t c = first; c <= last; ++c) {
      auto chunk_it = objects_.find(m.chunks[c]);
      if (chunk_it == objects_.end()) {
        return {ErrorCode::kCorruptData, "chunk missing: " + m.chunks[c].hex()};
      }
      wire += chunk_it->second.size();
      append(assembled, decompress(chunk_it->second));
    }
    if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
    std::uint64_t skip = offset - first * m.chunk_bytes;
    if (skip + length > assembled.size()) {
      return {ErrorCode::kCorruptData, "chunk range reassembly too short"};
    }
    return Bytes(assembled.begin() + static_cast<std::ptrdiff_t>(skip),
                 assembled.begin() + static_cast<std::ptrdiff_t>(skip + length));
  }

  // Plain object: the whole blob moves; slice client-side.
  auto it = objects_.find(fp);
  if (it == objects_.end()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  ++stats_.downloads;
  if (wire_bytes_out != nullptr) *wire_bytes_out = it->second.size();
  Bytes whole = decompress(it->second);
  if (offset + length > whole.size() || length == 0) {
    return {ErrorCode::kInvalidArgument, "range out of bounds"};
  }
  return Bytes(whole.begin() + static_cast<std::ptrdiff_t>(offset),
               whole.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

StatusOr<std::uint64_t> GearRegistry::stored_size(const Fingerprint& fp) const {
  if (auto it = chunked_.find(fp); it != chunked_.end()) {
    std::uint64_t total = it->second.serialize().size();
    for (const Fingerprint& chunk_fp : it->second.chunks) {
      auto chunk_it = objects_.find(chunk_fp);
      if (chunk_it != objects_.end()) total += chunk_it->second.size();
    }
    return total;
  }
  auto it = objects_.find(fp);
  if (it == objects_.end()) {
    return {ErrorCode::kNotFound, "gear file not found: " + fp.hex()};
  }
  return it->second.size();
}

StatusOr<std::uint64_t> GearRegistry::chunk_stored_size(
    const Fingerprint& chunk_fp) const {
  auto it = objects_.find(chunk_fp);
  if (it == objects_.end()) {
    return {ErrorCode::kNotFound, "chunk not found: " + chunk_fp.hex()};
  }
  return it->second.size();
}

void GearRegistry::restore_chunked(const Fingerprint& fp,
                                   ChunkManifest manifest) {
  if (chunked_.count(fp) != 0) return;  // already registered
  for (const Fingerprint& chunk_fp : manifest.chunks) {
    if (objects_.count(chunk_fp) == 0) {
      throw_error(ErrorCode::kCorruptData,
                  "restore_chunked: missing chunk " + chunk_fp.hex());
    }
  }
  stored_bytes_ += manifest.serialize().size();
  chunked_.emplace(fp, std::move(manifest));
}

std::vector<Fingerprint> GearRegistry::list_objects() const {
  std::vector<Fingerprint> out;
  out.reserve(objects_.size());
  for (const auto& [fp, blob] : objects_) {
    (void)blob;
    out.push_back(fp);
  }
  return out;
}

std::vector<Fingerprint> GearRegistry::list_chunked() const {
  std::vector<Fingerprint> out;
  out.reserve(chunked_.size());
  for (const auto& [fp, manifest] : chunked_) {
    (void)manifest;
    out.push_back(fp);
  }
  return out;
}

std::uint64_t GearRegistry::remove(const Fingerprint& fp) {
  // An fp can name both a plain/chunk object and a chunk manifest when
  // contents coincide; an unreferenced fp releases every role it plays.
  std::uint64_t freed = 0;
  if (auto it = objects_.find(fp); it != objects_.end()) {
    freed += it->second.size();
    objects_.erase(it);
  }
  if (auto it = chunked_.find(fp); it != chunked_.end()) {
    freed += it->second.serialize().size();
    chunked_.erase(it);
  }
  stored_bytes_ -= freed;
  return freed;
}

}  // namespace gear
