#include "gear/converter.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace gear {

GearConverter::GearConverter(
    const FingerprintHasher& hasher,
    std::function<std::optional<Bytes>(const Fingerprint&)> existing_lookup)
    : hasher_(hasher), existing_lookup_(std::move(existing_lookup)) {}

util::ThreadPool& GearConverter::pool() const {
  std::size_t width = concurrency_.resolved_workers();
  if (!pool_ || pool_->worker_count() != width) {
    pool_ = std::make_unique<util::ThreadPool>(width);
  }
  return *pool_;
}

Fingerprint GearConverter::resolve_fingerprint(
    const Bytes& content,
    const std::unordered_map<Fingerprint, const Bytes*, FingerprintHash>&
        local,
    bool* collided, const Fingerprint* precomputed) const {
  *collided = false;
  Bytes salted;  // lazily built: content || 0x01 || salt varint
  std::uint64_t salt = 0;
  Fingerprint fp =
      precomputed != nullptr ? *precomputed : hasher_.fingerprint(content);
  for (;;) {
    // Compare against content already assigned this fingerprint.
    const Bytes* owner = nullptr;
    if (auto it = local.find(fp); it != local.end()) {
      owner = it->second;
    }
    std::optional<Bytes> remote;
    if (owner == nullptr && existing_lookup_) {
      remote = existing_lookup_(fp);
      if (remote.has_value()) owner = &*remote;
    }
    if (owner == nullptr || *owner == content) {
      return fp;  // fresh fingerprint, or true duplicate (dedup)
    }
    // Collision: same fingerprint, different bytes. Assign a salted unique
    // ID in place of the fingerprint (paper §III-B) and re-check.
    *collided = true;
    salted.assign(content.begin(), content.end());
    salted.push_back(0x01);
    for (std::uint64_t s = ++salt; s != 0; s >>= 8) {
      salted.push_back(static_cast<std::uint8_t>(s));
    }
    fp = hasher_.fingerprint(salted);
  }
}

ConversionResult GearConverter::convert(const docker::Image& image) const {
  ConversionResult result;
  ConversionStats& stats = result.stats;

  // Replay layers bottom-to-top into the full root filesystem.
  vfs::FileTree root = image.flatten();

  // Parallel pre-pass: hash every regular file across the pool. Contents are
  // collected in walk order, so `raw[i]` lines up with the i-th regular file
  // the index-building walk below will visit.
  std::vector<const Bytes*> contents;
  root.walk([&contents](const std::string& path, const vfs::FileNode& node) {
    (void)path;
    if (node.type() == vfs::NodeType::kRegular) {
      contents.push_back(&node.content());
    }
  });
  std::vector<Fingerprint> raw;
  if (contents.size() < 4 || concurrency_.resolved_workers() <= 1) {
    raw.reserve(contents.size());  // too small to pay pool hand-off costs
    for (const Bytes* c : contents) raw.push_back(hasher_.fingerprint(*c));
  } else {
    raw = pool().parallel_map<Fingerprint>(
        contents.size(),
        [&](std::size_t i) { return hasher_.fingerprint(*contents[i]); },
        concurrency_.max_inflight_bytes,
        [&](std::size_t i) { return contents[i]->size(); });
  }

  // Ordered serial reduce: collision resolution and salted-ID assignment
  // walk the files in the same order as the serial implementation, so stats
  // and the unique-file set are identical at any worker count.
  std::unordered_map<Fingerprint, const Bytes*, FingerprintHash> assigned;
  std::vector<std::pair<Fingerprint, Bytes>> files;
  std::size_t next_file = 0;

  GearIndex index = GearIndex::from_root_fs(
      root, [&](const std::string& path, const Bytes& content) {
        (void)path;
        ++stats.files_seen;
        stats.bytes_seen += content.size();
        bool collided = false;
        Fingerprint fp = resolve_fingerprint(content, assigned, &collided,
                                             &raw[next_file++]);
        if (collided) ++stats.collisions;
        if (assigned.emplace(fp, &content).second) {
          files.emplace_back(fp, content);
        }
        return fp;
      });
  stats.files_unique = files.size();

  // Package the index as a single-layer Docker image with the original
  // config (env/entrypoint copied so the application still runs, §III-C).
  docker::ImageConfig config = image.manifest.config;
  config.labels[kGearIndexLabel] = "1";
  docker::ImageBuilder builder;
  builder.add_snapshot(index.to_wire_tree());
  docker::Image index_image =
      builder.build(image.manifest.name, image.manifest.tag, std::move(config));
  stats.index_wire_bytes = index_image.compressed_size();

  result.image.index_image = std::move(index_image);
  result.image.index = std::move(index);
  result.image.files = std::move(files);
  return result;
}

ConversionResult GearConverter::convert_timed(const docker::Image& image,
                                              sim::DiskModel& disk,
                                              double* seconds_out) const {
  // Every modeled step returns its cost; sum them for the conversion time.
  double total = 0.0;

  // Read the compressed layer blobs from registry disk.
  for (const docker::Layer& layer : image.layers) {
    total += disk.read(layer.compressed_size());
    // Decompress + unpack the layer into the reconstruction area.
    total += disk.write(layer.uncompressed_size());
  }

  ConversionResult result = convert(image);

  // Traverse the reconstructed file system: one metadata op per tree node,
  // one read per regular file.
  vfs::TreeStats tstats = result.image.index.tree().stats();
  for (std::uint64_t i = 0;
       i < tstats.directories + tstats.symlinks + tstats.fingerprint_stubs;
       ++i) {
    total += disk.touch();
  }
  for (const auto& [fp, content] : result.image.files) {
    (void)fp;
    total += disk.read(content.size());
    total += disk.write(content.size());  // store the Gear file
  }
  // Write the index image (tiny).
  total += disk.write(result.stats.index_wire_bytes);

  if (seconds_out != nullptr) *seconds_out = total;
  return result;
}

}  // namespace gear
