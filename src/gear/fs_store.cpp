#include "gear/fs_store.hpp"

#include <algorithm>

#include "util/file_io.hpp"
#include "vfs/tree_serialize.hpp"

namespace gear {
namespace fs = std::filesystem;

std::string sanitize_reference(const std::string& reference) {
  if (reference.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "empty image reference");
  }
  std::string out;
  out.reserve(reference.size());
  for (char c : reference) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '.' || c == '-') {
      out.push_back(c);
    } else if (c == ':' || c == '/' || c == '@') {
      out.push_back('_');
    } else {
      throw_error(ErrorCode::kInvalidArgument,
                  "unsupported character in reference: " + reference);
    }
  }
  if (out[0] == '.') {
    throw_error(ErrorCode::kInvalidArgument,
                "reference must not start with '.'");
  }
  return out;
}

FsStore::FsStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_ / "cache");
  fs::create_directories(root_ / "images");
  fs::create_directories(root_ / "containers");
  // Recover containers created by earlier processes: each container dir
  // carries a "ref" file naming its image.
  for (const auto& entry : fs::directory_iterator(root_ / "containers")) {
    if (!entry.is_directory()) continue;
    fs::path ref_file = entry.path() / "ref";
    if (!fs::exists(ref_file)) continue;
    container_refs_[entry.path().filename().string()] =
        to_string(read_file_bytes(ref_file));
  }
}

fs::path FsStore::cache_path(const Fingerprint& fp) const {
  return root_ / "cache" / fp.hex();
}

fs::path FsStore::image_dir(const std::string& reference) const {
  return root_ / "images" / sanitize_reference(reference);
}

fs::path FsStore::container_dir(const std::string& id) const {
  return root_ / "containers" / id;
}

bool FsStore::cache_contains(const Fingerprint& fp) const {
  return fs::exists(cache_path(fp));
}

void FsStore::cache_put(const Fingerprint& fp, BytesView content) {
  fs::path p = cache_path(fp);
  if (fs::exists(p)) {
    // Deduplicated insert: under LRU this still counts as a touch.
    if (cache_policy_ == EvictionPolicy::kLru) {
      cache_ticks_[fp.hex()] = ++cache_tick_;
    }
    return;
  }
  if (cache_capacity_ != 0 && !make_cache_room(content.size())) {
    // Every evictable file is gone and linked bytes still overflow the
    // envelope. The file lands anyway — the caller is about to hard-link
    // it into an index — but the overshoot is recorded.
    ++cache_stats_.rejected;
  }
  write_file_bytes(p, content);
  ++cache_stats_.insertions;
  cache_ticks_[fp.hex()] = ++cache_tick_;
}

StatusOr<Bytes> FsStore::cache_get(const Fingerprint& fp) const {
  fs::path p = cache_path(fp);
  if (!fs::exists(p)) {
    ++cache_stats_.misses;
    return {ErrorCode::kNotFound, "not cached: " + fp.hex()};
  }
  ++cache_stats_.hits;
  if (cache_policy_ == EvictionPolicy::kLru) {
    cache_ticks_[fp.hex()] = ++cache_tick_;
  }
  return read_file_bytes(p);
}

void FsStore::set_cache_capacity(std::uint64_t capacity_bytes,
                                 EvictionPolicy policy) {
  cache_capacity_ = capacity_bytes;
  cache_policy_ = policy;
  // Shrinking below current use evicts immediately (disk-pressure response).
  if (cache_capacity_ != 0) make_cache_room(0);
}

bool FsStore::make_cache_room(std::uint64_t needed) {
  std::uint64_t used = cache_bytes();
  if (used + needed <= cache_capacity_) return true;
  // Victim scan: unlinked entries (st_nlink == 1) in policy-tick order;
  // untracked files from earlier processes rank oldest, name-ordered for
  // determinism.
  struct Victim {
    std::uint64_t tick;
    std::string name;
    std::uint64_t size;
  };
  std::vector<Victim> victims;
  for (const auto& entry : fs::directory_iterator(root_ / "cache")) {
    if (!entry.is_regular_file()) continue;
    if (fs::hard_link_count(entry.path()) != 1) continue;
    std::string name = entry.path().filename().string();
    auto it = cache_ticks_.find(name);
    victims.push_back({it == cache_ticks_.end() ? 0 : it->second, name,
                       entry.file_size()});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              return a.tick != b.tick ? a.tick < b.tick : a.name < b.name;
            });
  for (const Victim& v : victims) {
    if (used + needed <= cache_capacity_) break;
    fs::remove(root_ / "cache" / v.name);
    cache_ticks_.erase(v.name);
    used -= v.size;
    ++cache_stats_.evictions;
  }
  return used + needed <= cache_capacity_;
}

std::size_t FsStore::cache_entries() const {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(root_ / "cache")) {
    (void)entry;
    ++n;
  }
  return n;
}

std::uint64_t FsStore::cache_bytes() const {
  std::uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(root_ / "cache")) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

std::uint64_t FsStore::link_count(const Fingerprint& fp) const {
  fs::path p = cache_path(fp);
  if (!fs::exists(p)) return 0;
  return fs::hard_link_count(p);
}

std::size_t FsStore::evict_unlinked() {
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(root_ / "cache")) {
    if (entry.is_regular_file() && fs::hard_link_count(entry.path()) == 1) {
      fs::remove(entry.path());
      ++removed;
    }
  }
  return removed;
}

void FsStore::install_index(const std::string& reference,
                            const GearIndex& index) {
  fs::path dir = image_dir(reference);
  fs::create_directories(dir / "files");
  write_file_bytes(dir / "index.gtree", vfs::serialize_tree(index.tree()));
  // The original reference: directory names are sanitized (":" -> "_"), but
  // series grouping for delta prefetch needs the real "name:tag".
  write_file_bytes(dir / "ref", to_bytes(reference));
}

std::vector<std::string> FsStore::references() const {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(root_ / "images")) {
    if (!entry.is_directory()) continue;
    fs::path ref_file = entry.path() / "ref";
    out.push_back(fs::exists(ref_file)
                      ? to_string(read_file_bytes(ref_file))
                      : entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FsStore::save_access_profile(const std::string& reference,
                                  const std::string& serialized) {
  fs::path dir = image_dir(reference);
  if (!fs::exists(dir / "index.gtree")) {
    throw_error(ErrorCode::kNotFound, "no index installed: " + reference);
  }
  write_file_bytes(dir / "profile.gprf", to_bytes(serialized));
}

StatusOr<std::string> FsStore::load_access_profile(
    const std::string& reference) const {
  fs::path p = image_dir(reference) / "profile.gprf";
  if (!fs::exists(p)) {
    return {ErrorCode::kNotFound, "no access profile for " + reference};
  }
  return to_string(read_file_bytes(p));
}

bool FsStore::has_index(const std::string& reference) const {
  return fs::exists(image_dir(reference) / "index.gtree");
}

GearIndex FsStore::load_index(const std::string& reference) const {
  fs::path p = image_dir(reference) / "index.gtree";
  if (!fs::exists(p)) {
    throw_error(ErrorCode::kNotFound, "no index installed: " + reference);
  }
  return GearIndex{vfs::deserialize_tree(read_file_bytes(p))};
}

std::vector<std::string> FsStore::images() const {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(root_ / "images")) {
    if (entry.is_directory()) out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FsStore::link_file(const std::string& reference, const std::string& path,
                        const Fingerprint& fp) {
  fs::path src = cache_path(fp);
  if (!fs::exists(src)) {
    throw_error(ErrorCode::kNotFound, "link_file: not cached: " + fp.hex());
  }
  // Validate the path through the tree rules (rejects "..", empty, etc.).
  auto segments = vfs::FileTree::split_path(path);
  fs::path dst = image_dir(reference) / "files";
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) dst /= segments[i];
  fs::create_directories(dst);
  dst /= segments.back();
  if (fs::exists(dst)) return;  // already materialized
  fs::create_hard_link(src, dst);
}

bool FsStore::is_materialized(const std::string& reference,
                              const std::string& path) const {
  auto segments = vfs::FileTree::split_path(path);
  fs::path p = image_dir(reference) / "files";
  for (const auto& seg : segments) p /= seg;
  return fs::exists(p);
}

StatusOr<Bytes> FsStore::read_materialized(const std::string& reference,
                                           const std::string& path) const {
  auto segments = vfs::FileTree::split_path(path);
  fs::path p = image_dir(reference) / "files";
  for (const auto& seg : segments) p /= seg;
  if (!fs::exists(p)) {
    return {ErrorCode::kNotFound, "not materialized: " + path};
  }
  return read_file_bytes(p);
}

void FsStore::remove_image(const std::string& reference) {
  fs::path dir = image_dir(reference);
  if (!fs::exists(dir)) {
    throw_error(ErrorCode::kNotFound, "no such image: " + reference);
  }
  fs::remove_all(dir);
}

std::string FsStore::create_container(const std::string& reference) {
  if (!has_index(reference)) {
    throw_error(ErrorCode::kNotFound, "no index installed: " + reference);
  }
  // Skip ids already on disk (containers created by earlier processes).
  std::string id;
  do {
    id = sanitize_reference(reference) + "-c" +
         std::to_string(next_container_++);
  } while (fs::exists(container_dir(id)));
  fs::create_directories(container_dir(id));
  write_file_bytes(container_dir(id) / "ref", to_bytes(reference));
  save_diff(id, vfs::FileTree{});
  container_refs_[id] = reference;
  return id;
}

bool FsStore::has_container(const std::string& container_id) const {
  return container_refs_.count(container_id) != 0;
}

void FsStore::save_diff(const std::string& container_id,
                        const vfs::FileTree& diff) {
  write_file_bytes(container_dir(container_id) / "diff.gtree",
                   vfs::serialize_tree(diff));
}

vfs::FileTree FsStore::load_diff(const std::string& container_id) const {
  fs::path p = container_dir(container_id) / "diff.gtree";
  if (!fs::exists(p)) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
  return vfs::deserialize_tree(read_file_bytes(p));
}

const std::string& FsStore::container_image(
    const std::string& container_id) const {
  auto it = container_refs_.find(container_id);
  if (it == container_refs_.end()) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
  return it->second;
}

void FsStore::remove_container(const std::string& container_id) {
  if (container_refs_.erase(container_id) == 0) {
    throw_error(ErrorCode::kNotFound, "no container: " + container_id);
  }
  fs::remove_all(container_dir(container_id));
}

}  // namespace gear
