#include "gear/fleet.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>

#include "compress/codec.hpp"

namespace gear {
namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit points for ring placement.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr auto kRelaxed = std::memory_order_relaxed;

std::size_t fleet_pool_width(std::size_t shard_count, std::size_t workers) {
  if (workers != 0) return workers;
  unsigned hw = std::thread::hardware_concurrency();
  std::size_t cap = hw == 0 ? 1 : hw;
  return std::max<std::size_t>(1, std::min(shard_count, cap));
}

}  // namespace

// ---- HashRing -------------------------------------------------------------

void HashRing::add_shard(std::size_t shard, std::size_t vnodes) {
  if (contains(shard)) return;
  points_.reserve(points_.size() + vnodes);
  for (std::size_t v = 0; v < vnodes; ++v) {
    // Mix shard and vnode into one key; the shifted shard keeps every
    // (shard, vnode) pair distinct for any practical fleet size.
    points_.emplace_back(mix64((static_cast<std::uint64_t>(shard) << 20) | v),
                         shard);
  }
  std::sort(points_.begin(), points_.end());
  ++shard_count_;
}

void HashRing::remove_shard(std::size_t shard) {
  auto it = std::remove_if(points_.begin(), points_.end(),
                           [&](const auto& p) { return p.second == shard; });
  if (it == points_.end()) return;
  points_.erase(it, points_.end());
  --shard_count_;
}

bool HashRing::contains(std::size_t shard) const {
  return std::any_of(points_.begin(), points_.end(),
                     [&](const auto& p) { return p.second == shard; });
}

std::uint64_t HashRing::point_of(const Fingerprint& fp) {
  return mix64(static_cast<std::uint64_t>(FingerprintHash{}(fp)));
}

std::vector<std::size_t> HashRing::replicas(const Fingerprint& fp,
                                            std::size_t count) const {
  std::vector<std::size_t> out;
  if (points_.empty() || count == 0) return out;
  count = std::min(count, shard_count_);
  out.reserve(count);
  const std::uint64_t point = point_of(fp);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), point,
      [](std::uint64_t p, const auto& entry) { return p < entry.first; });
  for (std::size_t walked = 0; walked < points_.size() && out.size() < count;
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

// ---- FleetRegistry --------------------------------------------------------

FleetRegistry::FleetRegistry(std::vector<FileRegistryApi*> shards,
                             Options options)
    : shards_(std::move(shards)),
      replicas_(options.replicas),
      vnodes_(std::max<std::size_t>(1, options.vnodes_per_shard)),
      transport_accounted_(false),
      pool_(fleet_pool_width(shards_.size(), options.workers)) {
  if (shards_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "fleet: no shards");
  }
  if (replicas_ == 0) {
    throw_error(ErrorCode::kInvalidArgument, "fleet: replicas must be >= 1");
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == nullptr) {
      throw_error(ErrorCode::kInvalidArgument, "fleet: null shard");
    }
    ring_.add_shard(i, vnodes_);
    shard_stats_.push_back(std::make_unique<FleetShardStats>());
  }
  transport_accounted_ = shards_[0]->transport_accounted();
}

std::size_t FleetRegistry::shard_count() const {
  std::shared_lock lk(ring_mutex_);
  return ring_.shard_count();
}

std::size_t FleetRegistry::replication() const {
  std::shared_lock lk(ring_mutex_);
  return std::min(replicas_, ring_.shard_count());
}

std::vector<std::size_t> FleetRegistry::replicas_of(
    const Fingerprint& fp) const {
  std::shared_lock lk(ring_mutex_);
  return ring_.replicas(fp, replicas_);
}

const FleetShardStats& FleetRegistry::shard_stats(std::size_t shard_id) const {
  std::shared_lock lk(ring_mutex_);
  if (shard_id >= shard_stats_.size()) {
    throw_error(ErrorCode::kInvalidArgument, "fleet: bad shard id");
  }
  return *shard_stats_[shard_id];
}

std::vector<std::pair<std::size_t, FileRegistryApi*>>
FleetRegistry::replica_targets_locked(const Fingerprint& fp) const {
  std::vector<std::pair<std::size_t, FileRegistryApi*>> out;
  for (std::size_t id : ring_.replicas(fp, replicas_)) {
    out.emplace_back(id, shards_[id]);
  }
  return out;
}

FleetRegistry::Routing FleetRegistry::routing_snapshot() const {
  std::shared_lock lk(ring_mutex_);
  Routing rt;
  rt.ring = ring_;
  rt.shards = shards_;
  rt.stats.reserve(shard_stats_.size());
  for (const auto& s : shard_stats_) rt.stats.push_back(s.get());
  return rt;
}

std::vector<std::pair<std::size_t, FileRegistryApi*>>
FleetRegistry::replica_targets(const Routing& rt, const Fingerprint& fp,
                               std::size_t replicas) {
  std::vector<std::pair<std::size_t, FileRegistryApi*>> out;
  for (std::size_t id : rt.ring.replicas(fp, replicas)) {
    out.emplace_back(id, rt.shards[id]);
  }
  return out;
}

void FleetRegistry::catalog_put(const Fingerprint& fp, bool chunked,
                                const ChunkPolicy& policy) {
  std::lock_guard<std::mutex> lk(catalog_mutex_);
  // First writer wins: a fingerprint's storage form is immutable once
  // stored (dedup upserts never restructure an object).
  catalog_.emplace(fp, CatalogEntry{chunked, policy});
}

// ---- reads ----------------------------------------------------------------

bool FleetRegistry::query(const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  bool answered = false;
  bool failed_before = false;
  std::string last_err = "no live replicas";
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      // An object exists in the fleet when ANY replica holds it (a shard
      // that was down at upload time may legitimately miss objects its
      // backups accepted), so `false` keeps probing the rest of the list.
      if (api->query(fp)) {
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(1, kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(1, kRelaxed);
        }
        return true;
      }
      answered = true;
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last_err = e.what();
    }
  }
  if (!answered) {
    throw_error(ErrorCode::kInternal, "fleet: query of " + fp.hex() +
                                          " failed on all replicas: " +
                                          last_err);
  }
  return false;
}

std::vector<std::uint8_t> FleetRegistry::query_many(
    const std::vector<Fingerprint>& fps) const {
  Routing rt = routing_snapshot();
  std::vector<std::uint8_t> out(fps.size(), 0);
  if (fps.empty()) return out;
  std::vector<std::uint8_t> answered(fps.size(), 0);
  std::vector<std::size_t> pending(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) pending[i] = i;
  std::string last_err;

  for (std::size_t level = 0; level < replicas_ && !pending.empty(); ++level) {
    // Group the still-unanswered items by their level-th replica and ask
    // each shard with one batched round trip.
    std::map<std::size_t, std::vector<std::size_t>> groups;
    for (std::size_t idx : pending) {
      auto reps = rt.ring.replicas(fps[idx], replicas_);
      if (level < reps.size()) groups[reps[level]].push_back(idx);
    }
    if (groups.empty()) break;
    std::vector<std::pair<std::size_t, std::vector<std::size_t>>> jobs(
        groups.begin(), groups.end());
    std::mutex mu;
    std::vector<std::size_t> next;
    pool_.parallel_for_each(jobs.size(), [&](std::size_t j) {
      const auto& [sid, idxs] = jobs[j];
      std::vector<Fingerprint> sub;
      sub.reserve(idxs.size());
      for (std::size_t idx : idxs) sub.push_back(fps[idx]);
      try {
        stats_.shard_calls.fetch_add(1, kRelaxed);
        auto ans = rt.shards[sid]->query_many(sub);
        std::lock_guard<std::mutex> g(mu);
        for (std::size_t k = 0; k < idxs.size(); ++k) {
          answered[idxs[k]] = 1;
          if (ans[k]) {
            out[idxs[k]] = 1;
          } else if (level + 1 < replicas_) {
            next.push_back(idxs[k]);  // OR over replicas: keep probing
          }
        }
      } catch (const Error& e) {
        stats_.failed_shard_calls.fetch_add(1, kRelaxed);
        std::lock_guard<std::mutex> g(mu);
        last_err = e.what();
        for (std::size_t idx : idxs) next.push_back(idx);
      }
    });
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    pending.clear();
    for (std::size_t idx : next) {
      if (!out[idx]) pending.push_back(idx);
    }
  }
  for (std::size_t i = 0; i < fps.size(); ++i) {
    if (!answered[i] && !out[i]) {
      throw_error(ErrorCode::kInternal,
                  "fleet: query of " + fps[i].hex() +
                      " failed on all replicas: " + last_err);
    }
  }
  return out;
}

StatusOr<Bytes> FleetRegistry::download(const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  bool failed_before = false;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      auto got = api->download(fp);
      if (got.ok()) {
        rt.stats[id]->routed_items.fetch_add(1, kRelaxed);
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(1, kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(1, kRelaxed);
        }
        return got;
      }
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

StatusOr<Bytes> FleetRegistry::download_compressed(const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  bool failed_before = false;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      auto got = api->download_compressed(fp);
      if (got.ok()) {
        rt.stats[id]->routed_items.fetch_add(1, kRelaxed);
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(1, kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(1, kRelaxed);
        }
        return got;
      }
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

StatusOr<Bytes> FleetRegistry::download_chunk_compressed(
    const Fingerprint& chunk_fp) const {
  // Chunk objects co-locate with their parent file, which is routed by the
  // FILE fingerprint — a chunk fingerprint alone names no home shard. The
  // stored-frame surface doesn't carry the parent fp, so probe every live
  // shard (ring walk from chunk_fp's position, for a deterministic order);
  // a per-shard miss is a cheap index lookup and kNotFound is an answer,
  // not a failure.
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, chunk_fp, rt.shards.size());
  std::optional<std::pair<ErrorCode, std::string>> last;
  bool failed_before = false;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      auto got = api->download_chunk_compressed(chunk_fp);
      if (got.ok()) {
        rt.stats[id]->routed_items.fetch_add(1, kRelaxed);
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(1, kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(1, kRelaxed);
        }
        return got;
      }
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal,
          "fleet: no live replicas for chunk " + chunk_fp.hex()};
}

StatusOr<std::vector<Bytes>> FleetRegistry::download_batch(
    const std::vector<Fingerprint>& fps, util::ThreadPool* /*pool*/,
    std::uint64_t* wire_bytes_out) const {
  // The caller's pool is for decompression; backend sub-batches decompress
  // inline on the fleet's own fan-out pool instead, so a client thread
  // already running on its pool can never deadlock against us.
  Routing rt = routing_snapshot();
  std::vector<Bytes> out(fps.size());
  if (fps.empty()) {
    if (wire_bytes_out) *wire_bytes_out = 0;
    return out;
  }
  std::atomic<std::uint64_t> wire_sum{0};
  std::vector<std::size_t> pending(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) pending[i] = i;
  std::optional<std::pair<ErrorCode, std::string>> first_err;

  for (std::size_t level = 0; level < replicas_ && !pending.empty(); ++level) {
    std::map<std::size_t, std::vector<std::size_t>> groups;
    std::vector<std::size_t> exhausted;
    for (std::size_t idx : pending) {
      auto reps = rt.ring.replicas(fps[idx], replicas_);
      if (level < reps.size()) {
        groups[reps[level]].push_back(idx);
      } else {
        exhausted.push_back(idx);
      }
    }
    if (groups.empty()) break;
    std::vector<std::pair<std::size_t, std::vector<std::size_t>>> jobs(
        groups.begin(), groups.end());
    std::mutex mu;
    std::vector<std::size_t> next(std::move(exhausted));
    pool_.parallel_for_each(jobs.size(), [&](std::size_t j) {
      const auto& [sid, idxs] = jobs[j];
      std::vector<Fingerprint> sub;
      sub.reserve(idxs.size());
      for (std::size_t idx : idxs) sub.push_back(fps[idx]);
      try {
        stats_.shard_calls.fetch_add(1, kRelaxed);
        std::uint64_t w = 0;
        auto got = rt.shards[sid]->download_batch(sub, nullptr, &w);
        if (got.ok()) {
          for (std::size_t k = 0; k < idxs.size(); ++k) {
            out[idxs[k]] = std::move(got.value()[k]);
          }
          wire_sum.fetch_add(w, kRelaxed);
          rt.stats[sid]->routed_items.fetch_add(idxs.size(), kRelaxed);
          if (level > 0) {
            stats_.replica_fallbacks.fetch_add(idxs.size(), kRelaxed);
            rt.stats[sid]->fallback_reads.fetch_add(idxs.size(), kRelaxed);
          }
          return;
        }
        std::lock_guard<std::mutex> g(mu);
        if (!first_err) first_err.emplace(got.code(), got.message());
        for (std::size_t idx : idxs) next.push_back(idx);
      } catch (const Error& e) {
        stats_.failed_shard_calls.fetch_add(1, kRelaxed);
        std::lock_guard<std::mutex> g(mu);
        if (!first_err) first_err.emplace(ErrorCode::kInternal, e.what());
        for (std::size_t idx : idxs) next.push_back(idx);
      }
    });
    std::sort(next.begin(), next.end());
    pending = std::move(next);
  }
  if (!pending.empty()) {
    if (first_err) {
      return {first_err->first,
              "fleet: download batch failed on all replicas: " +
                  first_err->second};
    }
    return {ErrorCode::kInternal, "fleet: download batch: no live replicas"};
  }
  if (wire_bytes_out) *wire_bytes_out = wire_sum.load();
  return out;
}

StatusOr<Bytes> FleetRegistry::download_range(
    const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
    std::uint64_t* wire_bytes_out) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  bool failed_before = false;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      std::uint64_t w = 0;
      auto got = api->download_range(fp, offset, length, &w);
      if (got.ok()) {
        if (wire_bytes_out) *wire_bytes_out = w;
        rt.stats[id]->routed_items.fetch_add(1, kRelaxed);
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(1, kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(1, kRelaxed);
        }
        return got;
      }
      // kInvalidArgument (range out of bounds) is an answer, not a shard
      // failure: every replica stores identical bytes.
      if (got.code() == ErrorCode::kInvalidArgument) return got;
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

StatusOr<std::vector<Bytes>> FleetRegistry::download_chunks(
    const Fingerprint& fp, const ChunkManifest& manifest,
    const std::vector<std::uint32_t>& indices,
    std::uint64_t* wire_bytes_out) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  bool failed_before = false;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      std::uint64_t w = 0;
      auto got = api->download_chunks(fp, manifest, indices, &w);
      if (got.ok()) {
        if (wire_bytes_out) *wire_bytes_out = w;
        rt.stats[id]->routed_items.fetch_add(indices.size(), kRelaxed);
        if (failed_before) {
          stats_.replica_fallbacks.fetch_add(indices.size(), kRelaxed);
          rt.stats[id]->fallback_reads.fetch_add(indices.size(), kRelaxed);
        }
        return got;
      }
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      failed_before = true;
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

StatusOr<std::uint64_t> FleetRegistry::stored_size(
    const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      auto got = api->stored_size(fp);
      if (got.ok()) return got;
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

bool FleetRegistry::is_chunked(const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  bool answered = false;
  std::string last_err = "no live replicas";
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      // `true` from any replica wins; `false` could be a replica that
      // missed the upload, so keep probing (mirrors query()).
      if (api->is_chunked(fp)) return true;
      answered = true;
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last_err = e.what();
    }
  }
  if (!answered) {
    throw_error(ErrorCode::kInternal, "fleet: is_chunked of " + fp.hex() +
                                          " failed on all replicas: " +
                                          last_err);
  }
  return false;
}

StatusOr<ChunkManifest> FleetRegistry::chunk_manifest(
    const Fingerprint& fp) const {
  Routing rt = routing_snapshot();
  auto targets = replica_targets(rt, fp, replicas_);
  std::optional<std::pair<ErrorCode, std::string>> last;
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      auto got = api->chunk_manifest(fp);
      if (got.ok()) return got;
      last.emplace(got.code(), got.message());
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last.emplace(ErrorCode::kInternal, e.what());
    }
  }
  if (last) return {last->first, last->second};
  return {ErrorCode::kInternal, "fleet: no live replicas for " + fp.hex()};
}

// ---- writes ---------------------------------------------------------------

bool FleetRegistry::upload(const Fingerprint& fp, BytesView content) {
  std::shared_lock lk(ring_mutex_);
  catalog_put(fp, false, ChunkPolicy{});
  auto targets = replica_targets_locked(fp);
  std::optional<bool> first_result;
  std::string last_err = "no live replicas";
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      bool stored = api->upload(fp, content);
      if (!first_result) {
        first_result = stored;
        shard_stats_[id]->routed_items.fetch_add(1, kRelaxed);
      } else {
        shard_stats_[id]->replica_items.fetch_add(1, kRelaxed);
      }
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last_err = e.what();
    }
  }
  if (!first_result) {
    throw_error(ErrorCode::kInternal, "fleet: upload of " + fp.hex() +
                                          " failed on all replicas: " +
                                          last_err);
  }
  return *first_result;
}

bool FleetRegistry::upload_precompressed(const Fingerprint& fp,
                                         Bytes compressed) {
  std::shared_lock lk(ring_mutex_);
  catalog_put(fp, false, ChunkPolicy{});
  auto targets = replica_targets_locked(fp);
  std::optional<bool> first_result;
  std::string last_err = "no live replicas";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    auto& [id, api] = targets[i];
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      Bytes frame = (i + 1 == targets.size()) ? std::move(compressed)
                                              : compressed;
      bool stored = api->upload_precompressed(fp, std::move(frame));
      if (!first_result) {
        first_result = stored;
        shard_stats_[id]->routed_items.fetch_add(1, kRelaxed);
      } else {
        shard_stats_[id]->replica_items.fetch_add(1, kRelaxed);
      }
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last_err = e.what();
    }
  }
  if (!first_result) {
    throw_error(ErrorCode::kInternal, "fleet: upload of " + fp.hex() +
                                          " failed on all replicas: " +
                                          last_err);
  }
  return *first_result;
}

bool FleetRegistry::upload_chunked(const Fingerprint& fp, BytesView content,
                                   const ChunkPolicy& policy,
                                   const FingerprintHasher& hasher) {
  std::shared_lock lk(ring_mutex_);
  catalog_put(fp, policy.applies_to(content.size()), policy);
  auto targets = replica_targets_locked(fp);
  std::optional<bool> first_result;
  std::string last_err = "no live replicas";
  for (auto& [id, api] : targets) {
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      bool stored = api->upload_chunked(fp, content, policy, hasher);
      if (!first_result) {
        first_result = stored;
        shard_stats_[id]->routed_items.fetch_add(1, kRelaxed);
      } else {
        shard_stats_[id]->replica_items.fetch_add(1, kRelaxed);
      }
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      last_err = e.what();
    }
  }
  if (!first_result) {
    throw_error(ErrorCode::kInternal, "fleet: upload of " + fp.hex() +
                                          " failed on all replicas: " +
                                          last_err);
  }
  return *first_result;
}

std::size_t FleetRegistry::upload_precompressed_batch(
    std::vector<std::pair<Fingerprint, Bytes>> items) {
  std::shared_lock lk(ring_mutex_);
  if (items.empty()) return 0;
  for (const auto& [fp, frame] : items) catalog_put(fp, false, ChunkPolicy{});

  // One job per (replica level, shard): level 0 carries the authoritative
  // "stored" count (dedup semantics identical to a single registry); the
  // backup levels replicate best-effort, read fallback covers any they miss.
  struct Job {
    std::size_t level;
    std::size_t shard;
    std::vector<std::size_t> idxs;
  };
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto reps = ring_.replicas(items[i].first, replicas_);
    for (std::size_t level = 0; level < reps.size(); ++level) {
      groups[{level, reps[level]}].push_back(i);
    }
  }
  std::vector<Job> jobs;
  jobs.reserve(groups.size());
  for (auto& [key, idxs] : groups) {
    jobs.push_back(Job{key.first, key.second, std::move(idxs)});
  }

  std::atomic<std::uint64_t> stored{0};
  std::mutex mu;
  std::vector<std::string> failures;
  pool_.parallel_for_each(jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    FileRegistryApi* api = shards_[job.shard];
    std::vector<std::pair<Fingerprint, Bytes>> batch;
    batch.reserve(job.idxs.size());
    for (std::size_t idx : job.idxs) batch.push_back(items[idx]);
    try {
      stats_.shard_calls.fetch_add(1, kRelaxed);
      std::size_t n = api->upload_precompressed_batch(std::move(batch));
      if (job.level == 0) {
        stored.fetch_add(n, kRelaxed);
        shard_stats_[job.shard]->routed_items.fetch_add(job.idxs.size(),
                                                        kRelaxed);
      } else {
        shard_stats_[job.shard]->replica_items.fetch_add(job.idxs.size(),
                                                         kRelaxed);
      }
      return;
    } catch (const Error& e) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      if (job.level != 0) return;  // backups are best-effort
      // The home shard is down: fall each item forward to its next live
      // replica so the write still lands somewhere.
      for (std::size_t idx : job.idxs) {
        auto reps = ring_.replicas(items[idx].first, replicas_);
        bool placed = false;
        std::string last_err = e.what();
        for (std::size_t level = 1; level < reps.size() && !placed; ++level) {
          try {
            stats_.shard_calls.fetch_add(1, kRelaxed);
            Bytes frame = items[idx].second;
            if (shards_[reps[level]]->upload_precompressed(items[idx].first,
                                                           std::move(frame))) {
              stored.fetch_add(1, kRelaxed);
            }
            stats_.replica_fallbacks.fetch_add(1, kRelaxed);
            placed = true;
          } catch (const Error& e2) {
            stats_.failed_shard_calls.fetch_add(1, kRelaxed);
            last_err = e2.what();
          }
        }
        if (!placed) {
          std::lock_guard<std::mutex> g(mu);
          failures.push_back("fleet: upload of " + items[idx].first.hex() +
                             " failed on all replicas: " + last_err);
        }
      }
    }
  });
  if (!failures.empty()) {
    throw_error(ErrorCode::kInternal, failures.front());
  }
  return static_cast<std::size_t>(stored.load());
}

// ---- rebalance ------------------------------------------------------------

void FleetRegistry::copy_entries(
    FileRegistryApi& src, std::size_t target_id, FileRegistryApi& dst,
    const std::vector<std::pair<Fingerprint, CatalogEntry>>& entries,
    RebalanceReport& rep) {
  constexpr std::size_t kBatch = 64;
  std::vector<Fingerprint> plain;
  auto flush = [&] {
    if (plain.empty()) return;
    std::uint64_t wire = 0;
    stats_.shard_calls.fetch_add(1, kRelaxed);
    auto got = src.download_batch(plain, nullptr, &wire);
    if (!got.ok()) {
      throw Error(got.code(),
                  "fleet rebalance: source read failed: " + got.message());
    }
    std::vector<std::pair<Fingerprint, Bytes>> batch;
    batch.reserve(plain.size());
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < plain.size(); ++i) {
      // compress() is deterministic, so the re-uploaded frame is
      // byte-identical to what the source stores.
      Bytes frame = compress(got.value()[i]);
      moved += frame.size();
      batch.emplace_back(plain[i], std::move(frame));
    }
    stats_.shard_calls.fetch_add(1, kRelaxed);
    dst.upload_precompressed_batch(std::move(batch));
    rep.moved_objects += plain.size();
    rep.moved_bytes += moved;
    stats_.rebalanced_objects.fetch_add(plain.size(), kRelaxed);
    stats_.rebalanced_bytes.fetch_add(moved, kRelaxed);
    shard_stats_[target_id]->rebalanced_in_objects.fetch_add(plain.size(),
                                                             kRelaxed);
    shard_stats_[target_id]->rebalanced_in_bytes.fetch_add(moved, kRelaxed);
    plain.clear();
  };
  for (const auto& [fp, entry] : entries) {
    if (!entry.chunked) {
      plain.push_back(fp);
      if (plain.size() >= kBatch) flush();
      continue;
    }
    auto content = src.download(fp);
    if (!content.ok()) {
      throw Error(content.code(),
                  "fleet rebalance: source read failed: " + content.message());
    }
    stats_.shard_calls.fetch_add(2, kRelaxed);  // download + chunked upload
    dst.upload_chunked(fp, content.value(), entry.policy);
    std::uint64_t wire = content.value().size();
    if (auto s = src.stored_size(fp); s.ok()) wire = s.value();
    rep.moved_objects += 1;
    rep.moved_bytes += wire;
    stats_.rebalanced_objects.fetch_add(1, kRelaxed);
    stats_.rebalanced_bytes.fetch_add(wire, kRelaxed);
    shard_stats_[target_id]->rebalanced_in_objects.fetch_add(1, kRelaxed);
    shard_stats_[target_id]->rebalanced_in_bytes.fetch_add(wire, kRelaxed);
  }
  flush();
}

void FleetRegistry::migrate_delta_locked(
    const HashRing& new_ring, std::size_t target_id,
    const std::vector<std::pair<Fingerprint, CatalogEntry>>& entries,
    RebalanceReport& rep) {
  // Group the movers (objects the new ring assigns to target_id) by their
  // current home so each source serves one batched copy stream.
  std::map<std::size_t, std::vector<std::pair<Fingerprint, CatalogEntry>>>
      by_source;
  for (const auto& entry : entries) {
    ++rep.examined;
    auto new_reps = new_ring.replicas(entry.first, replicas_);
    if (std::find(new_reps.begin(), new_reps.end(), target_id) ==
        new_reps.end()) {
      ++rep.unmoved_objects;
      continue;
    }
    auto old_reps = ring_.replicas(entry.first, replicas_);
    if (std::find(old_reps.begin(), old_reps.end(), target_id) !=
        old_reps.end()) {
      ++rep.unmoved_objects;  // already a replica — nothing to move
      continue;
    }
    if (old_reps.empty()) {
      throw_error(ErrorCode::kInternal,
                  "fleet rebalance: no source for " + entry.first.hex());
    }
    by_source[old_reps[0]].push_back(entry);
  }
  FileRegistryApi& dst = *shards_[target_id];
  for (auto& [sid, group] : by_source) {
    try {
      copy_entries(*shards_[sid], target_id, dst, group, rep);
    } catch (const Error&) {
      stats_.failed_shard_calls.fetch_add(1, kRelaxed);
      // Primary source down: retry each object from any surviving replica.
      for (const auto& entry : group) {
        bool done = false;
        std::string last_err = "no live source";
        for (std::size_t src_id : ring_.replicas(entry.first, replicas_)) {
          if (src_id == target_id) continue;
          try {
            copy_entries(*shards_[src_id], target_id, dst, {entry}, rep);
            done = true;
            break;
          } catch (const Error& e) {
            stats_.failed_shard_calls.fetch_add(1, kRelaxed);
            last_err = e.what();
          }
        }
        if (!done) {
          throw_error(ErrorCode::kInternal,
                      "fleet rebalance: no live source for " +
                          entry.first.hex() + ": " + last_err);
        }
      }
    }
  }
}

std::size_t FleetRegistry::add_shard(FileRegistryApi* shard,
                                     RebalanceReport* report) {
  if (shard == nullptr) {
    throw_error(ErrorCode::kInvalidArgument, "fleet: null shard");
  }
  std::lock_guard<std::mutex> rebalance_lk(rebalance_mutex_);

  // Phase 1 (brief, exclusive): register the shard and snapshot the
  // catalog. The ring stays unchanged, so the new shard receives no
  // routed traffic yet.
  std::size_t id;
  HashRing new_ring;
  std::vector<std::pair<Fingerprint, CatalogEntry>> snapshot;
  {
    std::unique_lock lk(ring_mutex_);
    id = shards_.size();
    shards_.push_back(shard);
    shard_stats_.push_back(std::make_unique<FleetShardStats>());
    new_ring = ring_;
    new_ring.add_shard(id, vnodes_);
    std::lock_guard<std::mutex> cl(catalog_mutex_);
    snapshot.assign(catalog_.begin(), catalog_.end());
  }

  // Phase 2 (shared: the fleet keeps serving on the old ring): copy the
  // ring-delta objects onto the new shard.
  RebalanceReport rep;
  {
    std::shared_lock lk(ring_mutex_);
    migrate_delta_locked(new_ring, id, snapshot, rep);
  }

  // Phase 3 (brief, exclusive): catch up on uploads that raced the copy,
  // then install the new ring.
  {
    std::unique_lock lk(ring_mutex_);
    std::unordered_set<Fingerprint, FingerprintHash> seen;
    seen.reserve(snapshot.size());
    for (const auto& [fp, entry] : snapshot) seen.insert(fp);
    std::vector<std::pair<Fingerprint, CatalogEntry>> late;
    {
      std::lock_guard<std::mutex> cl(catalog_mutex_);
      for (const auto& entry : catalog_) {
        if (!seen.count(entry.first)) late.push_back(entry);
      }
    }
    migrate_delta_locked(new_ring, id, late, rep);
    ring_ = std::move(new_ring);
  }
  if (report) *report = rep;
  return id;
}

RebalanceReport FleetRegistry::remove_shard(std::size_t shard_id) {
  std::lock_guard<std::mutex> rebalance_lk(rebalance_mutex_);
  std::unique_lock lk(ring_mutex_);
  if (shard_id >= shards_.size() || shards_[shard_id] == nullptr ||
      !ring_.contains(shard_id)) {
    throw_error(ErrorCode::kInvalidArgument, "fleet: bad shard id");
  }
  if (ring_.shard_count() <= 1) {
    throw_error(ErrorCode::kInvalidArgument,
                "fleet: cannot remove the last shard");
  }
  HashRing new_ring = ring_;
  new_ring.remove_shard(shard_id);

  // Each object the departing shard replicates gains exactly one new
  // owner (the next distinct shard on the ring walk); copy it there from
  // its current home. Everything else stays put.
  RebalanceReport rep;
  std::vector<std::pair<Fingerprint, CatalogEntry>> snapshot;
  {
    std::lock_guard<std::mutex> cl(catalog_mutex_);
    snapshot.assign(catalog_.begin(), catalog_.end());
  }
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::pair<Fingerprint, CatalogEntry>>>
      moves;  // (source, target) -> entries
  for (const auto& entry : snapshot) {
    ++rep.examined;
    auto old_reps = ring_.replicas(entry.first, replicas_);
    if (std::find(old_reps.begin(), old_reps.end(), shard_id) ==
        old_reps.end()) {
      ++rep.unmoved_objects;
      continue;
    }
    auto new_reps = new_ring.replicas(entry.first, replicas_);
    std::optional<std::size_t> target;
    for (std::size_t r : new_reps) {
      if (std::find(old_reps.begin(), old_reps.end(), r) == old_reps.end()) {
        target = r;
        break;
      }
    }
    if (!target) {
      ++rep.unmoved_objects;  // surviving replicas already cover R copies
      continue;
    }
    moves[{old_reps[0], *target}].push_back(entry);
  }
  for (auto& [key, group] : moves) {
    copy_entries(*shards_[key.first], key.second, *shards_[key.second], group,
                 rep);
  }
  ring_ = std::move(new_ring);
  shards_[shard_id] = nullptr;
  return rep;
}

}  // namespace gear
