#include "gear/committer.hpp"

#include "docker/image.hpp"
#include "gear/converter.hpp"
#include "vfs/tree_diff.hpp"

namespace gear {
namespace {

/// Rebuilds `tree` with every regular file replaced by its stub, collecting
/// (fingerprint, content) pairs for newly extracted files. Whiteouts and
/// opaque markers are preserved (diff trees carry them).
vfs::FileTree stubify(const vfs::FileTree& tree,
                      const FingerprintHasher& hasher,
                      std::vector<std::pair<Fingerprint, Bytes>>* extracted,
                      std::size_t* file_count) {
  vfs::FileTree out;
  out.root().metadata() = tree.root().metadata();
  tree.walk([&](const std::string& path, const vfs::FileNode& node) {
    switch (node.type()) {
      case vfs::NodeType::kDirectory: {
        vfs::FileNode& dir = out.add_directory(path, node.metadata());
        dir.set_opaque(node.opaque());
        break;
      }
      case vfs::NodeType::kSymlink:
        out.add_symlink(path, node.link_target(), node.metadata());
        break;
      case vfs::NodeType::kWhiteout:
        out.add_whiteout(path);
        break;
      case vfs::NodeType::kFingerprint:
        out.add_fingerprint_stub(path, node.fingerprint(), node.stub_size(),
                                 node.metadata());
        break;
      case vfs::NodeType::kRegular: {
        Fingerprint fp = hasher.fingerprint(node.content());
        if (extracted != nullptr) {
          extracted->emplace_back(fp, node.content());
        }
        if (file_count != nullptr) ++*file_count;
        out.add_fingerprint_stub(path, fp, node.content().size(),
                                 node.metadata());
        break;
      }
    }
  });
  return out;
}

}  // namespace

GearCommitter::GearCommitter(const FingerprintHasher& hasher)
    : hasher_(hasher) {}

CommitResult GearCommitter::commit(const vfs::FileTree& index_tree,
                                   const vfs::FileTree& diff,
                                   const docker::ImageConfig& config,
                                   std::string name, std::string tag) const {
  CommitResult result;

  // Normalize the (possibly partially materialized) index back to stubs;
  // those files are already in the registries, so they are not re-extracted.
  vfs::FileTree base = stubify(index_tree, hasher_, nullptr, nullptr);

  // Extract new files from the writable layer and stub them.
  std::vector<std::pair<Fingerprint, Bytes>> extracted;
  vfs::FileTree diff_stubs =
      stubify(diff, hasher_, &extracted, &result.files_extracted);

  // Merge: the new index is the union of the old index and the stubbed diff.
  vfs::FileTree merged = vfs::apply_layer(base, diff_stubs);
  GearIndex new_index{std::move(merged)};

  // Package as a single-layer Docker image (same as the converter).
  docker::ImageConfig cfg = config;
  cfg.labels[kGearIndexLabel] = "1";
  docker::ImageBuilder builder;
  builder.add_snapshot(new_index.to_wire_tree());
  result.image.index_image = builder.build(std::move(name), std::move(tag),
                                           std::move(cfg));
  result.image.index = std::move(new_index);

  // Deduplicate extracted contents by fingerprint.
  std::sort(extracted.begin(), extracted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  extracted.erase(std::unique(extracted.begin(), extracted.end(),
                              [](const auto& a, const auto& b) {
                                return a.first == b.first;
                              }),
                  extracted.end());
  result.image.files = std::move(extracted);
  return result;
}

}  // namespace gear
