#include "gear/index.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace gear {
namespace {

constexpr std::string_view kStubPrefix = "GEARFP1:";

void check_index_tree(const vfs::FileTree& tree) {
  tree.walk([](const std::string& path, const vfs::FileNode& node) {
    if (node.is_regular() || node.is_whiteout()) {
      throw_error(ErrorCode::kInvalidArgument,
                  "gear index may not contain regular files or whiteouts: " +
                      path);
    }
  });
}

}  // namespace

GearIndex::GearIndex(vfs::FileTree tree) : tree_(std::move(tree)) {
  check_index_tree(tree_);
}

GearIndex GearIndex::from_root_fs(
    const vfs::FileTree& root,
    const std::function<Fingerprint(const std::string& path,
                                    const Bytes& content)>& fingerprint_of) {
  vfs::FileTree out;
  out.root().metadata() = root.root().metadata();
  root.walk([&](const std::string& path, const vfs::FileNode& node) {
    switch (node.type()) {
      case vfs::NodeType::kDirectory:
        out.add_directory(path, node.metadata());
        break;
      case vfs::NodeType::kSymlink:
        out.add_symlink(path, node.link_target(), node.metadata());
        break;
      case vfs::NodeType::kRegular: {
        Fingerprint fp = fingerprint_of(path, node.content());
        out.add_fingerprint_stub(path, fp, node.content().size(),
                                 node.metadata());
        break;
      }
      case vfs::NodeType::kWhiteout:
        throw_error(ErrorCode::kInvalidArgument,
                    "root filesystem contains a whiteout: " + path);
      case vfs::NodeType::kFingerprint:
        // Already a stub (re-indexing an index is the identity).
        out.add_fingerprint_stub(path, node.fingerprint(), node.stub_size(),
                                 node.metadata());
        break;
    }
  });
  GearIndex index;
  index.tree_ = std::move(out);
  return index;
}

std::vector<GearIndex::StubRef> GearIndex::stubs() const {
  std::vector<StubRef> out;
  tree_.walk([&out](const std::string& path, const vfs::FileNode& node) {
    if (node.is_fingerprint()) {
      out.push_back({path, node.fingerprint(), node.stub_size()});
    }
  });
  return out;
}

std::vector<Fingerprint> GearIndex::distinct_fingerprints() const {
  std::vector<Fingerprint> fps;
  for (const StubRef& s : stubs()) fps.push_back(s.fingerprint);
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  return fps;
}

std::uint64_t GearIndex::referenced_bytes() const {
  std::uint64_t total = 0;
  for (const StubRef& s : stubs()) total += s.size;
  return total;
}

std::string GearIndex::encode_stub(const Fingerprint& fp, std::uint64_t size) {
  return std::string(kStubPrefix) + fp.hex() + ":" + std::to_string(size) +
         "\n";
}

bool GearIndex::decode_stub(BytesView content, Fingerprint* fp,
                            std::uint64_t* size) {
  std::string_view text(reinterpret_cast<const char*>(content.data()),
                        content.size());
  if (text.rfind(kStubPrefix, 0) != 0) return false;
  text.remove_prefix(kStubPrefix.size());
  if (text.size() < 34 || text[32] != ':') return false;
  std::string_view hex = text.substr(0, 32);
  std::string_view size_str = text.substr(33);
  if (!size_str.empty() && size_str.back() == '\n') {
    size_str.remove_suffix(1);
  }
  std::uint64_t parsed_size = 0;
  auto [p, ec] = std::from_chars(size_str.data(),
                                 size_str.data() + size_str.size(),
                                 parsed_size);
  if (ec != std::errc() || p != size_str.data() + size_str.size()) {
    return false;
  }
  try {
    *fp = Fingerprint::from_hex(hex);
  } catch (const Error&) {
    return false;
  }
  *size = parsed_size;
  return true;
}

vfs::FileTree GearIndex::to_wire_tree() const {
  vfs::FileTree wire;
  wire.root().metadata() = tree_.root().metadata();
  tree_.walk([&](const std::string& path, const vfs::FileNode& node) {
    switch (node.type()) {
      case vfs::NodeType::kDirectory:
        wire.add_directory(path, node.metadata());
        break;
      case vfs::NodeType::kSymlink:
        wire.add_symlink(path, node.link_target(), node.metadata());
        break;
      case vfs::NodeType::kFingerprint:
        wire.add_file(path,
                      to_bytes(encode_stub(node.fingerprint(), node.stub_size())),
                      node.metadata());
        break;
      default:
        throw_error(ErrorCode::kInternal, "invalid node in gear index: " + path);
    }
  });
  return wire;
}

GearIndex GearIndex::from_wire_tree(const vfs::FileTree& wire) {
  vfs::FileTree out;
  out.root().metadata() = wire.root().metadata();
  wire.walk([&](const std::string& path, const vfs::FileNode& node) {
    switch (node.type()) {
      case vfs::NodeType::kDirectory:
        out.add_directory(path, node.metadata());
        break;
      case vfs::NodeType::kSymlink:
        out.add_symlink(path, node.link_target(), node.metadata());
        break;
      case vfs::NodeType::kRegular: {
        Fingerprint fp;
        std::uint64_t size = 0;
        if (!decode_stub(node.content(), &fp, &size)) {
          throw_error(ErrorCode::kCorruptData,
                      "index wire tree has a non-stub regular file: " + path);
        }
        out.add_fingerprint_stub(path, fp, size, node.metadata());
        break;
      }
      default:
        throw_error(ErrorCode::kCorruptData,
                    "unexpected node in index wire tree: " + path);
    }
  });
  GearIndex index;
  index.tree_ = std::move(out);
  return index;
}

}  // namespace gear
