#include "gear/client.hpp"

#include <condition_variable>

#include "compress/codec.hpp"
#include "gear/converter.hpp"

namespace gear {

namespace {
/// Cap on plain files per upload_precompressed_batch round-trip during a
/// push: keeps a single burst's memory and the registry's per-request
/// fan-in bounded.
constexpr std::size_t kMaxUploadBatchFiles = 64;
}  // namespace

/// One in-flight registry download, shared by every concurrent
/// materialization of the same fingerprint.
struct GearClient::Inflight {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Bytes content;
  std::exception_ptr error;
};

std::size_t push_gear_image(const GearImage& image,
                            docker::DockerRegistry& index_registry,
                            FileRegistryApi& file_registry,
                            const ChunkPolicy& chunk_policy,
                            util::ThreadPool* pool,
                            std::uint64_t max_inflight_bytes) {
  // Upload only the Gear files whose fingerprints the registry lacks
  // (paper §III-C: compare fingerprints, upload the absent ones).
  // Presence check: one query_many in file order — a single wire round-trip
  // against a remote registry, the exact per-file query loop in-process.
  std::vector<Fingerprint> all_fps;
  all_fps.reserve(image.files.size());
  for (const auto& [fp, content] : image.files) all_fps.push_back(fp);
  std::vector<std::uint8_t> present = file_registry.query_many(all_fps);

  std::vector<std::uint8_t> missing(image.files.size(), 0);
  std::vector<std::size_t> to_compress;  // plain (non-chunked) absentees
  for (std::size_t i = 0; i < image.files.size(); ++i) {
    if (present[i]) continue;
    missing[i] = 1;
    if (!chunk_policy.applies_to(image.files[i].second.size())) {
      to_compress.push_back(i);
    }
  }

  // Compression of absent plain files: pure CPU, fanned out when a pool is
  // given. compress() is deterministic, so the stored blobs are identical
  // to the serial path's.
  std::vector<Bytes> compressed(image.files.size());
  auto compress_one = [&](std::size_t j) {
    std::size_t i = to_compress[j];
    compressed[i] = compress(image.files[i].second);
  };
  if (pool != nullptr) {
    pool->parallel_for_each(
        to_compress.size(), compress_one, max_inflight_bytes,
        [&](std::size_t j) { return image.files[to_compress[j]].second.size(); });
  } else {
    for (std::size_t j = 0; j < to_compress.size(); ++j) compress_one(j);
  }

  // Insertion round: serial and ordered — plain files group into
  // upload_precompressed_batch bursts (one round-trip each when remote),
  // flushed before any chunked upload so the registry sees every insert in
  // file order and stats/storage accounting match the serial run exactly.
  std::size_t uploaded = 0;
  std::vector<std::pair<Fingerprint, Bytes>> plain_batch;
  auto flush_plain = [&]() {
    if (plain_batch.empty()) return;
    uploaded += plain_batch.size();
    file_registry.upload_precompressed_batch(std::move(plain_batch));
    plain_batch.clear();
  };
  for (std::size_t i = 0; i < image.files.size(); ++i) {
    if (!missing[i]) continue;
    const auto& [fp, content] = image.files[i];
    if (chunk_policy.applies_to(content.size())) {
      flush_plain();
      file_registry.upload_chunked(fp, content, chunk_policy);
      ++uploaded;
    } else {
      plain_batch.emplace_back(fp, std::move(compressed[i]));
      if (plain_batch.size() >= kMaxUploadBatchFiles) flush_plain();
    }
  }
  flush_plain();
  index_registry.push_image(image.index_image);
  return uploaded;
}

GearClient::GearClient(docker::DockerRegistry& index_registry,
                       FileRegistryApi& file_registry, sim::NetworkLink& link,
                       sim::DiskModel& disk, docker::RuntimeParams params,
                       std::uint64_t cache_capacity_bytes,
                       EvictionPolicy policy)
    : index_registry_(index_registry),
      file_registry_(file_registry),
      link_(link),
      disk_(disk),
      params_(params),
      store_(cache_capacity_bytes, policy) {}

docker::PullStats GearClient::pull(const std::string& reference) {
  docker::PullStats stats;
  sim::SimTimer timer(link_.clock());

  StatusOr<docker::Manifest> manifest_or =
      index_registry_.get_manifest(reference);
  if (!manifest_or.ok()) {
    throw_error(manifest_or.code(),
                "pull: manifest of " + reference + ": " +
                    manifest_or.message());
  }
  docker::Manifest manifest = std::move(manifest_or).value();
  link_.request(manifest.wire_size());
  stats.bytes_downloaded += manifest.wire_size();

  if (store_.has_index(reference)) {
    stats.layers_local = manifest.layers.size();
    stats.seconds = timer.elapsed();
    return stats;
  }

  if (manifest.config.labels.count(kGearIndexLabel) == 0) {
    throw_error(ErrorCode::kInvalidArgument,
                reference + " is not a Gear index image");
  }
  if (manifest.layers.size() != 1) {
    throw_error(ErrorCode::kCorruptData,
                "Gear index image must have exactly one layer");
  }

  const docker::LayerDescriptor& desc = manifest.layers.front();
  StatusOr<Bytes> blob_or = index_registry_.get_blob(desc.digest);
  if (!blob_or.ok()) {
    throw_error(blob_or.code(), "pull: index layer " + desc.digest.to_string() +
                                    " of " + reference + ": " +
                                    blob_or.message());
  }
  Bytes blob = std::move(blob_or).value();
  link_.request(blob.size());
  stats.bytes_downloaded += blob.size();
  ++stats.layers_fetched;
  disk_.write(blob.size());

  docker::Layer layer = docker::Layer::from_blob(std::move(blob), desc.digest);
  GearIndex index = GearIndex::from_wire_tree(layer.to_tree());
  disk_.write(layer.uncompressed_size());  // set up the level-2 index dir
  store_.add_index(reference, std::move(index));

  stats.seconds = timer.elapsed();
  return stats;
}

Bytes GearClient::fetch_from_registry(const std::string& reference,
                                      const Fingerprint& fp,
                                      std::uint64_t size,
                                      std::uint64_t* downloaded) {
  // Concurrent callers for the same fingerprint never get here twice — the
  // singleflight layer above admits one leader per flight. The registry is
  // not thread-safe, so leaders of *different* flights serialize their
  // downloads on download_mutex_; it is separate from state_mutex_ so a
  // joiner's cache probe never queues behind a download in progress.
  //
  // Register on the demand lane for the duration of the fetch: a running
  // backfill drain launches no new batch until this fault completes, and
  // the fault's bytes count against the shared in-flight budget.
  DemandScope demand(&demand_lane_, size);
  // Host-wide admission: a demand fault takes the strict-priority lane of
  // the shared budget — admitted ahead of every queued background batch.
  BudgetLease budget(host_budget_, size, AdmissionLane::kDemand, size);
  std::uint64_t wire = 0;
  std::unique_lock<std::mutex> download_lock(download_mutex_);
  StatusOr<std::vector<Bytes>> got =
      file_registry_.download_batch({fp}, nullptr, &wire);
  download_lock.unlock();
  if (!got.ok()) {
    throw_error(got.code(), "materialize " + fp.hex() + ": " + got.message());
  }
  Bytes content = std::move((*got)[0]);
  if (content.size() != size) {
    throw_error(ErrorCode::kCorruptData,
                "gear file size mismatch: " + fp.hex());
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!file_registry_.transport_accounted()) {
    // Chunked files move as one pipelined burst of manifest + chunks.
    if (file_registry_.is_chunked(fp)) {
      StatusOr<ChunkManifest> manifest = file_registry_.chunk_manifest(fp);
      if (!manifest.ok()) {
        throw_error(manifest.code(), "materialize " + fp.hex() +
                                         ": manifest: " + manifest.message());
      }
      link_.pipelined(wire, manifest->chunks.size() + 1);
    } else {
      link_.request(wire);
    }
  }
  *downloaded += wire;
  disk_.write(content.size());
  // A bounded cache may refuse the insert (everything else pinned). The
  // container still gets the file — it lives only in this image's index
  // directory then, unavailable for cross-image sharing.
  if (store_.cache().put(fp, content)) {
    store_.record_link(reference, fp);
  }
  return content;
}

void GearClient::record_access(const std::string& reference,
                               const std::string& path) {
  std::lock_guard<std::mutex> lock(profiles_mutex_);
  profiles_[series_of(reference)].record(path);
}

ImageAccessProfile GearClient::access_profile(const std::string& series) const {
  std::lock_guard<std::mutex> lock(profiles_mutex_);
  auto it = profiles_.find(series);
  return it == profiles_.end() ? ImageAccessProfile{} : it->second;
}

void GearClient::merge_access_profile(const std::string& series,
                                      const ImageAccessProfile& profile) {
  std::lock_guard<std::mutex> lock(profiles_mutex_);
  profiles_[series].merge(profile);
}

Bytes GearClient::materialize(const std::string& reference,
                              const std::string& path, const Fingerprint& fp,
                              std::uint64_t size, std::uint64_t* downloaded,
                              bool record_access_flag) {
  // A materializer call means the index node was still a stub — a genuine
  // first touch of this file, the signal the prefetch scheduler ranks by.
  if (record_access_flag) record_access(reference, path);
  // Level 1 first: the shared cache.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (StatusOr<Bytes> cached = store_.cache().get(fp); cached.ok()) {
      disk_.touch();  // hard-link the cached file into the index
      store_.record_link(reference, fp);
      return std::move(cached).value();
    }
  }
  // Cooperative tiers next (cluster peers, §VI-B) — cheaper than the WAN.
  // Invoked outside the locks: the callbacks may reach into other clients.
  if (has_peer_source()) {
    if (std::optional<Bytes> peer = consult_peer_tiers(fp, size)) {
      if (peer->size() != size) {
        throw_error(ErrorCode::kCorruptData,
                    "peer served wrong size for " + fp.hex());
      }
      std::lock_guard<std::mutex> lock(state_mutex_);
      disk_.write(peer->size());
      if (store_.cache().put(fp, *peer)) {
        store_.record_link(reference, fp);
      }
      return std::move(*peer);
    }
  }

  // Miss: fetch from the Gear Registry on demand — but only once per
  // fingerprint at a time. The first caller becomes the flight's leader and
  // downloads; concurrent callers join the flight and share its content.
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = inflight_.find(fp);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(fp, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> flight_lock(flight->m);
    flight->cv.wait(flight_lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    coalesced_hits_.fetch_add(1, std::memory_order_relaxed);
    // The leader paid the download, disk write, and cache insert; a joiner
    // only hard-links the now-cached file into its own image.
    std::lock_guard<std::mutex> lock(state_mutex_);
    disk_.touch();
    store_.record_link(reference, fp);
    return flight->content;
  }

  try {
    Bytes content = fetch_from_registry(reference, fp, size, downloaded);
    {
      std::lock_guard<std::mutex> flight_lock(flight->m);
      flight->content = content;
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(flights_mutex_);
    inflight_.erase(fp);
    return content;
  } catch (...) {
    {
      std::lock_guard<std::mutex> flight_lock(flight->m);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(flights_mutex_);
    inflight_.erase(fp);
    throw;
  }
}

docker::DeployStats GearClient::deploy(const std::string& reference,
                                       const workload::AccessSet& access,
                                       std::string* container_id_out,
                                       DeployMode mode) {
  docker::DeployStats stats;
  stats.pull = pull(reference);

  sim::SimTimer timer(link_.clock());
  link_.clock().advance(params_.mount_seconds + params_.startup_seconds);

  std::string container_id = store_.create_container(reference);
  if (container_id_out != nullptr) *container_id_out = container_id;

  {
    std::lock_guard<std::mutex> lock(profiles_mutex_);
    profiles_[series_of(reference)].bump_run();
  }

  if (mode == DeployMode::kLazy) {
    // Start-before-warm: the container is ready the moment the (tiny) index
    // is local — nothing is materialized, no access is replayed here. The
    // workload reads through open_viewer()/read_range() and faults files in
    // on demand; backfill_remaining() runs behind those faults.
    container_touched_[container_id] = 0;
    stats.run_seconds = timer.elapsed();
    stats.ready_seconds = stats.pull.seconds + stats.run_seconds;
    return stats;
  }

  std::uint64_t downloaded = 0;
  if (bulk_warm_deploy_) {
    // Bulk portion of deployment: batch-fetch the access set's still-stubbed
    // files into the cache before the replay, so the loop below mostly
    // hard-links instead of paying one round-trip per miss.
    auto [warm_files, warm_bytes] = warm_access(reference, access);
    downloaded += warm_bytes;
    stats.prefetched_files += warm_files;
    stats.prefetched_bytes += warm_bytes;
  }
  stats.ready_seconds = stats.pull.seconds + timer.elapsed();
  GearFileViewer viewer(
      store_.index_tree(reference), store_.container_diff(container_id),
      [&](const std::string& path, const Fingerprint& fp, std::uint64_t size) {
        return materialize(reference, path, fp, size, &downloaded,
                           /*record_access_flag=*/true);
      },
      tree_lock(reference));

  for (const workload::FileAccess& fa : access.files) {
    link_.clock().advance(params_.per_file_open_seconds);
    StatusOr<Bytes> content_or = viewer.read_file(fa.path);
    if (!content_or.ok()) {
      throw_error(content_or.code(), "deploy: read of " + fa.path + " in " +
                                         reference + ": " +
                                         content_or.message());
    }
    Bytes content = std::move(content_or).value();
    if (content.size() != fa.size) {
      throw_error(ErrorCode::kInternal,
                  "access set size mismatch at " + fa.path);
    }
    disk_.read(content.size());
  }

  if (prefetch_after_deploy_) {
    // Background prefetch folded into the deployment window: the priority
    // pipeline closes the lazy-pull availability gap right after startup.
    auto [pre_files, pre_bytes] = prefetch_remaining(reference);
    downloaded += pre_bytes;
    stats.prefetched_files += pre_files;
    stats.prefetched_bytes += pre_bytes;
  }

  container_touched_[container_id] = access.files.size();
  stats.run_bytes_downloaded = downloaded;
  stats.run_seconds = timer.elapsed();
  return stats;
}

GearFileViewer GearClient::open_viewer(const std::string& container_id) {
  const std::string reference = store_.container_image(container_id);
  return GearFileViewer(
      store_.index_tree(reference), store_.container_diff(container_id),
      [this, reference](const std::string& path, const Fingerprint& fp,
                        std::uint64_t size) {
        return materialize(reference, path, fp, size, &untracked_downloaded_,
                           /*record_access_flag=*/true);
      },
      tree_lock(reference));
}

std::mutex* GearClient::tree_lock(const std::string& reference) {
  std::lock_guard<std::mutex> lock(tree_locks_mutex_);
  std::unique_ptr<std::mutex>& slot = tree_locks_[reference];
  if (!slot) slot = std::make_unique<std::mutex>();
  return slot.get();
}

void GearClient::add_peer_source(PeerSource source) {
  if (!source) return;
  if (peer_tiers_.size() >= kMaxPeerTiers) {
    throw_error(ErrorCode::kInvalidArgument,
                "add_peer_source: tier ladder full");
  }
  peer_tiers_.push_back(std::move(source));
}

void GearClient::add_batch_peer_source(BatchPeerSource source) {
  if (!source) return;
  if (batch_peer_tiers_.size() >= kMaxPeerTiers) {
    throw_error(ErrorCode::kInvalidArgument,
                "add_batch_peer_source: tier ladder full");
  }
  batch_peer_tiers_.push_back(std::move(source));
}

std::vector<std::uint64_t> GearClient::peer_tier_hits() const {
  std::vector<std::uint64_t> out(kMaxPeerTiers, 0);
  for (std::size_t t = 0; t < kMaxPeerTiers; ++t) {
    out[t] = peer_tier_hits_[t].load(std::memory_order_relaxed);
  }
  return out;
}

std::optional<Bytes> GearClient::consult_peer_tiers(const Fingerprint& fp,
                                                    std::uint64_t size) {
  for (std::size_t t = 0; t < peer_tiers_.size(); ++t) {
    if (std::optional<Bytes> hit = peer_tiers_[t](fp, size)) {
      peer_hits_.fetch_add(1, std::memory_order_relaxed);
      peer_tier_hits_[t].fetch_add(1, std::memory_order_relaxed);
      return hit;
    }
  }
  return std::nullopt;
}

std::vector<std::optional<Bytes>> GearClient::consult_batch_peer_tiers(
    const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted) {
  std::vector<std::optional<Bytes>> out(wanted.size());
  // Slots every earlier tier missed, as indices into `wanted`.
  std::vector<std::size_t> open(wanted.size());
  for (std::size_t i = 0; i < wanted.size(); ++i) open[i] = i;
  for (std::size_t t = 0; t < batch_peer_tiers_.size() && !open.empty(); ++t) {
    std::vector<std::pair<Fingerprint, std::uint64_t>> ask;
    ask.reserve(open.size());
    for (std::size_t i : open) ask.push_back(wanted[i]);
    std::vector<std::optional<Bytes>> answers = batch_peer_tiers_[t](ask);
    if (answers.size() != ask.size()) {
      throw_error(ErrorCode::kInternal,
                  "batch peer source answered the wrong number of slots");
    }
    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (answers[i].has_value()) {
        peer_hits_.fetch_add(1, std::memory_order_relaxed);
        peer_tier_hits_[t].fetch_add(1, std::memory_order_relaxed);
        out[open[i]] = std::move(answers[i]);
      } else {
        still.push_back(open[i]);
      }
    }
    open = std::move(still);
  }
  return out;
}

util::ThreadPool* GearClient::pool() {
  std::size_t width = concurrency_.resolved_workers();
  if (width <= 1) return nullptr;
  if (!pool_ || pool_->worker_count() != width) {
    pool_ = std::make_unique<util::ThreadPool>(width);
  }
  return pool_.get();
}

std::pair<std::size_t, std::uint64_t> GearClient::warm_access(
    const std::string& reference, const workload::AccessSet& access) {
  vfs::FileTree& index = store_.index_tree(reference);
  std::vector<std::pair<Fingerprint, std::uint64_t>> wanted;
  std::unordered_set<Fingerprint, FingerprintHash> seen;
  for (const workload::FileAccess& fa : access.files) {
    const vfs::FileNode* node = index.lookup(fa.path);
    if (node != nullptr && node->is_fingerprint() &&
        seen.insert(node->fingerprint()).second) {
      wanted.emplace_back(node->fingerprint(), node->stub_size());
    }
  }
  return warm_batch(wanted);
}

std::pair<std::size_t, std::uint64_t> GearClient::warm_batch(
    const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted,
    bool backfill) {
  std::size_t fetched = 0;
  std::uint64_t bytes = 0;
  // Transport-backed registries charge the link per frame themselves, and
  // asking them for per-file stored sizes or chunk shapes would cost the
  // very round-trips batching is here to remove — budget batches by the
  // stub sizes the index already knows instead.
  const bool remote = file_registry_.transport_accounted();

  // Drop what the cache already holds, then let the batched cooperative
  // source answer the rest in one burst before anything reaches the wire.
  std::vector<std::pair<Fingerprint, std::uint64_t>> misses;
  for (const auto& [fp, size] : wanted) {
    if (!store_.cache().contains(fp)) misses.emplace_back(fp, size);
  }
  if (has_batch_peer_source() && !misses.empty()) {
    std::vector<std::optional<Bytes>> from_peers =
        consult_batch_peer_tiers(misses);
    std::vector<std::pair<Fingerprint, std::uint64_t>> still;
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      if (!from_peers[i].has_value()) {
        still.push_back(misses[i]);
        continue;
      }
      if (from_peers[i]->size() != misses[i].second) {
        throw_error(ErrorCode::kCorruptData,
                    "peer served wrong size for " + misses[i].first.hex());
      }
      disk_.write(from_peers[i]->size());
      store_.cache().put(misses[i].first, std::move(*from_peers[i]));
    }
    misses = std::move(still);
  }

  // Batch formation: the exact historical boundaries — download_batch_files
  // per round-trip, cut early when the estimated wire bytes reach the
  // in-flight budget. Only formation happens here; fetching moves to the
  // drain pipeline below.
  std::vector<PrefetchBatch> batches;
  PrefetchBatch batch;
  auto cut = [&]() {
    if (batch.fps.empty()) return;
    batches.push_back(std::move(batch));
    batch = PrefetchBatch{};
  };
  for (const auto& [fp, size] : misses) {
    // Per-file cooperative tiers next, as in the on-demand path (§VI-B).
    if (has_peer_source()) {
      if (std::optional<Bytes> peer = consult_peer_tiers(fp, size)) {
        if (peer->size() != size) {
          throw_error(ErrorCode::kCorruptData,
                      "peer served wrong size for " + fp.hex());
        }
        std::lock_guard<std::mutex> lock(state_mutex_);
        disk_.write(peer->size());
        store_.cache().put(fp, std::move(*peer));
        continue;
      }
    }
    std::uint64_t wire;
    std::uint64_t requests;
    if (remote) {
      wire = size;  // budget by stub size; compressed payload is smaller
      requests = 1;
    } else {
      StatusOr<std::uint64_t> stored = file_registry_.stored_size(fp);
      if (!stored.ok()) {
        throw_error(stored.code(),
                    "bulk fetch of " + fp.hex() + ": " + stored.message());
      }
      wire = *stored;
      // A chunked file still moves as manifest + chunk requests inside the
      // shared pipeline (same request count the on-demand path charges).
      requests = 1;
      if (file_registry_.is_chunked(fp)) {
        StatusOr<ChunkManifest> manifest = file_registry_.chunk_manifest(fp);
        if (!manifest.ok()) {
          throw_error(manifest.code(), "bulk fetch of " + fp.hex() +
                                           ": manifest: " + manifest.message());
        }
        requests = manifest->chunks.size() + 1;
      }
    }
    // Under a host budget, cut BEFORE a batch would outgrow the whole
    // budget: an admission request larger than the budget only starts on an
    // idle host, which would let the peak exceed the envelope. (The
    // per-client cap below keeps its historical cut-after-overflow
    // boundaries, byte-identical when no budget is attached.)
    if (host_budget_ != nullptr && host_budget_->budget_bytes() != 0 &&
        !batch.fps.empty() &&
        batch.wire_estimate + wire > host_budget_->budget_bytes()) {
      cut();
    }
    batch.fps.push_back(fp);
    batch.sizes.push_back(size);
    batch.wire_estimate += wire;
    batch.requests += requests;
    if (batch.fps.size() >= batch_files_ ||
        (concurrency_.max_inflight_bytes != 0 &&
         batch.wire_estimate >= concurrency_.max_inflight_bytes)) {
      cut();
    }
  }
  cut();

  // Smallest-remaining-first key for host-wide admission: this drain's
  // not-yet-accounted wire bytes. Fetch stages read it when requesting
  // admission; accounting decrements it, so a deploy nearing completion
  // ranks ahead of one just starting.
  std::atomic<std::uint64_t> remaining_wire{0};
  for (const auto& b : batches) {
    remaining_wire.fetch_add(b.wire_estimate, std::memory_order_relaxed);
  }

  // Backfill coordination state: fingerprints this drain has claimed as
  // singleflight flights (fetch stage claims, accounting publishes).
  // Guarded by its own mutex — fetch stages run on pool workers.
  std::mutex claimed_mutex;
  std::unordered_map<Fingerprint, std::shared_ptr<Inflight>, FingerprintHash>
      claimed;
  auto publish_flight = [&](const Fingerprint& fp, const Bytes* content,
                            std::exception_ptr error) {
    std::shared_ptr<Inflight> flight;
    {
      std::lock_guard<std::mutex> lock(claimed_mutex);
      auto it = claimed.find(fp);
      if (it == claimed.end()) return;
      flight = std::move(it->second);
      claimed.erase(it);
    }
    {
      std::lock_guard<std::mutex> flight_lock(flight->m);
      if (content != nullptr) flight->content = *content;
      flight->error = error;
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(flights_mutex_);
    inflight_.erase(fp);
  };

  // Two-stage drain: wire round-trips (+ decompression) overlapped across
  // the pool, accounting serialized in batch order. Accounting takes
  // state_mutex_ — prefetch may run concurrently with on-demand viewer
  // faults, and the sim models/store are not thread-safe.
  auto fetch_stage = [&, this](const PrefetchBatch& b,
                               util::ThreadPool* p) -> FetchedBatch {
    std::vector<Fingerprint> to_fetch = b.fps;
    std::vector<std::uint8_t> mask;
    if (backfill) {
      // Claim each member as a singleflight flight. A member a demand
      // fault (or another drain) is already fetching — or one the fault
      // already landed in the cache — is dropped from this wire request:
      // the fault's copy serves everyone, no file moves twice.
      mask.assign(b.fps.size(), 0);
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        for (std::size_t i = 0; i < b.fps.size(); ++i) {
          mask[i] = store_.cache().contains(b.fps[i]) ? 0 : 1;
        }
      }
      {
        std::lock_guard<std::mutex> lock(flights_mutex_);
        for (std::size_t i = 0; i < b.fps.size(); ++i) {
          if (!mask[i]) continue;
          auto [it, inserted] =
              inflight_.emplace(b.fps[i], std::shared_ptr<Inflight>());
          if (!inserted) {
            mask[i] = 0;  // a demand fault owns this fingerprint
            continue;
          }
          it->second = std::make_shared<Inflight>();
          std::lock_guard<std::mutex> claim_lock(claimed_mutex);
          claimed.emplace(b.fps[i], it->second);
        }
      }
      to_fetch.clear();
      for (std::size_t i = 0; i < b.fps.size(); ++i) {
        if (mask[i]) to_fetch.push_back(b.fps[i]);
      }
      if (to_fetch.empty()) {
        FetchedBatch empty;
        empty.contents.resize(b.fps.size());
        empty.fetched = std::move(mask);
        return empty;
      }
    }
    // Host-wide admission: stage this batch's download+decompression bytes
    // under the shared budget (background lane, keyed by the deploy's
    // remaining bytes). The lease rides inside the FetchedBatch so it is
    // returned only after accounting — and on any error/drop path via its
    // destructor.
    std::shared_ptr<void> lease = make_budget_lease(
        host_budget_, b.wire_estimate, AdmissionLane::kBackground,
        remaining_wire.load(std::memory_order_relaxed));
    std::uint64_t wire = 0;
    StatusOr<std::vector<Bytes>> got =
        file_registry_.download_batch(to_fetch, p, &wire);
    if (!got.ok()) {
      if (backfill) {
        // Release this batch's claims so a waiting demand fault retries
        // as its own leader instead of hanging.
        std::exception_ptr error = std::make_exception_ptr(
            Error(got.code(), "bulk fetch failed: " + got.message()));
        for (std::size_t i = 0; i < b.fps.size(); ++i) {
          if (mask[i]) publish_flight(b.fps[i], nullptr, error);
        }
      }
      throw_error(got.code(),
                  "bulk fetch of " + std::to_string(to_fetch.size()) +
                      " gear files failed: " + got.message());
    }
    FetchedBatch landed;
    landed.budget_lease = std::move(lease);
    landed.wire_bytes = wire;
    if (!backfill) {
      landed.contents = std::move(got).value();
    } else {
      landed.contents.resize(b.fps.size());
      std::size_t j = 0;
      for (std::size_t i = 0; i < b.fps.size(); ++i) {
        if (mask[i]) landed.contents[i] = std::move((*got)[j++]);
      }
      landed.fetched = std::move(mask);
    }
    return landed;
  };
  auto account_stage = [&](const PrefetchBatch& b, FetchedBatch landed) {
    remaining_wire.fetch_sub(b.wire_estimate, std::memory_order_relaxed);
    const bool all = landed.fetched.empty();
    std::size_t members = 0;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      for (std::size_t i = 0; i < b.fps.size(); ++i) {
        if (!all && !landed.fetched[i]) continue;
        ++members;
      }
      // One pipelined burst on the link, then per-file disk writes and
      // cache inserts, in batch order. When the backfill dropped members a
      // demand fault owned, charge one request per file actually moved
      // (the per-member chunk-burst split is no longer recoverable).
      if (!remote && members > 0) {
        link_.pipelined(landed.wire_bytes, all ? b.requests : members);
      }
      bytes += landed.wire_bytes;
      fetched += members;
      for (std::size_t i = 0; i < b.fps.size(); ++i) {
        if (!all && !landed.fetched[i]) continue;
        if (landed.contents[i].size() != b.sizes[i]) {
          throw_error(ErrorCode::kCorruptData,
                      "gear file size mismatch: " + b.fps[i].hex());
        }
        disk_.write(landed.contents[i].size());
        store_.cache().put(b.fps[i], landed.contents[i]);
        if (prefetch_observer_) {
          prefetch_observer_(b.fps[i], b.sizes[i], link_.clock().now());
        }
      }
    }
    if (backfill) {
      // Publish outside state_mutex_: joiners immediately re-take it for
      // their hard-link accounting.
      for (std::size_t i = 0; i < b.fps.size(); ++i) {
        if (all || landed.fetched[i]) {
          publish_flight(b.fps[i], &landed.contents[i], nullptr);
        }
      }
    }
  };
  try {
    drain_batches(batches, pool(), concurrency_.max_inflight_bytes,
                  fetch_stage, account_stage,
                  backfill ? &demand_lane_ : nullptr);
  } catch (...) {
    // Batches fetched but never accounted (an earlier batch failed) still
    // hold claimed flights; fail them so no joiner waits forever.
    std::vector<Fingerprint> leftover;
    {
      std::lock_guard<std::mutex> lock(claimed_mutex);
      for (const auto& [fp, flight] : claimed) leftover.push_back(fp);
    }
    std::exception_ptr error = std::current_exception();
    for (const Fingerprint& fp : leftover) {
      publish_flight(fp, nullptr, error);
    }
    throw;
  }
  return {fetched, bytes};
}

PrefetchPlan GearClient::plan_prefetch(const std::string& reference) {
  const vfs::FileTree& index = store_.index_tree(reference);
  const vfs::FileTree* previous = nullptr;
  ImageAccessProfile profile_copy;
  const ImageAccessProfile* profile = nullptr;
  if (prefetch_order_ != PrefetchOrder::kPath) {
    // The delta baseline: the newest *other* locally-installed version of
    // this series — the image a rolling update is most likely moving from.
    std::string prev = newest_other_version(store_.images(), reference);
    if (!prev.empty()) previous = &store_.index_tree(prev);
    if (prefetch_order_ == PrefetchOrder::kProfile) {
      profile_copy = access_profile(series_of(reference));
      if (!profile_copy.empty()) profile = &profile_copy;
    }
  }
  return build_prefetch_plan(index, prefetch_order_, previous, profile);
}

std::pair<std::size_t, std::uint64_t> GearClient::prefetch_remaining(
    const std::string& reference) {
  return prefetch_impl(reference, /*backfill=*/false);
}

std::pair<std::size_t, std::uint64_t> GearClient::backfill_remaining(
    const std::string& reference) {
  return prefetch_impl(reference, /*backfill=*/true);
}

std::pair<std::size_t, std::uint64_t> GearClient::prefetch_impl(
    const std::string& reference, bool backfill) {
  vfs::FileTree& index = store_.index_tree(reference);

  // Cheap membership pass first: collect the still-stubbed paths
  // (materialization mutates the tree) and whether any is missing from the
  // cache. A fully-local image returns immediately; a fully-cached one
  // skips plan building and the wire phase and goes straight to linking.
  // Backfill walks under the tree lock — concurrent demand faults swap
  // stubs for regular files while this runs.
  std::vector<std::string> pending;
  bool any_uncached = false;
  {
    std::unique_lock<std::mutex> tlock;
    if (backfill) tlock = std::unique_lock<std::mutex>(*tree_lock(reference));
    index.walk([&](const std::string& path, const vfs::FileNode& node) {
      if (!node.is_fingerprint()) return;
      pending.push_back(path);
      if (!any_uncached && !store_.cache().contains(node.fingerprint())) {
        any_uncached = true;
      }
    });
  }
  if (pending.empty()) return {0, 0};

  // Bulk fetch into the shared cache in priority order: pipelined batches,
  // overlapped decompression, serialized accounting. A backfill drain runs
  // at strictly lower priority: demand faults preempt it for the link and
  // the in-flight byte budget, and its batch members are claimed as
  // singleflight flights so no file is fetched by both paths.
  std::size_t fetched = 0;
  std::uint64_t bytes = 0;
  if (any_uncached) {
    PrefetchPlan plan;
    {
      std::unique_lock<std::mutex> tlock;
      if (backfill) tlock = std::unique_lock<std::mutex>(*tree_lock(reference));
      plan = plan_prefetch(reference);
    }
    std::vector<std::pair<Fingerprint, std::uint64_t>> wanted;
    wanted.reserve(plan.items.size());
    for (const PrefetchItem& item : plan.items) {
      wanted.emplace_back(item.fingerprint, item.size);
    }
    std::tie(fetched, bytes) = warm_batch(wanted, backfill);
  }

  // Hard-link every pending path from the now-warm cache. If a bounded
  // cache rejected a warm insert, the per-file on-demand path takes over
  // for that file (and its cost is charged as such). This sweep is not a
  // workload signal — it must not feed the access profile. Paths a demand
  // fault already materialized resolve as plain hits and are skipped.
  std::uint64_t extra = 0;
  vfs::FileTree scratch_diff;  // viewer needs an upper layer; stays empty
  GearFileViewer viewer(
      index, scratch_diff,
      [&](const std::string& path, const Fingerprint& fp, std::uint64_t size) {
        return materialize(reference, path, fp, size, &extra,
                           /*record_access_flag=*/false);
      },
      backfill ? tree_lock(reference) : nullptr);
  for (const std::string& path : pending) {
    std::uint64_t before = extra;
    StatusOr<Bytes> content = viewer.read_file(path);
    if (!content.ok()) {
      throw_error(content.code(),
                  "prefetch of " + path + " failed: " + content.message());
    }
    if (extra != before) ++fetched;
  }
  return {fetched, bytes + extra};
}

StatusOr<Bytes> GearClient::read_range(const std::string& container_id,
                                       std::string_view path,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  if (length == 0) {
    return {ErrorCode::kInvalidArgument, "read_range: zero length"};
  }
  const std::string reference = store_.container_image(container_id);

  // Writable layer first (a modified file's new content wins).
  auto slice_of = [&](const Bytes& content) -> StatusOr<Bytes> {
    if (offset + length > content.size()) {
      return {ErrorCode::kInvalidArgument, "read_range: out of bounds"};
    }
    disk_.read(length);
    return Bytes(content.begin() + static_cast<std::ptrdiff_t>(offset),
                 content.begin() + static_cast<std::ptrdiff_t>(offset + length));
  };

  if (const vfs::FileNode* d = store_.container_diff(container_id).lookup(path)) {
    if (d->is_whiteout()) {
      return {ErrorCode::kNotFound, "no such file: " + std::string(path)};
    }
    if (!d->is_regular()) {
      return {ErrorCode::kInvalidArgument,
              "not a regular file: " + std::string(path)};
    }
    link_.clock().advance(params_.per_file_open_seconds);
    return slice_of(d->content());
  }

  // Capture everything needed from the index node under the tree lock and
  // never touch the node again — a concurrent backfill sweep may swap the
  // stub for a regular file the moment the lock drops.
  Fingerprint fp;
  std::uint64_t stub_size = 0;
  {
    std::lock_guard<std::mutex> tlock(*tree_lock(reference));
    const vfs::FileNode* node = store_.index_tree(reference).lookup(path);
    if (node == nullptr) {
      return {ErrorCode::kNotFound, "no such file: " + std::string(path)};
    }
    link_.clock().advance(params_.per_file_open_seconds);
    if (node->is_regular()) {
      return slice_of(node->content());  // already materialized
    }
    if (!node->is_fingerprint()) {
      return {ErrorCode::kInvalidArgument,
              "not a regular file: " + std::string(path)};
    }
    fp = node->fingerprint();
    stub_size = node->stub_size();
  }
  if (offset + length > stub_size) {
    return {ErrorCode::kInvalidArgument, "read_range: out of bounds"};
  }

  // Whole file already in the shared cache?
  if (StatusOr<Bytes> cached = store_.cache().get(fp); cached.ok()) {
    return slice_of(*cached);
  }

  if (!file_registry_.is_chunked(fp)) {
    // Plain object: materialize fully (the classic path), then slice.
    Bytes whole = materialize(reference, std::string(path), fp, stub_size,
                              &range_downloaded_,
                              /*record_access_flag=*/true);
    return slice_of(whole);
  }

  // Chunked: fetch the manifest once per client, then only covering chunks.
  const bool remote = file_registry_.transport_accounted();
  auto mit = manifest_cache_.find(fp);
  if (mit == manifest_cache_.end()) {
    StatusOr<ChunkManifest> got = file_registry_.chunk_manifest(fp);
    if (!got.ok()) {
      return {got.code(),
              "read_range: manifest of " + fp.hex() + ": " + got.message()};
    }
    ChunkManifest manifest = std::move(got).value();
    std::uint64_t manifest_wire = manifest.serialize().size();
    if (!remote) link_.request(manifest_wire);
    range_downloaded_ += manifest_wire;
    mit = manifest_cache_.emplace(fp, std::move(manifest)).first;
  }
  const ChunkManifest& manifest = mit->second;
  auto [first, last] = manifest.chunk_range(offset, length);

  // Gather pass 1 — the shared cache.
  std::vector<Bytes> pieces(last - first + 1);
  std::vector<std::uint32_t> missing;  // chunk indices still to fetch
  for (std::size_t c = first; c <= last; ++c) {
    if (StatusOr<Bytes> cached = store_.cache().get(manifest.chunks[c]);
        cached.ok()) {
      disk_.touch();
      pieces[c - first] = std::move(cached).value();
    } else {
      missing.push_back(static_cast<std::uint32_t>(c));
    }
  }

  // Gather pass 2 — one batched peer probe for every missing chunk. Peers
  // serve chunk fingerprints from their shared caches exactly like whole
  // files; a miss falls through to the registry.
  if (has_batch_peer_source() && !missing.empty()) {
    std::vector<std::pair<Fingerprint, std::uint64_t>> ask;
    ask.reserve(missing.size());
    for (std::uint32_t c : missing) {
      std::uint64_t chunk_off =
          static_cast<std::uint64_t>(c) * manifest.chunk_bytes;
      ask.emplace_back(manifest.chunks[c],
                       std::min<std::uint64_t>(manifest.chunk_bytes,
                                               manifest.file_size - chunk_off));
    }
    std::vector<std::optional<Bytes>> from_peers =
        consult_batch_peer_tiers(ask);
    std::vector<std::uint32_t> still;
    for (std::size_t i = 0; i < missing.size(); ++i) {
      if (!from_peers[i].has_value()) {
        still.push_back(missing[i]);
        continue;
      }
      if (from_peers[i]->size() != ask[i].second) {
        return {ErrorCode::kCorruptData,
                "peer served wrong size for " + ask[i].first.hex()};
      }
      disk_.write(from_peers[i]->size());
      store_.cache().put(ask[i].first, *from_peers[i]);
      pieces[missing[i] - first] = std::move(*from_peers[i]);
    }
    missing = std::move(still);
  }

  // Gather pass 3 — the registry, ⌈missing/batch⌉ download_chunks calls: one
  // kDownloadChunks frame each against a remote registry, an ordered
  // per-chunk loop in-process (byte- and stats-identical to serial fetches).
  // A range demand preempts any backfill drain for its whole fetch window.
  std::uint64_t missing_bytes = 0;
  for (std::uint32_t c : missing) {
    std::uint64_t chunk_off =
        static_cast<std::uint64_t>(c) * manifest.chunk_bytes;
    missing_bytes += std::min<std::uint64_t>(manifest.chunk_bytes,
                                             manifest.file_size - chunk_off);
  }
  DemandScope demand(missing.empty() ? nullptr : &demand_lane_, missing_bytes);
  // Range faults are demand traffic: stage the missing chunk bytes on the
  // host budget's strict-priority lane for the whole gathering window.
  BudgetLease range_budget(missing.empty() ? nullptr : host_budget_,
                           missing_bytes, AdmissionLane::kDemand,
                           missing_bytes);
  for (std::size_t b = 0; b < missing.size(); b += range_batch_chunks_) {
    std::vector<std::uint32_t> batch(
        missing.begin() + static_cast<std::ptrdiff_t>(b),
        missing.begin() + static_cast<std::ptrdiff_t>(
                              std::min(b + range_batch_chunks_, missing.size())));
    std::uint64_t wire = 0;
    StatusOr<std::vector<Bytes>> got =
        file_registry_.download_chunks(fp, manifest, batch, &wire);
    if (!got.ok()) {
      return {got.code(), "read_range: " + got.message()};
    }
    if (!remote) {
      if (batch.size() > 1) {
        link_.pipelined(wire, batch.size());
      } else {
        link_.request(wire);
      }
    }
    range_downloaded_ += wire;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Bytes& chunk = (*got)[i];
      disk_.write(chunk.size());
      store_.cache().put(manifest.chunks[batch[i]], chunk);
      pieces[batch[i] - first] = std::move(chunk);
    }
  }

  Bytes assembled;
  for (const Bytes& piece : pieces) append(assembled, piece);
  std::uint64_t skip = offset - static_cast<std::uint64_t>(first) * manifest.chunk_bytes;
  disk_.read(length);
  return Bytes(assembled.begin() + static_cast<std::ptrdiff_t>(skip),
               assembled.begin() + static_cast<std::ptrdiff_t>(skip + length));
}

double GearClient::destroy(const std::string& container_id) {
  auto it = container_touched_.find(container_id);
  std::size_t touched = it == container_touched_.end() ? 0 : it->second;
  double seconds =
      params_.teardown_fixed_seconds +
      static_cast<double>(touched) * params_.per_inode_teardown_seconds;
  link_.clock().advance(seconds);
  store_.remove_container(container_id);
  container_touched_.erase(container_id);
  return seconds;
}

void GearClient::remove_image(const std::string& reference) {
  store_.remove_image(reference);
}

void GearClient::clear_all_local_state() {
  for (const std::string& ref : store_.images()) {
    store_.remove_image(ref);
  }
  store_.cache().clear_unpinned();
  container_touched_.clear();
}

}  // namespace gear
