// Registry-side conversion service (paper §III-B).
//
// "Gear Converter is responsible for automatically building a Gear image
//  from a Docker image. It is in Docker Registry. ... The conversion of an
//  image is performed only once. It is carried out in advance which will
//  not affect the pulling of the corresponding Gear image."
//
// The service fronts a classic Docker registry: images are pushed to it as
// usual; it converts each newly arrived image exactly once (keyed by the
// image's layer digests, so re-pushes and re-tags skip conversion) and
// publishes the index image + Gear files to the Gear-side registries. The
// original classic image can optionally be dropped after conversion
// ("managers can remove the original image if they want to save space").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "docker/registry.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"

namespace gear {

struct ConversionServiceStats {
  std::size_t images_received = 0;
  std::size_t conversions_performed = 0;
  std::size_t conversions_skipped = 0;  // identical layer set seen before
  std::size_t files_uploaded = 0;
  std::uint64_t bytes_seen = 0;
};

class ConversionService {
 public:
  struct Options {
    /// Drop the classic image's manifest after conversion (its layers are
    /// reclaimed by DockerRegistry::collect_garbage()).
    bool drop_original = false;
    /// Chunking policy applied to converted files (disabled by default).
    ChunkPolicy chunk_policy = {};
    /// Worker budget for per-file fingerprinting and compression. Results
    /// are byte-identical at any width; defaults to the machine.
    util::Concurrency concurrency = {};
  };

  /// `file_registry` may be any FileRegistryApi: an in-process GearRegistry
  /// over any storage backend, or a RemoteGearRegistry stub when the
  /// converter publishes to a wire-served registry.
  ConversionService(docker::DockerRegistry& classic_registry,
                    docker::DockerRegistry& index_registry,
                    FileRegistryApi& file_registry, Options options);

  // Default-options overload (a defaulted Options argument cannot appear
  // inside the enclosing class while Options is still incomplete).
  ConversionService(docker::DockerRegistry& classic_registry,
                    docker::DockerRegistry& index_registry,
                    FileRegistryApi& file_registry)
      : ConversionService(classic_registry, index_registry, file_registry,
                          Options()) {}

  /// Accepts a classic image push and converts it (once per distinct layer
  /// set). Returns the converted reference.
  std::string receive_image(const docker::Image& image);

  /// Converts every image already in the classic registry that has not
  /// been converted yet (bulk migration). Returns how many were converted.
  std::size_t convert_backlog();

  const ConversionServiceStats& stats() const noexcept { return stats_; }

 private:
  /// Conversion identity: the ordered layer digests of an image.
  static std::string layer_key(const docker::Manifest& manifest);

  /// Pool shared by the service's uploads (the converter manages its own).
  util::ThreadPool* pool();

  docker::DockerRegistry& classic_registry_;
  docker::DockerRegistry& index_registry_;
  FileRegistryApi& file_registry_;
  Options options_;
  GearConverter converter_;
  std::unique_ptr<util::ThreadPool> pool_;  // lazily built
  /// layer-set key -> index reference already produced.
  std::map<std::string, std::string> converted_;
  ConversionServiceStats stats_;
};

}  // namespace gear
