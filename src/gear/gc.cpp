#include "gear/gc.hpp"

#include "docker/layer.hpp"
#include "gear/converter.hpp"
#include "gear/index.hpp"

namespace gear {

std::unordered_set<Fingerprint, FingerprintHash> GearRegistryGc::mark() const {
  std::unordered_set<Fingerprint, FingerprintHash> live;
  for (const std::string& ref : index_registry_.list_manifests()) {
    docker::Manifest manifest = unwrap(index_registry_.get_manifest(ref),
                                       "gc mark: manifest " + ref);
    if (manifest.config.labels.count(kGearIndexLabel) == 0) {
      continue;  // classic image: references no Gear files
    }
    if (manifest.layers.size() != 1) continue;
    StatusOr<Bytes> blob = index_registry_.get_blob(manifest.layers[0].digest);
    if (!blob.ok()) continue;  // dangling manifest: nothing to mark
    docker::Layer layer = docker::Layer::from_blob(std::move(blob).value());
    GearIndex index = GearIndex::from_wire_tree(layer.to_tree());
    for (const Fingerprint& fp : index.distinct_fingerprints()) {
      live.insert(fp);
      // A chunked file keeps its manifest AND every chunk alive.
      if (file_registry_.is_chunked(fp)) {
        StatusOr<ChunkManifest> cm = file_registry_.chunk_manifest(fp);
        if (cm.ok()) {
          for (const Fingerprint& chunk_fp : cm->chunks) {
            live.insert(chunk_fp);
          }
        }
      }
    }
  }
  return live;
}

GcReport GearRegistryGc::collect() {
  GcReport report;
  for (const std::string& ref : index_registry_.list_manifests()) {
    docker::Manifest manifest = unwrap(index_registry_.get_manifest(ref),
                                       "gc scan: manifest " + ref);
    if (manifest.config.labels.count(kGearIndexLabel) != 0) {
      ++report.indexes_scanned;
    }
  }

  std::unordered_set<Fingerprint, FingerprintHash> live = mark();
  report.live_objects = live.size();

  // Sweep manifests first (so a dead chunked file's chunks are judged by
  // the mark set alone), then plain/chunk objects.
  for (const Fingerprint& fp : file_registry_.list_chunked()) {
    if (live.count(fp) != 0) continue;
    report.bytes_reclaimed += file_registry_.remove(fp);
    ++report.swept_objects;
  }
  for (const Fingerprint& fp : file_registry_.list_objects()) {
    if (live.count(fp) != 0) continue;
    report.bytes_reclaimed += file_registry_.remove(fp);
    ++report.swept_objects;
  }
  return report;
}

ScrubReport scrub_registry(const GearRegistry& registry,
                           const FingerprintHasher& hasher) {
  ScrubReport report;
  auto check = [&](const Fingerprint& fp) {
    ++report.objects_checked;
    StatusOr<Bytes> content = registry.download(fp);
    if (!content.ok()) {
      ++report.corrupt;
      report.corrupt_fingerprints.push_back(fp);
      return;
    }
    if (hasher.fingerprint(*content) == fp) {
      ++report.verified;
    } else {
      ++report.unverifiable;
    }
  };
  for (const Fingerprint& fp : registry.list_objects()) check(fp);
  for (const Fingerprint& fp : registry.list_chunked()) check(fp);
  return report;
}

}  // namespace gear
