#include "gear/object_store.hpp"

#include <mutex>

#include "util/file_io.hpp"

namespace gear {
namespace fs = std::filesystem;

// ------------------------------------------------------------------ memory

bool MemoryObjectStore::contains(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  return shard.objects.count(fp) != 0;
}

bool MemoryObjectStore::put_if_absent(const Fingerprint& fp, Bytes compressed) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto [it, inserted] = shard.objects.emplace(fp, std::move(compressed));
  if (!inserted) return false;
  stored_bytes_.fetch_add(it->second.size(), std::memory_order_relaxed);
  return true;
}

StatusOr<Bytes> MemoryObjectStore::get(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  auto it = shard.objects.find(fp);
  if (it == shard.objects.end()) {
    return {ErrorCode::kNotFound, "object not found: " + fp.hex()};
  }
  return it->second;
}

StatusOr<std::uint64_t> MemoryObjectStore::object_size(
    const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  auto it = shard.objects.find(fp);
  if (it == shard.objects.end()) {
    return {ErrorCode::kNotFound, "object not found: " + fp.hex()};
  }
  return it->second.size();
}

std::uint64_t MemoryObjectStore::erase(const Fingerprint& fp) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto it = shard.objects.find(fp);
  if (it == shard.objects.end()) return 0;
  std::uint64_t freed = it->second.size();
  shard.objects.erase(it);
  stored_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::vector<Fingerprint> MemoryObjectStore::list_objects() const {
  std::vector<Fingerprint> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [fp, blob] : shard.objects) {
      (void)blob;
      out.push_back(fp);
    }
  }
  return out;
}

std::size_t MemoryObjectStore::object_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    n += shard.objects.size();
  }
  return n;
}

bool MemoryObjectStore::contains_manifest(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  return shard.manifests.count(fp) != 0;
}

bool MemoryObjectStore::put_manifest_if_absent(const Fingerprint& fp,
                                               const ChunkManifest& manifest) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto [it, inserted] = shard.manifests.emplace(fp, manifest);
  if (!inserted) return false;
  stored_bytes_.fetch_add(it->second.serialize().size(),
                          std::memory_order_relaxed);
  return true;
}

StatusOr<ChunkManifest> MemoryObjectStore::get_manifest(
    const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  auto it = shard.manifests.find(fp);
  if (it == shard.manifests.end()) {
    return {ErrorCode::kNotFound, "manifest not found: " + fp.hex()};
  }
  return it->second;
}

std::uint64_t MemoryObjectStore::erase_manifest(const Fingerprint& fp) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto it = shard.manifests.find(fp);
  if (it == shard.manifests.end()) return 0;
  std::uint64_t freed = it->second.serialize().size();
  shard.manifests.erase(it);
  stored_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::vector<Fingerprint> MemoryObjectStore::list_manifests() const {
  std::vector<Fingerprint> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [fp, manifest] : shard.manifests) {
      (void)manifest;
      out.push_back(fp);
    }
  }
  return out;
}

std::size_t MemoryObjectStore::manifest_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    n += shard.manifests.size();
  }
  return n;
}

// -------------------------------------------------------------------- disk

namespace {

constexpr std::size_t kHexChars = 2 * Fingerprint::kSize;
constexpr const char* kManifestSuffix = ".gcm";

bool is_hex_name(std::string_view name) {
  if (name.size() != kHexChars) return false;
  for (char c : name) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
              (c >= 'A' && c <= 'F');
    if (!ok) return false;
  }
  return true;
}

bool is_temp_name(const std::string& name) {
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

}  // namespace

DiskObjectStore::DiskObjectStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_ / "objects");
  fs::create_directories(root_ / "chunked");

  for (const auto& entry : fs::directory_iterator(root_ / "objects")) {
    std::string name = entry.path().filename().string();
    if (is_temp_name(name)) {
      // Torn write from a crash mid-upload: the object was never renamed
      // into place, so it never existed as far as readers are concerned.
      fs::remove(entry.path());
      ++reaped_temps_;
      continue;
    }
    if (!is_hex_name(name)) continue;  // foreign file: not ours to touch
    Fingerprint fp = Fingerprint::from_hex(name);
    std::uint64_t size = entry.file_size();
    shards_[object_store_shard(fp)].objects.emplace(fp, size);
    stored_bytes_.fetch_add(size, std::memory_order_relaxed);
  }

  for (const auto& entry : fs::directory_iterator(root_ / "chunked")) {
    std::string name = entry.path().filename().string();
    if (is_temp_name(name)) {
      fs::remove(entry.path());
      ++reaped_temps_;
      continue;
    }
    if (name.size() != kHexChars + 4 ||
        name.compare(kHexChars, 4, kManifestSuffix) != 0 ||
        !is_hex_name(std::string_view(name).substr(0, kHexChars))) {
      continue;
    }
    Fingerprint fp = Fingerprint::from_hex(name.substr(0, kHexChars));
    Bytes raw = read_file_bytes(entry.path());
    // parse() throws kCorruptData on a damaged manifest — a manifest is
    // fully written before its rename, so this means real corruption.
    ChunkManifest manifest = ChunkManifest::parse(raw);
    shards_[object_store_shard(fp)].manifests.emplace(fp, std::move(manifest));
    stored_bytes_.fetch_add(raw.size(), std::memory_order_relaxed);
  }
}

fs::path DiskObjectStore::object_path(const Fingerprint& fp) const {
  return root_ / "objects" / fp.hex();
}

fs::path DiskObjectStore::manifest_path(const Fingerprint& fp) const {
  return root_ / "chunked" / (fp.hex() + kManifestSuffix);
}

bool DiskObjectStore::contains(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  return shard.objects.count(fp) != 0;
}

bool DiskObjectStore::put_if_absent(const Fingerprint& fp, Bytes compressed) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  if (shard.objects.count(fp) != 0) return false;
  // Write while holding the shard exclusively: the temp name <hex>.tmp is
  // collision-free because all writers of this fingerprint serialize here.
  write_file_durable(object_path(fp), compressed);
  shard.objects.emplace(fp, compressed.size());
  stored_bytes_.fetch_add(compressed.size(), std::memory_order_relaxed);
  return true;
}

StatusOr<Bytes> DiskObjectStore::get(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  if (shard.objects.count(fp) == 0) {
    return {ErrorCode::kNotFound, "object not found: " + fp.hex()};
  }
  return read_file_bytes(object_path(fp));
}

StatusOr<std::uint64_t> DiskObjectStore::object_size(
    const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  auto it = shard.objects.find(fp);
  if (it == shard.objects.end()) {
    return {ErrorCode::kNotFound, "object not found: " + fp.hex()};
  }
  return it->second;
}

std::uint64_t DiskObjectStore::erase(const Fingerprint& fp) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto it = shard.objects.find(fp);
  if (it == shard.objects.end()) return 0;
  std::uint64_t freed = it->second;
  fs::remove(object_path(fp));
  shard.objects.erase(it);
  stored_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::vector<Fingerprint> DiskObjectStore::list_objects() const {
  std::vector<Fingerprint> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [fp, size] : shard.objects) {
      (void)size;
      out.push_back(fp);
    }
  }
  return out;
}

std::size_t DiskObjectStore::object_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    n += shard.objects.size();
  }
  return n;
}

bool DiskObjectStore::contains_manifest(const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  return shard.manifests.count(fp) != 0;
}

bool DiskObjectStore::put_manifest_if_absent(const Fingerprint& fp,
                                             const ChunkManifest& manifest) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  if (shard.manifests.count(fp) != 0) return false;
  Bytes raw = manifest.serialize();
  write_file_durable(manifest_path(fp), raw);
  shard.manifests.emplace(fp, manifest);
  stored_bytes_.fetch_add(raw.size(), std::memory_order_relaxed);
  return true;
}

StatusOr<ChunkManifest> DiskObjectStore::get_manifest(
    const Fingerprint& fp) const {
  const Shard& shard = shards_[object_store_shard(fp)];
  std::shared_lock lock(shard.mutex);
  auto it = shard.manifests.find(fp);
  if (it == shard.manifests.end()) {
    return {ErrorCode::kNotFound, "manifest not found: " + fp.hex()};
  }
  return it->second;
}

std::uint64_t DiskObjectStore::erase_manifest(const Fingerprint& fp) {
  Shard& shard = shards_[object_store_shard(fp)];
  std::unique_lock lock(shard.mutex);
  auto it = shard.manifests.find(fp);
  if (it == shard.manifests.end()) return 0;
  std::uint64_t freed = it->second.serialize().size();
  fs::remove(manifest_path(fp));
  shard.manifests.erase(it);
  stored_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::vector<Fingerprint> DiskObjectStore::list_manifests() const {
  std::vector<Fingerprint> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [fp, manifest] : shard.manifests) {
      (void)manifest;
      out.push_back(fp);
    }
  }
  return out;
}

std::size_t DiskObjectStore::manifest_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    n += shard.manifests.size();
  }
  return n;
}

}  // namespace gear
