#include "gear/local_runtime.hpp"

#include "docker/layer.hpp"
#include "gear/converter.hpp"  // kGearIndexLabel
#include "gear/client.hpp"     // push_gear_image
#include "gear/viewer.hpp"

namespace gear {

LocalRuntime::LocalRuntime(docker::DockerRegistry& index_registry,
                           FileRegistryApi& file_registry,
                           std::filesystem::path root)
    : index_registry_(index_registry),
      file_registry_(file_registry),
      store_(std::move(root)) {}

void LocalRuntime::pull(const std::string& reference) {
  if (store_.has_index(reference)) return;
  StatusOr<docker::Manifest> manifest_or =
      index_registry_.get_manifest(reference);
  if (!manifest_or.ok()) {
    throw_error(manifest_or.code(),
                "pull: manifest of " + reference + ": " +
                    manifest_or.message());
  }
  docker::Manifest manifest = std::move(manifest_or).value();
  if (manifest.config.labels.count(kGearIndexLabel) == 0 ||
      manifest.layers.size() != 1) {
    throw_error(ErrorCode::kInvalidArgument,
                reference + " is not a Gear index image");
  }
  StatusOr<Bytes> blob =
      index_registry_.get_blob(manifest.layers[0].digest);
  if (!blob.ok()) {
    throw_error(blob.code(), "pull: index layer of " + reference + ": " +
                                 blob.message());
  }
  docker::Layer layer = docker::Layer::from_blob(std::move(blob).value(),
                                                 manifest.layers[0].digest);
  store_.install_index(reference, GearIndex::from_wire_tree(layer.to_tree()));
}

bool LocalRuntime::has_image(const std::string& reference) const {
  return store_.has_index(reference);
}

std::string LocalRuntime::launch(const std::string& reference) {
  return store_.create_container(reference);
}

vfs::FileTree LocalRuntime::load_index_tree(
    const std::string& reference) const {
  return vfs::FileTree(store_.load_index(reference).tree());
}

Bytes LocalRuntime::materialize(const std::string& reference,
                                const std::string& path, const Fingerprint& fp,
                                std::uint64_t size) {
  // Already hard-linked into the image directory by an earlier access?
  if (StatusOr<Bytes> local = store_.read_materialized(reference, path);
      local.ok()) {
    return std::move(local).value();
  }
  // A true first touch: feed the persisted access profile (load, merge the
  // new observation, save) so later prefetches of this series can schedule
  // hot files first.
  ImageAccessProfile profile;
  if (StatusOr<std::string> text = store_.load_access_profile(reference);
      text.ok()) {
    if (StatusOr<ImageAccessProfile> parsed = ImageAccessProfile::parse(*text);
        parsed.ok()) {
      profile = std::move(parsed).value();
    }
  }
  profile.record(path);
  store_.save_access_profile(reference, profile.serialize());

  // Shared cache, then the registry.
  Bytes content;
  if (StatusOr<Bytes> cached = store_.cache_get(fp); cached.ok()) {
    content = std::move(cached).value();
  } else {
    // A demand fault: its staging bytes take the strict-priority lane of
    // the host budget, ahead of any queued prefetch batch.
    BudgetLease lease(host_budget_, size, AdmissionLane::kDemand, size);
    StatusOr<Bytes> fetched = file_registry_.download(fp);
    if (!fetched.ok()) {
      throw_error(fetched.code(), "materialize of " + path + " (" + fp.hex() +
                                      "): " + fetched.message());
    }
    content = std::move(fetched).value();
    store_.cache_put(fp, content);
  }
  store_.link_file(reference, path, fp);
  return content;
}

std::pair<std::size_t, std::uint64_t> LocalRuntime::prefetch(
    const std::string& reference, PrefetchOrder order) {
  if (!store_.has_index(reference)) {
    throw_error(ErrorCode::kNotFound, "no index installed: " + reference);
  }
  vfs::FileTree index = load_index_tree(reference);

  // Delta baseline + merged profile history of the whole series.
  const std::vector<std::string> installed = store_.references();
  vfs::FileTree previous_tree;
  const vfs::FileTree* previous = nullptr;
  ImageAccessProfile profile;
  const ImageAccessProfile* profile_ptr = nullptr;
  if (order != PrefetchOrder::kPath) {
    std::string prev = newest_other_version(installed, reference);
    if (!prev.empty()) {
      previous_tree = load_index_tree(prev);
      previous = &previous_tree;
    }
    if (order == PrefetchOrder::kProfile) {
      const std::string series = series_of(reference);
      for (const std::string& ref : installed) {
        if (series_of(ref) != series) continue;
        if (StatusOr<std::string> text = store_.load_access_profile(ref);
            text.ok()) {
          if (StatusOr<ImageAccessProfile> parsed =
                  ImageAccessProfile::parse(*text);
              parsed.ok()) {
            profile.merge(*parsed);
          }
        }
      }
      if (!profile.empty()) profile_ptr = &profile;
    }
  }

  PrefetchPlan plan = build_prefetch_plan(index, order, previous, profile_ptr);
  // Smallest-remaining-first key for host-wide admission: the bytes this
  // prefetch still has to move.
  std::uint64_t remaining = 0;
  for (const PrefetchItem& item : plan.items) {
    if (!store_.cache_contains(item.fingerprint)) remaining += item.size;
  }
  std::size_t fetched = 0;
  std::uint64_t bytes = 0;
  for (const PrefetchItem& item : plan.items) {
    if (store_.cache_contains(item.fingerprint)) continue;
    BudgetLease lease(host_budget_, item.size, AdmissionLane::kBackground,
                      remaining);
    remaining -= item.size;
    StatusOr<Bytes> content = file_registry_.download(item.fingerprint);
    if (!content.ok()) {
      throw_error(content.code(), "prefetch of " + item.path + " (" +
                                      item.fingerprint.hex() + "): " +
                                      content.message());
    }
    bytes += content->size();
    ++fetched;
    store_.cache_put(item.fingerprint, std::move(content).value());
  }
  // Link every still-unmaterialized stub path from the now-warm cache.
  index.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_fingerprint()) return;
    if (store_.is_materialized(reference, path)) return;
    // Under a capacity envelope, an entry this pass cached earlier may
    // already have been evicted again before anything pinned it. Leave the
    // stub — a later read demand-faults it in.
    if (!store_.cache_contains(node.fingerprint())) return;
    store_.link_file(reference, path, node.fingerprint());
  });
  return {fetched, bytes};
}

StatusOr<Bytes> LocalRuntime::read(const std::string& container_id,
                                   std::string_view path) {
  if (!store_.has_container(container_id)) {
    return {ErrorCode::kNotFound, "no container: " + container_id};
  }
  const std::string reference = store_.container_image(container_id);
  vfs::FileTree index = load_index_tree(reference);
  vfs::FileTree diff = store_.load_diff(container_id);
  GearFileViewer viewer(
      index, diff,
      [this, &reference](const std::string& union_path, const Fingerprint& fp,
                         std::uint64_t size) {
        return materialize(reference, union_path, fp, size);
      });
  return viewer.read_file(path);
}

StatusOr<std::string> LocalRuntime::read_symlink(
    const std::string& container_id, std::string_view path) {
  if (!store_.has_container(container_id)) {
    return {ErrorCode::kNotFound, "no container: " + container_id};
  }
  const std::string reference = store_.container_image(container_id);
  vfs::FileTree index = load_index_tree(reference);
  vfs::FileTree diff = store_.load_diff(container_id);
  GearFileViewer viewer(
      index, diff,
      [](const std::string&, const Fingerprint&, std::uint64_t) -> Bytes {
        throw_error(ErrorCode::kInternal, "symlink read fetched a file");
      });
  return viewer.read_symlink(path);
}

void LocalRuntime::write(const std::string& container_id,
                         std::string_view path, BytesView content) {
  const std::string reference = store_.container_image(container_id);
  vfs::FileTree index = load_index_tree(reference);
  vfs::FileTree diff = store_.load_diff(container_id);
  GearFileViewer viewer(
      index, diff,
      [](const std::string&, const Fingerprint&, std::uint64_t) -> Bytes {
        throw_error(ErrorCode::kInternal, "write fetched a file");
      });
  viewer.write_file(path, Bytes(content.begin(), content.end()));
  store_.save_diff(container_id, diff);
}

bool LocalRuntime::remove_path(const std::string& container_id,
                               std::string_view path) {
  const std::string reference = store_.container_image(container_id);
  vfs::FileTree index = load_index_tree(reference);
  vfs::FileTree diff = store_.load_diff(container_id);
  GearFileViewer viewer(
      index, diff,
      [](const std::string&, const Fingerprint&, std::uint64_t) -> Bytes {
        throw_error(ErrorCode::kInternal, "remove fetched a file");
      });
  bool removed = viewer.remove(path);
  if (removed) store_.save_diff(container_id, diff);
  return removed;
}

std::string LocalRuntime::commit(const std::string& container_id,
                                 const std::string& name,
                                 const std::string& tag) {
  const std::string reference = store_.container_image(container_id);
  vfs::FileTree index = load_index_tree(reference);
  vfs::FileTree diff = store_.load_diff(container_id);
  StatusOr<docker::Manifest> manifest = index_registry_.get_manifest(reference);
  if (!manifest.ok()) {
    throw_error(manifest.code(), "commit: manifest of " + reference + ": " +
                                     manifest.message());
  }
  docker::ImageConfig config = std::move(manifest->config);

  CommitResult result =
      GearCommitter().commit(index, diff, config, name, tag);
  push_gear_image(result.image, index_registry_, file_registry_);
  return name + ":" + tag;
}

void LocalRuntime::destroy(const std::string& container_id) {
  store_.remove_container(container_id);
}

}  // namespace gear
