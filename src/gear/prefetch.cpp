#include "gear/prefetch.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <future>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "vfs/tree_diff.hpp"

namespace gear {

std::optional<PrefetchOrder> parse_prefetch_order(std::string_view name) {
  if (name == "path") return PrefetchOrder::kPath;
  if (name == "delta") return PrefetchOrder::kDelta;
  if (name == "profile") return PrefetchOrder::kProfile;
  return std::nullopt;
}

const char* prefetch_order_name(PrefetchOrder order) noexcept {
  switch (order) {
    case PrefetchOrder::kPath:
      return "path";
    case PrefetchOrder::kDelta:
      return "delta";
    case PrefetchOrder::kProfile:
      return "profile";
  }
  return "path";
}

void ImageAccessProfile::merge(const ImageAccessProfile& other) {
  runs_ += other.runs_;
  for (const auto& [path, count] : other.touches_) touches_[path] += count;
}

std::uint64_t ImageAccessProfile::touches(const std::string& path) const {
  auto it = touches_.find(path);
  return it == touches_.end() ? 0 : it->second;
}

std::string ImageAccessProfile::serialize() const {
  std::string out = "GPRF1 " + std::to_string(runs_) + " " +
                    std::to_string(touches_.size()) + "\n";
  for (const auto& [path, count] : touches_) {
    out += std::to_string(count);
    out += ' ';
    out += path;
    out += '\n';
  }
  return out;
}

StatusOr<ImageAccessProfile> ImageAccessProfile::parse(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  std::uint64_t runs = 0;
  std::uint64_t entries = 0;
  if (!(in >> magic >> runs >> entries) || magic != "GPRF1") {
    return {ErrorCode::kCorruptData, "access profile: bad GPRF1 header"};
  }
  ImageAccessProfile profile;
  profile.runs_ = runs;
  std::string line;
  std::getline(in, line);  // consume the header's newline
  for (std::uint64_t i = 0; i < entries; ++i) {
    if (!std::getline(in, line) || line.empty()) {
      return {ErrorCode::kCorruptData, "access profile: truncated entry list"};
    }
    std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      return {ErrorCode::kCorruptData, "access profile: malformed entry"};
    }
    std::uint64_t count = 0;
    for (std::size_t c = 0; c < space; ++c) {
      if (line[c] < '0' || line[c] > '9') {
        return {ErrorCode::kCorruptData, "access profile: bad count"};
      }
      count = count * 10 + static_cast<std::uint64_t>(line[c] - '0');
    }
    // Paths may contain further spaces: everything after the first one.
    profile.touches_[line.substr(space + 1)] += count;
  }
  return profile;
}

std::string series_of(const std::string& reference) {
  std::size_t colon = reference.rfind(':');
  return colon == std::string::npos ? reference : reference.substr(0, colon);
}

namespace {

/// Version-aware string order: digit runs compare numerically (v9 < v10),
/// everything else bytewise.
int natural_compare(std::string_view a, std::string_view b) {
  std::size_t i = 0;
  std::size_t j = 0;
  auto digit = [](char c) { return c >= '0' && c <= '9'; };
  while (i < a.size() && j < b.size()) {
    if (digit(a[i]) && digit(b[j])) {
      std::size_t ia = i;
      std::size_t jb = j;
      while (ia < a.size() && digit(a[ia])) ++ia;
      while (jb < b.size() && digit(b[jb])) ++jb;
      std::string_view ra = a.substr(i, ia - i);
      std::string_view rb = b.substr(j, jb - j);
      while (ra.size() > 1 && ra.front() == '0') ra.remove_prefix(1);
      while (rb.size() > 1 && rb.front() == '0') rb.remove_prefix(1);
      if (ra.size() != rb.size()) return ra.size() < rb.size() ? -1 : 1;
      if (int c = ra.compare(rb); c != 0) return c < 0 ? -1 : 1;
      i = ia;
      j = jb;
      continue;
    }
    if (a[i] != b[j]) return a[i] < b[j] ? -1 : 1;
    ++i;
    ++j;
  }
  if (i < a.size()) return 1;
  if (j < b.size()) return -1;
  return 0;
}

}  // namespace

std::string newest_other_version(const std::vector<std::string>& installed,
                                 const std::string& reference) {
  const std::string series = series_of(reference);
  std::string best;
  for (const std::string& ref : installed) {
    if (ref == reference || series_of(ref) != series) continue;
    if (best.empty() || natural_compare(ref, best) > 0) best = ref;
  }
  return best;
}

PrefetchPlan build_prefetch_plan(const vfs::FileTree& index,
                                 PrefetchOrder order,
                                 const vfs::FileTree* previous,
                                 const ImageAccessProfile* profile) {
  PrefetchPlan plan;
  std::unordered_map<Fingerprint, std::size_t, FingerprintHash> slot_of;
  index.walk([&](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_fingerprint()) return;
    auto [it, inserted] = slot_of.emplace(node.fingerprint(),
                                          plan.items.size());
    if (inserted) {
      PrefetchItem item;
      item.path = path;
      item.fingerprint = node.fingerprint();
      item.size = node.stub_size();
      item.fanin = 1;
      if (profile != nullptr) item.profile_touches = profile->touches(path);
      plan.items.push_back(std::move(item));
    } else {
      PrefetchItem& item = plan.items[it->second];
      ++item.fanin;
      // A deduplicated file is as hot as its hottest referencing path.
      if (profile != nullptr) {
        item.profile_touches =
            std::max(item.profile_touches, profile->touches(path));
      }
    }
  });

  if (order == PrefetchOrder::kPath) return plan;  // legacy walk order

  if (previous != nullptr && !plan.items.empty()) {
    // The version delta: every path the layer from previous→current touches
    // that is still a stub carries its new fingerprint in the layer tree.
    std::unordered_set<Fingerprint, FingerprintHash> delta;
    vfs::FileTree layer = vfs::diff_trees(*previous, index);
    layer.walk([&](const std::string& path, const vfs::FileNode& node) {
      (void)path;
      if (node.is_fingerprint()) delta.insert(node.fingerprint());
    });
    for (PrefetchItem& item : plan.items) {
      item.in_delta = delta.count(item.fingerprint) != 0;
    }
  }

  const bool by_profile = order == PrefetchOrder::kProfile;
  std::stable_sort(plan.items.begin(), plan.items.end(),
                   [by_profile](const PrefetchItem& a, const PrefetchItem& b) {
                     if (a.in_delta != b.in_delta) return a.in_delta;
                     if (by_profile && a.profile_touches != b.profile_touches) {
                       return a.profile_touches > b.profile_touches;
                     }
                     if (a.fanin != b.fanin) return a.fanin > b.fanin;
                     if (a.size != b.size) return a.size < b.size;
                     return false;  // stable: walk order breaks the tie
                   });

  for (const PrefetchItem& item : plan.items) {
    if (item.in_delta) ++plan.delta_files;
    if (item.profile_touches > 0) ++plan.profiled_files;
  }
  return plan;
}

void DemandLane::begin_demand(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++active_;
  inflight_bytes_ += bytes;
  ++fetches_;
}

void DemandLane::end_demand(std::uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    inflight_bytes_ -= bytes;
  }
  cv_.notify_all();
}

bool DemandLane::demand_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ > 0;
}

std::uint64_t DemandLane::demand_inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_bytes_;
}

void DemandLane::yield_to_demand() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (active_ == 0) return;
  ++yields_;
  cv_.wait(lock, [&] { return active_ == 0; });
}

std::uint64_t DemandLane::demand_fetches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fetches_;
}

std::uint64_t DemandLane::backfill_yields() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return yields_;
}

DemandScope::DemandScope(DemandLane* lane, std::uint64_t bytes)
    : lane_(lane), bytes_(bytes) {
  if (lane_ != nullptr) lane_->begin_demand(bytes_);
}

DemandScope::~DemandScope() {
  if (lane_ != nullptr) lane_->end_demand(bytes_);
}

void drain_batches(const std::vector<PrefetchBatch>& batches,
                   util::ThreadPool* pool, std::uint64_t max_inflight_bytes,
                   const BatchFetchFn& fetch, const BatchAccountFn& account,
                   DemandLane* lane) {
  if (pool == nullptr || batches.size() <= 1) {
    // The serial pipeline IS the legacy loop: fetch (intra-batch
    // decompression may still fan out across `pool`), then account.
    for (const PrefetchBatch& batch : batches) {
      // Preemption point: a demand fault in flight owns the link; the
      // backfill resumes only once it completes.
      if (lane != nullptr) lane->yield_to_demand();
      account(batch, fetch(batch, pool));
    }
    return;
  }

  // Overlapped drain: pool workers run the wire+decompress stage of later
  // batches while the caller accounts earlier ones, in submission order.
  // Workers receive a null pool — fanning out again from a worker could
  // exhaust the pool and deadlock.
  struct Slot {
    std::size_t idx;
    std::future<FetchedBatch> fut;
  };
  std::deque<Slot> inflight;
  std::size_t next = 0;
  std::uint64_t inflight_bytes = 0;
  const std::size_t lookahead_cap = pool->worker_count() * 2 + 2;

  auto can_launch = [&]() {
    if (next >= batches.size()) return false;
    // Demand preemption: never put a new batch on the wire while a fault
    // fetch is registered; in-flight batches complete and account normally.
    if (lane != nullptr && lane->demand_active()) return false;
    if (inflight.empty()) return true;  // always keep the pipe moving
    if (inflight.size() >= lookahead_cap) return false;
    const std::uint64_t demand_bytes =
        lane != nullptr ? lane->demand_inflight_bytes() : 0;
    return max_inflight_bytes == 0 ||
           inflight_bytes + demand_bytes + batches[next].wire_estimate <=
               max_inflight_bytes;
  };

  std::exception_ptr first_error;
  while ((next < batches.size() || !inflight.empty()) && !first_error) {
    while (can_launch()) {
      const PrefetchBatch& batch = batches[next];
      inflight_bytes += batch.wire_estimate;
      inflight.push_back(
          {next, pool->submit([&fetch, &batch] { return fetch(batch, nullptr); })});
      ++next;
    }
    if (inflight.empty()) {
      // Launching is blocked solely by an active demand fetch (the loop
      // condition guarantees work remains). Wait for it to clear instead
      // of spinning, then re-evaluate.
      lane->yield_to_demand();
      continue;
    }
    Slot slot = std::move(inflight.front());
    inflight.pop_front();
    try {
      FetchedBatch got = slot.fut.get();
      inflight_bytes -= batches[slot.idx].wire_estimate;
      account(batches[slot.idx], std::move(got));
    } catch (...) {
      first_error = std::current_exception();
    }
  }
  // Join everything still in flight before surfacing an error — the fetch
  // closures reference caller-owned state.
  for (Slot& slot : inflight) {
    try {
      slot.fut.get();
    } catch (...) {
      // The first error wins; later ones are usually its echoes.
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gear
