// Delta-first, priority-ordered prefetch scheduling (paper §I / §II-D).
//
// Most launches are new versions of already-cached images (CI/CD churn,
// serverless cold starts), so the files worth fetching first are (1) the
// version delta against the newest locally-cached index of the same series
// and (2) the files the workload touched early on previous runs. This module
// turns `prefetch_remaining`'s path-order walk into a plan:
//
//   * `ImageAccessProfile` — per-image first-materialization counts recorded
//     by the viewer/runtime, persisted next to the index ("GPRF1" text
//     format), merged across runs.
//   * `build_prefetch_plan` — orders the still-stubbed files of an index by
//     delta membership (via vfs::diff_trees on the two Gear indexes), then
//     access-likelihood score, then descending dedup fan-in / ascending size
//     tie-breakers. kPath preserves today's walk order exactly, so path mode
//     stays byte-, wire-, and stats-identical to the legacy prefetch.
//   * `drain_batches` — the two-stage pipeline: wire batches fetched ahead
//     under a bounded in-flight-bytes cap, overlapped with the serialized
//     accounting of already-landed batches. Batch composition and accounting
//     order never change with the overlap depth, so simulated costs and
//     registry stats are identical at any worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"
#include "vfs/file_tree.hpp"

namespace gear {

/// Queue discipline for prefetch_remaining's wire phase.
enum class PrefetchOrder {
  kPath,     // legacy: index walk order (byte-identical baseline)
  kDelta,    // version delta first, then fan-in/size tie-breakers
  kProfile,  // delta first, ranked by recorded access likelihood within
};

/// Strict parse of a --prefetch-order value; nullopt on anything unknown.
std::optional<PrefetchOrder> parse_prefetch_order(std::string_view name);
const char* prefetch_order_name(PrefetchOrder order) noexcept;

/// Per-image access profile: how often each path has been materialized
/// first-touch across runs of this image series. Recorded by the viewer
/// materializer on first materialization only (later reads hit the regular
/// node), so counts measure "needed early after a cold deploy", which is
/// exactly the prefetch scheduler's question.
class ImageAccessProfile {
 public:
  /// Records one first-materialization of `path`.
  void record(const std::string& path) { ++touches_[path]; }

  /// Marks the start of another deploy/run (merge bookkeeping only).
  void bump_run() { ++runs_; }

  /// Accumulates another profile of the same series (redeploy on a node
  /// that already holds history, cluster gossip, ...).
  void merge(const ImageAccessProfile& other);

  std::uint64_t touches(const std::string& path) const;
  std::uint64_t runs() const noexcept { return runs_; }
  bool empty() const noexcept { return touches_.empty(); }
  std::size_t distinct_paths() const noexcept { return touches_.size(); }

  /// "GPRF1" text format, deterministic (paths sorted):
  ///   GPRF1 <runs> <entries>\n
  ///   <count> <path>\n ...
  std::string serialize() const;
  static StatusOr<ImageAccessProfile> parse(std::string_view text);

  const std::map<std::string, std::uint64_t>& entries() const noexcept {
    return touches_;
  }

 private:
  std::map<std::string, std::uint64_t> touches_;  // path -> first-touch count
  std::uint64_t runs_ = 0;
};

/// One unique still-stubbed fingerprint of the plan, with the signals the
/// priority queue ranks by.
struct PrefetchItem {
  std::string path;  // first index path referencing the fingerprint
  Fingerprint fingerprint;
  std::uint64_t size = 0;             // stub (raw) size
  std::uint32_t fanin = 0;            // index paths sharing this fingerprint
  bool in_delta = false;              // changed vs the previous version
  std::uint64_t profile_touches = 0;  // access-likelihood score
};

struct PrefetchPlan {
  std::vector<PrefetchItem> items;  // fetch order, deduplicated
  std::size_t delta_files = 0;      // items with in_delta
  std::size_t profiled_files = 0;   // items with profile_touches > 0
};

/// Builds the fetch plan over the still-stubbed files of `index`.
///   * kPath: items appear exactly in walk (path) order of their first
///     reference — the legacy prefetch order, bit-for-bit.
///   * kDelta: delta members first (`previous` != nullptr enables the
///     vfs::diff_trees comparison), then fan-in desc, size asc; ties keep
///     walk order (stable sort), so the plan is deterministic.
///   * kProfile: like kDelta but ranked by `profile` touches before the
///     fan-in/size tie-breakers.
/// `previous`/`profile` may be null — the corresponding signal is skipped.
PrefetchPlan build_prefetch_plan(const vfs::FileTree& index,
                                 PrefetchOrder order,
                                 const vfs::FileTree* previous,
                                 const ImageAccessProfile* profile);

/// "name" of "name:tag" — the image series a version belongs to.
std::string series_of(const std::string& reference);

/// Picks the best "previous version" for a delta: the newest *other*
/// reference of `reference`'s series in `installed` (numeric-aware tag
/// comparison, e.g. v9 < v10). Empty string when the series has no other
/// installed version.
std::string newest_other_version(const std::vector<std::string>& installed,
                                 const std::string& reference);

/// Link arbiter between a lazy deployment's two fetch lanes: the demand
/// fault path (viewer reads, read_range) and the background backfill drain.
/// Demand is strictly higher priority — while any demand fetch is
/// registered, a lane-aware drain launches no new wire batch (batches
/// already in flight complete normally), and the demand fetch's in-flight
/// bytes count against the drain's byte budget, so the two lanes together
/// never exceed the configured cap. Thread-safe: demand registrations come
/// from viewer/reader threads, yields from the backfill thread.
class DemandLane {
 public:
  /// Registers a demand fetch of ~`bytes` about to hit the wire.
  void begin_demand(std::uint64_t bytes);
  /// Unregisters it (same `bytes` as the matching begin_demand).
  void end_demand(std::uint64_t bytes);

  bool demand_active() const;
  std::uint64_t demand_inflight_bytes() const;

  /// Blocks the calling (backfill) thread until no demand fetch is in
  /// flight. Counts one yield when it actually had to wait.
  void yield_to_demand();

  /// Total demand fetches registered (faults that reached the wire).
  std::uint64_t demand_fetches() const;
  /// Times a backfill drain paused because demand held the link.
  std::uint64_t backfill_yields() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t active_ = 0;
  std::uint64_t inflight_bytes_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t yields_ = 0;
};

/// RAII demand registration; a null lane makes it a no-op.
class DemandScope {
 public:
  DemandScope(DemandLane* lane, std::uint64_t bytes);
  ~DemandScope();
  DemandScope(const DemandScope&) = delete;
  DemandScope& operator=(const DemandScope&) = delete;

 private:
  DemandLane* lane_;
  std::uint64_t bytes_;
};

/// One wire batch of a prefetch drain, as formed by the client (bounded by
/// download_batch_files and the in-flight wire budget).
struct PrefetchBatch {
  std::vector<Fingerprint> fps;
  std::vector<std::uint64_t> sizes;  // expected raw sizes (index stubs)
  std::uint64_t wire_estimate = 0;   // stored/stub bytes, for the byte cap
  std::uint64_t requests = 0;        // link request count (chunk bursts)
};

/// A landed batch: decompressed contents + actual wire bytes moved.
struct FetchedBatch {
  std::vector<Bytes> contents;
  std::uint64_t wire_bytes = 0;
  /// Opaque host-budget lease (gear/admission) charged for this batch's
  /// staging bytes. Held across the fetch → account handoff and returned by
  /// destruction on every path — accounted, dropped, or thrown past.
  std::shared_ptr<void> budget_lease;
  /// Per-slot flags for drains that may skip members (empty = every slot
  /// fetched). The lazy backfill leaves fingerprints an in-flight demand
  /// fault already owns to that fault: their contents slots are empty
  /// placeholders and must not be accounted.
  std::vector<std::uint8_t> fetched;
};

/// Stage 1 — one wire round-trip + decompression of a batch. Must be safe
/// to call from pool workers when drain_batches overlaps (the pool argument
/// it receives is then null: workers must not fan out again). Throws on
/// failure.
using BatchFetchFn =
    std::function<FetchedBatch(const PrefetchBatch&, util::ThreadPool*)>;

/// Stage 2 — the single serialized accounting point, invoked in batch
/// order on the caller's thread (link/disk/cache charging, observers).
using BatchAccountFn = std::function<void(const PrefetchBatch&, FetchedBatch)>;

/// Drains `batches` through fetch → account. Without a pool (or with a
/// single batch) this is today's serial loop: fetch(batch, pool) then
/// account, one batch at a time — intra-batch decompression still fans out
/// across `pool`. With a pool and several batches, up to
/// `max_inflight_bytes` of expected wire data (always at least one batch)
/// is fetched ahead on pool workers while the caller accounts landed
/// batches in submission order — the link stays busy while the CPU
/// decompresses. An exception from any stage is rethrown on the caller's
/// thread after every in-flight batch has been joined.
///
/// With a `lane`, the drain is preemptible: no new batch is launched while
/// a demand fetch is registered on the lane (the drain waits for it to
/// clear instead of spinning), and demand in-flight bytes are charged
/// against `max_inflight_bytes` alongside the drain's own look-ahead.
void drain_batches(const std::vector<PrefetchBatch>& batches,
                   util::ThreadPool* pool, std::uint64_t max_inflight_bytes,
                   const BatchFetchFn& fetch, const BatchAccountFn& account,
                   DemandLane* lane = nullptr);

}  // namespace gear
