// Three-level local storage structure (paper §III-D1, Fig. 5).
//
//   Level 1 — shared cache of Gear files, deduplicated by fingerprint,
//             shared by all images on the node (SharedFileCache).
//   Level 2 — one "index directory" per image: the mutable Gear index tree.
//             Materializing a stub hard-links the cached file into the index
//             (modeled by rewriting the stub node into a regular node and
//             pinning the cache entry), so later containers of the image
//             serve the file without searching level 1 again.
//   Level 3 — one writable "diff directory" per container instance.
//
// The split decouples the life cycles: deleting a container removes only its
// level-3 diff; deleting an image removes its level-2 index and unpins its
// files, which stay shareable in level 1 until evicted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "gear/cache.hpp"
#include "gear/index.hpp"

namespace gear {

class ThreeLevelStore {
 public:
  explicit ThreeLevelStore(std::uint64_t cache_capacity_bytes = 0,
                           EvictionPolicy policy = EvictionPolicy::kLru);

  SharedFileCache& cache() noexcept { return cache_; }
  const SharedFileCache& cache() const noexcept { return cache_; }

  // ---- Level 2: index directories -----------------------------------

  /// Installs the index of image `reference`. Overwrites any previous index
  /// for the same reference (image update).
  void add_index(const std::string& reference, GearIndex index);

  bool has_index(const std::string& reference) const;

  /// Mutable index tree (the viewer materializes stubs in place).
  vfs::FileTree& index_tree(const std::string& reference);
  const vfs::FileTree& index_tree(const std::string& reference) const;

  /// Records that `fp` was hard-linked into `reference`'s index; pins the
  /// cache entry. Idempotent per (reference, fp).
  void record_link(const std::string& reference, const Fingerprint& fp);

  /// Deletes an image: drops its index directory and unpins its linked
  /// files. Containers already running keep their diffs (level 3) but new
  /// containers can no longer launch from this reference. Its Gear files
  /// remain in the cache for other images to share.
  void remove_image(const std::string& reference);

  std::vector<std::string> images() const;

  // ---- Level 3: container diff directories --------------------------

  /// Creates a container from an installed image; returns the container id.
  std::string create_container(const std::string& reference);

  bool has_container(const std::string& container_id) const;
  vfs::FileTree& container_diff(const std::string& container_id);
  const std::string& container_image(const std::string& container_id) const;

  /// Deletes a container: only its diff directory goes away; the image's
  /// index (level 2) can keep launching new instances.
  void remove_container(const std::string& container_id);

  std::size_t container_count() const noexcept { return containers_.size(); }

 private:
  struct IndexDir {
    vfs::FileTree tree;
    std::unordered_set<Fingerprint, FingerprintHash> linked;
  };
  struct ContainerDir {
    std::string reference;
    vfs::FileTree diff;
  };

  SharedFileCache cache_;
  std::map<std::string, IndexDir> indexes_;
  std::map<std::string, ContainerDir> containers_;
  std::uint64_t next_container_ = 1;
};

}  // namespace gear
