#include "gear/persistence.hpp"

#include "gear/fs_store.hpp"  // sanitize_reference
#include "util/file_io.hpp"

namespace gear {
namespace fs = std::filesystem;

PersistReport save_registries(const docker::DockerRegistry& docker_registry,
                              const GearRegistry& gear_registry,
                              const fs::path& root) {
  PersistReport report;
  // Full snapshot semantics: anything removed from the in-memory registries
  // (deleted manifests, GC-swept objects) must disappear on disk too.
  fs::remove_all(root / "docker");
  fs::remove_all(root / "gear");
  fs::create_directories(root / "docker" / "blobs");
  fs::create_directories(root / "docker" / "manifests");
  fs::create_directories(root / "gear" / "objects");
  fs::create_directories(root / "gear" / "chunked");

  for (const docker::Digest& digest : docker_registry.list_blobs()) {
    write_file_bytes(root / "docker" / "blobs" / digest.hex(),
              docker_registry.get_blob(digest).value());
    ++report.blobs;
  }
  for (const std::string& ref : docker_registry.list_manifests()) {
    std::string json = docker_registry.get_manifest_json(ref).value();
    write_file_bytes(root / "docker" / "manifests" /
                  (sanitize_reference(ref) + ".json"),
              to_bytes(json));
    ++report.manifests;
  }
  for (const Fingerprint& fp : gear_registry.list_objects()) {
    // list_objects() covers plain files AND individual chunks; both are
    // written decompressed and re-compressed deterministically on load.
    write_file_bytes(root / "gear" / "objects" / fp.hex(),
              gear_registry.download(fp).value());
    ++report.objects;
  }
  for (const Fingerprint& fp : gear_registry.list_chunked()) {
    write_file_bytes(root / "gear" / "chunked" / (fp.hex() + ".gcm"),
              gear_registry.chunk_manifest(fp).value().serialize());
    ++report.chunk_manifests;
  }
  return report;
}

PersistReport load_registries(const fs::path& root,
                              docker::DockerRegistry* docker_registry,
                              GearRegistry* gear_registry) {
  if (!fs::is_directory(root / "docker") || !fs::is_directory(root / "gear")) {
    throw_error(ErrorCode::kNotFound,
                "no persisted registries at " + root.string());
  }
  PersistReport report;

  for (const auto& entry : fs::directory_iterator(root / "docker" / "blobs")) {
    Bytes blob = read_file_bytes(entry.path());
    docker::Digest digest =
        docker::Digest::from_string(entry.path().filename().string());
    docker_registry->put_blob(digest, std::move(blob));  // verifies digest
    ++report.blobs;
  }
  for (const auto& entry :
       fs::directory_iterator(root / "docker" / "manifests")) {
    std::string json = to_string(read_file_bytes(entry.path()));
    docker::Manifest manifest = docker::Manifest::from_json_string(json);
    docker_registry->put_manifest_json(manifest.reference(), std::move(json));
    ++report.manifests;
  }
  for (const auto& entry :
       fs::directory_iterator(root / "gear" / "objects")) {
    Fingerprint fp =
        Fingerprint::from_hex(entry.path().filename().string());
    gear_registry->upload(fp, read_file_bytes(entry.path()));
    ++report.objects;
  }
  for (const auto& entry :
       fs::directory_iterator(root / "gear" / "chunked")) {
    std::string name = entry.path().filename().string();
    if (name.size() < 5) {
      throw_error(ErrorCode::kCorruptData, "bad chunk manifest name: " + name);
    }
    Fingerprint fp = Fingerprint::from_hex(name.substr(0, name.size() - 4));
    gear_registry->restore_chunked(fp,
                                   ChunkManifest::parse(read_file_bytes(entry.path())));
    ++report.chunk_manifests;
  }
  return report;
}

}  // namespace gear
