#include "gear/persistence.hpp"

#include "compress/codec.hpp"
#include "gear/fs_store.hpp"  // sanitize_reference
#include "util/file_io.hpp"

namespace gear {
namespace fs = std::filesystem;

PersistReport save_docker_registry(const docker::DockerRegistry& registry,
                                   const fs::path& root) {
  PersistReport report;
  // Full snapshot semantics: anything removed from the in-memory registry
  // (deleted manifests, GC-swept blobs) must disappear on disk too.
  fs::remove_all(root / "docker");
  fs::create_directories(root / "docker" / "blobs");
  fs::create_directories(root / "docker" / "manifests");

  for (const docker::Digest& digest : registry.list_blobs()) {
    write_file_bytes(root / "docker" / "blobs" / digest.hex(),
                     unwrap(registry.get_blob(digest),
                            "save: docker blob " + digest.hex()));
    ++report.blobs;
  }
  for (const std::string& ref : registry.list_manifests()) {
    std::string json = unwrap(registry.get_manifest_json(ref),
                              "save: docker manifest " + ref);
    write_file_bytes(
        root / "docker" / "manifests" / (sanitize_reference(ref) + ".json"),
        to_bytes(json));
    ++report.manifests;
  }
  return report;
}

PersistReport save_gear_registry(const GearRegistry& registry,
                                 const fs::path& root) {
  PersistReport report;
  fs::remove_all(root / "gear");
  fs::create_directories(root / "gear" / "objects");
  fs::create_directories(root / "gear" / "chunked");

  const ObjectStore& store = registry.store();
  for (const Fingerprint& fp : store.list_objects()) {
    // list_objects() covers plain files AND individual chunks; both are
    // written decompressed and re-compressed deterministically on load.
    write_file_bytes(
        root / "gear" / "objects" / fp.hex(),
        decompress(unwrap(store.get(fp), "save: gear object " + fp.hex())));
    ++report.objects;
  }
  for (const Fingerprint& fp : store.list_manifests()) {
    write_file_bytes(root / "gear" / "chunked" / (fp.hex() + ".gcm"),
                     unwrap(store.get_manifest(fp),
                            "save: chunk manifest " + fp.hex())
                         .serialize());
    ++report.chunk_manifests;
  }
  return report;
}

PersistReport save_registries(const docker::DockerRegistry& docker_registry,
                              const GearRegistry& gear_registry,
                              const fs::path& root) {
  PersistReport report = save_docker_registry(docker_registry, root);
  PersistReport gear = save_gear_registry(gear_registry, root);
  report.objects = gear.objects;
  report.chunk_manifests = gear.chunk_manifests;
  return report;
}

PersistReport load_docker_registry(const fs::path& root,
                                   docker::DockerRegistry* registry) {
  if (!fs::is_directory(root / "docker")) {
    throw_error(ErrorCode::kNotFound,
                "no persisted docker registry at " + root.string());
  }
  PersistReport report;
  for (const auto& entry : fs::directory_iterator(root / "docker" / "blobs")) {
    Bytes blob = read_file_bytes(entry.path());
    docker::Digest digest =
        docker::Digest::from_string(entry.path().filename().string());
    registry->put_blob(digest, std::move(blob));  // verifies digest
    ++report.blobs;
  }
  for (const auto& entry :
       fs::directory_iterator(root / "docker" / "manifests")) {
    std::string json = to_string(read_file_bytes(entry.path()));
    docker::Manifest manifest = docker::Manifest::from_json_string(json);
    registry->put_manifest_json(manifest.reference(), std::move(json));
    ++report.manifests;
  }
  return report;
}

PersistReport load_gear_registry(const fs::path& root,
                                 GearRegistry* registry) {
  if (!fs::is_directory(root / "gear")) {
    throw_error(ErrorCode::kNotFound,
                "no persisted gear registry at " + root.string());
  }
  PersistReport report;
  for (const auto& entry : fs::directory_iterator(root / "gear" / "objects")) {
    Fingerprint fp = Fingerprint::from_hex(entry.path().filename().string());
    registry->upload(fp, read_file_bytes(entry.path()));
    ++report.objects;
  }
  for (const auto& entry : fs::directory_iterator(root / "gear" / "chunked")) {
    std::string name = entry.path().filename().string();
    if (name.size() < 5) {
      throw_error(ErrorCode::kCorruptData, "bad chunk manifest name: " + name);
    }
    Fingerprint fp = Fingerprint::from_hex(name.substr(0, name.size() - 4));
    registry->restore_chunked(
        fp, ChunkManifest::parse(read_file_bytes(entry.path())));
    ++report.chunk_manifests;
  }
  return report;
}

PersistReport load_registries(const fs::path& root,
                              docker::DockerRegistry* docker_registry,
                              GearRegistry* gear_registry) {
  if (!fs::is_directory(root / "docker") || !fs::is_directory(root / "gear")) {
    throw_error(ErrorCode::kNotFound,
                "no persisted registries at " + root.string());
  }
  PersistReport report = load_docker_registry(root, docker_registry);
  PersistReport gear = load_gear_registry(root, gear_registry);
  report.objects = gear.objects;
  report.chunk_manifests = gear.chunk_manifests;
  return report;
}

}  // namespace gear
