// Host-wide admission control for concurrent deploys.
//
// Every GearClient caps its own in-flight bytes, but a node running dozens
// of simultaneous deploys has no global envelope: N clients × per-client cap
// can overwhelm the host's download + decompression staging memory. The
// `HostBudget` here is one process-wide in-flight-bytes budget shared by all
// clients on a node. Each wire batch (download + decompression staging)
// acquires a lease for its expected bytes before touching the wire and
// releases it once the batch has been accounted; when the budget is
// exhausted, acquirers queue and are admitted by policy:
//
//   * demand faults (`AdmissionLane::kDemand`) are strictly above
//     background prefetch/backfill traffic — while any demand ticket waits,
//     no background ticket is admitted (the host-wide analogue of
//     gear/prefetch's per-client DemandLane);
//   * background tickets are admitted smallest-remaining-bytes-first
//     (`AdmissionOrder::kSmallestFirst`): each ticket carries the owning
//     deploy's remaining-bytes hint, and the deploy closest to completion
//     goes first — the classic SJF argument, minimizing mean completion
//     time under a deploy storm. `kFifo` is the unordered baseline.
//
// The selection rule is exported as a pure function (`pick_next_ticket`) so
// benches/tests can replay recorded storms deterministically through the
// exact policy the live budget uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

namespace gear {

/// Which lane a lease belongs to. Demand faults preempt background work.
enum class AdmissionLane { kDemand, kBackground };

/// Queue discipline for waiting background tickets.
enum class AdmissionOrder {
  kSmallestFirst,  // smallest remaining-bytes deploy first (SJF)
  kFifo,           // arrival order (the unordered baseline)
};

/// Telemetry counters; `inflight_bytes` is the live value at snapshot time.
struct HostBudgetStats {
  std::uint64_t admitted = 0;             // leases granted
  std::uint64_t waits = 0;                // leases that had to queue
  std::uint64_t demand_preemptions = 0;   // demand admitted past waiting
                                          // background tickets
  std::uint64_t inflight_bytes = 0;       // currently leased
  std::uint64_t peak_inflight_bytes = 0;  // high-water mark of the above
};

/// One queued admission request, as seen by the selection policy. Exposed so
/// deterministic replays (bench_ext_admission) rank exactly like the live
/// budget.
struct AdmissionTicket {
  std::uint64_t bytes = 0;           // lease size being requested
  AdmissionLane lane = AdmissionLane::kBackground;
  std::uint64_t remaining_hint = 0;  // owning deploy's remaining bytes
  std::uint64_t seq = 0;             // arrival order (FIFO tie-break)
};

inline constexpr std::size_t kNoTicket = static_cast<std::size_t>(-1);

/// The admission policy, pure: index into `waiting` of the next ticket to
/// admit given `inflight_bytes` already leased against `budget_bytes`, or
/// kNoTicket when nothing may start. Rules:
///   * any waiting demand ticket blocks all background admission; demand
///     tickets go in arrival order;
///   * background tickets rank by (remaining_hint, seq) under
///     kSmallestFirst, by seq alone under kFifo;
///   * the chosen ticket is admitted only if it fits the budget — except
///     when nothing is in flight, where it is admitted regardless so an
///     oversized request can never deadlock the host.
std::size_t pick_next_ticket(const std::vector<AdmissionTicket>& waiting,
                             std::uint64_t inflight_bytes,
                             std::uint64_t budget_bytes, AdmissionOrder order);

/// The process-wide budget. Thread-safe; acquire() blocks until admitted.
///
/// `budget_bytes` = 0 means unbounded: every acquire is admitted
/// immediately and the budget only meters (peak tracking) — used to measure
/// what today's per-client caps let through.
class HostBudget {
 public:
  explicit HostBudget(std::uint64_t budget_bytes = 0,
                      AdmissionOrder order = AdmissionOrder::kSmallestFirst);

  HostBudget(const HostBudget&) = delete;
  HostBudget& operator=(const HostBudget&) = delete;

  /// Blocks until `bytes` fit under the budget per the admission policy,
  /// then charges them. `remaining_hint` is the owning deploy's estimate of
  /// its total remaining bytes (smallest-remaining-first key); pass `bytes`
  /// when no better estimate exists.
  void acquire(std::uint64_t bytes, AdmissionLane lane,
               std::uint64_t remaining_hint);

  /// Returns a previously acquired lease. `bytes` must match the acquire.
  void release(std::uint64_t bytes);

  std::uint64_t budget_bytes() const noexcept { return budget_; }
  AdmissionOrder order() const noexcept { return order_; }

  HostBudgetStats stats() const;

 private:
  struct Waiter {
    AdmissionTicket ticket;
    bool admitted = false;
  };

  /// Charges an admitted ticket (locked).
  void charge(std::uint64_t bytes);
  /// Admits every currently admissible waiter in policy order (locked).
  void admit_waiters();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  const std::uint64_t budget_;
  const AdmissionOrder order_;
  std::uint64_t inflight_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Waiter frames live on their acquire() stacks; the list holds pointers
  /// in arrival order — the policy reorders at selection time.
  std::list<Waiter*> waiting_;
  HostBudgetStats stats_;
};

/// RAII lease; a null budget makes it a no-op (clients without host-wide
/// governance behave exactly as before).
class BudgetLease {
 public:
  BudgetLease() = default;
  BudgetLease(HostBudget* budget, std::uint64_t bytes, AdmissionLane lane,
              std::uint64_t remaining_hint);
  ~BudgetLease();

  BudgetLease(BudgetLease&& other) noexcept;
  BudgetLease& operator=(BudgetLease&& other) noexcept;
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  void release();

 private:
  HostBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// Type-erased lease for pipeline structs that must not depend on this
/// header's internals (FetchedBatch carries one across the fetch → account
/// handoff; destruction on any path — accounted, dropped, or thrown past —
/// returns the bytes). Null when `budget` is null.
std::shared_ptr<void> make_budget_lease(HostBudget* budget,
                                        std::uint64_t bytes,
                                        AdmissionLane lane,
                                        std::uint64_t remaining_hint);

}  // namespace gear
