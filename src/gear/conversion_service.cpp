#include "gear/conversion_service.hpp"

#include "docker/layer.hpp"

namespace gear {

ConversionService::ConversionService(docker::DockerRegistry& classic_registry,
                                     docker::DockerRegistry& index_registry,
                                     FileRegistryApi& file_registry,
                                     Options options)
    : classic_registry_(classic_registry),
      index_registry_(index_registry),
      file_registry_(file_registry),
      options_(options),
      converter_(default_hasher(), [this](const Fingerprint& fp) {
        StatusOr<Bytes> got = file_registry_.download(fp);
        return got.ok() ? std::optional<Bytes>(std::move(got).value())
                        : std::nullopt;
      }) {
  converter_.set_concurrency(options_.concurrency);
}

util::ThreadPool* ConversionService::pool() {
  std::size_t width = options_.concurrency.resolved_workers();
  if (width <= 1) return nullptr;
  if (!pool_ || pool_->worker_count() != width) {
    pool_ = std::make_unique<util::ThreadPool>(width);
  }
  return pool_.get();
}

std::string ConversionService::layer_key(const docker::Manifest& manifest) {
  std::string key;
  for (const docker::LayerDescriptor& desc : manifest.layers) {
    key += desc.digest.hex();
    key += '/';
  }
  return key;
}

std::string ConversionService::receive_image(const docker::Image& image) {
  ++stats_.images_received;
  classic_registry_.push_image(image);

  std::string key = layer_key(image.manifest);
  if (auto it = converted_.find(key); it != converted_.end()) {
    // Same filesystem already converted (re-push or re-tag): only publish
    // the manifest alias; files and index layer dedup away entirely.
    ++stats_.conversions_skipped;
    docker::Manifest alias =
        unwrap(index_registry_.get_manifest(it->second),
               "conversion alias: gear manifest " + it->second);
    alias.name = image.manifest.name;
    alias.tag = image.manifest.tag;
    index_registry_.put_manifest_json(alias.reference(),
                                      alias.to_json_string());
    if (options_.drop_original) {
      classic_registry_.delete_manifest(image.manifest.reference());
    }
    return alias.reference();
  }

  ConversionResult result = converter_.convert(image);
  stats_.files_uploaded += push_gear_image(
      result.image, index_registry_, file_registry_, options_.chunk_policy,
      pool(), options_.concurrency.max_inflight_bytes);
  stats_.bytes_seen += result.stats.bytes_seen;
  ++stats_.conversions_performed;
  converted_[key] = image.manifest.reference();

  if (options_.drop_original) {
    classic_registry_.delete_manifest(image.manifest.reference());
  }
  return image.manifest.reference();
}

std::size_t ConversionService::convert_backlog() {
  std::size_t converted = 0;
  for (const std::string& ref : classic_registry_.list_manifests()) {
    docker::Manifest manifest = unwrap(classic_registry_.get_manifest(ref),
                                       "backlog: classic manifest " + ref);
    if (manifest.config.labels.count(kGearIndexLabel) != 0) continue;
    if (index_registry_.has_manifest(ref)) continue;
    if (auto it = converted_.find(layer_key(manifest));
        it != converted_.end()) {
      // Same filesystem already converted under another tag: alias it.
      docker::Manifest alias =
          unwrap(index_registry_.get_manifest(it->second),
                 "backlog alias: gear manifest " + it->second);
      alias.name = manifest.name;
      alias.tag = manifest.tag;
      index_registry_.put_manifest_json(alias.reference(),
                                        alias.to_json_string());
      ++stats_.conversions_skipped;
      continue;
    }

    // Rebuild the Image from stored blobs and convert it.
    docker::Image image;
    image.manifest = manifest;
    for (const docker::LayerDescriptor& desc : manifest.layers) {
      image.layers.push_back(docker::Layer::from_blob(
          unwrap(classic_registry_.get_blob(desc.digest),
                 "backlog: layer " + desc.digest.to_string() + " of " + ref),
          desc.digest));
    }
    ConversionResult result = converter_.convert(image);
    stats_.files_uploaded += push_gear_image(
        result.image, index_registry_, file_registry_, options_.chunk_policy,
        pool(), options_.concurrency.max_inflight_bytes);
    stats_.bytes_seen += result.stats.bytes_seen;
    ++stats_.conversions_performed;
    converted_[layer_key(manifest)] = ref;
    ++converted;
  }
  return converted;
}

}  // namespace gear
