// Gear Registry: the content-addressed Gear file store.
//
// Mirrors the paper's MinIO-backed file server (§IV) and its three HTTP
// interfaces — query, upload, download (§III-C). Objects are keyed by
// fingerprint; re-uploading an existing fingerprint is deduplicated, which
// is how file-level sharing removes duplicate data across all images in the
// registry. Objects are stored compressed.
//
// Storage engine: the registry is policy over a pluggable ObjectStore
// backend (gear/object_store.hpp) — MemoryObjectStore by default
// (byte- and stats-identical to the historical in-memory maps), or
// DiskObjectStore for a durable registry that reopens after a process
// restart with no re-push.
//
// Concurrency: the registry is safe for concurrent callers. A sharded
// reader-writer lock (kObjectStoreShards shards by fingerprint hash) lets
// one server process overlap independent batch downloads while uploads take
// only their own fingerprint's shard exclusively; dedup upserts are
// linearizable per fingerprint and stats are atomic counters. Results and
// stats totals are identical whether callers run serially or concurrently.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>

#include "gear/chunking.hpp"
#include "gear/object_store.hpp"
#include "gear/registry_api.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace gear {

/// Interface counters. Fields are atomics so concurrent registry callers
/// update them race-free; read them as plain numbers.
struct GearRegistryStats {
  std::atomic<std::uint64_t> uploads_accepted{0};
  std::atomic<std::uint64_t> uploads_deduplicated{0};
  std::atomic<std::uint64_t> downloads{0};
  std::atomic<std::uint64_t> queries{0};
};

class GearRegistry : public FileRegistryApi {
 public:
  /// Backed by `store`; a null/omitted store means a fresh MemoryObjectStore
  /// (the historical in-memory registry).
  explicit GearRegistry(std::unique_ptr<ObjectStore> store = nullptr);

  /// "query" interface: does a Gear file with this fingerprint exist?
  bool query(const Fingerprint& fp) const override;

  /// "upload" interface: stores `content` under `fp` (compressing it).
  /// Returns true if stored, false if deduplicated (already present).
  bool upload(const Fingerprint& fp, BytesView content) override;

  /// Stores an already-compressed frame under `fp`. Lets uploaders (the
  /// parallel push path) run compress() in worker threads and keep the
  /// registry mutation itself per-fingerprint. Equivalent to upload() of the
  /// original content: compress() is deterministic, so stored bytes and
  /// stats match the serial path exactly.
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override;

  /// Chunked upload (future-work extension, paper §VII): stores the file as
  /// policy-sized chunk objects plus a chunk manifest under `fp`. Chunks
  /// shared with other files are deduplicated individually. Falls back to a
  /// plain upload when the policy does not apply to this file size.
  bool upload_chunked(
      const Fingerprint& fp, BytesView content, const ChunkPolicy& policy,
      const FingerprintHasher& hasher = default_hasher()) override;

  /// True when `fp` is stored in chunked form.
  bool is_chunked(const Fingerprint& fp) const override;

  /// The chunk manifest of a chunked file. kNotFound (naming the
  /// fingerprint hex) otherwise.
  StatusOr<ChunkManifest> chunk_manifest(const Fingerprint& fp) const override;

  /// "download" interface: returns the decompressed file content.
  /// Chunked files are reassembled transparently. kNotFound names the
  /// fingerprint hex, matching the remote stub's errors.
  StatusOr<Bytes> download(const Fingerprint& fp) const override;

  /// The wire-transfer form of one object: the stored compressed (GZC1)
  /// frame for plain objects, a reassembled-and-recompressed frame for
  /// chunked files. What a batch download response carries per item — the
  /// server ships stored bytes verbatim instead of decompressing them.
  StatusOr<Bytes> download_compressed(const Fingerprint& fp) const override;

  /// Batched download: one call serves many fingerprints so a client can
  /// pay a single pipelined round-trip for a bulk fetch. Results line up
  /// with `fps` by index. `wire_bytes_out` (optional) receives the summed
  /// compressed transfer size. When `pool` is non-null, per-object
  /// decompression fans out across it; lookups, stats, and result placement
  /// stay deterministic regardless of the pool width. Fails with kNotFound
  /// naming the offending fingerprint if any is absent (nothing about the
  /// batch is partial). Independent concurrent batch downloads overlap:
  /// readers take only shared shard locks.
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool = nullptr,
      std::uint64_t* wire_bytes_out = nullptr) const override;

  /// Partial download of a chunked file: only the chunks covering
  /// [offset, offset+length) move. `wire_bytes_out` (optional) receives the
  /// compressed bytes a client would transfer. Works on plain files too
  /// (whole object moves; the range is sliced client-side).
  StatusOr<Bytes> download_range(
      const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
      std::uint64_t* wire_bytes_out = nullptr) const override;

  /// Compressed (on-the-wire / on-disk) size of one object; what a client
  /// transfers when fetching this file whole (manifest + chunks when
  /// chunked). kNotFound when absent.
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override;

  /// Wire size of one stored chunk object. kNotFound when absent.
  StatusOr<std::uint64_t> chunk_stored_size(const Fingerprint& chunk_fp) const;

  /// The stored compressed frame of one chunk object — what a
  /// kDownloadChunks response item carries. Counts one download, exactly
  /// like the per-chunk download_range it replaces on the wire path.
  /// kNotFound when absent.
  StatusOr<Bytes> download_chunk_compressed(const Fingerprint& chunk_fp) const override;

  /// Enumerates plain/chunk object fingerprints (unordered).
  std::vector<Fingerprint> list_objects() const;

  /// Enumerates chunked-file (manifest) fingerprints (unordered).
  std::vector<Fingerprint> list_chunked() const;

  /// Deletes one object or chunk manifest (GC sweep). Returns bytes freed,
  /// 0 when absent. Removing a manifest does NOT remove its chunks — they
  /// are swept individually if unreferenced.
  std::uint64_t remove(const Fingerprint& fp);

  /// Re-registers a chunk manifest (persistence restore). Every chunk must
  /// already be present as an object; throws kCorruptData otherwise.
  void restore_chunked(const Fingerprint& fp, ChunkManifest manifest);

  /// The storage engine beneath this registry. Snapshot/persistence code
  /// reads through this instead of the interface above so snapshots carry
  /// no stats side effects.
  ObjectStore& store() noexcept { return *store_; }
  const ObjectStore& store() const noexcept { return *store_; }

  /// Storage accounting. Chunked files count one manifest object plus their
  /// (deduplicated) chunk objects.
  std::uint64_t storage_bytes() const noexcept { return store_->stored_bytes(); }
  std::size_t object_count() const {
    return store_->object_count() + store_->manifest_count();
  }
  const GearRegistryStats& stats() const noexcept { return stats_; }

 private:
  std::shared_mutex& shard_lock(const Fingerprint& fp) const {
    return shard_locks_[object_store_shard(fp)];
  }

  /// Core of download(); caller holds the shard lock of `fp` (shared).
  /// Chunk objects of a chunked file are read through the store's own
  /// (atomic) lookups, never through other registry shard locks.
  StatusOr<Bytes> download_locked(const Fingerprint& fp) const;

  /// Dedup upsert core; caller holds the shard lock of `fp` exclusively.
  bool upload_compressed_locked(const Fingerprint& fp, Bytes compressed);

  /// Core of stored_size(); caller holds the shard lock of `fp` (shared).
  StatusOr<std::uint64_t> stored_size_locked(const Fingerprint& fp) const;

  std::unique_ptr<ObjectStore> store_;
  /// Per-fingerprint linearization of compound check-then-insert sequences;
  /// shard choice matches the store's (object_store_shard).
  mutable std::array<std::shared_mutex, kObjectStoreShards> shard_locks_;
  mutable GearRegistryStats stats_;
};

}  // namespace gear
