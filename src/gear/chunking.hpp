// Chunked Gear files — the paper's future-work extension (§VII):
// "enable Gear to read big files on demand in chunks to better accelerate
//  containers that need to download big files, such as AI containers with
//  big models."
//
// A file at or above the policy threshold is stored as a set of fixed-size
// chunk objects (each content-addressed by its own MD5 fingerprint) plus a
// chunk manifest stored under the *file's* fingerprint. Small files are
// unaffected. Readers that need only part of a big file — a model header,
// an archive index — fetch only the covering chunks; whole-file reads
// reassemble transparently. Chunks dedup across files and versions: a model
// whose tail weights changed re-uploads only the changed chunks.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear {

/// When and how to chunk.
struct ChunkPolicy {
  /// Files >= threshold bytes are chunked; 0 disables chunking.
  std::uint64_t threshold_bytes = 0;
  /// Fixed chunk size (the paper's Table II analysis uses 128 KB chunks).
  std::uint64_t chunk_bytes = 128 * 1024;

  bool enabled() const noexcept { return threshold_bytes > 0; }
  bool applies_to(std::uint64_t file_size) const noexcept {
    return enabled() && file_size >= threshold_bytes;
  }
};

/// The manifest stored in place of a chunked file's content.
struct ChunkManifest {
  std::uint64_t file_size = 0;
  std::uint64_t chunk_bytes = 0;
  std::vector<Fingerprint> chunks;  // in offset order

  /// Number of chunks covering [offset, offset+length).
  /// Throws kInvalidArgument when the range exceeds the file.
  std::pair<std::size_t, std::size_t> chunk_range(std::uint64_t offset,
                                                  std::uint64_t length) const;

  Bytes serialize() const;
  static ChunkManifest parse(BytesView data);

  friend bool operator==(const ChunkManifest&, const ChunkManifest&) = default;
};

/// Splits content into policy-sized chunks, fingerprinting each with
/// `hasher`. The final chunk may be short.
ChunkManifest build_chunk_manifest(BytesView content, const ChunkPolicy& policy,
                                   const FingerprintHasher& hasher);

/// View of one chunk's bytes within `content`.
BytesView chunk_view(BytesView content, const ChunkManifest& manifest,
                     std::size_t chunk_index);

}  // namespace gear
