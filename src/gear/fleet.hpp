// Registry fleet: horizontal scale-out of the Gear file registry.
//
// A single registry process is the deployment throughput ceiling once many
// nodes deploy concurrently (the registry_concurrency leg of BENCH_fig8
// measures aggregate throughput *dropping* with 4 clients on one node, and
// EdgePier makes the same argument from the edge side). FleetRegistry
// presents the FileRegistryApi surface over N backend registry instances —
// in-process GearRegistry shards or RemoteGearRegistry stubs — so every
// existing caller (GearClient, push_gear_image, ConversionService,
// p2p::Cluster) scales out without changing a deployed byte:
//
//  * Routing. Fingerprints map to shards through a consistent-hash ring
//    (HashRing): `vnodes_per_shard` virtual points per shard over the
//    deterministic FingerprintHash, so placement is stable across processes
//    and balanced across shards. Adding or removing a shard remaps only the
//    ring-delta fingerprints — everything else keeps its home.
//  * Replication. Uploads are written to the first R distinct shards on the
//    ring walk ("home" first, then backups). Reads try the replica list in
//    order and fall back to the next replica when a shard is unreachable
//    (a dead transport throws; the fleet absorbs it and counts a fallback).
//    Only when every replica fails does the caller see an error.
//  * Batch splitting. query_many / download_batch / upload_precompressed_
//    batch split per home shard and issue the sub-batches concurrently on
//    the fleet's own thread pool, so a bulk call costs max-over-shards
//    instead of sum — the per-shard wire calls stay the existing batched
//    frames, and result placement stays byte-identical to the single-
//    registry path at any pool width.
//  * Rebalance. add_shard/remove_shard migrate only the objects whose
//    replica set actually changes, through the existing batched
//    download_batch / upload_precompressed_batch calls (chunked files are
//    re-chunked deterministically under their recorded policy). Objects
//    already resident on their home shard are never re-uploaded.
//
// Invariants are spelled out in DESIGN.md §6h.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gear/chunking.hpp"
#include "gear/registry_api.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace gear {

/// Consistent-hash ring over shard ids. Each shard contributes
/// `vnodes` points placed by a splitmix64 finalizer over (shard, vnode);
/// a fingerprint hashes to a point (via FingerprintHash) and is owned by
/// the next points clockwise. Deterministic: the same membership always
/// produces the same ring, whatever the insertion order.
class HashRing {
 public:
  /// Adds `vnodes` points for `shard`. No-op if the shard is present.
  void add_shard(std::size_t shard, std::size_t vnodes);

  /// Removes every point of `shard`.
  void remove_shard(std::size_t shard);

  bool contains(std::size_t shard) const;
  std::size_t shard_count() const { return shard_count_; }
  bool empty() const { return points_.empty(); }

  /// The first `count` distinct shards clockwise from fp's ring point —
  /// replica 0 is the home shard. Returns fewer when the ring holds fewer
  /// shards than `count`.
  std::vector<std::size_t> replicas(const Fingerprint& fp,
                                    std::size_t count) const;

  /// Ring point of a fingerprint (exposed for tests/balance inspection).
  static std::uint64_t point_of(const Fingerprint& fp);

 private:
  // (point, shard), sorted by point. Ties broken by shard id so equal
  // points (astronomically unlikely) stay deterministic.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
  std::size_t shard_count_ = 0;
};

/// Per-shard fleet counters. Atomics: concurrent clients route through one
/// fleet instance; read the fields as plain numbers.
struct FleetShardStats {
  /// Items this shard served or stored as the chosen (home) replica.
  std::atomic<std::uint64_t> routed_items{0};
  /// Items written here as a backup replica (R-way replication tail).
  std::atomic<std::uint64_t> replica_items{0};
  /// Reads this shard answered after a preceding replica failed.
  std::atomic<std::uint64_t> fallback_reads{0};
  /// Objects/bytes migrated INTO this shard by rebalances.
  std::atomic<std::uint64_t> rebalanced_in_objects{0};
  std::atomic<std::uint64_t> rebalanced_in_bytes{0};
};

/// Fleet-wide counters (RemoteRegistryStats-style atomics).
struct FleetStats {
  /// Backend calls issued (per-shard sub-batches count once each).
  std::atomic<std::uint64_t> shard_calls{0};
  /// Reads answered by a non-first replica after a failure.
  std::atomic<std::uint64_t> replica_fallbacks{0};
  /// Backend calls that failed with a transport/internal error.
  std::atomic<std::uint64_t> failed_shard_calls{0};
  /// Objects/bytes moved by add_shard/remove_shard rebalances.
  std::atomic<std::uint64_t> rebalanced_objects{0};
  std::atomic<std::uint64_t> rebalanced_bytes{0};
};

/// What a rebalance did. `examined` counts every cataloged object;
/// `moved` only those whose replica set gained the affected shard —
/// the ring-delta. `unmoved` objects were never read or re-uploaded.
struct RebalanceReport {
  std::size_t examined = 0;
  std::size_t moved_objects = 0;
  std::uint64_t moved_bytes = 0;
  std::size_t unmoved_objects = 0;
};

class FleetRegistry final : public FileRegistryApi {
 public:
  struct Options {
    /// Copies of every object (1 = sharding only). Capped at the live
    /// shard count.
    std::size_t replicas = 1;
    /// Virtual ring points per shard; more points = better balance.
    std::size_t vnodes_per_shard = 64;
    /// Fan-out pool width; 0 = min(shard count, hardware concurrency).
    std::size_t workers = 0;
  };

  /// Non-owning: backends must outlive the fleet. Throws kInvalidArgument
  /// on an empty shard list or replicas == 0.
  FleetRegistry(std::vector<FileRegistryApi*> shards, Options options);
  explicit FleetRegistry(std::vector<FileRegistryApi*> shards)
      : FleetRegistry(std::move(shards), Options{}) {}

  // ---- FileRegistryApi ----------------------------------------------------
  bool query(const Fingerprint& fp) const override;
  std::vector<std::uint8_t> query_many(
      const std::vector<Fingerprint>& fps) const override;
  bool upload(const Fingerprint& fp, BytesView content) override;
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override;
  std::size_t upload_precompressed_batch(
      std::vector<std::pair<Fingerprint, Bytes>> items) override;
  bool upload_chunked(
      const Fingerprint& fp, BytesView content, const ChunkPolicy& policy,
      const FingerprintHasher& hasher = default_hasher()) override;
  StatusOr<Bytes> download(const Fingerprint& fp) const override;
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool = nullptr,
      std::uint64_t* wire_bytes_out = nullptr) const override;
  StatusOr<Bytes> download_range(
      const Fingerprint& fp, std::uint64_t offset, std::uint64_t length,
      std::uint64_t* wire_bytes_out = nullptr) const override;
  StatusOr<std::vector<Bytes>> download_chunks(
      const Fingerprint& fp, const ChunkManifest& manifest,
      const std::vector<std::uint32_t>& indices,
      std::uint64_t* wire_bytes_out = nullptr) const override;
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override;
  /// Stored-frame reads (the net::FrameServer surface): routed exactly like
  /// download() — replicas in ring order, home first, fall back on any
  /// failure — so a daemon can serve the batch wire protocol off a whole
  /// fleet of shards.
  StatusOr<Bytes> download_compressed(const Fingerprint& fp) const override;
  StatusOr<Bytes> download_chunk_compressed(
      const Fingerprint& chunk_fp) const override;
  bool is_chunked(const Fingerprint& fp) const override;
  StatusOr<ChunkManifest> chunk_manifest(const Fingerprint& fp) const override;
  bool transport_accounted() const override { return transport_accounted_; }

  // ---- fleet management ---------------------------------------------------

  /// Live shards (removed shards keep their id but leave the ring).
  std::size_t shard_count() const;

  /// Effective replication factor (min(Options.replicas, live shards)).
  std::size_t replication() const;

  /// The replica list (home first) the ring currently assigns to `fp`.
  std::vector<std::size_t> replicas_of(const Fingerprint& fp) const;

  /// Joins a new shard and migrates only the ring-delta objects onto it.
  /// Safe against concurrent readers/writers: the old ring keeps serving
  /// while the delta copies, a brief exclusive phase catches up on uploads
  /// that raced the copy, then the new ring is installed. Returns the new
  /// shard's id. Throws if the migration source replicas are all down —
  /// the fleet then keeps serving on the old ring.
  std::size_t add_shard(FileRegistryApi* shard,
                        RebalanceReport* report = nullptr);

  /// Graceful leave: copies the departing shard's ring-delta objects to
  /// their new owners (the shard must still be reachable), then drops it
  /// from the ring. Throws kInvalidArgument on the last live shard.
  RebalanceReport remove_shard(std::size_t shard_id);

  const FleetStats& stats() const noexcept { return stats_; }
  const FleetShardStats& shard_stats(std::size_t shard_id) const;

 private:
  /// What the fleet remembers about every object uploaded through it —
  /// enough to re-upload it elsewhere during a rebalance.
  struct CatalogEntry {
    bool chunked = false;
    ChunkPolicy policy;  // meaningful only when chunked
  };

  /// An immutable view of the routing state. Read paths copy one under a
  /// brief shared lock and release it BEFORE any backend call — a reader
  /// storm must never starve add_shard's exclusive ring swap. Safe because
  /// membership changes never delete anything a stale snapshot routes to:
  /// backends outlive the fleet, rebalances only add copies, and stats
  /// blocks live until the fleet dies. Write paths instead hold the shared
  /// lock across their backend calls, so the rebalance catch-up phase
  /// (which takes the lock exclusively) cannot miss an in-flight upload.
  struct Routing {
    HashRing ring;
    std::vector<FileRegistryApi*> shards;
    std::vector<FleetShardStats*> stats;
  };
  Routing routing_snapshot() const;

  /// Replica (shard id, backend) pairs for fp, home first.
  static std::vector<std::pair<std::size_t, FileRegistryApi*>>
  replica_targets(const Routing& rt, const Fingerprint& fp,
                  std::size_t replicas);

  /// Replica (shard id, backend) pairs for fp, home first. Caller holds
  /// ring_mutex_ (shared or unique).
  std::vector<std::pair<std::size_t, FileRegistryApi*>> replica_targets_locked(
      const Fingerprint& fp) const;

  void catalog_put(const Fingerprint& fp, bool chunked,
                   const ChunkPolicy& policy);

  /// Copies `entries` from a surviving old-ring replica onto `target_id`
  /// when (and only when) `new_ring` assigns them there. Batched: plain
  /// objects move as download_batch + upload_precompressed_batch groups,
  /// chunked files are re-chunked under their recorded policy. Caller
  /// holds ring_mutex_ (shared or unique); `ring_` must still be the old
  /// ring.
  void migrate_delta_locked(
      const HashRing& new_ring, std::size_t target_id,
      const std::vector<std::pair<Fingerprint, CatalogEntry>>& entries,
      RebalanceReport& rep);

  /// Moves one source group; appends wire bytes/objects to `rep`.
  void copy_entries(FileRegistryApi& src, std::size_t target_id,
                    FileRegistryApi& dst,
                    const std::vector<std::pair<Fingerprint, CatalogEntry>>&
                        entries,
                    RebalanceReport& rep);

  // Serializes membership changes (add_shard/remove_shard) against each
  // other; the data path never takes it.
  std::mutex rebalance_mutex_;

  // Guards ring_ + shards_ + shard_stats_ membership. Shared for every
  // data-path call (so the ring cannot change mid-batch), unique for
  // membership changes. Always acquired before catalog_mutex_.
  mutable std::shared_mutex ring_mutex_;
  HashRing ring_;
  std::vector<FileRegistryApi*> shards_;  // removed shards become nullptr
  std::vector<std::unique_ptr<FleetShardStats>> shard_stats_;

  mutable std::mutex catalog_mutex_;
  std::unordered_map<Fingerprint, CatalogEntry, FingerprintHash> catalog_;

  std::size_t replicas_;
  std::size_t vnodes_;
  bool transport_accounted_;
  mutable util::ThreadPool pool_;
  mutable FleetStats stats_;
};

}  // namespace gear
