#include "gear/cache.hpp"

#include <algorithm>

namespace gear {

SharedFileCache::SharedFileCache(std::uint64_t capacity_bytes,
                                 EvictionPolicy policy)
    : capacity_(capacity_bytes), policy_(policy) {}

bool SharedFileCache::contains(const Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(fp) != 0;
}

void SharedFileCache::touch(Entry& entry, const Fingerprint& fp) {
  if (policy_ == EvictionPolicy::kLru) {
    order_.erase(entry.order_it);
    entry.order_it = order_.insert(order_.end(), fp);
  }
}

StatusOr<Bytes> SharedFileCache::get(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    ++stats_.misses;
    return {ErrorCode::kNotFound, "cache miss: " + fp.hex()};
  }
  ++stats_.hits;
  ++it->second.accesses;
  it->second.last_access_tick = ++tick_;
  touch(it->second, fp);
  return it->second.content;
}

bool SharedFileCache::make_room(std::uint64_t needed) {
  if (capacity_ == 0) return true;  // unbounded
  if (needed > capacity_) return false;
  auto victim = order_.begin();
  while (size_bytes_ + needed > capacity_ && victim != order_.end()) {
    auto entry_it = entries_.find(*victim);
    if (entry_it == entries_.end()) {
      throw_error(ErrorCode::kInternal, "cache order list out of sync");
    }
    if (entry_it->second.links > 0) {
      ++victim;  // pinned: skip
      continue;
    }
    size_bytes_ -= entry_it->second.content.size();
    victim = order_.erase(victim);
    entries_.erase(entry_it);
    ++stats_.evictions;
  }
  return size_bytes_ + needed <= capacity_;
}

bool SharedFileCache::put(const Fingerprint& fp, Bytes content) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(fp); it != entries_.end()) {
    it->second.last_access_tick = ++tick_;
    touch(it->second, fp);
    return true;  // already cached (deduplicated)
  }
  if (!make_room(content.size())) {
    ++stats_.rejected;
    return false;
  }
  Entry entry;
  size_bytes_ += content.size();
  entry.content = std::move(content);
  entry.last_access_tick = ++tick_;
  entry.order_it = order_.insert(order_.end(), fp);
  entries_.emplace(fp, std::move(entry));
  ++stats_.insertions;
  return true;
}

void SharedFileCache::link(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    throw_error(ErrorCode::kNotFound, "link: not cached: " + fp.hex());
  }
  ++it->second.links;
}

void SharedFileCache::unlink(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    throw_error(ErrorCode::kNotFound, "unlink: not cached: " + fp.hex());
  }
  if (it->second.links == 0) {
    throw_error(ErrorCode::kInvalidArgument,
                "unlink: entry has no links: " + fp.hex());
  }
  --it->second.links;
}

std::uint32_t SharedFileCache::link_count(const Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) return 0;
  return it->second.links;
}

std::vector<Fingerprint> SharedFileCache::fingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Fingerprint> out;
  out.reserve(entries_.size());
  for (const auto& [fp, entry] : entries_) {
    (void)entry;
    out.push_back(fp);
  }
  return out;
}

std::optional<CacheEntryStats> SharedFileCache::entry_stats(
    const Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) return std::nullopt;
  const Entry& entry = it->second;
  return CacheEntryStats{entry.content.size(), entry.links, entry.accesses,
                         entry.last_access_tick};
}

std::vector<std::pair<Fingerprint, CacheEntryStats>>
SharedFileCache::entry_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<Fingerprint, CacheEntryStats>> out;
  out.reserve(entries_.size());
  for (const auto& [fp, entry] : entries_) {
    out.emplace_back(fp,
                     CacheEntryStats{entry.content.size(), entry.links,
                                     entry.accesses, entry.last_access_tick});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::uint64_t SharedFileCache::set_capacity(std::uint64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_bytes;
  if (capacity_ == 0) return 0;  // unbounded
  std::uint64_t evicted = 0;
  auto victim = order_.begin();
  while (size_bytes_ > capacity_ && victim != order_.end()) {
    auto entry_it = entries_.find(*victim);
    if (entry_it == entries_.end()) {
      throw_error(ErrorCode::kInternal, "cache order list out of sync");
    }
    if (entry_it->second.links > 0) {
      ++victim;  // pinned: survives even over the envelope
      continue;
    }
    std::uint64_t size = entry_it->second.content.size();
    size_bytes_ -= size;
    evicted += size;
    victim = order_.erase(victim);
    entries_.erase(entry_it);
    ++stats_.evictions;
  }
  return evicted;
}

void SharedFileCache::clear_unpinned() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = order_.begin(); it != order_.end();) {
    auto entry_it = entries_.find(*it);
    if (entry_it != entries_.end() && entry_it->second.links == 0) {
      size_bytes_ -= entry_it->second.content.size();
      entries_.erase(entry_it);
      it = order_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gear
