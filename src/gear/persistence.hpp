// Registry persistence: save/load both registries to plain directories.
//
// Layout (what a real deployment would keep on the registry host's disk):
//
//   <root>/docker/blobs/<sha256-hex>         compressed layer tarballs
//   <root>/docker/manifests/<ref>.json       manifest documents
//   <root>/gear/objects/<md5-hex>            Gear files / chunks (raw bytes)
//   <root>/gear/chunked/<md5-hex>.gcm        chunk manifests
//
// Object files are stored decompressed; load re-compresses with the
// deterministic in-tree codec, reproducing identical registry state.
#pragma once

#include <filesystem>

#include "docker/registry.hpp"
#include "gear/registry.hpp"

namespace gear {

struct PersistReport {
  std::size_t blobs = 0;
  std::size_t manifests = 0;
  std::size_t objects = 0;
  std::size_t chunk_manifests = 0;
};

/// Writes both registries under `root` (created if needed) as a full
/// snapshot: stale files from earlier saves are removed.
PersistReport save_registries(const docker::DockerRegistry& docker_registry,
                              const GearRegistry& gear_registry,
                              const std::filesystem::path& root);

/// Loads both registries from `root`. Throws Error(kNotFound) when the
/// layout is missing, kCorruptData on damaged content.
PersistReport load_registries(const std::filesystem::path& root,
                              docker::DockerRegistry* docker_registry,
                              GearRegistry* gear_registry);

}  // namespace gear
