// Registry persistence: save/load both registries to plain directories.
//
// Layout (what a real deployment would keep on the registry host's disk):
//
//   <root>/docker/blobs/<sha256-hex>         compressed layer tarballs
//   <root>/docker/manifests/<ref>.json       manifest documents
//   <root>/gear/objects/<md5-hex>            Gear files / chunks (raw bytes)
//   <root>/gear/chunked/<md5-hex>.gcm        chunk manifests
//
// Object files are stored decompressed; load re-compresses with the
// deterministic in-tree codec, reproducing identical registry state.
// (A DiskObjectStore shares the objects/ + chunked/ naming but keeps the
// compressed frames — it is the live storage engine, not a snapshot.)
//
// Each registry has its own save/load pair so deployments that keep one
// side durable (e.g. gearctl --store-dir puts the Gear files on a
// DiskObjectStore) can snapshot just the other; save_registries /
// load_registries compose the two.
#pragma once

#include <filesystem>

#include "docker/registry.hpp"
#include "gear/registry.hpp"

namespace gear {

struct PersistReport {
  std::size_t blobs = 0;
  std::size_t manifests = 0;
  std::size_t objects = 0;
  std::size_t chunk_manifests = 0;
};

/// Writes the Docker registry under `<root>/docker` (full snapshot: stale
/// files from earlier saves are removed).
PersistReport save_docker_registry(const docker::DockerRegistry& registry,
                                   const std::filesystem::path& root);

/// Writes the Gear registry under `<root>/gear` (full snapshot). Reads
/// through the registry's ObjectStore, so saving has no effect on interface
/// stats (a snapshot is not a download).
PersistReport save_gear_registry(const GearRegistry& registry,
                                 const std::filesystem::path& root);

/// Writes both registries under `root` (created if needed) as a full
/// snapshot: stale files from earlier saves are removed.
PersistReport save_registries(const docker::DockerRegistry& docker_registry,
                              const GearRegistry& gear_registry,
                              const std::filesystem::path& root);

/// Loads the Docker registry from `<root>/docker`. Throws Error(kNotFound)
/// when the layout is missing, kCorruptData on damaged content.
PersistReport load_docker_registry(const std::filesystem::path& root,
                                   docker::DockerRegistry* registry);

/// Loads the Gear registry from `<root>/gear` (same error contract).
PersistReport load_gear_registry(const std::filesystem::path& root,
                                 GearRegistry* registry);

/// Loads both registries from `root`. Throws Error(kNotFound) when the
/// layout is missing, kCorruptData on damaged content.
PersistReport load_registries(const std::filesystem::path& root,
                              docker::DockerRegistry* docker_registry,
                              GearRegistry* gear_registry);

}  // namespace gear
