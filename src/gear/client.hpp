// Gear deployment client (paper §III-D).
//
// Deploying a Gear container:
//   pull — fetch the manifest and the tiny single-layer index image from the
//          Docker registry (everything else stays remote), install the index
//          into the three-level store;
//   run  — create a container (level-3 diff), mount the Gear File Viewer,
//          and serve the task's file accesses: irregular entries answered
//          from the index, regular files materialized from the shared cache
//          (hard link) or the Gear Registry (on-demand download).
//
// Every byte and request is charged to the simulated link/disk, making this
// client directly comparable with DockerClient under identical conditions.
#pragma once

#include <map>
#include <string>

#include "docker/client.hpp"
#include "docker/registry.hpp"
#include "gear/index.hpp"
#include "gear/registry.hpp"
#include "gear/store.hpp"
#include "gear/viewer.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "workload/access.hpp"

namespace gear {

/// Stores a converted Gear image: index image into the Docker registry
/// (layer-deduplicated like any image), Gear files into the Gear registry
/// (fingerprint-deduplicated). Returns the number of files actually
/// uploaded. With a chunking policy, files above the threshold are stored
/// as chunk objects + a manifest (paper §VII future work).
std::size_t push_gear_image(const GearImage& image,
                            docker::DockerRegistry& index_registry,
                            GearRegistry& file_registry,
                            const ChunkPolicy& chunk_policy = {});

class GearClient {
 public:
  GearClient(docker::DockerRegistry& index_registry,
             GearRegistry& file_registry, sim::NetworkLink& link,
             sim::DiskModel& disk, docker::RuntimeParams params = {},
             std::uint64_t cache_capacity_bytes = 0,
             EvictionPolicy policy = EvictionPolicy::kLru);

  /// Pull phase: manifest + (if not yet installed) the index layer.
  docker::PullStats pull(const std::string& reference);

  /// Full deployment: pull, launch a container, replay `access` through the
  /// Gear File Viewer. Returns timing/bytes; the launched container id is
  /// written to `container_id_out` when non-null.
  docker::DeployStats deploy(const std::string& reference,
                             const workload::AccessSet& access,
                             std::string* container_id_out = nullptr);

  /// Opens a viewer for an existing container (for direct file-system use
  /// by examples/tests; costs are still charged to the models).
  GearFileViewer open_viewer(const std::string& container_id);

  /// Range read (paper §VII future work): reads [offset, offset+length) of
  /// a file. For files stored chunked in the Gear Registry, only the
  /// covering chunks are fetched — the stub is NOT fully materialized, so a
  /// container peeking at a multi-gigabyte model's header moves kilobytes.
  /// Chunks land in the shared cache and are reused by later reads.
  /// Plain-stored files fall back to whole-file materialization + slice.
  StatusOr<Bytes> read_range(const std::string& container_id,
                             std::string_view path, std::uint64_t offset,
                             std::uint64_t length);

  /// Bytes fetched over the link by read_range calls (telemetry).
  std::uint64_t range_bytes_downloaded() const noexcept {
    return range_downloaded_;
  }

  /// Optional cooperative source consulted on a cache miss BEFORE the Gear
  /// Registry (paper §VI-B: P2P/cooperative caches are orthogonal
  /// accelerators for Gear file distribution). The callback itself must
  /// account its transfer costs (e.g. against a cluster-local link);
  /// returning nullopt falls through to the registry.
  using PeerSource =
      std::function<std::optional<Bytes>(const Fingerprint& fp,
                                         std::uint64_t size)>;
  void set_peer_source(PeerSource source) {
    peer_source_ = std::move(source);
  }

  /// Count of files satisfied by the peer source (telemetry).
  std::uint64_t peer_hits() const noexcept { return peer_hits_; }

  /// Background prefetch: materializes every still-stubbed file of an
  /// installed image (pipelined bulk fetch). Lazy pulling leaves a running
  /// container dependent on registry availability for files it has not
  /// touched yet; prefetching after startup closes that window at the cost
  /// of the bandwidth Gear initially saved. Returns (files fetched, bytes
  /// moved); both zero when the image is already fully local.
  std::pair<std::size_t, std::uint64_t> prefetch_remaining(
      const std::string& reference);

  /// Tears down a container. Gear only drops the inode cache entries of the
  /// files the container actually touched (paper §V-F), then deletes its
  /// level-3 diff.
  double destroy(const std::string& container_id);

  /// Deletes an image: level-2 index goes away, pinned files are released
  /// into the evictable pool but stay cached.
  void remove_image(const std::string& reference);

  ThreeLevelStore& store() noexcept { return store_; }
  const ThreeLevelStore& store() const noexcept { return store_; }

  /// Wipes the shared cache (cold-cache experiments; pinned entries of
  /// installed images are unpinned and dropped too).
  void clear_all_local_state();

  const docker::RuntimeParams& params() const noexcept { return params_; }

 private:
  Bytes materialize(const std::string& reference, const Fingerprint& fp,
                    std::uint64_t size, std::uint64_t* downloaded);

  docker::DockerRegistry& index_registry_;
  GearRegistry& file_registry_;
  sim::NetworkLink& link_;
  sim::DiskModel& disk_;
  docker::RuntimeParams params_;
  ThreeLevelStore store_;
  std::map<std::string, std::size_t> container_touched_;  // id -> inode count
  std::uint64_t untracked_downloaded_ = 0;  // bytes fetched via open_viewer
  std::uint64_t range_downloaded_ = 0;      // bytes fetched via read_range
  PeerSource peer_source_;                  // optional cooperative source
  std::uint64_t peer_hits_ = 0;
  /// Client-side cache of chunk manifests already transferred.
  std::unordered_map<Fingerprint, ChunkManifest, FingerprintHash>
      manifest_cache_;
};

}  // namespace gear
