// Gear deployment client (paper §III-D).
//
// Deploying a Gear container:
//   pull — fetch the manifest and the tiny single-layer index image from the
//          Docker registry (everything else stays remote), install the index
//          into the three-level store;
//   run  — create a container (level-3 diff), mount the Gear File Viewer,
//          and serve the task's file accesses: irregular entries answered
//          from the index, regular files materialized from the shared cache
//          (hard link) or the Gear Registry (on-demand download).
//
// The client programs against FileRegistryApi, so the registry can be the
// in-process GearRegistry or a RemoteGearRegistry stub speaking the wire
// protocol over a Transport — deployment code is identical either way. When
// the registry is transport-backed, the transport charges the simulated link
// per frame and the client skips its own link model (no double billing).
//
// Every byte and request is charged to the simulated link/disk, making this
// client directly comparable with DockerClient under identical conditions.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "docker/client.hpp"
#include "docker/registry.hpp"
#include "gear/admission.hpp"
#include "gear/index.hpp"
#include "gear/prefetch.hpp"
#include "gear/registry.hpp"
#include "gear/registry_api.hpp"
#include "gear/store.hpp"
#include "gear/viewer.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "workload/access.hpp"

namespace gear {

/// Stores a converted Gear image: index image into the Docker registry
/// (layer-deduplicated like any image), Gear files into the Gear registry
/// (fingerprint-deduplicated). Returns the number of files actually
/// uploaded. With a chunking policy, files above the threshold are stored
/// as chunk objects + a manifest (paper §VII future work).
///
/// The presence check is one query_many and plain absent files move in
/// upload_precompressed_batch groups, so pushing to a remote registry costs
/// 1 + ⌈missing/batch⌉ round-trips instead of one per file. In-process the
/// batched entry points are ordered loops: registry contents and stats are
/// byte-identical to the serial per-file protocol.
///
/// When `pool` is non-null, per-file compression of the absent files fans
/// out across it (bounded by `max_inflight_bytes` of raw content, 0 =
/// unbounded); the query round and the registry insertions stay serial and
/// ordered, so registry contents and stats are identical at any width.
std::size_t push_gear_image(const GearImage& image,
                            docker::DockerRegistry& index_registry,
                            FileRegistryApi& file_registry,
                            const ChunkPolicy& chunk_policy = {},
                            util::ThreadPool* pool = nullptr,
                            std::uint64_t max_inflight_bytes = 0);

/// How GearClient::deploy materializes image content.
enum class DeployMode {
  /// Legacy: the access set is replayed inside the deployment window (plus
  /// optional bulk-warm / post-replay prefetch).
  kEager,
  /// Start-before-warm (the paper's on-demand story at its limit): deploy
  /// returns as soon as the index is pulled and the container is created —
  /// nothing is materialized. Reads issued afterwards (open_viewer,
  /// read_range) fault files/chunks in on demand; backfill_remaining()
  /// closes the availability window behind the workload.
  kLazy,
};

class GearClient {
 public:
  GearClient(docker::DockerRegistry& index_registry,
             FileRegistryApi& file_registry, sim::NetworkLink& link,
             sim::DiskModel& disk, docker::RuntimeParams params = {},
             std::uint64_t cache_capacity_bytes = 0,
             EvictionPolicy policy = EvictionPolicy::kLru);

  /// Pull phase: manifest + (if not yet installed) the index layer.
  docker::PullStats pull(const std::string& reference);

  /// Full deployment: pull, launch a container, replay `access` through the
  /// Gear File Viewer. Returns timing/bytes; the launched container id is
  /// written to `container_id_out` when non-null.
  ///
  /// Under DeployMode::kLazy the access set is ignored: deploy returns at
  /// readiness (index pulled, container created, stats.ready_seconds ==
  /// run window) and the workload reads against the still-cold container
  /// through open_viewer()/read_range(), while backfill_remaining() warms
  /// the rest strictly behind those demand faults.
  docker::DeployStats deploy(const std::string& reference,
                             const workload::AccessSet& access,
                             std::string* container_id_out = nullptr,
                             DeployMode mode = DeployMode::kEager);

  /// Opens a viewer for an existing container (for direct file-system use
  /// by examples/tests; costs are still charged to the models).
  GearFileViewer open_viewer(const std::string& container_id);

  /// Range read (paper §VII future work): reads [offset, offset+length) of
  /// a file. For files stored chunked in the Gear Registry, only the
  /// covering chunks are fetched — the stub is NOT fully materialized, so a
  /// container peeking at a multi-gigabyte model's header moves kilobytes.
  /// Chunks land in the shared cache and are reused by later reads.
  /// Plain-stored files fall back to whole-file materialization + slice.
  StatusOr<Bytes> read_range(const std::string& container_id,
                             std::string_view path, std::uint64_t offset,
                             std::uint64_t length);

  /// Bytes fetched over the link by read_range calls (telemetry).
  std::uint64_t range_bytes_downloaded() const noexcept {
    return range_downloaded_;
  }

  /// Bytes fetched over the link by viewer faults through open_viewer()
  /// (the lazy demand path's wire traffic; telemetry).
  std::uint64_t viewer_bytes_downloaded() const noexcept {
    return untracked_downloaded_;
  }

  /// Optional cooperative source consulted on a cache miss BEFORE the Gear
  /// Registry (paper §VI-B: P2P/cooperative caches are orthogonal
  /// accelerators for Gear file distribution). The callback itself must
  /// account its transfer costs (e.g. against a cluster-local link);
  /// returning nullopt falls through to the next tier / the registry.
  using PeerSource =
      std::function<std::optional<Bytes>(const Fingerprint& fp,
                                         std::uint64_t size)>;
  /// Installs `source` as the only peer tier (clears any tier list; an
  /// empty function clears cooperative fetching entirely).
  void set_peer_source(PeerSource source) {
    peer_tiers_.clear();
    if (source) peer_tiers_.push_back(std::move(source));
  }
  /// Appends one tier to the cooperative lookup ladder. Tiers are consulted
  /// in add order on every miss — a multi-site edge node adds its
  /// site-local (LAN) source first and the cross-site (WAN) source second,
  /// with the registry always last.
  void add_peer_source(PeerSource source);

  /// Batched cooperative source: one callback for a whole list of wanted
  /// (fingerprint, expected size) pairs — a cluster peer group answers them
  /// in one LAN burst instead of one probe per object. out[i] is the content
  /// of wanted[i] or nullopt (miss: falls through to the next tier / the
  /// registry). Chunk fingerprints are asked exactly like whole files —
  /// peers serve both from the same shared cache. Consulted before the
  /// registry by the batched paths (warm_batch, read_range chunk
  /// gathering); the per-file PeerSource remains the on-demand fault path's
  /// source.
  using BatchPeerSource = std::function<std::vector<std::optional<Bytes>>(
      const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted)>;
  /// Installs `source` as the only batched peer tier (clears the tier
  /// list; empty clears batched cooperative fetching).
  void set_batch_peer_source(BatchPeerSource source) {
    batch_peer_tiers_.clear();
    if (source) batch_peer_tiers_.push_back(std::move(source));
  }
  /// Appends one batched tier; each tier only sees the slots every earlier
  /// tier missed, so a site-local tier shields the WAN tier which shields
  /// the registry.
  void add_batch_peer_source(BatchPeerSource source);

  /// Cooperative tiers a client may register (site-local + cross-site).
  static constexpr std::size_t kMaxPeerTiers = 4;

  /// Count of objects satisfied by any peer tier (telemetry).
  std::uint64_t peer_hits() const noexcept {
    return peer_hits_.load(std::memory_order_relaxed);
  }
  /// Per-tier peer hits, indexed by add order (tier 0 first). Slots past
  /// the registered tier count read zero.
  std::vector<std::uint64_t> peer_tier_hits() const;

  /// Background prefetch: materializes every still-stubbed file of an
  /// installed image (pipelined bulk fetch). Lazy pulling leaves a running
  /// container dependent on registry availability for files it has not
  /// touched yet; prefetching after startup closes that window at the cost
  /// of the bandwidth Gear initially saved. Returns (files fetched, bytes
  /// moved); both zero when the image is already fully local.
  ///
  /// Downloads move in batches — one download_batch (one wire round-trip
  /// against a remote registry) per batch, batch size bounded by
  /// download_batch_files() and `Concurrency.max_inflight_bytes` of wire
  /// data — with decompression fanned out across the worker pool. All
  /// link/disk/cache accounting happens at a single serialized point, so
  /// the simulated timings are identical at any worker count.
  std::pair<std::size_t, std::uint64_t> prefetch_remaining(
      const std::string& reference);

  /// The background lane of a lazy deployment: prefetch_remaining's
  /// priority pipeline (delta → profile → fan-in) running strictly below
  /// the demand-fault lane. While any demand fault is fetching, the drain
  /// launches no new wire batch and the fault's in-flight bytes consume the
  /// shared byte budget (gear/prefetch DemandLane). Fingerprints the
  /// backfill puts on the wire are registered as singleflight flights, so a
  /// concurrent demand fault for the same file joins the in-flight batch,
  /// and fingerprints a fault is already fetching are skipped by the
  /// backfill — no file moves twice whichever lane sees it first. Safe to
  /// run on a background thread while viewer readers fault concurrently.
  std::pair<std::size_t, std::uint64_t> backfill_remaining(
      const std::string& reference);

  /// Bulk-warms an access set's still-stubbed files into the shared cache
  /// (the deploy-time warm phase, callable standalone — e.g. warming a
  /// predicted hot set after a pull without replaying it). Returns (files
  /// fetched, bytes moved).
  std::pair<std::size_t, std::uint64_t> warm_access(
      const std::string& reference, const workload::AccessSet& access);

  /// Times a backfill drain paused because a demand fault held the link
  /// (telemetry for the preemption rule).
  std::uint64_t backfill_yields() const {
    return demand_lane_.backfill_yields();
  }
  /// Demand-lane registry fetches: faults that reached the wire.
  std::uint64_t demand_fetches() const {
    return demand_lane_.demand_fetches();
  }

  /// Queue discipline of prefetch_remaining's wire phase (gear/prefetch):
  /// kPath is the legacy index-walk order (byte-, wire-, and stats-identical
  /// to the historical prefetch); kDelta fetches the version delta against
  /// the newest other locally-installed version of the same series first;
  /// kProfile additionally ranks by the recorded access profile. Ordering
  /// only permutes the fetch schedule — total bytes, requests, cache
  /// contents, and registry stats are identical across orders.
  void set_prefetch_order(PrefetchOrder order) { prefetch_order_ = order; }
  PrefetchOrder prefetch_order() const noexcept { return prefetch_order_; }

  /// When enabled, deploy() runs prefetch_remaining after the access replay
  /// (time-to-warm deployments: the container starts lazily, then the
  /// background prefetch closes the registry-dependence window). Its
  /// (files, bytes) land in DeployStats::prefetched_*. Off by default.
  void set_prefetch_after_deploy(bool enabled) {
    prefetch_after_deploy_ = enabled;
  }

  /// Telemetry hook for the batched prefetch paths: invoked at the single
  /// serialized accounting point, once per file fetched from the registry,
  /// with the simulated time the file became cache-resident. Benches and
  /// tests use it to measure time-to-first-useful-byte and to prove
  /// delta-before-unchanged scheduling.
  using PrefetchObserver = std::function<void(
      const Fingerprint& fp, std::uint64_t size, double sim_seconds)>;
  void set_prefetch_observer(PrefetchObserver observer) {
    prefetch_observer_ = std::move(observer);
  }

  /// Copy of the recorded first-materialization profile of `series`
  /// ("name" of "name:tag"); empty profile when nothing was recorded.
  ImageAccessProfile access_profile(const std::string& series) const;

  /// Merges a persisted/remote profile into the series' in-memory one
  /// (redeploy on a node with saved history).
  void merge_access_profile(const std::string& series,
                            const ImageAccessProfile& profile);

  /// Sets the worker budget and in-flight byte bound for the batched fetch
  /// paths (prefetch_remaining, bulk-warm deploy). Defaults to the machine.
  void set_concurrency(const util::Concurrency& concurrency) {
    concurrency_ = concurrency;
    pool_.reset();
  }
  const util::Concurrency& concurrency() const noexcept {
    return concurrency_;
  }

  /// Attaches this client to a host-wide admission budget (gear/admission):
  /// every wire batch and demand fault acquires its bytes from `budget`
  /// before touching the wire, so N clients on one node never stage more
  /// than the budget in download+decompression buffers at once. Demand
  /// faults use the strict-priority lane; bulk batches carry the deploy's
  /// remaining-bytes hint for smallest-remaining-first admission. The
  /// budget must outlive the client. Null (default) restores per-client
  /// caps only.
  void set_host_budget(HostBudget* budget) { host_budget_ = budget; }
  HostBudget* host_budget() const noexcept { return host_budget_; }

  /// Cap on files per download_batch round-trip in the bulk-fetch paths.
  /// 1 reproduces the serial per-file protocol over the same wire messages
  /// (the per-file baseline of the batching experiments).
  void set_download_batch_files(std::size_t n) {
    batch_files_ = n < 1 ? 1 : n;
  }
  std::size_t download_batch_files() const noexcept { return batch_files_; }

  /// Cap on chunk indices per kDownloadChunks round-trip in read_range's
  /// gathering loop. 1 reproduces the serial per-chunk protocol (the
  /// baseline of the chunk-batching experiments); assembled bytes, cache
  /// contents, and registry stats are identical at any setting — only the
  /// round-trip count changes (⌈missing/batch⌉ frames).
  void set_range_batch_chunks(std::size_t n) {
    range_batch_chunks_ = n < 1 ? 1 : n;
  }
  std::size_t range_batch_chunks() const noexcept {
    return range_batch_chunks_;
  }

  /// When enabled, deploy() bulk-warms the access set's still-stubbed files
  /// into the shared cache with batched pipelined downloads before replaying
  /// the accesses, instead of paying one round-trip per file miss. Off by
  /// default (the paper's on-demand deployment model).
  void set_bulk_warm_deploy(bool enabled) { bulk_warm_deploy_ = enabled; }

  /// Times a concurrent materialization of the same fingerprint joined an
  /// already in-flight download instead of issuing its own (telemetry for
  /// the singleflight path).
  std::uint64_t coalesced_hits() const noexcept {
    return coalesced_hits_.load(std::memory_order_relaxed);
  }

  /// Tears down a container. Gear only drops the inode cache entries of the
  /// files the container actually touched (paper §V-F), then deletes its
  /// level-3 diff.
  double destroy(const std::string& container_id);

  /// Deletes an image: level-2 index goes away, pinned files are released
  /// into the evictable pool but stay cached.
  void remove_image(const std::string& reference);

  ThreeLevelStore& store() noexcept { return store_; }
  const ThreeLevelStore& store() const noexcept { return store_; }

  /// Wipes the shared cache (cold-cache experiments; pinned entries of
  /// installed images are unpinned and dropped too).
  void clear_all_local_state();

  const docker::RuntimeParams& params() const noexcept { return params_; }

 private:
  struct Inflight;

  /// Serves one regular-file fault: shared cache, then peer source, then
  /// the registry. Concurrent calls for the same fingerprint coalesce into
  /// one registry download (singleflight): the first caller fetches, the
  /// rest wait on the flight and share its content, paying only the
  /// hard-link cost. Safe to call from several viewer threads; all model
  /// and store accounting is serialized under state_mutex_. `record_access`
  /// feeds the series' access profile (true for real workload faults, false
  /// for prefetch's own hard-link sweep, which would otherwise flatten the
  /// profile into uniformity).
  Bytes materialize(const std::string& reference, const std::string& path,
                    const Fingerprint& fp, std::uint64_t size,
                    std::uint64_t* downloaded, bool record_access);

  /// The registry leg of materialize (singleflight leaders only): one
  /// download_batch of one file, accounted under state_mutex_.
  Bytes fetch_from_registry(const std::string& reference,
                            const Fingerprint& fp, std::uint64_t size,
                            std::uint64_t* downloaded);

  /// Fetches `wanted` (unique fingerprints + expected sizes) into the shared
  /// cache in pipelined batches, skipping entries already cached and
  /// consulting the peer source first. Returns (files downloaded from the
  /// registry, wire bytes moved). The single serialized accounting point for
  /// the batched paths: workers only decompress.
  ///
  /// With `backfill` set, the drain runs below the demand lane (no new
  /// batch while a fault fetches) and coordinates with the singleflight
  /// map: batch members are claimed as flights at fetch time — members an
  /// in-flight demand fault already owns are dropped from the wire request
  /// — and published to joiners at the accounting point.
  std::pair<std::size_t, std::uint64_t> warm_batch(
      const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted,
      bool backfill = false);

  /// Shared body of prefetch_remaining / backfill_remaining.
  std::pair<std::size_t, std::uint64_t> prefetch_impl(
      const std::string& reference, bool backfill);

  /// Per-image index-tree lock, created on first use. Handed to every
  /// viewer of the image so concurrent readers and the backfill sweep
  /// serialize tree lookups/mutations (contents are fetched outside it).
  std::mutex* tree_lock(const std::string& reference);

  /// Builds the priority plan for `reference`'s still-stubbed files under
  /// the configured order (previous-version index + access profile looked
  /// up internally).
  PrefetchPlan plan_prefetch(const std::string& reference);

  /// Records one first-materialization into the series' profile.
  void record_access(const std::string& reference, const std::string& path);

  util::ThreadPool* pool();

  docker::DockerRegistry& index_registry_;
  FileRegistryApi& file_registry_;
  sim::NetworkLink& link_;
  sim::DiskModel& disk_;
  docker::RuntimeParams params_;
  ThreeLevelStore store_;
  std::map<std::string, std::size_t> container_touched_;  // id -> inode count
  std::uint64_t untracked_downloaded_ = 0;  // bytes fetched via open_viewer
  std::uint64_t range_downloaded_ = 0;      // bytes fetched via read_range
  /// Consults every peer tier in order for one object; returns the first
  /// hit (recording a hit for that tier) or nullopt.
  std::optional<Bytes> consult_peer_tiers(const Fingerprint& fp,
                                          std::uint64_t size);
  /// Consults every batched tier in order; each tier only sees the slots
  /// all earlier tiers missed. out[i] corresponds to wanted[i].
  std::vector<std::optional<Bytes>> consult_batch_peer_tiers(
      const std::vector<std::pair<Fingerprint, std::uint64_t>>& wanted);
  bool has_peer_source() const noexcept { return !peer_tiers_.empty(); }
  bool has_batch_peer_source() const noexcept {
    return !batch_peer_tiers_.empty();
  }

  std::vector<PeerSource> peer_tiers_;            // cooperative lookup ladder
  std::vector<BatchPeerSource> batch_peer_tiers_; // batched ladder
  std::atomic<std::uint64_t> peer_hits_{0};
  /// Hits per tier (add order); atomic because read_range gather runs its
  /// peer consult outside state_mutex_.
  std::array<std::atomic<std::uint64_t>, kMaxPeerTiers> peer_tier_hits_{};
  /// Client-side cache of chunk manifests already transferred.
  std::unordered_map<Fingerprint, ChunkManifest, FingerprintHash>
      manifest_cache_;
  util::Concurrency concurrency_;            // batched-fetch worker budget
  std::unique_ptr<util::ThreadPool> pool_;   // lazily built
  bool bulk_warm_deploy_ = false;
  bool prefetch_after_deploy_ = false;
  std::size_t batch_files_ = 64;             // files per bulk round-trip
  std::size_t range_batch_chunks_ = 64;      // chunks per range round-trip
  PrefetchOrder prefetch_order_ = PrefetchOrder::kPath;
  PrefetchObserver prefetch_observer_;
  /// First-materialization profiles, keyed by image series. Guarded by its
  /// own mutex: recording happens inside viewer materializer callbacks,
  /// possibly on viewer threads, and must not entangle with state_mutex_.
  mutable std::mutex profiles_mutex_;
  std::map<std::string, ImageAccessProfile> profiles_;

  /// Serializes the sim models (link/disk) and the three-level store —
  /// none of them are thread-safe.
  std::mutex state_mutex_;
  /// Serializes registry downloads across flight leaders (the registry is
  /// not thread-safe either). Separate from state_mutex_ so cache probes
  /// and flight joins never queue behind a download in progress.
  std::mutex download_mutex_;
  std::mutex flights_mutex_;  // guards inflight_ (none held together)
  std::unordered_map<Fingerprint, std::shared_ptr<Inflight>, FingerprintHash>
      inflight_;
  std::atomic<std::uint64_t> coalesced_hits_{0};
  /// Demand/backfill link arbiter (lazy deployments). Faults register their
  /// registry fetches; the backfill drain yields while any is in flight.
  DemandLane demand_lane_;
  /// Optional host-wide admission budget shared across clients (null = per
  /// client caps only). Not owned.
  HostBudget* host_budget_ = nullptr;
  /// Per-image index-tree locks (see tree_lock()); guarded by their own
  /// mutex, held only during map lookup/insert.
  std::mutex tree_locks_mutex_;
  std::map<std::string, std::unique_ptr<std::mutex>> tree_locks_;
};

}  // namespace gear
