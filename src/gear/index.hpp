// The Gear index: structure of an image's file system with fingerprint stubs.
//
// A Gear image = Gear index + Gear files (paper §III-B). The index keeps the
// whole directory tree — directories, symlinks, metadata — but every regular
// file is replaced by a stub carrying the file's MD5 fingerprint and size.
//
// Compatibility (paper §III-C): the index ships inside a *single-layer
// Docker image*. In that on-the-wire form each stub is an ordinary small
// regular file whose content is "GEARFP1:<fingerprint-hex>:<size>", so the
// index image round-trips through the unmodified Docker registry, layer
// tarball, digest and manifest machinery. This module converts between the
// semantic form (vfs kFingerprint nodes) and the wire form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "docker/image.hpp"
#include "util/fingerprint.hpp"
#include "vfs/file_tree.hpp"

namespace gear {

/// Semantic form of a Gear index.
class GearIndex {
 public:
  GearIndex() = default;
  explicit GearIndex(vfs::FileTree tree);

  /// Builds the index of a root filesystem: every regular file becomes a
  /// fingerprint stub; everything else is kept as-is. `fingerprint_of`
  /// supplies the fingerprint for each file — the converter routes this
  /// through its collision-detecting resolver (converter.hpp).
  static GearIndex from_root_fs(
      const vfs::FileTree& root,
      const std::function<Fingerprint(const std::string& path,
                                      const Bytes& content)>& fingerprint_of);

  const vfs::FileTree& tree() const noexcept { return tree_; }
  vfs::FileTree& tree() noexcept { return tree_; }

  /// All stubs in the index, path-ordered.
  struct StubRef {
    std::string path;
    Fingerprint fingerprint;
    std::uint64_t size = 0;
  };
  std::vector<StubRef> stubs() const;

  /// Distinct fingerprints referenced by the index.
  std::vector<Fingerprint> distinct_fingerprints() const;

  /// Total bytes of the files the index points to (the image's logical size).
  std::uint64_t referenced_bytes() const;

  /// Wire form: a plain file tree where stubs are small regular files with
  /// "GEARFP1:..." content, suitable for tar/Layer/Docker-registry transport.
  vfs::FileTree to_wire_tree() const;

  /// Parses the wire form back (inverse of to_wire_tree).
  static GearIndex from_wire_tree(const vfs::FileTree& wire);

  /// Serialized stub-file content for one fingerprint (exposed for tests and
  /// for the viewer's stub detection).
  static std::string encode_stub(const Fingerprint& fp, std::uint64_t size);

  /// Decodes stub-file content; returns false if `content` is not a stub.
  static bool decode_stub(BytesView content, Fingerprint* fp,
                          std::uint64_t* size);

 private:
  vfs::FileTree tree_;
};

/// A Gear image ready for distribution: the index packaged as a single-layer
/// Docker image plus the unique Gear files it references.
struct GearImage {
  docker::Image index_image;  // single-layer Docker image (wire form)
  GearIndex index;            // semantic form
  /// Unique files introduced by this image (fingerprint -> raw content).
  std::vector<std::pair<Fingerprint, Bytes>> files;
};

}  // namespace gear
