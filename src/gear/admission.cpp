#include "gear/admission.hpp"

#include <algorithm>

namespace gear {

std::size_t pick_next_ticket(const std::vector<AdmissionTicket>& waiting,
                             std::uint64_t inflight_bytes,
                             std::uint64_t budget_bytes, AdmissionOrder order) {
  if (waiting.empty()) return kNoTicket;

  // Demand strictly first: the earliest-arrived demand ticket is the only
  // admission candidate while any demand ticket waits.
  std::size_t best = kNoTicket;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    if (waiting[i].lane != AdmissionLane::kDemand) continue;
    if (best == kNoTicket || waiting[i].seq < waiting[best].seq) best = i;
  }

  if (best == kNoTicket) {
    // Background only: rank per the configured order.
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      if (best == kNoTicket) {
        best = i;
        continue;
      }
      const AdmissionTicket& a = waiting[i];
      const AdmissionTicket& b = waiting[best];
      bool wins;
      if (order == AdmissionOrder::kSmallestFirst) {
        wins = a.remaining_hint != b.remaining_hint
                   ? a.remaining_hint < b.remaining_hint
                   : a.seq < b.seq;
      } else {
        wins = a.seq < b.seq;
      }
      if (wins) best = i;
    }
  }

  // Head-of-line semantics: the policy's choice either starts now or
  // everything waits — no smaller ticket slips past it (that would starve
  // large deploys and make peak accounting order-dependent). The idle-host
  // exception keeps oversized requests from deadlocking.
  const AdmissionTicket& chosen = waiting[best];
  if (budget_bytes == 0) return best;  // unbounded: metering only
  if (inflight_bytes == 0) return best;
  if (inflight_bytes + chosen.bytes <= budget_bytes) return best;
  return kNoTicket;
}

HostBudget::HostBudget(std::uint64_t budget_bytes, AdmissionOrder order)
    : budget_(budget_bytes), order_(order) {}

void HostBudget::charge(std::uint64_t bytes) {
  inflight_ += bytes;
  ++stats_.admitted;
  stats_.peak_inflight_bytes =
      std::max(stats_.peak_inflight_bytes, inflight_);
}

void HostBudget::admit_waiters() {
  while (!waiting_.empty()) {
    std::vector<AdmissionTicket> tickets;
    tickets.reserve(waiting_.size());
    for (const Waiter* w : waiting_) tickets.push_back(w->ticket);
    std::size_t idx = pick_next_ticket(tickets, inflight_, budget_, order_);
    if (idx == kNoTicket) break;
    auto it = waiting_.begin();
    std::advance(it, idx);
    Waiter* chosen = *it;
    if (chosen->ticket.lane == AdmissionLane::kDemand) {
      for (const Waiter* w : waiting_) {
        if (w->ticket.lane == AdmissionLane::kBackground) {
          ++stats_.demand_preemptions;
          break;
        }
      }
    }
    waiting_.erase(it);
    charge(chosen->ticket.bytes);
    chosen->admitted = true;
  }
}

void HostBudget::acquire(std::uint64_t bytes, AdmissionLane lane,
                         std::uint64_t remaining_hint) {
  std::unique_lock<std::mutex> lock(mutex_);
  Waiter waiter;
  waiter.ticket = {bytes, lane, remaining_hint, next_seq_++};

  bool admit_now = false;
  if (budget_ == 0) {
    admit_now = true;  // unbounded: meter only
  } else if (lane == AdmissionLane::kDemand) {
    // A demand arrival goes ahead of every queued background ticket but
    // behind earlier demand tickets (arrival order within the lane).
    bool earlier_demand = false;
    for (const Waiter* w : waiting_) {
      if (w->ticket.lane == AdmissionLane::kDemand) {
        earlier_demand = true;
        break;
      }
    }
    admit_now = !earlier_demand &&
                (inflight_ == 0 || inflight_ + bytes <= budget_);
    if (admit_now && !waiting_.empty()) ++stats_.demand_preemptions;
  } else {
    admit_now =
        waiting_.empty() && (inflight_ == 0 || inflight_ + bytes <= budget_);
  }

  if (admit_now) {
    charge(bytes);
    return;
  }

  ++stats_.waits;
  waiting_.push_back(&waiter);
  cv_.wait(lock, [&waiter] { return waiter.admitted; });
}

void HostBudget::release(std::uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_ = bytes > inflight_ ? 0 : inflight_ - bytes;
    admit_waiters();
  }
  cv_.notify_all();
}

HostBudgetStats HostBudget::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HostBudgetStats out = stats_;
  out.inflight_bytes = inflight_;
  return out;
}

BudgetLease::BudgetLease(HostBudget* budget, std::uint64_t bytes,
                         AdmissionLane lane, std::uint64_t remaining_hint)
    : budget_(budget), bytes_(bytes) {
  if (budget_ != nullptr) budget_->acquire(bytes_, lane, remaining_hint);
}

BudgetLease::~BudgetLease() { release(); }

BudgetLease::BudgetLease(BudgetLease&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

BudgetLease& BudgetLease::operator=(BudgetLease&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void BudgetLease::release() {
  if (budget_ != nullptr) {
    budget_->release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }
}

std::shared_ptr<void> make_budget_lease(HostBudget* budget,
                                        std::uint64_t bytes,
                                        AdmissionLane lane,
                                        std::uint64_t remaining_hint) {
  if (budget == nullptr) return nullptr;
  auto lease =
      std::make_shared<BudgetLease>(budget, bytes, lane, remaining_hint);
  return std::shared_ptr<void>(std::move(lease));
}

}  // namespace gear
