// Registry-side garbage collection.
//
// Gear decouples file lifetime from image lifetime: deleting an image only
// removes its index; its Gear files stay shared (paper §III-D1). The flip
// side is that the Gear Registry accumulates unreferenced files once their
// last referencing index is gone. This is the classic registry GC problem —
// solved, as registries do, with mark-and-sweep:
//
//   mark:  walk every index image in the Docker registry, load its index
//          layer, collect every fingerprint it references (for chunked
//          files, also the chunk fingerprints via the manifest);
//   sweep: delete every Gear registry object not marked.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "docker/registry.hpp"
#include "gear/registry.hpp"
#include "util/fingerprint.hpp"

namespace gear {

struct GcReport {
  std::size_t indexes_scanned = 0;
  std::size_t live_objects = 0;
  std::size_t swept_objects = 0;
  std::uint64_t bytes_reclaimed = 0;
};

class GearRegistryGc {
 public:
  GearRegistryGc(const docker::DockerRegistry& index_registry,
                 GearRegistry& file_registry)
      : index_registry_(index_registry), file_registry_(file_registry) {}

  /// Mark phase only: the set of fingerprints any stored index references
  /// (file fps, chunk manifests' chunk fps).
  std::unordered_set<Fingerprint, FingerprintHash> mark() const;

  /// Full collection. Safe to run while clients deploy: clients hold their
  /// own cached copies, and the mark set is computed from the same registry
  /// the sweep runs against.
  GcReport collect();

 private:
  const docker::DockerRegistry& index_registry_;
  GearRegistry& file_registry_;
};

struct ScrubReport {
  std::size_t objects_checked = 0;
  std::size_t verified = 0;        // content hashes back to its fingerprint
  std::size_t unverifiable = 0;    // salted unique IDs (collision handling)
  std::size_t corrupt = 0;         // chunked file with missing/short chunks
  std::vector<Fingerprint> corrupt_fingerprints;
};

/// Integrity scrub of a Gear registry: re-hashes every object (including
/// reassembled chunked files) against its fingerprint. Objects whose name is
/// a salted unique ID (paper §III-B collision handling) legitimately fail the
/// re-hash and are reported as unverifiable, not corrupt; hard errors —
/// chunked files whose chunks are missing or mis-sized — are corrupt.
ScrubReport scrub_registry(const GearRegistry& registry,
                           const FingerprintHasher& hasher = default_hasher());

}  // namespace gear
