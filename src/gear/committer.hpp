// Commit: turn a running Gear container into a new Gear image (paper §III-D2).
//
// The committer extracts the contents of the container's writable diff
// directory into new Gear files, replaces them with fingerprint stubs, and
// merges the result (including deletions) with the current image's index to
// produce the new image's index — which is then packaged as a single-layer
// Docker image exactly like the converter's output.
#pragma once

#include <string>
#include <vector>

#include "docker/manifest.hpp"
#include "gear/index.hpp"
#include "util/fingerprint.hpp"
#include "vfs/file_tree.hpp"

namespace gear {

struct CommitResult {
  GearImage image;
  std::size_t files_extracted = 0;  // regular files found in the diff
};

class GearCommitter {
 public:
  explicit GearCommitter(const FingerprintHasher& hasher = default_hasher());

  /// `index_tree`: the image's level-2 index (possibly with materialized
  /// regular nodes — these are re-normalized to stubs, not re-uploaded).
  /// `diff`: the container's level-3 writable layer.
  CommitResult commit(const vfs::FileTree& index_tree,
                      const vfs::FileTree& diff,
                      const docker::ImageConfig& config, std::string name,
                      std::string tag) const;

 private:
  const FingerprintHasher& hasher_;
};

}  // namespace gear
