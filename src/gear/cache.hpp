// Shared local Gear-file cache — level 1 of the three-level storage.
//
// All Gear files a client has ever materialized live here, deduplicated by
// fingerprint and shared by every image and container on the node (paper
// §III-D1). Entries hard-linked into an index are pinned; only unlinked
// entries are eviction candidates, under a user-chosen FIFO or LRU policy
// and byte capacity — exactly the paper's cache-management contract.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear {

enum class EvictionPolicy { kFifo, kLru };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;  // insertions that found no evictable space
};

/// Per-entry hotness snapshot (feeds the prefetch scheduler's telemetry and
/// makes FIFO-vs-LRU eviction behavior observable in tests).
struct CacheEntryStats {
  std::uint64_t size = 0;
  std::uint32_t links = 0;            // pin count
  std::uint64_t accesses = 0;         // get() hits served by this entry
  std::uint64_t last_access_tick = 0; // monotonic op tick of last hit/insert
};

/// Thread-safety: the lookup/mutation interface (contains/get/put/link/
/// unlink/link_count/fingerprints/clear_unpinned) is internally locked so
/// pipelined materialization workers may consult the cache concurrently.
/// The inline counters (size_bytes/entry_count/stats) are unsynchronized
/// telemetry reads — call them from the owning thread.
class SharedFileCache {
 public:
  /// `capacity_bytes` = 0 means unbounded (the paper's default deployment).
  explicit SharedFileCache(std::uint64_t capacity_bytes = 0,
                           EvictionPolicy policy = EvictionPolicy::kLru);

  bool contains(const Fingerprint& fp) const;

  /// Fetches content; records a hit/miss and refreshes recency (LRU).
  StatusOr<Bytes> get(const Fingerprint& fp);

  /// Inserts content, evicting unlinked entries if needed. Returns false if
  /// the entry could not fit (all other entries pinned). Inserting an
  /// existing fingerprint is a no-op (returns true).
  bool put(const Fingerprint& fp, Bytes content);

  /// Pins the entry: one more index hard-links this file. Pinned entries
  /// are never evicted. Throws kNotFound if absent.
  void link(const Fingerprint& fp);

  /// Unpins (image deletion). The entry stays cached and becomes evictable
  /// when its link count reaches zero — deletion of images does not purge
  /// shared files (paper: "its Gear files remain at the first level").
  void unlink(const Fingerprint& fp);

  std::uint32_t link_count(const Fingerprint& fp) const;

  std::uint64_t size_bytes() const noexcept { return size_bytes_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Re-bounds the cache at runtime — the disk-pressure response. Evicts
  /// unpinned entries in policy order until the new envelope fits (0 =
  /// unbounded again). Pinned entries are never evicted, so pinned bytes
  /// may still exceed a shrunken envelope; later put()s are then rejected
  /// until gc/remove_image unpins. Returns bytes evicted.
  std::uint64_t set_capacity(std::uint64_t capacity_bytes);

  /// Drops every unpinned entry (cold-cache experiments).
  void clear_unpinned();

  /// Enumerates cached fingerprints (unordered) — used by cooperative
  /// distribution to advertise a node's holdings.
  std::vector<Fingerprint> fingerprints() const;

  /// Hotness of one entry; nullopt when absent. Reading stats does not
  /// count as an access and does not refresh recency.
  std::optional<CacheEntryStats> entry_stats(const Fingerprint& fp) const;

  /// Snapshot of every entry's hotness, fingerprint-ordered (deterministic).
  std::vector<std::pair<Fingerprint, CacheEntryStats>> entry_snapshot() const;

 private:
  struct Entry {
    Bytes content;
    std::uint32_t links = 0;
    std::uint64_t accesses = 0;
    std::uint64_t last_access_tick = 0;
    std::list<Fingerprint>::iterator order_it;
  };

  /// Makes room for `needed` bytes by evicting unpinned entries in policy
  /// order. Returns false if impossible.
  bool make_room(std::uint64_t needed);

  void touch(Entry& entry, const Fingerprint& fp);

  mutable std::mutex mu_;
  std::uint64_t capacity_;
  EvictionPolicy policy_;
  std::unordered_map<Fingerprint, Entry, FingerprintHash> entries_;
  /// Eviction order: front = next victim. FIFO appends on insert only;
  /// LRU also moves to back on access.
  std::list<Fingerprint> order_;
  std::uint64_t size_bytes_ = 0;
  CacheStats stats_;
  /// Monotonic operation counter stamped into last_access_tick on every
  /// get() hit and put(). Ticks advance on access regardless of policy, so
  /// FIFO-vs-LRU differences show up in eviction order, not in the stats.
  std::uint64_t tick_ = 0;
};

}  // namespace gear
