#include "gear/chunking.hpp"

#include <cstring>

#include "compress/codec.hpp"

namespace gear {
namespace {

constexpr char kMagic[4] = {'G', 'C', 'M', '1'};

}  // namespace

std::pair<std::size_t, std::size_t> ChunkManifest::chunk_range(
    std::uint64_t offset, std::uint64_t length) const {
  if (length == 0 || offset + length > file_size) {
    throw_error(ErrorCode::kInvalidArgument, "chunk_range: out of bounds");
  }
  std::size_t first = static_cast<std::size_t>(offset / chunk_bytes);
  std::size_t last =
      static_cast<std::size_t>((offset + length - 1) / chunk_bytes);
  return {first, last};
}

Bytes ChunkManifest::serialize() const {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  put_varint(out, file_size);
  put_varint(out, chunk_bytes);
  put_varint(out, chunks.size());
  for (const Fingerprint& fp : chunks) {
    out.insert(out.end(), fp.raw().begin(), fp.raw().end());
  }
  return out;
}

ChunkManifest ChunkManifest::parse(BytesView data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    throw_error(ErrorCode::kCorruptData, "chunk manifest: bad magic");
  }
  std::size_t pos = 4;
  ChunkManifest m;
  m.file_size = get_varint(data, pos);
  m.chunk_bytes = get_varint(data, pos);
  std::uint64_t count = get_varint(data, pos);
  if (m.chunk_bytes == 0 ||
      count != (m.file_size + m.chunk_bytes - 1) / m.chunk_bytes) {
    throw_error(ErrorCode::kCorruptData, "chunk manifest: bad geometry");
  }
  if (pos + count * Fingerprint::kSize != data.size()) {
    throw_error(ErrorCode::kCorruptData, "chunk manifest: bad length");
  }
  m.chunks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::array<std::uint8_t, Fingerprint::kSize> raw{};
    std::memcpy(raw.data(), data.data() + pos, raw.size());
    pos += raw.size();
    m.chunks.emplace_back(raw);
  }
  return m;
}

ChunkManifest build_chunk_manifest(BytesView content,
                                   const ChunkPolicy& policy,
                                   const FingerprintHasher& hasher) {
  if (policy.chunk_bytes == 0) {
    throw_error(ErrorCode::kInvalidArgument, "chunk size must be positive");
  }
  ChunkManifest m;
  m.file_size = content.size();
  m.chunk_bytes = policy.chunk_bytes;
  for (std::size_t off = 0; off < content.size(); off += policy.chunk_bytes) {
    std::size_t len =
        std::min<std::size_t>(policy.chunk_bytes, content.size() - off);
    m.chunks.push_back(hasher.fingerprint(content.subspan(off, len)));
  }
  return m;
}

BytesView chunk_view(BytesView content, const ChunkManifest& manifest,
                     std::size_t chunk_index) {
  if (chunk_index >= manifest.chunks.size()) {
    throw_error(ErrorCode::kInvalidArgument, "chunk index out of range");
  }
  std::size_t off = chunk_index * manifest.chunk_bytes;
  std::size_t len =
      std::min<std::size_t>(manifest.chunk_bytes, content.size() - off);
  return content.subspan(off, len);
}

}  // namespace gear
