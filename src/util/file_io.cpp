#include "util/file_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace gear {

Bytes read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw_error(ErrorCode::kInternal, "cannot open " + path.string());
  }
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::filesystem::path& path, BytesView content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw_error(ErrorCode::kInternal, "cannot create " + path.string());
  }
  out.write(reinterpret_cast<const char*>(content.data()),
            static_cast<std::streamsize>(content.size()));
  if (!out) {
    throw_error(ErrorCode::kInternal, "short write to " + path.string());
  }
}

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw_error(ErrorCode::kInternal,
              what + " " + path.string() + ": " + std::strerror(errno));
}

void fsync_path(const std::filesystem::path& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) throw_errno("cannot open for fsync", path);
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync failed for", path);
  }
  ::close(fd);
}

}  // namespace

void write_file_durable(const std::filesystem::path& path, BytesView content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create", tmp);
  std::size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("write failed to", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync failed for", tmp);
  }
  if (::close(fd) != 0) throw_errno("close failed for", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename failed onto", path);
  }
  // The rename itself must be durable: sync the containing directory.
  fsync_path(path.parent_path(), O_RDONLY | O_DIRECTORY);
}

}  // namespace gear
