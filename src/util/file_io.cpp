#include "util/file_io.hpp"

#include <fstream>

#include "util/error.hpp"

namespace gear {

Bytes read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw_error(ErrorCode::kInternal, "cannot open " + path.string());
  }
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::filesystem::path& path, BytesView content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw_error(ErrorCode::kInternal, "cannot create " + path.string());
  }
  out.write(reinterpret_cast<const char*>(content.data()),
            static_cast<std::streamsize>(content.size()));
  if (!out) {
    throw_error(ErrorCode::kInternal, "short write to " + path.string());
  }
}

}  // namespace gear
