// CRC-32 (IEEE 802.3 polynomial), table-driven, from scratch.
//
// Used by the wire protocol to detect frames damaged in transit — cheaper
// than a cryptographic digest and exactly what integrity checking at this
// layer needs (content identity is separately verified by fingerprints).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace gear {

/// CRC-32 of `data` (reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF — the
/// zlib/PNG convention).
std::uint32_t crc32(BytesView data);

/// Incremental form: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, BytesView data);

}  // namespace gear
