// Hexadecimal encoding/decoding of byte buffers.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace gear {

/// Encodes bytes as lowercase hexadecimal.
std::string hex_encode(BytesView data);

/// Decodes a hexadecimal string (case-insensitive).
/// Throws Error(kInvalidArgument) on odd length or non-hex characters.
Bytes hex_decode(std::string_view hex);

}  // namespace gear
