// Human-readable formatting of sizes, durations, and ratios for benchmark
// and example output.
#pragma once

#include <cstdint>
#include <string>

namespace gear {

/// "370.0 GB", "1.5 MB", "823 B". Decimal units (as the paper reports).
std::string format_size(std::uint64_t bytes);

/// "46.2 s", "320 ms", "1.2 min".
std::string format_duration(double seconds);

/// "54.2 %".
std::string format_percent(double fraction);

/// "2.61x".
std::string format_speedup(double factor);

/// Left-pads `s` to `width` (for aligned table output).
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` to `width`.
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace gear
