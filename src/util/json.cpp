#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace gear {
namespace {

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw_error(ErrorCode::kCorruptData,
                "json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) fail("bad keyword");
    pos_ += kw.size();
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_keyword("true"); return Json(true);
      case 'f': expect_keyword("false"); return Json(false);
      case 'n': expect_keyword("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // manifests never contain them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (num.empty() || num == "-") fail("bad number");
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && p == num.data() + num.size()) return Json(v);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    if (ec != std::errc() || p != num.data() + num.size()) fail("bad number");
    return Json(d);
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw_error(ErrorCode::kInvalidArgument, "json: not a bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  if (is_double()) {
    double d = std::get<double>(value_);
    if (d == std::floor(d)) return static_cast<std::int64_t>(d);
  }
  throw_error(ErrorCode::kInvalidArgument, "json: not an integer");
}

double Json::as_double() const {
  if (is_double()) return std::get<double>(value_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  throw_error(ErrorCode::kInvalidArgument, "json: not a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) throw_error(ErrorCode::kInvalidArgument, "json: not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw_error(ErrorCode::kInvalidArgument, "json: not an array");
  return std::get<JsonArray>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) throw_error(ErrorCode::kInvalidArgument, "json: not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw_error(ErrorCode::kInvalidArgument, "json: not an object");
  return std::get<JsonObject>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) throw_error(ErrorCode::kInvalidArgument, "json: not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr) throw_error(ErrorCode::kNotFound, "json: missing key " + key);
  return *v;
}

const Json* Json::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<JsonObject>(value_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

std::string Json::dump() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = as_bool() ? "true" : "false";
  } else if (is_int()) {
    out = std::to_string(std::get<std::int64_t>(value_));
  } else if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(value_));
    out = buf;
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& v : as_array()) {
      if (!first) out.push_back(',');
      first = false;
      out += v.dump();
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(out, k);
      out.push_back(':');
      out += v.dump();
    }
    out.push_back('}');
  }
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace gear
