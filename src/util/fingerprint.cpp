#include "util/fingerprint.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/md5.hpp"

namespace gear {

Fingerprint Fingerprint::from_hex(std::string_view hex) {
  Bytes raw = hex_decode(hex);
  if (raw.size() != kSize) {
    throw_error(ErrorCode::kInvalidArgument,
                "fingerprint must be 32 hex chars");
  }
  std::array<std::uint8_t, kSize> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  return Fingerprint(arr);
}

std::string Fingerprint::hex() const {
  return hex_encode(BytesView(raw_.data(), raw_.size()));
}

Fingerprint Md5FingerprintHasher::fingerprint(BytesView content) const {
  return Fingerprint(Md5::hash(content));
}

TruncatedFingerprintHasher::TruncatedFingerprintHasher(unsigned bits)
    : bits_(bits) {
  if (bits == 0 || bits > 128) {
    throw_error(ErrorCode::kInvalidArgument,
                "truncated hasher bits must be in [1,128]");
  }
}

Fingerprint TruncatedFingerprintHasher::fingerprint(BytesView content) const {
  Md5Digest full = Md5::hash(content);
  std::array<std::uint8_t, Fingerprint::kSize> truncated{};
  unsigned whole_bytes = bits_ / 8;
  unsigned rem_bits = bits_ % 8;
  for (unsigned i = 0; i < whole_bytes; ++i) truncated[i] = full[i];
  if (rem_bits > 0) {
    std::uint8_t mask = static_cast<std::uint8_t>(0xff << (8 - rem_bits));
    truncated[whole_bytes] = full[whole_bytes] & mask;
  }
  return Fingerprint(truncated);
}

std::string TruncatedFingerprintHasher::name() const {
  return "md5/" + std::to_string(bits_);
}

const FingerprintHasher& default_hasher() {
  static const Md5FingerprintHasher hasher;
  return hasher;
}

double collision_probability_bound(double n, unsigned bits) {
  return n * (n - 1.0) / 2.0 * std::exp2(-static_cast<double>(bits));
}

}  // namespace gear
