// Basic byte-buffer aliases and helpers shared across the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gear {

/// Owning byte buffer. The library deals in raw bytes (file contents, layer
/// tarballs, compressed objects); a single alias keeps signatures uniform.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Builds a byte buffer from a string literal / std::string content.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (for tests and debugging output).
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace gear
