#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace gear {

void Histogram::record(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  if (samples_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "histogram is empty");
  }
  ensure_sorted();
  return sorted_.front();
}

double Histogram::max() const {
  if (samples_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "histogram is empty");
  }
  ensure_sorted();
  return sorted_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "histogram is empty");
  }
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "histogram is empty");
  }
  if (p < 0.0 || p > 100.0) {
    throw_error(ErrorCode::kInvalidArgument, "percentile out of range");
  }
  ensure_sorted();
  if (p == 0.0) return sorted_.front();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

std::string Histogram::summary_seconds() const {
  if (samples_.empty()) return "n=0";
  return "n=" + std::to_string(count()) + " mean=" + format_duration(mean()) +
         " p50=" + format_duration(percentile(50)) +
         " p90=" + format_duration(percentile(90)) +
         " p99=" + format_duration(percentile(99)) +
         " max=" + format_duration(max());
}

}  // namespace gear
