#include "util/format.hpp"

#include <array>
#include <cstdio>

namespace gear {
namespace {

std::string printf_str(const char* fmt, double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, unit);
  return buf;
}

}  // namespace

std::string format_size(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  if (unit == 0) {
    return std::to_string(bytes) + " B";
  }
  return printf_str("%.1f %s", v, kUnits[unit]);
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 1e-3) {
    return printf_str("%.1f %s", seconds * 1e6, "us");
  }
  if (seconds < 1.0) {
    return printf_str("%.1f %s", seconds * 1e3, "ms");
  }
  if (seconds < 120.0) {
    return printf_str("%.2f %s", seconds, "s");
  }
  return printf_str("%.1f %s", seconds / 60.0, "min");
}

std::string format_percent(double fraction) {
  return printf_str("%.1f %s", fraction * 100.0, "%");
}

std::string format_speedup(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", factor);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace gear
