// Small filesystem I/O helpers shared by the on-disk backends
// (gear/fs_store, gear/persistence, vfs/fs_io).
#pragma once

#include <filesystem>

#include "util/bytes.hpp"

namespace gear {

/// Reads a whole file. Throws Error(kInternal) when unreadable.
Bytes read_file_bytes(const std::filesystem::path& path);

/// Creates/truncates `path` and writes `content`. Throws Error(kInternal)
/// on failure (including short writes).
void write_file_bytes(const std::filesystem::path& path, BytesView content);

}  // namespace gear
