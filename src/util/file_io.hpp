// Small filesystem I/O helpers shared by the on-disk backends
// (gear/fs_store, gear/persistence, vfs/fs_io).
#pragma once

#include <filesystem>

#include "util/bytes.hpp"

namespace gear {

/// Reads a whole file. Throws Error(kInternal) when unreadable.
Bytes read_file_bytes(const std::filesystem::path& path);

/// Creates/truncates `path` and writes `content`. Throws Error(kInternal)
/// on failure (including short writes).
void write_file_bytes(const std::filesystem::path& path, BytesView content);

/// Crash-safe write: writes `content` to a sibling temp file, fsyncs it,
/// atomically renames it onto `path`, then fsyncs the containing directory.
/// A reader (or a reopen after a crash) therefore sees either no file or the
/// complete content, never a torn prefix; an interrupted write leaves only a
/// "<name>.tmp" sibling. Throws Error(kInternal) on failure.
void write_file_durable(const std::filesystem::path& path, BytesView content);

}  // namespace gear
