#include "util/crc32.hpp"

#include <array>

namespace gear {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;  // reflected 0x04C11DB7

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = build_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, BytesView data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table()[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(BytesView data) { return crc32_update(0, data); }

}  // namespace gear
