#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gear {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, for deriving per-entity sub-seeds.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng Rng::from_label(std::uint64_t base_seed, std::string_view label) {
  return Rng(base_seed ^ fnv1a(label));
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  std::uint64_t result = rotl64(s_[0] + s_[3], 23) + s_[0];
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    throw_error(ErrorCode::kInvalidArgument, "Rng::next_below(0)");
  }
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw_error(ErrorCode::kInvalidArgument, "Rng::next_range: lo > hi");
  }
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::uint64_t Rng::next_log_uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo == 0 || lo > hi) {
    throw_error(ErrorCode::kInvalidArgument, "Rng::next_log_uniform bounds");
  }
  double llo = std::log(static_cast<double>(lo));
  double lhi = std::log(static_cast<double>(hi));
  double v = std::exp(llo + next_double() * (lhi - llo));
  auto out = static_cast<std::uint64_t>(v);
  return std::min(std::max(out, lo), hi);
}

Bytes Rng::next_bytes(std::size_t n, double compressibility) {
  Bytes out;
  out.reserve(n);
  // Repetitive runs of length proportional to compressibility interleaved
  // with random bytes give the LZSS codec a tunable ratio.
  while (out.size() < n) {
    if (compressibility > 0 && next_bool(compressibility)) {
      std::uint8_t b = static_cast<std::uint8_t>(next_u64());
      std::size_t run = static_cast<std::size_t>(
          next_range(8, 8 + static_cast<std::uint64_t>(120 * compressibility)));
      run = std::min(run, n - out.size());
      out.insert(out.end(), run, b);
    } else {
      std::uint64_t r = next_u64();
      for (int i = 0; i < 8 && out.size() < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(r >> (i * 8)));
      }
    }
  }
  return out;
}

std::size_t Rng::next_zipf(std::size_t n, double s) {
  if (n == 0) {
    throw_error(ErrorCode::kInvalidArgument, "Rng::next_zipf(0)");
  }
  // Inverse-CDF sampling over the (approximate) continuous Zipf distribution;
  // accurate enough for workload skew and O(1) per draw.
  double u = next_double();
  if (s == 1.0) s = 1.0000001;
  double nn = static_cast<double>(n);
  double h = (std::pow(nn, 1.0 - s) - 1.0) / (1.0 - s);
  // x lands in [1, n]; ranks are 0-based.
  double x = std::pow(1.0 + u * h * (1.0 - s), 1.0 / (1.0 - s));
  auto rank = static_cast<std::size_t>(x) - 1;
  return std::min(rank, n - 1);
}

}  // namespace gear
