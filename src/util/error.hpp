// Error handling primitives.
//
// The library follows a two-tier convention (see DESIGN.md §7):
//  * `gear::Error` (an exception) for failures that indicate a broken
//    invariant or unusable input — corrupt archive, unknown digest, I/O error.
//  * `StatusOr<T>` for expected, recoverable "not found"-style outcomes on
//    hot paths (cache lookups, registry queries).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace gear {

/// Category of a failure; carried by every Error for programmatic matching.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruptData,
  kOutOfSpace,
  kUnsupported,
  kInternal,
};

/// Returns a stable human-readable name for an ErrorCode.
constexpr const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kCorruptData: return "corrupt_data";
    case ErrorCode::kOutOfSpace: return "out_of_space";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Exception type thrown across the library.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] inline void throw_error(ErrorCode code, const std::string& msg) {
  throw Error(code, msg);
}

template <typename T>
class StatusOr;

/// Unwraps a StatusOr or rethrows its error with call-site context
/// prepended ("gc mark: manifest nginx:v3: not found: ..."), so a failure
/// deep inside a sweep names the ref/path/digest that triggered it instead
/// of only the producer's message.
template <typename T>
T unwrap(StatusOr<T>&& s, const std::string& context) {
  if (!s.ok()) throw_error(s.code(), context + ": " + s.message());
  return std::move(s).value();
}

/// Lightweight value-or-status result for recoverable outcomes.
///
/// Unlike std::optional it records *why* the value is absent, which callers
/// use to distinguish a clean miss from an error they must surface.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)), code_(std::nullopt) {}  // NOLINT
  StatusOr(ErrorCode code, std::string message)
      : value_(std::nullopt), code_(code), message_(std::move(message)) {}

  bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  ErrorCode code() const { return code_.value_or(ErrorCode::kInternal); }
  const std::string& message() const { return message_; }

  /// Returns the contained value or throws the carried error.
  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require() const {
    if (!value_.has_value()) throw Error(code(), message_);
  }

  std::optional<T> value_;
  std::optional<ErrorCode> code_;
  std::string message_;
};

}  // namespace gear
