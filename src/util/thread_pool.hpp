// Fixed-size worker pool shared by the Gear hot paths (conversion
// fingerprinting/compression and pipelined client materialization).
//
// Design rules, in order of importance:
//  1. Determinism. Parallel results must be byte-identical to the serial
//     path: `parallel_map` always merges results in submission order, and
//     anything order-sensitive (collision resolution, sim cost accounting)
//     stays outside the pool in a single serialized reduce step.
//  2. Backpressure. In-flight work is bounded by `Concurrency
//     .max_inflight_bytes` (à la bounded-memory parallel image pulling):
//     submitters block instead of queueing an unbounded amount of decoded
//     file content.
//  3. Graceful degradation. With one worker (or one core, or tiny inputs)
//     everything runs inline on the calling thread — no threads are spawned,
//     so the serial path is literally the parallel path at width 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gear::util {

/// Concurrency knobs threaded through the converter, conversion service,
/// client and gearctl. The default is "use the machine".
struct Concurrency {
  /// Worker threads; 0 means hardware_concurrency().
  std::size_t workers = 0;
  /// Upper bound on bytes of work admitted into the pool at once (task
  /// payload sizes as reported by the submitter). Submission blocks when
  /// the bound would be exceeded. 0 means unbounded.
  std::uint64_t max_inflight_bytes = 256ull << 20;

  /// Explicit serial configuration (the width-1 pool runs inline).
  static Concurrency serial() { return Concurrency{1, 0}; }

  std::size_t resolved_workers() const {
    if (workers != 0) return workers;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
};

class ThreadPool {
 public:
  /// `workers` = 0 means hardware_concurrency(). A width-1 pool spawns no
  /// threads; submit() and parallel_* run tasks inline.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return width_; }

  /// Schedules `fn` and returns its future. `payload_bytes` participates in
  /// the backpressure bound passed to the parallel_* helpers; plain submit()
  /// is unbounded.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (width_ <= 1) {
      (*task)();  // inline: the width-1 pool IS the serial path
      return fut;
    }
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(0..n-1) across the workers and blocks until all complete.
  /// The first exception thrown by any invocation is rethrown here (the
  /// remaining tasks still run to completion). `size_of(i)`, when provided,
  /// reports task i's payload for the `max_inflight_bytes` bound.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::uint64_t max_inflight_bytes = 0,
                         const std::function<std::uint64_t(std::size_t)>&
                             size_of = nullptr);

  /// Deterministic map: out[i] = fn(i), with results merged in submission
  /// order regardless of completion order. Equivalent to a serial loop.
  template <typename Out>
  std::vector<Out> parallel_map(
      std::size_t n, const std::function<Out(std::size_t)>& fn,
      std::uint64_t max_inflight_bytes = 0,
      const std::function<std::uint64_t(std::size_t)>& size_of = nullptr) {
    std::vector<Out> out(n);
    parallel_for_each(
        n, [&](std::size_t i) { out[i] = fn(i); }, max_inflight_bytes,
        size_of);
    return out;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::size_t width_;
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gear::util
