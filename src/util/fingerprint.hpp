// Content fingerprints for Gear files.
//
// The paper (§III-B) identifies every regular file by the MD5 hash of its
// content; the fingerprint doubles as the file's name in the Gear file pool
// and registries. The hasher is pluggable so tests can substitute a
// deliberately weak hash and exercise the collision-detection path
// (paper §III-B, "In cases where concerns over the collision-resistant
// functions arise...").
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/bytes.hpp"

namespace gear {

/// A 128-bit content fingerprint. For the default MD5 scheme all 16 bytes are
/// significant; weaker schemes zero-fill the tail.
class Fingerprint {
 public:
  static constexpr std::size_t kSize = 16;

  Fingerprint() = default;
  explicit Fingerprint(const std::array<std::uint8_t, kSize>& raw) : raw_(raw) {}

  /// Parses a lowercase/uppercase hex fingerprint (32 hex chars).
  static Fingerprint from_hex(std::string_view hex);

  const std::array<std::uint8_t, kSize>& raw() const noexcept { return raw_; }
  std::string hex() const;

  auto operator<=>(const Fingerprint&) const = default;

 private:
  std::array<std::uint8_t, kSize> raw_{};
};

/// std::hash support so fingerprints key unordered containers directly.
/// FNV-1a over the full 16 bytes: weak/truncated test hashers put their
/// entropy in different byte positions, so every byte must feed the hash or
/// unordered-map buckets degenerate.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint8_t b : f.raw()) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Strategy interface producing fingerprints from file content.
class FingerprintHasher {
 public:
  virtual ~FingerprintHasher() = default;
  virtual Fingerprint fingerprint(BytesView content) const = 0;
  virtual std::string name() const = 0;
};

/// Production hasher: full MD5 (RFC 1321).
class Md5FingerprintHasher final : public FingerprintHasher {
 public:
  Fingerprint fingerprint(BytesView content) const override;
  std::string name() const override { return "md5"; }
};

/// Test hasher keeping only the first `bits` of the MD5 digest, making
/// collisions likely on small corpora. Never used in production paths.
class TruncatedFingerprintHasher final : public FingerprintHasher {
 public:
  explicit TruncatedFingerprintHasher(unsigned bits);
  Fingerprint fingerprint(BytesView content) const override;
  std::string name() const override;

 private:
  unsigned bits_;
};

/// Shared default hasher instance (stateless, therefore safely shared).
const FingerprintHasher& default_hasher();

/// Upper bound on the probability that one or more collisions occur among
/// `n` uniformly distributed `bits`-bit fingerprints (paper Eq. 1,
/// "birthday paradox" bound): p <= n(n-1)/2 * 2^-bits.
double collision_probability_bound(double n, unsigned bits);

}  // namespace gear
