// Latency/size histogram with exact percentiles.
//
// Used by the trace-driven experiments to report p50/p90/p99 deployment
// latencies. Samples are kept exactly (traces are small); percentiles use
// the nearest-rank method.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gear {

class Histogram {
 public:
  void record(double value);

  std::size_t count() const noexcept { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const noexcept { return sum_; }

  /// Nearest-rank percentile, p in [0, 100]. Throws on empty histogram or
  /// out-of-range p.
  double percentile(double p) const;

  /// "n=.. mean=.. p50=.. p90=.. p99=.. max=.." one-liner via a formatting
  /// callback (e.g. format_duration).
  std::string summary(const std::string& (*unused)(const std::string&)) const =
      delete;
  std::string summary_seconds() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

}  // namespace gear
