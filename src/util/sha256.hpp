// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Docker identifies image layers by the SHA-256 of their (compressed) tarball
// content (paper §II-A); the Docker substrate in this repo does the same.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace gear {

/// 256-bit SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Sha256Digest finish();

  static Sha256Digest hash(BytesView data);
  static std::string hex(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace gear
