// MD5 message digest (RFC 1321), implemented from scratch.
//
// Gear uses MD5 to fingerprint regular file contents (paper §III-B). The
// incremental interface lets callers hash streamed data (tar extraction,
// chunked downloads) without buffering whole files.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace gear {

/// 128-bit MD5 digest.
using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5() { reset(); }

  /// Resets to the initial state, discarding any absorbed data.
  void reset();

  /// Absorbs `data` into the hash state.
  void update(BytesView data);

  /// Finalizes and returns the digest. The hasher must be reset() before
  /// further use.
  Md5Digest finish();

  /// One-shot convenience: digest of `data`.
  static Md5Digest hash(BytesView data);

  /// One-shot convenience: lowercase hex digest of `data`.
  static std::string hex(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;  // bytes absorbed so far
  std::size_t buffer_len_ = 0;   // bytes pending in buffer_
  bool finished_ = false;
};

}  // namespace gear
