#include "util/thread_pool.hpp"

namespace gear::util {

ThreadPool::ThreadPool(std::size_t workers)
    : width_(workers != 0 ? workers : Concurrency{}.resolved_workers()) {
  if (width_ <= 1) return;  // inline mode: no threads
  threads_.reserve(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::uint64_t max_inflight_bytes,
    const std::function<std::uint64_t(std::size_t)>& size_of) {
  if (n == 0) return;
  if (width_ <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Lives on the caller's stack: we block below until every task finished.
  struct State {
    std::mutex mu;
    std::condition_variable room;  // submitter waits for inflight headroom
    std::condition_variable done;  // submitter waits for completion
    std::uint64_t inflight_bytes = 0;
    std::size_t completed = 0;
    std::exception_ptr first_error;
  } state;

  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bytes = size_of ? size_of(i) : 0;
    if (max_inflight_bytes != 0) {
      std::unique_lock<std::mutex> lock(state.mu);
      // An oversized task is admitted alone rather than deadlocking.
      state.room.wait(lock, [&] {
        return state.inflight_bytes == 0 ||
               state.inflight_bytes + bytes <= max_inflight_bytes;
      });
      state.inflight_bytes += bytes;
    }
    enqueue([&state, &fn, i, bytes] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.first_error) state.first_error = std::current_exception();
      }
      // Notify while holding the lock: the waiter owns `state` on its
      // stack and may destroy it the moment the predicate holds, so the
      // condvars must not be touched after this mutex is released.
      std::lock_guard<std::mutex> lock(state.mu);
      state.inflight_bytes -= bytes;
      ++state.completed;
      state.room.notify_one();
      state.done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&] { return state.completed == n; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace gear::util
