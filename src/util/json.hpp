// Minimal JSON value type with parser and serializer.
//
// Docker image manifests and config blobs are JSON documents (paper §II-B);
// the Docker substrate serializes its manifests with this module so they
// survive registry round-trips as real documents rather than in-memory
// structs. Supports the full JSON grammar except exotic number forms
// (numbers are stored as int64 when integral, double otherwise).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gear {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // ordered => stable dumps

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(std::int64_t i) : value_(i) {}                // NOLINT
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}        // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}       // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw Error(kInvalidArgument) on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object member access; `at` throws kNotFound when absent, `get` returns
  /// nullptr.
  const Json& at(const std::string& key) const;
  const Json* get(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Serializes to a compact JSON string.
  std::string dump() const;

  /// Parses a JSON document. Throws Error(kCorruptData) on syntax errors.
  static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace gear
